//! Vendored subset of the `rand 0.8` API.
//!
//! The workspace pins `rand = "0.8.5"`, but this build environment has no
//! registry access, so the exact surface the workspace uses is vendored
//! here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is SplitMix64 — a different stream than upstream
//! `StdRng` (ChaCha12), but every use in this workspace treats seeds as
//! opaque reproducibility handles, never as cross-crate fixtures, so only
//! determinism and statistical quality matter. SplitMix64 passes BigCrush
//! on its 64-bit output, which is far beyond what the Monte-Carlo
//! tolerances here (≥ 1e-2) can resolve.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// Random number generators.
pub mod rngs {
    /// The standard seedable generator (vendored: SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-scramble so that small consecutive seeds (0, 1, 2, …) start
        // in well-separated regions of the state space.
        let mut rng = rngs::StdRng {
            state: state ^ 0x9e37_79b9_7f4a_7c15,
        };
        let _ = rng.next_u64();
        rng
    }
}

impl rngs::StdRng {
    /// Advances the SplitMix64 state and returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from the generator's "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample(rng: &mut rngs::StdRng) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the (half-open) range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::standard_sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f32::standard_sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (vendored subset).
pub trait Rng {
    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T;
    /// Draws uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0,1]");
        f64::standard_sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&x));
            let k = rng.gen_range(10usize..13);
            assert!((10..13).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
