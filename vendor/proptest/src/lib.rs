//! Vendored subset of the `proptest 1.4` API.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, numeric range
//! strategies, [`prop::collection::vec`], [`Strategy::prop_map`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics immediately with its case
//!   index and seed printed via the assert message; cases are
//!   deterministic per (test name, case index), so failures reproduce
//!   exactly on re-run.
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning
//!   `Err(TestCaseError)` — equivalent observable behavior under the
//!   harness.
//! * **`PROPTEST_CASES` always wins.** Upstream lets an explicit
//!   `with_cases` override the environment; here the environment
//!   overrides even explicit per-test configs, so CI can deepen every
//!   suite (`PROPTEST_CASES=256 cargo test`) without code changes — the
//!   deep-props CI job relies on this.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

/// Resolves a case count against a `PROPTEST_CASES`-style override:
/// a parseable positive override wins, anything else falls back.
fn resolve_cases(fallback: u32, env: Option<&str>) -> u32 {
    match env.and_then(|v| v.parse::<u32>().ok()) {
        Some(n) if n > 0 => n,
        _ => fallback,
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property — unless the
    /// `PROPTEST_CASES` environment variable overrides it (see the crate
    /// docs; this deviation is what lets CI deepen suites wholesale).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: resolve_cases(cases, std::env::var("PROPTEST_CASES").ok().as_deref()),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a property-test case failed (vendored: a rendered message).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError(e.to_string())
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy namespace mirror (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// A strategy for `Vec`s with a length drawn from `size` and
        /// elements drawn from `elem`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        /// Generates vectors of `elem` values with length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// A strategy for `BTreeSet`s with a target size drawn from
        /// `size`. Duplicate draws collapse, so like upstream the
        /// resulting set may be smaller than the drawn target.
        #[derive(Clone, Debug)]
        pub struct BTreeSetStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        /// Generates `BTreeSet`s of `elem` values with target size in
        /// `size`.
        pub fn btree_set<S>(elem: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            assert!(size.start < size.end, "empty size range");
            BTreeSetStrategy { elem, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> std::collections::BTreeSet<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Deterministic per-(test, case) generator used by the [`proptest!`]
/// expansion. Public for macro hygiene, not part of the upstream API.
#[doc(hidden)]
pub fn __rng_for_case(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    let mut seed: u64 = 0xc0ff_ee11_5bad_cafe;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__rng_for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    // Bodies may `return Ok(())` early or use `?`, as in
                    // upstream proptest where properties return a Result.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = __outcome {
                        panic!("property {} failed at case {__case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts a property-test condition (vendored: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality in a property test (vendored: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality in a property test (vendored: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Strategies stay inside their declared ranges.
        #[test]
        fn ranges_hold(x in 1.5f64..9.5, n in 3usize..7, b in 0u8..2) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(b < 2);
        }

        /// vec + prop_map compose.
        #[test]
        fn vec_and_map(v in prop::collection::vec(0.0f64..1.0, 1..10).prop_map(|v| {
            v.into_iter().map(|x| x * 2.0).collect::<Vec<_>>()
        })) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for x in v {
                prop_assert!((0.0..2.0).contains(&x));
            }
        }
    }

    #[test]
    fn env_override_resolution() {
        use crate::resolve_cases;
        assert_eq!(resolve_cases(24, None), 24);
        assert_eq!(resolve_cases(24, Some("256")), 256);
        assert_eq!(resolve_cases(24, Some("0")), 24, "zero cases is nonsense");
        assert_eq!(resolve_cases(24, Some("many")), 24);
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0.0f64..100.0;
        let a: Vec<f64> = (0..5)
            .map(|i| s.sample(&mut crate::__rng_for_case("t", i)))
            .collect();
        let b: Vec<f64> = (0..5)
            .map(|i| s.sample(&mut crate::__rng_for_case("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
