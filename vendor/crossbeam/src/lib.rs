//! Vendored subset of the `crossbeam 0.8` API: `channel::bounded` only,
//! backed by `std::sync::mpsc::sync_channel`. Sufficient for the
//! fan-out/fan-in pattern in `cyclesteal-par`, where every send is
//! pre-sized to fit the channel and the receiver outlives all senders.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

/// Multi-producer channels (vendored subset).
pub mod channel {
    pub use std::sync::mpsc::SendError;

    /// The sending half of a bounded channel; cloneable across threads.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errors when the receiver
        /// has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    impl<T> Receiver<T> {
        /// Iterates over received messages until every sender is dropped.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }

        /// Receives one message, or errors when the channel is closed and
        /// drained.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_threads() {
            let (tx, rx) = bounded::<usize>(64);
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..16 {
                            tx.send(w * 16 + i).unwrap();
                        }
                    });
                }
                drop(tx);
            });
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        }
    }
}
