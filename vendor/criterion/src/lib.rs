//! Vendored subset of the `criterion 0.5` API.
//!
//! Implements the surface the workspace benches use — benchmark groups,
//! [`BenchmarkId`], `iter`/`iter_batched`, `sample_size`,
//! `measurement_time`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros — over a plain wall-clock timer reporting min/median/mean
//! nanoseconds per iteration.
//!
//! CLI: a bare (non-flag) argument filters benchmarks by substring, and
//! `--quick` (or `CRITERION_QUICK=1` in the environment) collapses
//! measurement to a handful of iterations — that is what the CI bench
//! smoke job uses. All other flags cargo passes (`--bench`, …) are
//! ignored.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the
/// vendored harness always re-runs setup per timed call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// One benchmark's measurement settings.
#[derive(Clone, Copy, Debug)]
struct RunCfg {
    sample_size: usize,
    measurement_time: Duration,
    quick: bool,
}

/// A timing summary in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Fastest observed sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean of all samples.
    pub mean_ns: f64,
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    cfg: RunCfg,
    summary: Option<Summary>,
}

impl Bencher {
    /// Times `f`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + per-call estimate.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let est = t0.elapsed().max(Duration::from_nanos(20));

        let (samples, per_sample) = if self.cfg.quick {
            (3usize, 1u64)
        } else {
            let budget = self.cfg.measurement_time;
            let total_iters = (budget.as_nanos() / est.as_nanos().max(1)).clamp(1, 50_000_000);
            let samples = self.cfg.sample_size.clamp(3, 100) as u128;
            (samples as usize, (total_iters / samples).max(1) as u64)
        };

        let mut per_iter_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        self.summary = Some(summarize(per_iter_ns));
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let est = t0.elapsed().max(Duration::from_nanos(20));

        let samples = if self.cfg.quick {
            3
        } else {
            let budget = self.cfg.measurement_time;
            ((budget.as_nanos() / est.as_nanos().max(1)).clamp(3, 1000) as usize)
                .min(self.cfg.sample_size.clamp(3, 100) * 4)
        };

        let mut per_iter_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            per_iter_ns.push(start.elapsed().as_nanos() as f64);
        }
        self.summary = Some(summarize(per_iter_ns));
    }
}

fn summarize(mut ns: Vec<f64>) -> Summary {
    ns.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let min_ns = ns[0];
    let median_ns = ns[ns.len() / 2];
    let mean_ns = ns.iter().sum::<f64>() / ns.len() as f64;
    Summary {
        min_ns,
        median_ns,
        mean_ns,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    cfg: RunCfg,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                quick = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            filter,
            cfg: RunCfg {
                sample_size: 100,
                measurement_time: Duration::from_secs(1),
                quick,
            },
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; argument parsing already happened
    /// in [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Whether `id` survives the CLI name filter (true when no filter
    /// was given). Lets hand-rolled measurements in `main`-adjacent code
    /// honor the same filtering as registered benchmarks.
    pub fn filter_matches(&self, id: &str) -> bool {
        // (match, not Option::is_none_or: that adapter needs Rust 1.82
        // and the workspace MSRV is 1.75.)
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
            cfg: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let cfg = self.cfg;
        self.run_one(id, cfg, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, cfg: RunCfg, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { cfg, summary: None };
        f(&mut b);
        match b.summary {
            Some(s) => println!(
                "{id:<56} time: [{} {} {}]",
                fmt_ns(s.min_ns),
                fmt_ns(s.median_ns),
                fmt_ns(s.mean_ns)
            ),
            None => println!("{id:<56} (no measurement recorded)"),
        }
    }
}

/// A set of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    cfg: Option<RunCfg>,
}

impl BenchmarkGroup<'_> {
    fn cfg_mut(&mut self) -> &mut RunCfg {
        let base = self.criterion.cfg;
        self.cfg.get_or_insert(base)
    }

    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg_mut().sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg_mut().measurement_time = d;
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = format!("{}/{}", self.prefix, id.into_benchmark_id().id);
        let cfg = self.cfg.unwrap_or(self.criterion.cfg);
        self.criterion.run_one(&full, cfg, f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.prefix, id.id);
        let cfg = self.cfg.unwrap_or(self.criterion.cfg);
        self.criterion.run_one(&full, cfg, |b| f(b, input));
    }

    /// Ends the group (report flushing is immediate in this subset).
    pub fn finish(self) {}
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_summary() {
        let mut b = Bencher {
            cfg: RunCfg {
                sample_size: 5,
                measurement_time: Duration::from_millis(5),
                quick: true,
            },
            summary: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        let s = b.summary.expect("summary recorded");
        assert!(s.min_ns > 0.0 && s.min_ns <= s.median_ns);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 64).id, "solve/64");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
