//! Vendored subset of the `parking_lot 0.12` API: a [`Mutex`] whose
//! `lock` returns the guard directly (no poison `Result`), backed by
//! `std::sync::Mutex`. Poisoning is deliberately ignored — matching
//! parking_lot semantics, where a panicking holder simply releases.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, returns
    /// the guard directly; a panic in a previous holder is not propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
