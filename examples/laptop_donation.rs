//! The draconian contract in its purest form: a donated laptop that may be
//! unplugged from the network at any moment. How should a batch of
//! simulation sweeps be parcelled out, and what is the price of each extra
//! interruption the owner reserves the right to make?
//!
//! ```sh
//! cargo run --release --example laptop_donation
//! ```

use cyclesteal::prelude::*;
use std::sync::Arc;

fn main() {
    let c = secs(1.0); // one parcel setup ≈ 20 s on 1998-vintage Ethernet
    let u = secs(1440.0); // an 8-hour donation, U/c = 1440

    println!("Donated laptop: U/c = 1440. What does each reserved interrupt cost?\n");
    let table = ValueTable::solve(c, 16, u, 6, SolveOptions::default());
    println!(
        "{:>3} {:>12} {:>14} {:>12}",
        "p", "W^(p) exact", "Thm 5.1 bound", "loss vs p−1"
    );
    let mut prev = Work::ZERO;
    for p in 0..=6u32 {
        let w = table.value(p, u);
        let opp = Opportunity::new(u, c, p).unwrap();
        let bound = thm51_lower_bound(&opp, 0.0, 0.0);
        let delta = if p == 0 {
            String::from("—")
        } else {
            format!("{:.1}", prev - w)
        };
        println!("{:>3} {:>12.1} {:>14.1} {:>12}", p, w, bound, delta);
        prev = w;
    }

    // --- Simulate the actual donation day --------------------------------
    println!("\nSimulating the donation with a p = 2 contract:");
    let p = 2u32;
    let opp = Opportunity::new(u, c, p).unwrap();
    // A parameter sweep: 1200 Monte-Carlo cells of 0.75–2.5c each.
    let bag = TaskBag::generate(TaskDist::Uniform { lo: 0.75, hi: 2.5 }, 1200, 7);
    let total_cells = bag.len();

    for (label, owner) in [
        ("owner never returns", OwnerTrace::quiet()),
        (
            "owner checks in twice",
            OwnerTrace::poisson(11, 0.0015, u, p as usize, secs(60.0)),
        ),
        (
            "undocked after lunch",
            OwnerTrace::laptop_undock(secs(700.0), secs(100_000.0)),
        ),
    ] {
        let cfg = LenderConfig {
            name: "laptop".into(),
            opportunity: opp,
            owner,
            driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            // Results are due 10 hours (1800 c-units) after the handoff.
            deadline: Some(secs(1800.0)),
        };
        let report = NowSim::new(vec![cfg], bag.clone()).run().unwrap();
        let m = &report.lenders[0].1;
        println!(
            "  {label:<24} {:>6}/{} cells, banked {:>7.1}, lost {:>6.1}, reason {:?}",
            m.tasks_completed, total_cells, m.task_work, m.lost_time, m.done_reason
        );
    }

    // --- Guaranteed vs expected planning ----------------------------------
    println!("\nIf the owner is merely random (uniform return in [0, U]),");
    println!("the expected-output companion model (paper I) plans differently:");
    let law = InterruptLaw::Uniform { horizon: u };
    let dp = ExpectedDp::solve(c, 8, u, &law);
    let s_guaranteed = optimal_p1_schedule(u, c).unwrap();
    let s_expected = dp.schedule().unwrap();
    println!(
        "  guaranteed-optimal schedule: {} periods, E[W] = {:.1}",
        s_guaranteed.len(),
        expected_work(&s_guaranteed, c, &law)
    );
    println!(
        "  expected-optimal schedule:   {} periods, E[W] = {:.1}",
        s_expected.len(),
        dp.value()
    );
    println!(
        "  (the guaranteed-output plan trades ~{:.1} expected work for its worst-case floor of {:.1})",
        dp.value() - expected_work(&s_guaranteed, c, &law),
        w1_exact(u, c)
    );
}
