//! Empirical validation of the paper's guarantees at population scale.
//!
//! ```sh
//! cargo run --release --example sim_validate             # full grid
//! cargo run --release --example sim_validate -- smoke    # CI gate
//! ```
//!
//! For every owner climate in `cyclesteal-workloads` × a grid of
//! `(Q, p, L)` contract points, this driver runs thousands of seeded
//! episodes of the table-driven optimal borrower through the
//! struct-of-arrays `BatchSim` and compares each episode's *observed*
//! banked output against the *guaranteed* output `W^(p)[L]` served by
//! the `TableCache`. The check is exact integer arithmetic on the tick
//! grid, so the tolerance is zero:
//!
//! * **No episode may bank less than the guarantee.** Any
//!   observed-below-guaranteed episode is a solver or policy bug; the
//!   driver exits nonzero (this is the `sim-validate` CI gate).
//! * **The hostile climate must bank exactly the guarantee**, every
//!   episode — the worst-case owner realizes the minimax value, so
//!   `observed == guaranteed` pins both sides of the bound.
//!
//! The report prints one distribution curve per point: banked-output
//! quantiles as multiples of the guarantee (`min` = worst observed
//! episode; `1.000×` means an episode banked exactly `W^(p)[L]`).

use cyclesteal_core::time::secs;
use cyclesteal_dp::TableCache;
use cyclesteal_workloads::OwnerClimate;
use now_sim::{BatchAdversary, BatchConfig, BatchSim};

struct GridPoint {
    q: u32,
    p: u32,
    l_ticks: i64,
}

fn grid(smoke: bool) -> Vec<GridPoint> {
    let mut points = Vec::new();
    let ls: &[i64] = if smoke { &[64, 512] } else { &[64, 512, 4096] };
    for &q in &[4u32, 32] {
        for &p in &[1u32, 3] {
            for &l_setups in ls {
                points.push(GridPoint {
                    q,
                    p,
                    l_ticks: l_setups * q as i64,
                });
            }
        }
    }
    points
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let smoke = match mode.as_str() {
        "smoke" => true,
        "" | "full" => false,
        other => {
            eprintln!("usage: sim_validate [smoke|full]   (got {other:?})");
            std::process::exit(2);
        }
    };
    let episodes: usize = if smoke { 1000 } else { 20_000 };
    let seed = 0x1999_0415u64; // fixed: the whole grid is reproducible

    let cache = TableCache::new();
    let points = grid(smoke);
    let climates = OwnerClimate::all();

    println!(
        "sim_validate ({}): {} contract points x {} climates x {} episodes",
        if smoke { "smoke" } else { "full" },
        points.len(),
        climates.len(),
        episodes
    );
    println!(
        "{:<22} {:>8} {:>10} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>5} {:>10}",
        "point", "climate", "W (ticks)", "min", "p10", "p50", "p90", "max", "intr%", "violations"
    );

    let mut total_violations = 0u64;
    let mut total_episodes = 0u64;
    for pt in &points {
        // One solve per (Q, p) serves every L at that resolution — the
        // same cache path the serving layer uses.
        let table =
            cache.get_compressed(secs(1.0), pt.q, secs(pt.l_ticks as f64 / pt.q as f64), pt.p);
        for climate in climates {
            let sim = BatchSim::new(BatchConfig {
                table: table.clone(),
                lifespan_ticks: pt.l_ticks,
                interrupts: pt.p,
                episodes,
                seed: seed ^ (pt.q as u64) << 32 ^ (pt.p as u64) << 16 ^ pt.l_ticks as u64,
                adversary: BatchAdversary::from_climate(climate, pt.q as i64),
                block: 0,
                threads: 0,
            });
            let report = sim.run();
            total_violations += report.violations;
            total_episodes += report.episodes as u64;

            let w = report.guarantee_ticks.max(1) as f64;
            let qs = report.banked_quantiles(&[0.0, 0.1, 0.5, 0.9, 1.0]);
            let ratio = |ticks: i64| ticks as f64 / w;
            let interrupted = report.interrupts_used.iter().filter(|&&k| k > 0).count() as f64
                / report.episodes as f64;
            println!(
                "Q={:<3} p={} L={:<9} {:>8} {:>10} | {:>6.3}x {:>6.3}x {:>6.3}x {:>6.3}x {:>6.3}x | {:>4.0}% {:>10}",
                pt.q,
                pt.p,
                pt.l_ticks,
                climate.name(),
                report.guarantee_ticks,
                ratio(qs[0]),
                ratio(qs[1]),
                ratio(qs[2]),
                ratio(qs[3]),
                ratio(qs[4]),
                interrupted * 100.0,
                report.violations
            );

            // The hostile climate is the two-sided anchor: the minimax
            // owner must realize the guarantee exactly, every episode.
            if climate == OwnerClimate::Hostile && report.exact_matches as usize != report.episodes
            {
                eprintln!(
                    "FAIL: hostile climate at Q={} p={} L={} banked != W in {} episode(s)",
                    pt.q,
                    pt.p,
                    pt.l_ticks,
                    report.episodes as u64 - report.exact_matches
                );
                total_violations += 1;
            }
        }
    }

    println!();
    if total_violations > 0 {
        eprintln!(
            "FAIL: {total_violations} violation(s) across {total_episodes} episodes — observed output fell below the guarantee"
        );
        std::process::exit(1);
    }
    println!(
        "OK: 0 observed-below-guaranteed violations across {total_episodes} episodes ({} points x {} climates)",
        points.len(),
        climates.len()
    );
}
