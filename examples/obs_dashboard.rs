//! Observability dashboard: pull a live server's metrics + trace spans
//! over the wire (op 4) and render them as text tables — queue depths,
//! per-tenant traffic, lane occupancy, cache shards, solve-phase
//! breakdowns, and a span waterfall for the slowest trace.
//!
//! ```sh
//! cargo run --release --example obs_dashboard              # self-contained demo
//! cargo run --release --example obs_dashboard -- pull 127.0.0.1:7717
//! cargo run --release --example obs_dashboard -- smoke     # CI gate
//! ```
//!
//! The default mode starts an ephemeral server, drives mixed traffic
//! (three tenant grids, batches and sweeps, some requests traced) and
//! renders the op-4 pull. `pull` renders any running `serve_demo
//! server`. `smoke` is the CI `obs-smoke` step: it additionally
//! asserts that the op-4 exposition reconciles **exactly** with
//! [`Broker::stats`], that a client-chosen trace id produced a span at
//! every pipeline stage of a cold solve, that solver phase profiling
//! recorded timings, and that the span journal dumps as JSON lines.

use cyclesteal_core::time::secs;
use cyclesteal_obs::{parse_exposition, Sample, SpanRecord};
use cyclesteal_serve::{
    Broker, BrokerConfig, Client, ClientConfig, GuaranteeQuery, RetryPolicy, Server, SweepQuery,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// A traced batch id the smoke assertions look for.
const SMOKE_TRACE: u64 = 0xDA5B_0A4D;

/// Three tenant grids driving mixed traffic.
const TENANTS: [(f64, u32); 3] = [(1.0, 8), (2.0, 4), (0.5, 16)];

fn drive_traffic(addr: std::net::SocketAddr) {
    std::thread::scope(|scope| {
        for (t, (setup, ticks)) in TENANTS.iter().enumerate() {
            scope.spawn(move || {
                // Distinct retry seeds keep the clients' client-drawn
                // trace-id streams disjoint (the seed feeds both jitter
                // and trace ids).
                let mut client = Client::connect_with(
                    addr,
                    ClientConfig {
                        retry: RetryPolicy {
                            seed: 0xBA5E ^ ((t as u64) << 32),
                            ..RetryPolicy::default()
                        },
                        ..ClientConfig::default()
                    },
                )
                .unwrap();
                for round in 0..10u32 {
                    let queries: Vec<GuaranteeQuery> = (1..=3)
                        .map(|p| GuaranteeQuery {
                            setup: secs(*setup),
                            ticks_per_setup: *ticks,
                            interrupts: p,
                            lifespan: secs(20.0 + 7.0 * f64::from(round)),
                        })
                        .collect();
                    // Tenant 0's third round is the pinned trace the
                    // smoke mode follows through the pipeline.
                    if t == 0 && round == 2 {
                        client
                            .query_batch_traced(&queries, None, SMOKE_TRACE)
                            .unwrap();
                    } else {
                        client.query_batch(&queries).unwrap();
                    }
                }
                // A streaming sweep per tenant exercises op 3 too.
                client
                    .query_sweep(&SweepQuery {
                        setup: secs(*setup),
                        ticks_per_setup: *ticks,
                        interrupts: 2,
                        first_tick: 1,
                        count: 200,
                    })
                    .unwrap();
            });
        }
    });
}

/// Renders rows as a fixed-width text table with a header rule.
fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title} ==");
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

fn value_of(samples: &[Sample], name: &str) -> u64 {
    samples
        .iter()
        .find(|s| s.name == name)
        .map_or(0, |s| s.value)
}

fn label_of<'a>(sample: &'a Sample, key: &str) -> &'a str {
    sample
        .labels
        .iter()
        .find(|(k, _)| k == key)
        .map_or("", |(_, v)| v.as_str())
}

/// Per-label breakdown of one series: `label value` rows, sorted.
fn by_label(samples: &[Sample], name: &str, key: &str) -> BTreeMap<String, u64> {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| (label_of(s, key).to_string(), s.value))
        .collect()
}

fn render_dashboard(text: &str, spans: &[SpanRecord], elapsed_s: f64) {
    let samples = parse_exposition(text);

    // Queue depths and lane occupancy — the "is it keeping up" row.
    render_table(
        "queues & lanes",
        &["inflight batches", "lanes running", "lane waiters"],
        &[vec![
            value_of(&samples, "cyclesteal_inflight_batches").to_string(),
            value_of(&samples, "cyclesteal_lanes_running").to_string(),
            value_of(&samples, "cyclesteal_lane_waiters").to_string(),
        ]],
    );

    // Endpoint traffic with mean latency from the histogram sum/count.
    let mut rows = Vec::new();
    for s in samples
        .iter()
        .filter(|s| s.name == "cyclesteal_requests_total")
    {
        let ep = label_of(s, "endpoint");
        let pick = |name: &str| {
            samples
                .iter()
                .find(|x| x.name == name && label_of(x, "endpoint") == ep)
                .map_or(0, |x| x.value)
        };
        let count = pick("cyclesteal_request_latency_us_count");
        let mean_us = pick("cyclesteal_request_latency_us_sum")
            .checked_div(count)
            .unwrap_or(0);
        rows.push(vec![
            ep.to_string(),
            s.value.to_string(),
            pick("cyclesteal_queries_total").to_string(),
            pick("cyclesteal_coalesced_total").to_string(),
            format!("{mean_us}"),
        ]);
    }
    render_table(
        "endpoints",
        &["endpoint", "requests", "queries", "coalesced", "mean µs"],
        &rows,
    );

    // Per-tenant traffic rate over the demo window.
    let tenants = by_label(&samples, "cyclesteal_tenant_queries_total", "tenant");
    let rows: Vec<Vec<String>> = tenants
        .iter()
        .map(|(tenant, queries)| {
            vec![
                tenant.clone(),
                queries.to_string(),
                format!("{:.0}", *queries as f64 / elapsed_s.max(1e-9)),
            ]
        })
        .collect();
    render_table("tenants", &["grid (setup x Q)", "queries", "QPS"], &rows);

    // Cache shards.
    let shard_series = [
        ("hits", "cyclesteal_cache_shard_hits"),
        ("misses", "cyclesteal_cache_shard_misses"),
        ("tables", "cyclesteal_cache_shard_compressed_entries"),
        ("KiB", "cyclesteal_cache_shard_resident_bytes"),
    ];
    let shards: Vec<String> = by_label(&samples, "cyclesteal_cache_shard_hits", "shard")
        .keys()
        .cloned()
        .collect();
    let rows: Vec<Vec<String>> = shards
        .iter()
        .map(|shard| {
            let mut row = vec![shard.clone()];
            for (label, series) in &shard_series {
                let v = samples
                    .iter()
                    .find(|s| s.name == *series && label_of(s, "shard") == shard)
                    .map_or(0, |s| s.value);
                row.push(if *label == "KiB" {
                    (v >> 10).to_string()
                } else {
                    v.to_string()
                });
            }
            row
        })
        .collect();
    render_table(
        "cache shards",
        &["shard", "hits", "misses", "tables", "KiB"],
        &rows,
    );

    // Solve-phase breakdown (needs the server to have profiling on).
    let counts = by_label(&samples, "cyclesteal_solve_phase_ns_count", "phase");
    let sums = by_label(&samples, "cyclesteal_solve_phase_ns_sum", "phase");
    let rows: Vec<Vec<String>> = counts
        .iter()
        .filter(|(_, c)| **c > 0)
        .map(|(phase, count)| {
            let total = sums.get(phase).copied().unwrap_or(0);
            vec![
                phase.clone(),
                count.to_string(),
                format!("{:.3}", total as f64 / 1e6),
                format!("{:.3}", total as f64 / 1e6 / *count as f64),
            ]
        })
        .collect();
    if rows.is_empty() {
        println!("\n== solve phases == (profiling disabled on this server)");
    } else {
        render_table(
            "solve phases",
            &["phase", "solves", "total ms", "mean ms"],
            &rows,
        );
    }

    // Span waterfall of the slowest trace in the journal.
    let mut traces: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        traces.entry(span.trace_id).or_default().push(span);
    }
    let slowest = traces
        .iter()
        .max_by_key(|(_, spans)| spans.iter().map(|s| s.duration_ns()).max().unwrap_or(0));
    if let Some((trace_id, mut trace_spans)) = slowest.map(|(id, s)| (*id, s.clone())) {
        trace_spans.sort_by_key(|s| (s.start_ns, s.end_ns));
        let t0 = trace_spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let rows: Vec<Vec<String>> = trace_spans
            .iter()
            .map(|s| {
                vec![
                    s.stage.clone(),
                    format!("{:.3}", (s.start_ns - t0) as f64 / 1e6),
                    format!("{:.3}", s.duration_ns() as f64 / 1e6),
                ]
            })
            .collect();
        render_table(
            &format!(
                "slowest trace {trace_id:#018x} ({} spans journaled)",
                spans.len()
            ),
            &["stage", "start ms", "span ms"],
            &rows,
        );
    }
}

/// Starts an ephemeral instrumented server, drives the mixed workload,
/// and returns everything the dashboard (and the smoke gate) needs.
fn run_local() -> (Arc<Broker>, String, Vec<SpanRecord>, f64) {
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    broker.enable_profiling();
    let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
    let started = Instant::now();
    drive_traffic(server.local_addr());
    let elapsed_s = started.elapsed().as_secs_f64();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let (text, spans) = client.fetch_metrics().unwrap();
    server.shutdown();
    (broker, text, spans, elapsed_s)
}

fn run_demo() {
    let (_broker, text, spans, elapsed_s) = run_local();
    render_dashboard(&text, &spans, elapsed_s);
}

fn run_pull(addr: &str) {
    let mut client = Client::connect(addr).unwrap();
    let (text, spans) = client.fetch_metrics().unwrap();
    // A remote pull has no demo window; rate over 1 s = raw totals.
    render_dashboard(&text, &spans, 1.0);
}

fn run_smoke() {
    println!("[obs-smoke 1/3] instrumented server under mixed 3-tenant traffic…");
    let (broker, text, spans, elapsed_s) = run_local();
    let samples = parse_exposition(&text);
    let stats = broker.stats();

    // Gate 1: the op-4 exposition reconciles exactly with BrokerStats —
    // same atomics, two reads, no traffic in between.
    let tcp = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "tcp")
        .expect("tcp endpoint");
    let pick = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && label_of(s, "endpoint") == "tcp")
            .map_or(0, |s| s.value)
    };
    assert_eq!(pick("cyclesteal_requests_total"), tcp.requests);
    assert_eq!(pick("cyclesteal_queries_total"), tcp.queries);
    assert_eq!(pick("cyclesteal_coalesced_total"), tcp.coalesced);
    assert_eq!(pick("cyclesteal_request_latency_us_count"), tcp.requests);
    for (series, want) in [
        ("cyclesteal_cache_shard_hits", stats.cache.hits),
        ("cyclesteal_cache_shard_misses", stats.cache.misses),
        (
            "cyclesteal_cache_shard_resident_bytes",
            stats.cache.resident_bytes as u64,
        ),
    ] {
        let sum: u64 = samples
            .iter()
            .filter(|s| s.name == series)
            .map(|s| s.value)
            .sum();
        assert_eq!(sum, want, "shard sum of {series}");
    }
    println!("[obs-smoke 2/3] op-4 pull reconciles exactly with BrokerStats…");

    // Gate 2: the pinned trace crossed every pipeline stage, and the
    // solver phases were profiled.
    let stages: Vec<&str> = spans
        .iter()
        .filter(|s| s.trace_id == SMOKE_TRACE)
        .map(|s| s.stage.as_str())
        .collect();
    for stage in [
        "server.recv",
        "server.dispatch",
        "broker.admission",
        "broker.batch",
    ] {
        assert!(stages.contains(&stage), "trace missing {stage}: {stages:?}");
    }
    assert!(
        samples
            .iter()
            .any(|s| s.name == "cyclesteal_solve_phase_ns_count" && s.value > 0),
        "phase profiling recorded no solves"
    );

    // Gate 3: the journal dumps as JSON lines, one per span.
    let jsonl = broker.obs().journal().to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), broker.obs().journal().len());
    assert!(lines
        .iter()
        .all(|l| l.starts_with('{') && l.ends_with('}') && l.contains("\"trace_id\"")));
    println!("[obs-smoke 3/3] trace spans + phase profile + JSONL journal present…");

    render_dashboard(&text, &spans, elapsed_s);
    println!(
        "\nobs smoke: all gates green (exact reconciliation, full-pipeline trace, profiled solves)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_demo(),
        Some("pull") => run_pull(args.get(1).map_or("127.0.0.1:7717", String::as_str)),
        Some("smoke") => run_smoke(),
        Some(other) => {
            eprintln!("unknown mode {other}; use pull/smoke or no argument");
            std::process::exit(2);
        }
    }
}
