//! A NOW render farm overnight: one borrower distributes a bag of frame-
//! render tasks over eight colleagues' workstations, each under its own
//! draconian contract and owner behaviour, comparing the paper's adaptive
//! guideline against naive disciplines on total completed work.
//!
//! ```sh
//! cargo run --release --example overnight_pool
//! ```

use cyclesteal::prelude::*;
use std::sync::Arc;

/// One pool definition: every workstation gets the same discipline so the
/// disciplines can be compared like-for-like across identical owners.
fn build_pool(mk_driver: &dyn Fn(usize, &Opportunity) -> DriverKind) -> Vec<LenderConfig> {
    let mut lenders = Vec::new();
    for i in 0..8usize {
        // Heterogeneous contracts: lifespans 6–10 h (in units of c = 30 s,
        // so U/c between 720 and 1200), 1–4 allowed interruptions.
        let u = 720.0 + 160.0 * (i % 4) as f64;
        let p = 1 + (i % 4) as u32;
        let opportunity = Opportunity::from_units(u, 1.0, p);
        // Owners: mostly Poisson sleepers; workstation 3 is a laptop that
        // undocks two-thirds of the way in; workstation 7 has a deadline
        // session pattern.
        let owner = match i {
            3 => OwnerTrace::laptop_undock(secs(u * 0.66), secs(10_000.0)),
            7 => OwnerTrace::sessions(
                900 + i as u64,
                (150.0, 400.0),
                (20.0, 90.0),
                secs(u),
                p as usize,
            ),
            _ => OwnerTrace::poisson(100 + i as u64, 0.002, secs(u), p as usize, secs(40.0)),
        };
        lenders.push(LenderConfig {
            name: format!("ws{i}(p={p})"),
            opportunity,
            owner,
            driver: mk_driver(i, &opportunity),
            // Frames are due at 9am: 14 hours after handoff.
            deadline: Some(secs(1680.0)),
        });
    }
    lenders
}

fn render_farm_bag() -> TaskBag {
    // Bimodal frames: most are quick, a fifth are hero frames.
    TaskBag::generate(
        TaskDist::Bimodal {
            short: 2.0,
            long: 14.0,
            frac_long: 0.2,
        },
        1800,
        4242,
    )
}

fn run_discipline(name: &str, mk: &dyn Fn(usize, &Opportunity) -> DriverKind) -> SimReport {
    let report = NowSim::new(build_pool(mk), render_farm_bag())
        .run()
        .unwrap();
    println!("=== {name} ===");
    print!("{}", report.render());
    println!();
    report
}

fn main() {
    println!("Render farm: 1800 frames, 8 workstations, one night.\n");

    let adaptive = run_discipline("adaptive guideline (§3.2)", &|_, _| {
        DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default()))
    });
    let nonadaptive = run_discipline("non-adaptive guideline (§3.1)", &|_, opp| {
        DriverKind::NonAdaptive(NonAdaptiveGuideline::build(opp).unwrap())
    });
    let naive = run_discipline("naive single period", &|_, _| {
        DriverKind::Adaptive(Arc::new(SinglePeriodPolicy))
    });
    let chunky = run_discipline("fixed 20c chunks (auction-style)", &|_, _| {
        DriverKind::Adaptive(Arc::new(FixedChunkPolicy::new(secs(20.0))))
    });

    println!("=== Night's totals (completed task work) ===");
    println!("(Note: against these *non-malicious* owners the worst-case-optimal");
    println!(" guidelines pay for insurance they never claim — fewer, longer periods");
    println!(" complete more frames when interrupts are early and benign. The");
    println!(" guidelines' value is the floor they guarantee if owners are hostile;");
    println!(" see `guarantee_explorer` and EXPERIMENTS.md E5/E7 for that story,");
    println!(" and the cyclesteal-expected crate for planning against random owners.)");

    for (name, r) in [
        ("adaptive guideline", &adaptive),
        ("non-adaptive guideline", &nonadaptive),
        ("naive single period", &naive),
        ("fixed 20c chunks", &chunky),
    ] {
        println!(
            "  {name:<24} {:>8.1} work, {:>5} frames",
            r.total_task_work(),
            r.total_tasks()
        );
    }
}
