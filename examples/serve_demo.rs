//! Serve demo: the `cyclesteal-serve` broker and its TCP client/server
//! pair, end to end — batched guarantee queries, solve coalescing,
//! snapshot-on-evict and warm starts.
//!
//! ```sh
//! cargo run --release --example serve_demo                 # in-process demo
//! cargo run --release --example serve_demo -- server 127.0.0.1:7717
//! cargo run --release --example serve_demo -- client 127.0.0.1:7717
//! cargo run --release --example serve_demo -- smoke        # CI gate
//! ```
//!
//! `smoke` is the CI `serve-smoke` step: it starts a real TCP server,
//! fires a batched query set from 8 concurrent client threads, diffs
//! every answer **bit for bit** against direct
//! [`TableCache::solve_many`] results, snapshots the cache, restarts a
//! broker warm from the snapshot directory and proves it serves the
//! whole workload without a single solve. Any mismatch panics (nonzero
//! exit).

use cyclesteal::prelude::*;
use cyclesteal_dp::{SolveConfig, TableCache};
use cyclesteal_serve::{Broker, BrokerConfig, Client, GuaranteeAnswer, GuaranteeQuery, Server};
use std::sync::Arc;

/// The demo/smoke workload: two grids × three budgets × six lifespans.
fn workload() -> Vec<GuaranteeQuery> {
    let mut queries = Vec::new();
    for (setup, ticks) in [(1.0, 8u32), (2.0, 4)] {
        for p in 1..=3u32 {
            for u in [0.0, 0.4, 17.0, 63.5, 120.0, 200.0] {
                queries.push(GuaranteeQuery {
                    setup: secs(setup),
                    ticks_per_setup: ticks,
                    interrupts: p,
                    lifespan: secs(u),
                });
            }
        }
    }
    queries
}

/// Reference answers from the direct cache path the broker must match.
fn reference_answers(queries: &[GuaranteeQuery]) -> Vec<GuaranteeAnswer> {
    let cache = TableCache::new();
    let configs: Vec<SolveConfig> = queries
        .iter()
        .map(|q| SolveConfig {
            setup: q.setup,
            ticks_per_setup: q.ticks_per_setup,
            max_lifespan: Time::max(q.lifespan, secs(1.0)),
            max_interrupts: q.interrupts,
        })
        .collect();
    let tables = cache.solve_many(&configs);
    queries
        .iter()
        .zip(&tables)
        .map(|(q, table)| {
            let ticks = table
                .grid()
                .to_ticks(q.lifespan)
                .clamp(0, table.max_ticks());
            GuaranteeAnswer {
                value: table.value(q.interrupts, q.lifespan),
                value_ticks: table.value_ticks(q.interrupts, ticks),
            }
        })
        .collect()
}

fn diff(got: &[GuaranteeAnswer], want: &[GuaranteeAnswer], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: answer count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.value.get().to_bits(),
            w.value.get().to_bits(),
            "{ctx}: query {i} value {} != direct {}",
            g.value,
            w.value
        );
        assert_eq!(g.value_ticks, w.value_ticks, "{ctx}: query {i} ticks");
    }
}

fn print_stats(broker: &Broker) {
    let stats = broker.stats();
    println!(
        "[cache: {} hits / {} misses / {} evictions, {} compressed table(s), {} KiB resident]",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        stats.cache.compressed_entries,
        stats.cache.resident_bytes >> 10
    );
    for ep in &stats.endpoints {
        println!(
            "[{}: {} request(s) / {} queries, {} coalesced, p50 {} µs, p99 {} µs]",
            ep.endpoint, ep.requests, ep.queries, ep.coalesced, ep.p50_us, ep.p99_us
        );
    }
    let r = stats.resilience;
    if r != Default::default() {
        println!(
            "[resilience: {} shed, {} deadline rejects, {} contained panics, \
             {} flight retries, {} snapshot failures]",
            r.shed, r.deadline_rejects, r.solve_panics, r.flight_retries, r.snapshot_failures
        );
    }
    let (text, spans) = broker.metrics_snapshot();
    println!(
        "[obs: {} metric series, {} trace span(s) journaled — render with \
         `cargo run --release --example obs_dashboard -- pull <addr>`]",
        cyclesteal_obs::parse_exposition(&text).len(),
        spans.len()
    );
}

fn run_demo() {
    let queries = workload();
    println!("solving the reference answers directly…");
    let want = reference_answers(&queries);

    println!("starting a TCP server on an ephemeral port…");
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let got = client.query_batch(&queries).unwrap();
    diff(&got, &want, "demo batch");
    println!(
        "one batched request answered {} queries over TCP, bit-identical to the direct solves:",
        queries.len()
    );
    for (q, a) in queries.iter().zip(&got).step_by(7) {
        println!(
            "  W^({})({}) on q={} grid = {}  ({} ticks)",
            q.interrupts, q.lifespan, q.ticks_per_setup, a.value, a.value_ticks
        );
    }
    print_stats(&broker);
    server.shutdown();
}

fn run_server(addr: &str) {
    let broker = Arc::new(
        Broker::new(BrokerConfig {
            snapshot_dir: Some(std::path::PathBuf::from("serve-snapshots")),
            ..BrokerConfig::default()
        })
        .unwrap(),
    );
    // A long-running server profiles its solves: `obs_dashboard -- pull`
    // then renders the per-phase breakdown alongside the traffic tables.
    broker.enable_profiling();
    let server = Server::start(addr, broker.clone()).unwrap();
    println!(
        "serving guarantee queries on {} (snapshots in ./serve-snapshots, Ctrl-C to stop)",
        server.local_addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        print_stats(&broker);
        let _ = broker.snapshot();
    }
}

fn run_client(addr: &str) {
    let queries = workload();
    let mut client = Client::connect(addr).unwrap();
    let answers = client.query_batch(&queries).unwrap();
    for (q, a) in queries.iter().zip(&answers) {
        println!(
            "W^({})({}) on q={} grid = {}  ({} ticks)",
            q.interrupts, q.lifespan, q.ticks_per_setup, a.value, a.value_ticks
        );
    }
    let stats = client.stats().unwrap();
    println!(
        "[server cache: {} hits / {} misses, {} compressed table(s)]",
        stats.cache.hits, stats.cache.misses, stats.cache.compressed_entries
    );
}

fn run_smoke() {
    let dir = std::env::temp_dir().join(format!("cyclesteal-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let queries = workload();
    let want = reference_answers(&queries);

    // Phase 1: cold TCP server, 8 concurrent clients, bit-exact diff.
    println!("[smoke 1/3] cold server vs direct TableCache::solve_many…");
    {
        let broker = Arc::new(
            Broker::new(BrokerConfig {
                snapshot_dir: Some(dir.clone()),
                ..BrokerConfig::default()
            })
            .unwrap(),
        );
        let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let queries = &queries;
                let want = &want;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for round in 0..3 {
                        let got = client.query_batch(queries).unwrap();
                        diff(&got, want, &format!("smoke client {t} round {round}"));
                    }
                });
            }
        });
        let stats = broker.stats();
        assert_eq!(stats.cache.misses, 2, "two grids must mean two solves");
        let written = broker.snapshot().unwrap();
        assert_eq!(written, 2, "both tables must snapshot");
        print_stats(&broker);
        server.shutdown();
    }

    // Phase 2: a warm-started broker must serve without a single solve.
    println!("[smoke 2/3] warm start from {}…", dir.display());
    {
        let broker = Arc::new(
            Broker::new(BrokerConfig {
                snapshot_dir: Some(dir.clone()),
                ..BrokerConfig::default()
            })
            .unwrap(),
        );
        assert_eq!(
            broker.cache().stats().compressed_entries,
            2,
            "warm start must load both snapshots"
        );
        let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let got = client.query_batch(&queries).unwrap();
        diff(&got, &want, "warm server");
        let stats = broker.stats();
        assert_eq!(stats.cache.misses, 0, "warm start must skip every solve");
        print_stats(&broker);
        server.shutdown();
    }

    // Phase 3: a memory budget of one byte evicts-and-snapshots, and
    // the answers stay correct throughout.
    println!("[smoke 3/3] eviction under a 1-byte budget…");
    {
        let broker = Broker::new(BrokerConfig {
            memory_budget: Some(1),
            snapshot_dir: Some(dir.clone()),
            ..BrokerConfig::default()
        })
        .unwrap();
        let got = broker.query_batch(&queries).unwrap();
        diff(&got, &want, "budgeted broker");
        let stats = broker.stats();
        assert!(stats.cache.evictions >= 2, "budget must evict");
        assert_eq!(stats.cache.resident_bytes, 0);
        print_stats(&broker);
    }

    std::fs::remove_dir_all(&dir).unwrap();
    println!("serve smoke: all phases green (bit-identical answers, warm start, eviction)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_demo(),
        Some("server") => run_server(args.get(1).map_or("127.0.0.1:7717", String::as_str)),
        Some("client") => run_client(args.get(1).map_or("127.0.0.1:7717", String::as_str)),
        Some("smoke") => run_smoke(),
        Some(other) => {
            eprintln!("unknown mode {other}; use server/client/smoke or no argument");
            std::process::exit(2);
        }
    }
}
