//! Guarantee explorer: sweep `(U/c, p)` in parallel and print how the
//! paper's schedules stack up against the exact optimum and against each
//! other — the adaptive-vs-non-adaptive separation that motivates the
//! whole paper, as one table.
//!
//! ```sh
//! cargo run --release --example guarantee_explorer
//! ```

use cyclesteal::prelude::*;
use cyclesteal_par::{par_map, sweep};

fn main() {
    let c = secs(1.0);
    let us = sweep::geometric(128.0, 8192.0, 4.0);
    let ps: Vec<u32> = vec![1, 2, 3, 4];

    // One cached DP solve covers the whole sweep (largest U, largest p):
    // a row for L_max contains every smaller lifespan, so all cells below
    // are plain lookups into the shared table. With a single pending
    // solve, `solve_many`'s whole thread budget flows into the solve
    // itself: workers sweep anchor-segmented l-ranges of each level
    // (bit-identical to the sequential solve).
    let max_u = secs(*us.last().unwrap());
    let p_max = *ps.last().unwrap();
    let cache = TableCache::global();
    println!(
        "[{} worker thread(s): solve fan-out + intra-level segmented sweeps]",
        cyclesteal_par::default_threads()
    );
    let table = &cache.solve_many(&[SolveConfig {
        setup: c,
        ticks_per_setup: 8,
        max_lifespan: max_u,
        max_interrupts: p_max,
    }])[0];
    println!(
        "[sweep queries below served by the {} row representation]",
        table.repr_name()
    );
    let adaptive = evaluate_policy(
        &AdaptiveGuideline::default(),
        c,
        8,
        max_u,
        *ps.last().unwrap(),
        EvalOptions::default(),
    )
    .unwrap();
    let selfsim = evaluate_policy(
        &SelfSimilarGuideline::default(),
        c,
        8,
        max_u,
        *ps.last().unwrap(),
        EvalOptions::default(),
    )
    .unwrap();

    let cells = sweep::cartesian(&us, &ps);
    let rows = par_map(&cells, |&(u, p)| {
        let opp = Opportunity::from_units(u, 1.0, p);
        // One shared table serves every cell lock-free; the cache holds
        // it for any later sweep in the same process.
        let w_opt = table.value(p, secs(u));
        let w_ad = adaptive.value(p, secs(u));
        let w_ss = selfsim.value(p, secs(u));
        let run = NonAdaptiveGuideline::run(&opp).unwrap();
        let w_na = worst_case(&run).work;
        (u, p, w_opt, w_ad, w_ss, w_na)
    });

    println!(
        "{:>8} {:>3} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "U/c", "p", "W optimal", "§3.2 arith", "self-sim", "non-adapt", "ss/opt", "na/opt"
    );
    for (u, p, w_opt, w_ad, w_ss, w_na) in rows {
        let frac = |w: Work| {
            if w_opt.is_positive() {
                format!("{:.3}", w.ratio(w_opt))
            } else {
                "—".into()
            }
        };
        println!(
            "{:>8} {:>3} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9} {:>9}",
            u,
            p,
            w_opt,
            w_ad,
            w_ss,
            w_na,
            frac(w_ss),
            frac(w_na)
        );
    }

    // ---- Large horizons: the compressed oracle ----------------------
    // Beyond ~10⁶ ticks a dense arena (and a dense policy evaluation)
    // stops being an option; the event-driven skeleton and the
    // knot-compressed evaluator carry the same sweep to 10⁷ ticks and
    // beyond in milliseconds and megabytes.
    let deep_ticks: i64 = 10_000_000;
    let q = 8u32;
    let deep_u = secs(deep_ticks as f64 / q as f64);
    let deep = cache.get_compressed(c, q, deep_u, 2);
    println!(
        "\n[deep queries below served by the {} row representation]",
        deep.repr_name()
    );
    let deep_ad = evaluate_policy_compressed(
        &AdaptiveGuideline::default(),
        c,
        q,
        deep_u,
        2,
        CompressedEvalOptions::default(),
    )
    .unwrap();
    println!(
        "\n{:>10} {:>3} {:>12} {:>12} {:>8}",
        "U/c", "p", "W optimal", "§3.2 arith", "ad/opt"
    );
    for &u in &[100_000.0, 400_000.0, 1_250_000.0] {
        for p in 1..=2u32 {
            let w_opt = deep.value(p, secs(u));
            let w_ad = deep_ad.value(p, secs(u));
            println!(
                "{:>10} {:>3} {:>12.0} {:>12.0} {:>8.4}",
                u,
                p,
                w_opt,
                w_ad,
                w_ad.ratio(w_opt)
            );
        }
    }
    println!(
        "[deep table ({} rows): {} breakpoints compressed into {} stored descriptors over {} ticks, {} events to build, {} KiB]",
        deep.repr_name(),
        (0..=2).map(|p| deep.breakpoints(p)).sum::<usize>(),
        (0..=2).map(|p| deep.stored_breakpoints(p)).sum::<usize>(),
        deep.max_ticks(),
        deep.events(),
        deep.memory_bytes() >> 10
    );

    let stats = cache.stats();
    println!(
        "\n[table cache: {} solve(s), {} dense + {} compressed cached table(s) served {} sweep cells]",
        stats.misses,
        stats.entries,
        stats.compressed_entries,
        cells.len()
    );
    println!("\nReading the table: the corrected self-similar guideline tracks the exact");
    println!("optimum at every p and beats the committed schedule throughout this range;");
    println!("the paper's arithmetic §3.2 profile trails it as p grows. The committed");
    println!("schedule closes in once p ≳ (U/c)^(1/3) — see EXPERIMENTS.md E5/E7.");
}
