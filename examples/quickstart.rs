//! Quickstart: plan a cycle-stealing opportunity and see what the paper's
//! guidelines guarantee.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cyclesteal::prelude::*;

fn main() {
    // A colleague lends you their workstation overnight: 8 hours, with a
    // 30-second setup charge per work parcel, and at most 3 interruptions
    // (measured in units of c, U/c = 960).
    let c = secs(1.0);
    let u = secs(960.0);
    let opp = Opportunity::new(u, c, 3).unwrap();

    println!(
        "Opportunity: U/c = {}, p = {}",
        opp.u_over_c(),
        opp.interrupts()
    );
    println!();

    // --- What the closed forms promise -----------------------------------
    println!("Closed-form guarantees (work, in units of c):");
    println!(
        "  non-adaptive guideline (§3.1): {:.1}",
        NonAdaptiveGuideline::guarantee(&opp)
    );
    println!(
        "  adaptive guideline bound (Thm 5.1 leading term): {:.1}",
        thm51_lower_bound(&opp, 0.0, 0.0)
    );
    println!();

    // --- The schedules themselves ----------------------------------------
    let na = NonAdaptiveGuideline::build(&opp).unwrap();
    println!(
        "Non-adaptive schedule: {} equal periods of {:.2}",
        na.len(),
        na.period(0)
    );
    let ad = AdaptiveGuideline::default().episode(&opp).unwrap();
    println!(
        "Adaptive first episode: {} periods, t_1 = {:.2} … t_m = {:.2}",
        ad.len(),
        ad.period(0),
        ad.period(ad.len() - 1)
    );
    println!();

    // --- Exact numbers from the game solver ------------------------------
    let table = ValueTable::solve(c, 16, u, 3, SolveOptions::default());
    println!("Exact game values W^(p)[U] (DP at c/16 resolution):");
    for p in 0..=3u32 {
        println!("  p = {p}: {:.1}", table.value(p, u));
    }
    println!();

    // --- Play the game ----------------------------------------------------
    let policy = AdaptiveGuideline::default();
    let pv = evaluate_policy(&policy, c, 16, u, 3, EvalOptions::default()).unwrap();
    let mut adversary = PolicyAwareAdversary::new(pv);
    let log = run_game(&policy, &mut adversary, &opp).unwrap();
    println!(
        "Adaptive guideline vs its worst-case owner: banked {:.1} over {} episodes \
         ({} interrupts used)",
        log.total_work,
        log.episodes.len(),
        log.interrupts_used()
    );
    let single = SinglePeriodPolicy;
    let pv1 = evaluate_policy(&single, c, 16, u, 3, EvalOptions::default()).unwrap();
    let mut adversary1 = PolicyAwareAdversary::new(pv1);
    let naive = run_game(&single, &mut adversary1, &opp).unwrap();
    println!(
        "The naive send-everything policy banks {:.1} against the same owner.",
        naive.total_work
    );
}
