//! TCP transport: [`Server`] binds a listener and serves the broker
//! over the [`crate::wire`] framing; [`Client`] is the matching caller.
//!
//! Threading model: a **readiness loop**, hand-rolled like the
//! `WorkerPool` (no registry deps). One event-loop thread polls the
//! nonblocking listener plus every connection's nonblocking socket:
//! bytes are accumulated per connection until a full frame parses,
//! complete requests are dispatched to a small pool of handler threads
//! (so a cold solve never stalls the loop), and responses are queued
//! into per-connection write buffers flushed as the peer drains them.
//! Ten thousand idle connections therefore cost buffers, not threads.
//! Each connection has at most one request in flight — responses stay
//! in request order; pipelining depth is the client's choice. The
//! *solves* all funnel through the broker's shared worker pool and
//! cache, so a hundred connections still coalesce onto one solve per
//! `(setup, Q, p_max)` key. [`Server::shutdown`] stops the loop and
//! closes its connections; clients see the close as a transient error
//! and reconnect-retry.
//!
//! ## Failure semantics
//!
//! * **Timeouts.** The [`ServerConfig`] read timeout bounds how long a
//!   connection may sit idle (or a peer may stall mid-frame) before the
//!   loop drops it; the write timeout bounds how long a queued response
//!   may go without the peer accepting a byte. Neither can park a
//!   thread — the loop just stops tracking the laggard. Client-side
//!   socket timeouts ([`ClientConfig`]) surface as transient, retried
//!   errors.
//! * **Typed errors.** Request failures answer a typed error frame
//!   ([`crate::ServeError`]: code + retryable flag + message) on a
//!   still-healthy connection; only *framing* damage tears the
//!   connection down.
//! * **Retry.** [`Client`] transparently retries transient transport
//!   errors (connection reset/refused, timeouts, truncated or
//!   CRC-corrupt frames) and typed retryable errors, with capped
//!   exponential backoff and seeded full jitter ([`RetryPolicy`]),
//!   reconnecting when the stream may be out of sync. Deadlines ride
//!   the wire as relative budgets ([`Client::query_batch_within`]).
//! * **Accept-loop survival.** Transient `accept()` failures (EMFILE,
//!   ECONNABORTED) back off — doubling up to a cap — and keep
//!   accepting; only [`Server::shutdown`] stops the listener.

use crate::broker::{Broker, BrokerStats, GuaranteeAnswer, GuaranteeQuery, SweepQuery};
use crate::errors::ServeError;
use crate::faults::{self, FaultPoint};
use crate::obs::ObsHub;
use crate::wire;
use cyclesteal_obs::SpanRecord;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server connection-handling options.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// How long a connection may sit idle (or a peer may stall
    /// mid-frame) before the server closes it. `None` = wait forever —
    /// only for trusted peers.
    pub read_timeout: Option<Duration>,
    /// How long a queued response may sit without the peer accepting a
    /// single byte before the server closes the connection.
    pub write_timeout: Option<Duration>,
    /// Request-handler threads draining the event loop's dispatch
    /// queue. Handlers mostly *wait* (on coalesced flights, fairness
    /// lanes and the solve pool), so this bounds concurrent request
    /// contexts, not CPU use. `0` = the machine's worker-thread
    /// default, minimum 2.
    pub handlers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            handlers: 0,
        }
    }
}

/// A running TCP front-end over a shared [`Broker`].
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
}

/// One complete request frame, tagged with the connection it came from
/// and the hub-clock reading at which the event loop parsed it — the
/// start of the request's `server.recv` span (parse → handler pickup).
struct Job {
    conn_id: u64,
    payload: Vec<u8>,
    recv_ns: u64,
}

/// A handler's verdict on one request, routed back to the event loop.
enum Reply {
    /// Write these raw frame bytes (already length-prefixed and
    /// checksummed — or deliberately corrupted by the fault harness).
    Respond(Vec<u8>),
    /// Injected mid-exchange drop: close without responding — the
    /// client sees a truncated session.
    Close,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `broker`, with the default
    /// [`ServerConfig`] timeouts.
    pub fn start(addr: impl ToSocketAddrs, broker: Arc<Broker>) -> io::Result<Server> {
        Server::start_with(addr, broker, ServerConfig::default())
    }

    /// [`Server::start`] with explicit connection-handling options.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        broker: Arc<Broker>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();

        // Dispatch plumbing: the loop sends complete request frames to
        // the handler pool and drains replies back. Dropping `job_tx`
        // (when the loop exits) disconnects the handlers' `recv`, which
        // is how the pool winds down — no separate stop signal.
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (reply_tx, reply_rx) = mpsc::channel::<(u64, Reply)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handlers = if config.handlers == 0 {
            cyclesteal_par::default_threads().max(2)
        } else {
            config.handlers
        };
        for _ in 0..handlers {
            let jobs = job_rx.clone();
            let replies = reply_tx.clone();
            let broker = broker.clone();
            std::thread::spawn(move || handler_loop(&jobs, &replies, &broker));
        }
        drop(reply_tx);

        let hub = broker.obs().clone();
        let driver = std::thread::spawn(move || {
            event_loop(&listener, &stop_flag, &job_tx, &reply_rx, config, &hub)
        });
        Ok(Server {
            local_addr,
            stop,
            driver: Some(driver),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the event loop and joins it, closing the listener and
    /// every tracked connection. Clients observe the close as a
    /// transient transport error and reconnect-retry against the next
    /// server instance. Handler threads drain their queue and exit on
    /// their own once the loop's dispatch channel disconnects.
    pub fn shutdown(mut self) {
        self.stop_driver();
    }

    fn stop_driver(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_driver();
    }
}

/// Per-connection readiness-loop state: the nonblocking socket, the
/// inbound byte accumulator, the outbound write queue, and the
/// activity stamps the timeouts are enforced against.
struct TrackedConn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into a frame.
    rbuf: Vec<u8>,
    /// Response bytes queued but not yet accepted by the peer.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has been written so far.
    wpos: usize,
    /// A request is with the handler pool; parsing pauses until its
    /// reply lands so responses stay in request order.
    inflight: bool,
    /// Marked for removal (peer EOF, I/O error, framing damage,
    /// timeout, or an injected drop).
    gone: bool,
    last_read: Instant,
    last_write: Instant,
}

/// Don't buffer more inbound bytes than one maximal frame: a peer that
/// pipelines past an in-flight request is backpressured by TCP instead
/// of growing the accumulator unboundedly.
const MAX_CONN_BUFFER: usize = wire::MAX_FRAME_BYTES as usize + 8;

/// The readiness loop: accept, drain handler replies, then give every
/// connection a read / parse / write / timeout pass. Runs until the
/// stop flag; each pass that moves no bytes sleeps 1 ms, so an idle
/// server polls cheaply and a busy one spins at line rate.
fn event_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    jobs: &mpsc::Sender<Job>,
    replies: &mpsc::Receiver<(u64, Reply)>,
    config: ServerConfig,
    obs: &ObsHub,
) {
    // accept() can fail transiently under load (ECONNABORTED on a reset
    // handshake, EMFILE on fd exhaustion). Dropping the listener over
    // one of those would silently refuse every future connection, so
    // *no* error stops accepting — failures just muzzle the accept arm
    // with doubling (capped) backoff while connections keep serving.
    const ERROR_BACKOFF_CAP: Duration = Duration::from_secs(1);
    let mut error_backoff = Duration::from_millis(10);
    let mut accept_muzzled_until: Option<Instant> = None;
    let mut conns: HashMap<u64, TrackedConn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut scratch = [0u8; 16 * 1024];

    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        let mut progressed = false;

        if !accept_muzzled_until.is_some_and(|until| now < until) {
            accept_muzzled_until = None;
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        error_backoff = Duration::from_millis(10);
                        progressed = true;
                        stream.set_nodelay(true).ok();
                        if stream.set_nonblocking(true).is_ok() {
                            conns.insert(
                                next_id,
                                TrackedConn {
                                    stream,
                                    rbuf: Vec::new(),
                                    wbuf: Vec::new(),
                                    wpos: 0,
                                    inflight: false,
                                    gone: false,
                                    last_read: now,
                                    last_write: now,
                                },
                            );
                            next_id += 1;
                        }
                    }
                    // WouldBlock just means "no connection pending".
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        accept_muzzled_until = Some(now + error_backoff);
                        error_backoff = (error_backoff * 2).min(ERROR_BACKOFF_CAP);
                        break;
                    }
                }
            }
        }

        while let Ok((id, reply)) = replies.try_recv() {
            progressed = true;
            if let Some(conn) = conns.get_mut(&id) {
                conn.inflight = false;
                // A served response counts as activity: a long solve
                // must not burn the idle budget of the very connection
                // it is answering.
                conn.last_read = now;
                match reply {
                    Reply::Respond(bytes) => {
                        if conn.wbuf.is_empty() {
                            conn.last_write = now;
                        }
                        conn.wbuf.extend_from_slice(&bytes);
                    }
                    Reply::Close => conn.gone = true,
                }
            }
        }

        for (&id, conn) in conns.iter_mut() {
            if conn.gone {
                continue;
            }
            // Read until the socket runs dry (or the buffer cap).
            while conn.rbuf.len() < MAX_CONN_BUFFER {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.gone = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&scratch[..n]);
                        conn.last_read = now;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.gone = true;
                        break;
                    }
                }
            }
            // Parse at most one request into flight. A malformed
            // *payload* answers a typed error frame and keeps the
            // connection; *framing* damage (impossible length, CRC
            // mismatch) tears it down — the stream is unrecoverable.
            if !conn.gone && !conn.inflight {
                match wire::parse_frame(&conn.rbuf) {
                    Ok(Some((payload, consumed))) => {
                        conn.rbuf.drain(..consumed);
                        conn.inflight = true;
                        progressed = true;
                        if jobs
                            .send(Job {
                                conn_id: id,
                                payload,
                                recv_ns: obs.now_ns(),
                            })
                            .is_err()
                        {
                            conn.gone = true;
                        }
                    }
                    Ok(None) => {}
                    Err(_) => conn.gone = true,
                }
            }
            // Flush as much of the write queue as the peer accepts.
            while !conn.gone && conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.gone = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.last_write = now;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.gone = true;
                        break;
                    }
                }
            }
            if conn.wpos == conn.wbuf.len() && conn.wpos > 0 {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
            if conn.gone {
                continue;
            }
            // Timeouts: an idle (or mid-frame-stalled) peer against the
            // read timeout; an unread response against the write one.
            if conn.wbuf.is_empty() && !conn.inflight {
                if let Some(limit) = config.read_timeout {
                    if now.duration_since(conn.last_read) > limit {
                        conn.gone = true;
                    }
                }
            } else if !conn.wbuf.is_empty() {
                if let Some(limit) = config.write_timeout {
                    if now.duration_since(conn.last_write) > limit {
                        conn.gone = true;
                    }
                }
            }
        }
        conns.retain(|_, conn| !conn.gone);

        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// One handler thread: take a complete request off the dispatch queue,
/// run it against the broker, route the reply back to the event loop.
/// The fault-injection points (read delay, drop-before-response,
/// corrupt-frame) live here, inert unless a [`crate::FaultPlan`] is
/// armed. Exits when the dispatch channel disconnects (server stopped).
fn handler_loop(
    jobs: &Mutex<mpsc::Receiver<Job>>,
    replies: &mpsc::Sender<(u64, Reply)>,
    broker: &Broker,
) {
    loop {
        // The mutex serializes *dequeueing* only: the guard is released
        // as soon as recv returns, so handlers process in parallel.
        let job = match jobs.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        if let Some(delay) = faults::read_delay() {
            std::thread::sleep(delay);
        }
        let response = handle_request(&job.payload, broker, job.recv_ns);
        let reply = if faults::should(FaultPoint::DropConnection) {
            Reply::Close
        } else if faults::should(FaultPoint::CorruptFrame) {
            // Injected wire damage: flip one byte of the encoded frame.
            // The frame CRC guarantees the client detects it.
            let mut bytes = wire::frame_bytes(&response);
            let pos = faults::corrupt_position(bytes.len());
            bytes[pos] ^= 0x01;
            Reply::Respond(bytes)
        } else {
            Reply::Respond(wire::frame_bytes(&response))
        };
        if replies.send((job.conn_id, reply)).is_err() {
            return;
        }
    }
}

fn handle_request(payload: &[u8], broker: &Broker, recv_ns: u64) -> Vec<u8> {
    let obs = broker.obs();
    match payload.split_first() {
        Some((&wire::OP_QUERY_BATCH, body)) => {
            match wire::decode_query_batch_traced(&mut { body }) {
                Ok((queries, deadline_us, wire_trace)) => {
                    // A request arriving untraced (legacy frame or trace
                    // id 0) still gets a server-assigned id, so every
                    // TCP request is followable through the pipeline.
                    let trace_id = if wire_trace != 0 {
                        wire_trace
                    } else {
                        obs.assign_trace_id()
                    };
                    obs.span(trace_id, "server.recv", recv_ns);
                    // The wire deadline is a relative budget; convert to
                    // an absolute Instant at the moment of decode.
                    // checked_add so an absurd (hostile) budget degrades
                    // to "none" instead of panicking on Instant overflow.
                    let deadline = match deadline_us {
                        wire::NO_DEADLINE_US => None,
                        us => Instant::now().checked_add(Duration::from_micros(us)),
                    };
                    let t_dispatch = obs.start_ns(trace_id);
                    let outcome = broker.query_batch_traced("tcp", &queries, deadline, trace_id);
                    obs.span(trace_id, "server.dispatch", t_dispatch);
                    match outcome {
                        Ok(answers) => wire::encode_answers(&answers),
                        Err(e) => wire::encode_error(&e),
                    }
                }
                Err(e) => wire::encode_error(&ServeError::malformed(format!(
                    "malformed query batch: {e}"
                ))),
            }
        }
        Some((&wire::OP_STATS, [])) => wire::encode_stats(&broker.stats()),
        Some((&wire::OP_STATS, _)) => {
            wire::encode_error(&ServeError::malformed("stats request carries no body"))
        }
        Some((&wire::OP_SWEEP, body)) => match wire::decode_sweep_traced(&mut { body }) {
            Ok((sweep, deadline_us, wire_trace)) => {
                let trace_id = if wire_trace != 0 {
                    wire_trace
                } else {
                    obs.assign_trace_id()
                };
                obs.span(trace_id, "server.recv", recv_ns);
                let deadline = match deadline_us {
                    wire::NO_DEADLINE_US => None,
                    us => Instant::now().checked_add(Duration::from_micros(us)),
                };
                let t_dispatch = obs.start_ns(trace_id);
                let outcome = broker.query_sweep_traced("tcp", &sweep, deadline, trace_id);
                obs.span(trace_id, "server.dispatch", t_dispatch);
                match outcome {
                    // A window too jagged to fit one frame is the
                    // request's problem (narrow it), not a transport
                    // fault — reject before encoding, so frame_bytes
                    // never sees an over-cap payload.
                    Ok(runs) if runs.len() > wire::MAX_SWEEP_RUNS => {
                        wire::encode_error(&ServeError::invalid_query(
                            0,
                            format!(
                                "sweep produced {} runs, over the {}-run frame cap — narrow the window",
                                runs.len(),
                                wire::MAX_SWEEP_RUNS
                            ),
                        ))
                    }
                    Ok(runs) => wire::encode_runs(&runs),
                    Err(e) => wire::encode_error(&e),
                }
            }
            Err(e) => wire::encode_error(&ServeError::malformed(format!("malformed sweep: {e}"))),
        },
        Some((&wire::OP_METRICS, [])) => {
            let (text, spans) = broker.metrics_snapshot();
            wire::encode_metrics(&text, &spans)
        }
        Some((&wire::OP_METRICS, _)) => {
            wire::encode_error(&ServeError::malformed("metrics request carries no body"))
        }
        Some((op, _)) => wire::encode_error(&ServeError::malformed(format!("unknown opcode {op}"))),
        None => wire::encode_error(&ServeError::malformed("empty request")),
    }
}

/// Client retry policy: capped exponential backoff with seeded **full
/// jitter** — attempt `k` sleeps uniformly in
/// `(0, min(base·2ᵏ, max)]`, with the uniform draw coming from a
/// deterministic splitmix64 stream over `seed`. Seeded jitter keeps
/// retry storms decorrelated across clients (give each a different
/// seed) while staying reproducible in tests.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = never retry).
    pub max_retries: u32,
    /// Backoff cap doubles from here.
    pub base_delay: Duration,
    /// Backoff cap never exceeds this.
    pub max_delay: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x1CEB_00DA,
        }
    }
}

impl RetryPolicy {
    /// The deterministic jittered sleep before retry number `attempt`
    /// (0-based), where `n` indexes the jitter stream (monotone across
    /// the client's lifetime so repeated retry rounds keep fresh
    /// jitter).
    fn backoff(&self, attempt: u32, n: u64) -> Duration {
        let cap = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let cap_ns = cap.as_nanos().max(1) as u64;
        Duration::from_nanos(faults::splitmix64(self.seed ^ n) % cap_ns + 1)
    }
}

/// Client construction options.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// How long one response read may block. `None` = wait forever.
    pub read_timeout: Option<Duration>,
    /// How long one request write may block.
    pub write_timeout: Option<Duration>,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::default(),
        }
    }
}

/// A blocking client for the [`Server`]'s wire protocol. One request at
/// a time per client; open several clients (they're cheap) for
/// concurrent load. Transient failures are retried per the configured
/// [`RetryPolicy`], reconnecting when the transport may be out of sync.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    /// Monotone jitter-stream index (see [`RetryPolicy::backoff`]).
    jitter_n: u64,
    /// Monotone trace-id stream index: each logical request draws one
    /// id, so every retry of that request shares its trace.
    next_trace: u64,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Transport-level failures worth a reconnect-and-retry: the connection
/// died, stalled, or delivered provably damaged bytes — none of which
/// says anything about the *request* being wrong.
fn transient(err: &io::Error) -> bool {
    if wire::is_corrupt_frame(err) {
        return true;
    }
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

impl Client {
    /// Connects to a running server with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit timeout/retry options. The
    /// first connection is dialed eagerly (so an unreachable address
    /// errors here); later reconnects happen lazily inside the retry
    /// loop.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let mut client = Client {
            addr,
            config,
            conn: None,
            jitter_n: 0,
            next_trace: 0,
        };
        client.conn = Some(client.dial()?);
        Ok(client)
    }

    fn dial(&self) -> io::Result<Conn> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.write_timeout)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Runs `op` against a live connection, retrying per the policy.
    /// Typed retryable server errors retry on the *same* connection
    /// (the frame was intact — the stream is still in sync); transport
    /// errors drop the connection and redial, because after a
    /// truncated or corrupt frame the stream position is unreliable.
    fn with_retry<T>(&mut self, mut op: impl FnMut(&mut Conn) -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            let result = {
                match self.ensure_conn() {
                    Ok(conn) => op(conn),
                    Err(e) => Err(e),
                }
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let typed_retryable = ServeError::from_io(&err).map(|se| se.retryable);
            if typed_retryable.is_none() {
                self.conn = None;
            }
            let retryable = typed_retryable.unwrap_or_else(|| transient(&err));
            if !retryable || attempt >= self.config.retry.max_retries {
                return Err(err);
            }
            let n = self.jitter_n;
            self.jitter_n += 1;
            std::thread::sleep(self.config.retry.backoff(attempt, n));
            attempt += 1;
        }
    }

    fn ensure_conn(&mut self) -> io::Result<&mut Conn> {
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        // Unreachable after the fill above, but kept a typed error: the
        // client's contract (like the broker's) is to never panic.
        self.conn
            .as_mut()
            .ok_or_else(|| io::Error::other("connection slot empty after dial"))
    }

    /// Sends one batch of queries and returns the answers in input
    /// order, retrying transient failures. Values cross the wire as
    /// IEEE bit patterns, so what the broker computed is exactly what
    /// this returns.
    pub fn query_batch(&mut self, queries: &[GuaranteeQuery]) -> io::Result<Vec<GuaranteeAnswer>> {
        self.query_batch_within(queries, None)
    }

    /// [`Client::query_batch`] with a per-batch deadline budget. The
    /// budget travels the wire as relative microseconds and is re-armed
    /// fresh on every retry attempt; the server rejects (typed,
    /// retryable `DeadlineExceeded`) any attempt it cannot answer in
    /// time rather than blocking past it.
    pub fn query_batch_within(
        &mut self,
        queries: &[GuaranteeQuery],
        deadline: Option<Duration>,
    ) -> io::Result<Vec<GuaranteeAnswer>> {
        let trace_id = self.draw_trace_id();
        self.query_batch_traced(queries, deadline, trace_id)
    }

    /// [`Client::query_batch_within`] under an explicit trace id. The
    /// id rides the wire (op-1's optional trailing field) and stamps
    /// every pipeline span the request crosses server-side; the same id
    /// is reused across retry attempts, so one logical request is one
    /// trace. `0` sends a legacy untraced frame (the server still
    /// assigns its own id).
    pub fn query_batch_traced(
        &mut self,
        queries: &[GuaranteeQuery],
        deadline: Option<Duration>,
        trace_id: u64,
    ) -> io::Result<Vec<GuaranteeAnswer>> {
        let deadline_us = deadline
            .map(|d| (d.as_micros().min(u64::MAX as u128) as u64).max(1))
            .unwrap_or(wire::NO_DEADLINE_US);
        let request = wire::encode_query_batch_traced(queries, deadline_us, trace_id);
        let want = queries.len();
        self.with_retry(|conn| {
            let response = round_trip(conn, &request)?;
            let answers = wire::decode_answers(&response)?;
            if answers.len() != want {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "answer count does not match query count",
                ));
            }
            Ok(answers)
        })
    }

    /// Sends one streaming sweep (op 3) and returns the exact tick
    /// staircase of the window, expanded client-side from the run
    /// descriptors the server streamed
    /// ([`cyclesteal_dp::expand_value_runs`]) — bit-identical to asking
    /// [`Client::query_batch`] for every tick of the window, at
    /// `O(runs)` wire bytes instead of `O(count)`.
    pub fn query_sweep(&mut self, sweep: &SweepQuery) -> io::Result<Vec<i64>> {
        self.query_sweep_within(sweep, None)
    }

    /// [`Client::query_sweep`] with a per-request deadline budget
    /// (same wire semantics as [`Client::query_batch_within`]).
    pub fn query_sweep_within(
        &mut self,
        sweep: &SweepQuery,
        deadline: Option<Duration>,
    ) -> io::Result<Vec<i64>> {
        let trace_id = self.draw_trace_id();
        self.query_sweep_traced(sweep, deadline, trace_id)
    }

    /// [`Client::query_sweep_within`] under an explicit trace id (same
    /// semantics as [`Client::query_batch_traced`], over op 3).
    pub fn query_sweep_traced(
        &mut self,
        sweep: &SweepQuery,
        deadline: Option<Duration>,
        trace_id: u64,
    ) -> io::Result<Vec<i64>> {
        let deadline_us = deadline
            .map(|d| (d.as_micros().min(u64::MAX as u128) as u64).max(1))
            .unwrap_or(wire::NO_DEADLINE_US);
        let request = wire::encode_sweep_traced(sweep, deadline_us, trace_id);
        self.with_retry(|conn| {
            let response = round_trip(conn, &request)?;
            let runs = wire::decode_runs(&response)?;
            // Expansion is only believed when the descriptors cover
            // exactly the requested window: a CRC-valid but miscounted
            // response is a server fault, surfaced as InvalidData
            // rather than expanded into a wrong-length answer.
            let covered: u64 = runs.iter().map(|r| r.len.max(0) as u64).sum();
            if covered != u64::from(sweep.count) || runs.iter().any(|r| r.len < 1) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "run descriptors do not cover the requested window",
                ));
            }
            Ok(cyclesteal_dp::expand_value_runs(&runs))
        })
    }

    /// Fetches the broker's per-endpoint, cache and resilience stats,
    /// retrying transient failures.
    pub fn stats(&mut self) -> io::Result<BrokerStats> {
        self.with_retry(|conn| {
            let response = round_trip(conn, &[wire::OP_STATS])?;
            wire::decode_stats(&response)
        })
    }

    /// Pulls the server's observability snapshot (op 4): the metrics
    /// registry's text exposition plus the recent trace-span journal.
    /// Parse the text with [`cyclesteal_obs::parse_exposition`].
    pub fn fetch_metrics(&mut self) -> io::Result<(String, Vec<SpanRecord>)> {
        self.with_retry(|conn| {
            let response = round_trip(conn, &[wire::OP_METRICS])?;
            wire::decode_metrics(&response)
        })
    }

    /// A fresh nonzero trace id for one logical request — a well-mixed
    /// splitmix64 draw over the retry seed, so concurrent clients with
    /// distinct seeds emit disjoint id streams.
    fn draw_trace_id(&mut self) -> u64 {
        let n = self.next_trace;
        self.next_trace += 1;
        faults::splitmix64(self.config.retry.seed ^ n.rotate_left(17) ^ 0x7EAC_E1D5).max(1)
    }
}

fn round_trip(conn: &mut Conn, request: &[u8]) -> io::Result<Vec<u8>> {
    wire::write_frame(&mut conn.writer, request)?;
    wire::read_frame(&mut conn.reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::errors::ErrorCode;
    use cyclesteal_core::time::secs;

    fn query(p: u32, lifespan: f64) -> GuaranteeQuery {
        GuaranteeQuery {
            setup: secs(1.0),
            ticks_per_setup: 8,
            interrupts: p,
            lifespan: secs(lifespan),
        }
    }

    #[test]
    fn tcp_round_trip_matches_in_process_broker() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let queries: Vec<GuaranteeQuery> = (1..=3).map(|p| query(p, 40.0 * p as f64)).collect();
        let over_wire = client.query_batch(&queries).unwrap();
        let direct = broker.query_batch(&queries).unwrap();
        for (a, b) in over_wire.iter().zip(&direct) {
            assert_eq!(a.value.get().to_bits(), b.value.get().to_bits());
            assert_eq!(a.value_ticks, b.value_ticks);
        }

        let stats = client.stats().unwrap();
        assert!(stats.endpoints.iter().any(|e| e.endpoint == "tcp"));
        server.shutdown();
    }

    #[test]
    fn sweeps_stream_the_exact_staircase_over_the_wire() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let sweep = SweepQuery {
            setup: secs(1.0),
            ticks_per_setup: 8,
            interrupts: 2,
            first_tick: 37,
            count: 500,
        };
        let over_wire = client.query_sweep(&sweep).unwrap();
        assert_eq!(over_wire.len(), 500);
        // Bit-identical to the per-tick op-1 answers for the same ticks.
        let grid = cyclesteal_dp::Grid::new(sweep.setup, sweep.ticks_per_setup);
        let queries: Vec<GuaranteeQuery> = (0..sweep.count)
            .map(|j| GuaranteeQuery {
                setup: sweep.setup,
                ticks_per_setup: sweep.ticks_per_setup,
                interrupts: sweep.interrupts,
                lifespan: grid.to_time(sweep.first_tick + i64::from(j)),
            })
            .collect();
        let dense = client.query_batch(&queries).unwrap();
        for (j, (run_value, answer)) in over_wire.iter().zip(&dense).enumerate() {
            assert_eq!(*run_value, answer.value_ticks, "tick {j}");
        }

        // An invalid window (count 0) is the typed InvalidQuery, not a
        // hang or a panic.
        let err = client
            .query_sweep(&SweepQuery { count: 0, ..sweep })
            .unwrap_err();
        assert_eq!(
            ServeError::from_io(&err).expect("typed").code,
            ErrorCode::InvalidQuery
        );
        server.shutdown();
    }

    #[test]
    fn malformed_requests_error_without_killing_the_connection() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let server = Server::start("127.0.0.1:0", broker).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // Unknown opcode → typed error frame, connection stays up.
        wire::write_frame(&mut writer, &[99u8]).unwrap();
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(resp[0], wire::STATUS_ERR);
        assert_eq!(wire::decode_error(&resp[1..]).code, ErrorCode::Malformed);

        // An invalid query (negative setup) → typed error frame too.
        let bad = wire::encode_query_batch(
            &[GuaranteeQuery {
                setup: secs(-1.0),
                ticks_per_setup: 8,
                interrupts: 1,
                lifespan: secs(10.0),
            }],
            wire::NO_DEADLINE_US,
        );
        wire::write_frame(&mut writer, &bad).unwrap();
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(resp[0], wire::STATUS_ERR);
        let err = wire::decode_error(&resp[1..]);
        assert_eq!(err.code, ErrorCode::InvalidQuery);
        assert!(!err.retryable);

        // And the connection still answers a good batch afterwards.
        wire::write_frame(
            &mut writer,
            &wire::encode_query_batch(&[query(1, 20.0)], wire::NO_DEADLINE_US),
        )
        .unwrap();
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(resp[0], wire::STATUS_OK);
        server.shutdown();
    }

    #[test]
    fn a_connection_killed_mid_frame_leaves_the_server_serving() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let server = Server::start("127.0.0.1:0", broker).unwrap();

        // Claim a 64-byte frame, send 3 bytes, and vanish: the handler
        // sees EOF mid-frame (an error, not a hang) and dies alone.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&64u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
        stream.flush().unwrap();
        drop(stream);

        // The server is unaffected: a fresh client gets real answers.
        let mut client = Client::connect(server.local_addr()).unwrap();
        let answers = client.query_batch(&[query(1, 20.0)]).unwrap();
        assert_eq!(answers.len(), 1);
        server.shutdown();
    }

    #[test]
    fn an_expired_wire_deadline_returns_the_typed_retryable_error() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
        // max_retries 0: surface the first typed error instead of
        // burning retries on a deadline that can never be met.
        let mut client = Client::connect_with(
            server.local_addr(),
            ClientConfig {
                retry: RetryPolicy {
                    max_retries: 0,
                    ..RetryPolicy::default()
                },
                ..ClientConfig::default()
            },
        )
        .unwrap();
        // A 1 µs budget is spent before the broker even sees the batch.
        let err = client
            .query_batch_within(&[query(1, 20.0)], Some(Duration::from_micros(1)))
            .unwrap_err();
        let typed = ServeError::from_io(&err).expect("typed error over the wire");
        assert_eq!(typed.code, ErrorCode::DeadlineExceeded);
        assert!(typed.retryable);
        assert!(broker.stats().resilience.deadline_rejects >= 1);
        server.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            seed: 7,
        };
        for attempt in 0..8 {
            let cap = Duration::from_millis(10)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(80));
            let d = policy.backoff(attempt, attempt as u64);
            assert!(d > Duration::ZERO && d <= cap, "attempt {attempt}: {d:?}");
            // Same (seed, stream index) → same delay.
            assert_eq!(d, policy.backoff(attempt, attempt as u64));
        }
        // Distinct stream indices decorrelate the jitter.
        let a: Vec<_> = (0..16).map(|n| policy.backoff(3, n)).collect();
        assert!(a.windows(2).any(|w| w[0] != w[1]), "jitter varies: {a:?}");
    }

    #[test]
    fn transient_classification_separates_retryable_from_fatal() {
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert!(transient(&io::Error::new(kind, "x")), "{kind:?}");
        }
        assert!(!transient(&io::Error::new(io::ErrorKind::InvalidData, "x")));
        assert!(
            transient(&io::Error::new(
                io::ErrorKind::InvalidData,
                wire::CorruptFrame
            )),
            "CRC damage is transport, not protocol"
        );
    }
}
