//! TCP transport: [`Server`] binds a listener and serves the broker
//! over the [`crate::wire`] framing; [`Client`] is the matching caller.
//!
//! Threading model: the acceptor runs on one thread; each accepted
//! connection gets its own handler thread (requests on one connection
//! are processed in order — pipelining is the client's choice); the
//! *solves* all funnel through the broker's shared worker pool and
//! cache, so a hundred connections still coalesce onto one solve per
//! `(setup, Q, p_max)` key. Handler threads end when their peer
//! disconnects; [`Server::shutdown`] stops accepting and joins the
//! acceptor (draining connections keep serving until their clients
//! hang up — a restart-friendly, never-drop-a-request default).

use crate::broker::{Broker, BrokerStats, GuaranteeAnswer, GuaranteeQuery};
use crate::wire;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP front-end over a shared [`Broker`].
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `broker`.
    pub fn start(addr: impl ToSocketAddrs, broker: Arc<Broker>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + short sleep lets shutdown() stop the
        // acceptor without a self-connect trick.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let acceptor = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let broker = broker.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, &broker);
                        });
                    }
                    // accept() can fail transiently under load
                    // (ECONNABORTED on a reset handshake, EMFILE on fd
                    // exhaustion). Dropping the listener over one of
                    // those would silently refuse every future
                    // connection, so *no* error kills the acceptor —
                    // only shutdown() does. Backing off briefly lets
                    // fd-exhaustion cases drain.
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        });
        Ok(Server {
            local_addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting new connections and joins the acceptor thread.
    /// Connections already established keep serving until their clients
    /// disconnect.
    pub fn shutdown(mut self) {
        self.stop_acceptor();
    }

    fn stop_acceptor(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_acceptor();
    }
}

/// One connection's request loop: frame in, dispatch, frame out, until
/// the peer hangs up. A malformed request answers an error frame and
/// keeps the connection (the framing itself is still intact); a framing
/// error tears the connection down.
fn serve_connection(stream: TcpStream, broker: &Broker) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = wire::read_frame(&mut reader)? {
        let response = handle_request(&payload, broker);
        wire::write_frame(&mut writer, &response)?;
    }
    writer.flush()
}

fn handle_request(payload: &[u8], broker: &Broker) -> Vec<u8> {
    match payload.split_first() {
        Some((&wire::OP_QUERY_BATCH, body)) => match wire::decode_query_batch(&mut { body }) {
            Ok(queries) => match broker.query_batch_at("tcp", &queries) {
                Ok(answers) => wire::encode_answers(&answers),
                Err(e) => wire::encode_error(&e.to_string()),
            },
            Err(e) => wire::encode_error(&format!("malformed query batch: {e}")),
        },
        Some((&wire::OP_STATS, [])) => wire::encode_stats(&broker.stats()),
        Some((&wire::OP_STATS, _)) => wire::encode_error("stats request carries no body"),
        Some((op, _)) => wire::encode_error(&format!("unknown opcode {op}")),
        None => wire::encode_error("empty request"),
    }
}

/// A blocking client for the [`Server`]'s wire protocol. One request at
/// a time per client; open several clients (they're cheap) for
/// concurrent load.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn round_trip(&mut self, request: &[u8]) -> io::Result<Vec<u8>> {
        wire::write_frame(&mut self.writer, request)?;
        wire::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    }

    /// Sends one batch of queries and returns the answers in input
    /// order. Values cross the wire as IEEE bit patterns, so what the
    /// broker computed is exactly what this returns.
    pub fn query_batch(&mut self, queries: &[GuaranteeQuery]) -> io::Result<Vec<GuaranteeAnswer>> {
        let response = self.round_trip(&wire::encode_query_batch(queries))?;
        let answers = wire::decode_answers(&response)?;
        if answers.len() != queries.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "answer count does not match query count",
            ));
        }
        Ok(answers)
    }

    /// Fetches the broker's per-endpoint and cache stats.
    pub fn stats(&mut self) -> io::Result<BrokerStats> {
        let response = self.round_trip(&[wire::OP_STATS])?;
        wire::decode_stats(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use cyclesteal_core::time::secs;

    fn query(p: u32, lifespan: f64) -> GuaranteeQuery {
        GuaranteeQuery {
            setup: secs(1.0),
            ticks_per_setup: 8,
            interrupts: p,
            lifespan: secs(lifespan),
        }
    }

    #[test]
    fn tcp_round_trip_matches_in_process_broker() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let queries: Vec<GuaranteeQuery> = (1..=3).map(|p| query(p, 40.0 * p as f64)).collect();
        let over_wire = client.query_batch(&queries).unwrap();
        let direct = broker.query_batch(&queries).unwrap();
        for (a, b) in over_wire.iter().zip(&direct) {
            assert_eq!(a.value.get().to_bits(), b.value.get().to_bits());
            assert_eq!(a.value_ticks, b.value_ticks);
        }

        let stats = client.stats().unwrap();
        assert!(stats.endpoints.iter().any(|e| e.endpoint == "tcp"));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_error_without_killing_the_connection() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let server = Server::start("127.0.0.1:0", broker).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // Unknown opcode → error frame, connection stays up.
        wire::write_frame(&mut writer, &[99u8]).unwrap();
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(resp[0], wire::STATUS_ERR);

        // An invalid query (negative setup) → error frame too.
        let bad = wire::encode_query_batch(&[GuaranteeQuery {
            setup: secs(-1.0),
            ticks_per_setup: 8,
            interrupts: 1,
            lifespan: secs(10.0),
        }]);
        wire::write_frame(&mut writer, &bad).unwrap();
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(resp[0], wire::STATUS_ERR);

        // And the connection still answers a good batch afterwards.
        wire::write_frame(&mut writer, &wire::encode_query_batch(&[query(1, 20.0)])).unwrap();
        let resp = wire::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(resp[0], wire::STATUS_OK);
        server.shutdown();
    }
}
