//! Typed serving errors — the failure half of the wire contract.
//!
//! Every way a query can fail is one [`ServeError`]: a stable
//! [`ErrorCode`], a **retryable** flag (the client's retry loop keys off
//! it — see [`crate::RetryPolicy`]), and a human-readable message. The
//! code and flag travel the wire in the typed error frame (see
//! [`crate::wire`]), so a remote caller can distinguish "back off and
//! retry" (overload, deadline, a contained solve panic) from "fix your
//! request" (malformed frame, invalid query) without parsing prose.

use std::io;

/// Stable error taxonomy shared by the broker, the wire protocol and
/// the client. The `u8` values are the on-wire encoding and must never
/// be reused for a different meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was structurally valid but a query in it violates
    /// the broker's preconditions or caps. Not retryable: the same
    /// query will always be rejected.
    InvalidQuery = 1,
    /// The request bytes could not be decoded. Not retryable as-is.
    Malformed = 2,
    /// The broker's in-flight request budget is exhausted — the request
    /// was shed *before* queueing. Retryable after backoff.
    Overloaded = 3,
    /// The request's deadline expired (or would certainly expire)
    /// before an answer could be produced. Retryable: a later attempt
    /// may find the table cached.
    DeadlineExceeded = 4,
    /// The broker contained an internal failure (e.g. a panicking
    /// solve). Retryable: flights are re-led and caches re-solved.
    Internal = 5,
}

impl ErrorCode {
    /// The on-wire byte for this code.
    pub fn wire(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte; unknown codes (a newer peer) map to `None`
    /// and the caller should fall back to [`ErrorCode::Internal`] while
    /// trusting the frame's own retryable flag.
    pub fn from_wire(byte: u8) -> Option<ErrorCode> {
        match byte {
            1 => Some(ErrorCode::InvalidQuery),
            2 => Some(ErrorCode::Malformed),
            3 => Some(ErrorCode::Overloaded),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// A typed serving failure: what went wrong, whether retrying can help,
/// and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// The stable failure category.
    pub code: ErrorCode,
    /// Whether a backoff-and-retry can succeed. Carried explicitly
    /// (not derived from `code`) so the flag survives unknown codes
    /// from a newer peer.
    pub retryable: bool,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// A new error with the given code's conventional retryability.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServeError {
        let retryable = matches!(
            code,
            ErrorCode::Overloaded | ErrorCode::DeadlineExceeded | ErrorCode::Internal
        );
        ServeError {
            code,
            retryable,
            message: message.into(),
        }
    }

    /// An invalid-query rejection naming the offending batch index.
    pub fn invalid_query(index: usize, reason: impl std::fmt::Display) -> ServeError {
        ServeError::new(
            ErrorCode::InvalidQuery,
            format!("query {index} rejected: {reason}"),
        )
    }

    /// A request that could not be decoded.
    pub fn malformed(reason: impl std::fmt::Display) -> ServeError {
        ServeError::new(ErrorCode::Malformed, reason.to_string())
    }

    /// A request shed by the in-flight budget.
    pub fn overloaded(inflight: usize, budget: usize) -> ServeError {
        ServeError::new(
            ErrorCode::Overloaded,
            format!("broker overloaded: {inflight} requests in flight (budget {budget})"),
        )
    }

    /// A request whose deadline expired.
    pub fn deadline_exceeded(context: impl std::fmt::Display) -> ServeError {
        ServeError::new(
            ErrorCode::DeadlineExceeded,
            format!("deadline exceeded: {context}"),
        )
    }

    /// A contained internal failure.
    pub fn internal(context: impl std::fmt::Display) -> ServeError {
        ServeError::new(ErrorCode::Internal, context.to_string())
    }

    /// Extracts the [`ServeError`] carried inside an [`io::Error`], if
    /// any — the inverse of the `From<ServeError> for io::Error`
    /// conversion the client's decode path uses.
    pub fn from_io(err: &io::Error) -> Option<&ServeError> {
        err.get_ref().and_then(|inner| {
            (inner as &(dyn std::error::Error + 'static)).downcast_ref::<ServeError>()
        })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} ({}): {}",
            self.code,
            if self.retryable {
                "retryable"
            } else {
                "permanent"
            },
            self.message
        )
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for io::Error {
    fn from(e: ServeError) -> io::Error {
        io::Error::other(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_the_wire_byte() {
        for code in [
            ErrorCode::InvalidQuery,
            ErrorCode::Malformed,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_wire(code.wire()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire(0), None);
        assert_eq!(ErrorCode::from_wire(200), None);
    }

    #[test]
    fn conventional_retryability() {
        assert!(!ServeError::invalid_query(0, "bad").retryable);
        assert!(!ServeError::malformed("bytes").retryable);
        assert!(ServeError::overloaded(9, 8).retryable);
        assert!(ServeError::deadline_exceeded("cold solve").retryable);
        assert!(ServeError::internal("solve panicked").retryable);
    }

    #[test]
    fn io_round_trip_preserves_the_typed_error() {
        let e = ServeError::overloaded(10, 4);
        let io_err: io::Error = e.clone().into();
        let back = ServeError::from_io(&io_err).expect("typed error recoverable");
        assert_eq!(*back, e);
        // A plain io error carries no ServeError.
        assert!(ServeError::from_io(&io::Error::other("x")).is_none());
    }
}
