//! Seeded, deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a compact description of *how hostile the world
//! is*: per-injection-point per-mille probabilities for dropping a
//! connection mid-exchange, delaying reads, corrupting wire bytes,
//! panicking a solve, and failing snapshot writes. Installing a plan
//! ([`FaultPlan::install`]) arms test-only injection points threaded
//! through [`crate::server`], [`crate::broker`] and
//! `cyclesteal_store::save`; dropping the returned guard disarms them.
//!
//! **Determinism.** Every decision is a pure function of
//! `(seed, point, n)` where `n` is that point's own trigger counter —
//! `splitmix64(seed ^ point_salt ^ n)` against the plan's threshold. A
//! given seed therefore produces the same fault *schedule per point*
//! regardless of thread interleaving, which is what lets the
//! `serve_chaos` suite sweep seeds reproducibly.
//!
//! **Cost when disarmed.** Injection points check one relaxed atomic
//! and branch away — the production hot path pays a load, nothing more.
//!
//! This is a test harness, not an operational feature: plans are
//! process-global (one active plan at a time) and the API is intended
//! for the chaos suite and local experiments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The injection points a [`FaultPlan`] can arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Server drops the TCP connection instead of writing a response.
    DropConnection,
    /// Server stalls before reading the next request frame.
    DelayRead,
    /// Server flips one byte of the encoded response frame (the frame
    /// CRC turns this into a detectable transport error, never a wrong
    /// value).
    CorruptFrame,
    /// The broker's solve panics (contained by the flight machinery).
    PanicSolve,
    /// A `cyclesteal_store` snapshot write fails with an injected I/O
    /// error.
    FailStoreWrite,
}

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::DropConnection => 0,
            FaultPoint::DelayRead => 1,
            FaultPoint::CorruptFrame => 2,
            FaultPoint::PanicSolve => 3,
            FaultPoint::FailStoreWrite => 4,
        }
    }

    /// Distinct salt per point so the per-point schedules are
    /// independent streams of the same seed.
    fn salt(self) -> u64 {
        [
            0x9e37_79b9_7f4a_7c15,
            0xbf58_476d_1ce4_e5b9,
            0x94d0_49bb_1331_11eb,
            0xd6e8_feb8_6659_fd93,
            0xa076_1d64_78bd_642f,
        ][self.index()]
    }
}

const POINTS: usize = 5;

/// SplitMix64 — the one mixing primitive the whole harness (and the
/// client's retry jitter) uses. Public within the crate so there is
/// exactly one deterministic stream definition.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded description of which faults fire how often. Probabilities
/// are per-mille (`0..=1000`); `1000` fires on every consultation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every per-point decision stream.
    pub seed: u64,
    /// ‰ chance the server drops the connection instead of responding.
    pub drop_connection_pm: u16,
    /// ‰ chance the server stalls [`FaultPlan::read_delay`] before
    /// reading the next frame.
    pub delay_read_pm: u16,
    /// How long a triggered read delay stalls.
    pub read_delay: Duration,
    /// ‰ chance one byte of a response frame is flipped.
    pub corrupt_frame_pm: u16,
    /// ‰ chance a solve panics.
    pub panic_solve_pm: u16,
    /// ‰ chance a snapshot write fails.
    pub fail_store_write_pm: u16,
}

impl FaultPlan {
    /// A plan with every fault disarmed (probability zero).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_connection_pm: 0,
            delay_read_pm: 0,
            read_delay: Duration::from_millis(0),
            corrupt_frame_pm: 0,
            panic_solve_pm: 0,
            fail_store_write_pm: 0,
        }
    }

    /// Derives a moderately hostile plan from a seed: each point's
    /// probability is sampled in `0..=250‰` (with occasional zero, so
    /// sampled plans also cover "this fault never fires"), read delays
    /// in `1..=8` ms. The same seed always derives the same plan.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let pm = |salt: u64| -> u16 {
            let r = splitmix64(seed ^ salt);
            // One seed in four disarms the point entirely.
            if r % 4 == 0 {
                0
            } else {
                ((r >> 8) % 251) as u16
            }
        };
        FaultPlan {
            seed,
            drop_connection_pm: pm(0x01),
            delay_read_pm: pm(0x02),
            read_delay: Duration::from_millis(1 + splitmix64(seed ^ 0x03) % 8),
            corrupt_frame_pm: pm(0x04),
            panic_solve_pm: pm(0x05),
            fail_store_write_pm: pm(0x06),
        }
    }

    fn threshold(self, point: FaultPoint) -> u16 {
        match point {
            FaultPoint::DropConnection => self.drop_connection_pm,
            FaultPoint::DelayRead => self.delay_read_pm,
            FaultPoint::CorruptFrame => self.corrupt_frame_pm,
            FaultPoint::PanicSolve => self.panic_solve_pm,
            FaultPoint::FailStoreWrite => self.fail_store_write_pm,
        }
    }

    /// Arms the plan process-wide; the returned guard disarms it (and
    /// unhooks the store's save fault) when dropped. Installing a new
    /// plan replaces any active one.
    pub fn install(self) -> FaultsGuard {
        let active = Arc::new(ActivePlan::new(self));
        *registry().lock().unwrap_or_else(|e| e.into_inner()) = Some(active);
        ARMED.store(true, Ordering::Release);
        // Store-layer hook: consult this module on every save attempt.
        cyclesteal_store::set_save_fault(Some(Box::new(|_path| {
            should(FaultPoint::FailStoreWrite)
        })));
        FaultsGuard { _priv: () }
    }
}

/// Disarms the active [`FaultPlan`] on drop.
pub struct FaultsGuard {
    _priv: (),
}

impl Drop for FaultsGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *registry().lock().unwrap_or_else(|e| e.into_inner()) = None;
        cyclesteal_store::set_save_fault(None);
    }
}

struct ActivePlan {
    plan: FaultPlan,
    /// One trigger counter per point: the `n` of the decision stream.
    counters: [AtomicU64; POINTS],
}

impl ActivePlan {
    fn new(plan: FaultPlan) -> ActivePlan {
        ActivePlan {
            plan,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// One decision: deterministic in `(seed, point, trigger index)`.
    fn decide(&self, point: FaultPoint) -> bool {
        let threshold = self.plan.threshold(point);
        if threshold == 0 {
            return false;
        }
        let n = self.counters[point.index()].fetch_add(1, Ordering::Relaxed);
        let roll = splitmix64(self.plan.seed ^ point.salt() ^ n) % 1000;
        roll < threshold as u64
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Arc<ActivePlan>>> {
    static REGISTRY: OnceLock<Mutex<Option<Arc<ActivePlan>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

fn active() -> Option<Arc<ActivePlan>> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    registry().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Consults the active plan at `point`: deterministic in
/// `(seed, point, trigger index)`. Always `false` with no plan armed.
pub(crate) fn should(point: FaultPoint) -> bool {
    match active() {
        Some(active) => active.decide(point),
        None => false,
    }
}

/// The read-delay injection: `Some(delay)` when the point fires.
pub(crate) fn read_delay() -> Option<Duration> {
    let delay = active()?.plan.read_delay;
    should(FaultPoint::DelayRead).then_some(delay)
}

/// The solve-panic injection, consulted by the broker's flight leader
/// right before a solve. The panic is contained by the flight
/// machinery — it must never escape [`crate::Broker::query_batch`].
pub(crate) fn maybe_panic_solve() {
    if should(FaultPoint::PanicSolve) {
        // lint:allow(panic-macro): this panic IS the injected fault — the
        // chaos suite proves the flight machinery contains it
        panic!("injected solve panic (fault plan)");
    }
}

/// Picks which byte of an encoded frame to flip when
/// [`FaultPoint::CorruptFrame`] fires; seeded off the frame length so
/// repeated corruptions of identical frames still vary position.
pub(crate) fn corrupt_position(frame_len: usize) -> usize {
    let seed = active().map(|a| a.plan.seed).unwrap_or(0);
    (splitmix64(seed ^ frame_len as u64) % frame_len.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_derive_deterministically_from_seeds() {
        for seed in 0..32 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        // Different seeds disagree somewhere across a small sweep.
        assert!((0..32).any(|s| FaultPlan::from_seed(s) != FaultPlan::from_seed(s + 1)));
    }

    #[test]
    fn armed_points_fire_at_roughly_the_planned_rate_and_deterministically() {
        // Exercised on a local ActivePlan (not the process-global
        // registry) so this cannot inject faults into the crate's other
        // unit tests running concurrently.
        let plan = FaultPlan {
            drop_connection_pm: 500,
            ..FaultPlan::quiet(42)
        };
        let run = || {
            let active = ActivePlan::new(plan);
            (0..1000)
                .map(|_| active.decide(FaultPoint::DropConnection))
                .collect::<Vec<_>>()
        };
        let first = run();
        let hits = first.iter().filter(|&&b| b).count();
        assert!(
            (350..650).contains(&hits),
            "≈50% of 1000 consultations, got {hits}"
        );
        // Replaying the same plan replays the same schedule.
        assert_eq!(first, run());
    }

    #[test]
    fn zero_thresholds_and_disarmed_plans_never_fire() {
        let active = ActivePlan::new(FaultPlan::quiet(7));
        for point in [
            FaultPoint::DropConnection,
            FaultPoint::DelayRead,
            FaultPoint::CorruptFrame,
            FaultPoint::PanicSolve,
            FaultPoint::FailStoreWrite,
        ] {
            for _ in 0..50 {
                assert!(!active.decide(point));
            }
        }
    }

    #[test]
    fn point_streams_are_independent() {
        let plan = FaultPlan {
            drop_connection_pm: 500,
            panic_solve_pm: 500,
            ..FaultPlan::quiet(9)
        };
        let a = ActivePlan::new(plan);
        let drops: Vec<bool> = (0..200)
            .map(|_| a.decide(FaultPoint::DropConnection))
            .collect();
        let panics: Vec<bool> = (0..200).map(|_| a.decide(FaultPoint::PanicSolve)).collect();
        assert_ne!(drops, panics, "distinct salts → distinct schedules");
    }
}
