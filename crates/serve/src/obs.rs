//! Serving-side observability: the production [`Clock`], the shared
//! metrics/trace hub every pipeline stage records into, and the
//! server-assigned trace-id generator.
//!
//! The `cyclesteal-obs` crate itself is deterministic (it sits inside
//! the determinism lint fence and never reads wall time); the serving
//! layer is where real time is allowed, so the production
//! [`WallClock`] lives here and is *injected* into the broker, the
//! cache profiler and the span journal. Tests inject
//! [`cyclesteal_obs::LogicalClock`] instead and get byte-stable
//! timings.

use cyclesteal_obs::{Clock, Registry, SpanJournal};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Span-journal capacity of a [`ObsHub::new`] hub: enough to hold the
/// full pipeline fan-out (7 stages) of ~500 recent traced requests
/// without growing past a few hundred KiB.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Monotonic wall clock: nanoseconds since the clock was built, read
/// from [`Instant`]. This is the production [`Clock`] the serving layer
/// injects; it never goes backwards and never panics.
pub struct WallClock {
    base: Instant,
}

impl WallClock {
    /// A clock anchored at "now"; all readings are relative to it.
    pub fn new() -> WallClock {
        WallClock {
            base: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // Saturate instead of wrapping: an Instant delta outruns u64
        // nanoseconds only after ~584 years of uptime.
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// The shared observability hub: one metrics [`Registry`], one
/// [`SpanJournal`], one injected [`Clock`], and the server-side
/// trace-id source. Cheap to clone (all `Arc`s inside); the broker,
/// the TCP server and the cache profiling sink all hold clones of one
/// hub, so an op-4 pull sees every stage's data in one snapshot.
#[derive(Clone)]
pub struct ObsHub {
    registry: Arc<Registry>,
    journal: Arc<SpanJournal>,
    clock: Arc<dyn Clock>,
    next_trace: Arc<AtomicU64>,
}

impl ObsHub {
    /// A production hub: [`WallClock`] time, default journal capacity.
    pub fn new() -> ObsHub {
        ObsHub::with_clock(Arc::new(WallClock::new()))
    }

    /// A hub over an explicit clock — how tests inject
    /// [`cyclesteal_obs::LogicalClock`] for byte-stable span timings.
    pub fn with_clock(clock: Arc<dyn Clock>) -> ObsHub {
        ObsHub {
            registry: Arc::new(Registry::new()),
            journal: Arc::new(SpanJournal::new(DEFAULT_JOURNAL_CAPACITY)),
            clock,
            next_trace: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The hub's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The hub's span journal.
    pub fn journal(&self) -> &Arc<SpanJournal> {
        &self.journal
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current clock reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The span-start stamp for a request: the clock reading when
    /// traced, 0 when `trace_id` is 0 — so untraced traffic never pays
    /// a clock read.
    pub fn start_ns(&self, trace_id: u64) -> u64 {
        if trace_id == 0 {
            0
        } else {
            self.clock.now_ns()
        }
    }

    /// Records a `[start_ns, now]` span for `trace_id` under `stage`.
    /// A zero trace id is the untraced sentinel: nothing is recorded,
    /// making this free on the untraced hot path.
    pub fn span(&self, trace_id: u64, stage: &str, start_ns: u64) {
        if trace_id != 0 {
            self.journal
                .record_span(trace_id, stage, start_ns, self.clock.now_ns());
        }
    }

    /// A fresh server-assigned trace id — nonzero, well-mixed
    /// (splitmix64 over a monotone counter), for requests that arrived
    /// untraced but should still be followable through the pipeline.
    pub fn assign_trace_id(&self) -> u64 {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        crate::faults::splitmix64(n).max(1)
    }
}

impl Default for ObsHub {
    fn default() -> ObsHub {
        ObsHub::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_obs::LogicalClock;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn zero_trace_ids_record_nothing() {
        let hub = ObsHub::with_clock(Arc::new(LogicalClock::with_step(10)));
        assert_eq!(hub.start_ns(0), 0, "untraced start pays no clock read");
        hub.span(0, "broker.batch", 0);
        assert!(hub.journal().is_empty());
        let start = hub.start_ns(7);
        hub.span(7, "broker.batch", start);
        let spans = hub.journal().snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            (spans[0].trace_id, spans[0].stage.as_str()),
            (7, "broker.batch")
        );
        assert!(spans[0].end_ns > spans[0].start_ns);
    }

    #[test]
    fn assigned_trace_ids_are_nonzero_and_distinct() {
        let hub = ObsHub::new();
        let ids: Vec<u64> = (0..64).map(|_| hub.assign_trace_id()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "no collisions in 64 draws");
    }
}
