//! # cyclesteal-serve
//!
//! The serving layer over the exact solver stack: a thread-pool request
//! **broker** that answers batched guarantee queries
//! `(setup, Q, p, L)` from shared [`cyclesteal_dp::TableCache`] solves,
//! plus a small TCP **server/client** pair speaking a checksummed,
//! length-prefixed binary framing — no async runtime, no serialization
//! crates (this is a registry-less environment), just `std::net` and
//! plain threads.
//!
//! ## Why a broker
//!
//! One solved `(setup, Q, p_max)` table answers *every* query at
//! smaller `p` and `L` exactly, so under multi-user traffic the right
//! unit of work is the **table**, not the query. [`Broker`] exploits
//! that three ways:
//!
//! * **batching** — a request carries many queries; the broker groups
//!   them per grid and resolves each grid once, then answers every
//!   query by lookup;
//! * **coalescing** — concurrent requests needing the same
//!   `(setup, Q, p_max)` solve join a single in-flight solve
//!   (single-flight) instead of duplicating it, on top of the
//!   `TableCache`'s own key dedup;
//! * **warm starts** — with a snapshot directory configured, the broker
//!   loads previously solved tables at startup
//!   ([`cyclesteal_store::CacheSnapshotExt::warm_from_dir`]) and
//!   snapshots tables the memory budget evicts
//!   ([`cyclesteal_store::evict_hook_to_dir`]), so a restart skips the
//!   solves entirely.
//!
//! Answers are **bit-identical** to direct `TableCache` queries — the
//! broker serves the same `CompressedTable` values every other path in
//! the repository serves (the equivalence suite pins compressed ==
//! dense), and `tests/serve_props.rs` pins broker == direct under
//! concurrent multi-client load.
//!
//! ## Failure semantics
//!
//! The paper's premise is guaranteed output from an unreliable
//! resource; the serving layer holds itself to the same standard. The
//! contract — enforced across ≥ 64 seeded fault plans by the
//! `serve_chaos` suite — is:
//!
//! > Under connection drops, read delays, corrupted wire bytes,
//! > panicking solves and failing snapshot writes, every query returns
//! > either the **bit-identical answer** or a **typed retryable
//! > error** ([`ServeError`]) — never a hang, never an escaped panic,
//! > never a wrong value.
//!
//! The pieces: per-connection read/write **timeouts**
//! ([`ServerConfig`]/[`ClientConfig`]); per-batch **deadlines** carried
//! on the wire and enforced inside the broker
//! ([`Broker::query_batch_within`]); **typed error frames**
//! ([`ErrorCode`] + retryable flag + message) instead of silent
//! connection drops; client **retry** with capped exponential backoff
//! and seeded jitter ([`RetryPolicy`]); **load shedding** past a
//! bounded in-flight budget ([`BrokerConfig::max_inflight`]); contained
//! solve panics with single **flight re-lead**; store-level snapshot
//! **quarantine** and save retry; and the seeded, deterministic
//! [`FaultPlan`] harness ([`faults`]) that injects all of the above.
//! Every resilience event is counted in
//! [`BrokerStats::resilience`](broker::ResilienceStats).
//!
//! ## In-process use
//!
//! ```
//! use cyclesteal_core::time::secs;
//! use cyclesteal_serve::{Broker, BrokerConfig, GuaranteeQuery};
//!
//! let broker = Broker::new(BrokerConfig::default()).unwrap();
//! let answers = broker
//!     .query_batch(&[GuaranteeQuery {
//!         setup: secs(1.0),
//!         ticks_per_setup: 8,
//!         interrupts: 2,
//!         lifespan: secs(100.0),
//!     }])
//!     .unwrap();
//! assert!(answers[0].value.get() > 0.0);
//! ```
//!
//! ## Multi-tenant fairness
//!
//! Cold solves are the expensive unit, so admission control is
//! per-tenant grid: each `(setup, Q)` tenant holds at most
//! [`BrokerConfig::tenant_quota`] cold solves in flight (excess sheds
//! with a typed `Overloaded`), and the solve **lanes**
//! ([`BrokerConfig::solve_lanes`]) are granted round-robin across
//! waiting tenants — one tenant's `10⁹`-tick cold solve cannot starve
//! another tenant's warm point queries, which bypass the lane machinery
//! entirely on a cache hit. Pinned by `tests/serve_fairness.rs`.
//!
//! ## Over TCP
//!
//! [`Server::start`] binds a listener driven by a **readiness loop**:
//! one event-loop thread polls every nonblocking connection, and
//! complete frames are handled by a small pool of handler threads
//! (solves still share the broker's worker pool), so idle connections
//! cost buffers rather than threads. [`Client`] frames batches to it
//! and transparently retries transient failures. Sweep-shaped reads use
//! the op-3 **streaming wire mode** ([`Broker::query_sweep`] /
//! [`Client::query_sweep`]): a consecutive tick window travels back as
//! arithmetic-run descriptors ([`cyclesteal_dp::ValueRun`]) and is
//! expanded client-side, bit-identically to per-tick op-1 answers. See
//! [`wire`] for the exact byte protocol.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod broker;
pub mod errors;
pub mod faults;
pub mod obs;
pub mod server;
pub mod wire;

pub use broker::{
    Broker, BrokerConfig, BrokerStats, EndpointStats, GuaranteeAnswer, GuaranteeQuery,
    ResilienceStats, SweepQuery,
};
pub use errors::{ErrorCode, ServeError};
pub use faults::{FaultPlan, FaultPoint, FaultsGuard};
pub use obs::{ObsHub, WallClock};
pub use server::{Client, ClientConfig, RetryPolicy, Server, ServerConfig};
