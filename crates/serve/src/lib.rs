//! # cyclesteal-serve
//!
//! The serving layer over the exact solver stack: a thread-pool request
//! **broker** that answers batched guarantee queries
//! `(setup, Q, p, L)` from shared [`cyclesteal_dp::TableCache`] solves,
//! plus a small TCP **server/client** pair speaking a length-prefixed
//! binary framing — no async runtime, no serialization crates (this is
//! a registry-less environment), just `std::net` and plain threads.
//!
//! ## Why a broker
//!
//! One solved `(setup, Q, p_max)` table answers *every* query at
//! smaller `p` and `L` exactly, so under multi-user traffic the right
//! unit of work is the **table**, not the query. [`Broker`] exploits
//! that three ways:
//!
//! * **batching** — a request carries many queries; the broker groups
//!   them per grid and resolves each grid once, then answers every
//!   query by lookup;
//! * **coalescing** — concurrent requests needing the same
//!   `(setup, Q, p_max)` solve join a single in-flight solve
//!   (single-flight) instead of duplicating it, on top of the
//!   `TableCache`'s own key dedup;
//! * **warm starts** — with a snapshot directory configured, the broker
//!   loads previously solved tables at startup
//!   ([`cyclesteal_store::CacheSnapshotExt::warm_from_dir`]) and
//!   snapshots tables the memory budget evicts
//!   ([`cyclesteal_store::evict_hook_to_dir`]), so a restart skips the
//!   solves entirely.
//!
//! Answers are **bit-identical** to direct `TableCache` queries — the
//! broker serves the same `CompressedTable` values every other path in
//! the repository serves (the equivalence suite pins compressed ==
//! dense), and `tests/serve_props.rs` pins broker == direct under
//! concurrent multi-client load.
//!
//! ## In-process use
//!
//! ```
//! use cyclesteal_core::time::secs;
//! use cyclesteal_serve::{Broker, BrokerConfig, GuaranteeQuery};
//!
//! let broker = Broker::new(BrokerConfig::default()).unwrap();
//! let answers = broker
//!     .query_batch(&[GuaranteeQuery {
//!         setup: secs(1.0),
//!         ticks_per_setup: 8,
//!         interrupts: 2,
//!         lifespan: secs(100.0),
//!     }])
//!     .unwrap();
//! assert!(answers[0].value.get() > 0.0);
//! ```
//!
//! ## Over TCP
//!
//! [`Server::start`] binds a listener and serves each connection on its
//! own thread (solves still share the broker's worker pool);
//! [`Client`] frames batches to it. See [`wire`] for the exact byte
//! protocol.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod broker;
pub mod server;
pub mod wire;

pub use broker::{
    Broker, BrokerConfig, BrokerStats, EndpointStats, GuaranteeAnswer, GuaranteeQuery, QueryError,
};
pub use server::{Client, Server};
