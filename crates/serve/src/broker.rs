//! The batched guarantee-query broker (see the crate docs for the
//! serving model). All solve work funnels through one
//! [`TableCache`] and one [`WorkerPool`]; request threads only group,
//! look up and format.
//!
//! ## Failure semantics
//!
//! Every failure a batch can hit is a typed [`ServeError`]:
//!
//! * **Admission.** At most [`BrokerConfig::max_inflight`] batches are
//!   admitted concurrently; the rest are shed immediately with
//!   [`ErrorCode::Overloaded`](crate::ErrorCode::Overloaded) — the
//!   broker never queues unboundedly.
//! * **Tenant fairness.** A tenant is a grid `(setup, ticks_per_setup)`.
//!   Warm hits are answered straight from the sharded cache — no solve
//!   lane, no quota, nothing of one tenant's cold traffic in the way.
//!   Cold solves take one of [`BrokerConfig::solve_lanes`] lanes,
//!   released **round-robin by tenant** when contended, and a tenant
//!   past its [`BrokerConfig::tenant_quota`] in-flight cold solves is
//!   shed with the retryable `Overloaded` (counted in
//!   [`ResilienceStats::tenant_sheds`]).
//! * **Deadlines.** A batch may carry a deadline
//!   ([`Broker::query_batch_within`]). It is checked on admission,
//!   before a leader starts a solve, and bounds how long a follower
//!   waits on a coalesced flight — a query that would blow its deadline
//!   joining a cold solve is rejected early with the retryable
//!   [`ErrorCode::DeadlineExceeded`](crate::ErrorCode::DeadlineExceeded)
//!   instead of blocking past it.
//! * **Panic containment.** A panicking solve is caught
//!   ([`std::panic::catch_unwind`]) — it can *never* escape
//!   [`Broker::query_batch`]. The poisoned flight is retried once by a
//!   new leader (the first follower to observe the poison); a second
//!   poison makes followers solve for themselves. The panicked
//!   request itself gets a retryable
//!   [`ErrorCode::Internal`](crate::ErrorCode::Internal) error.
//!
//! All shed/deadline/panic/retry events are counted in
//! [`ResilienceStats`], as are snapshot-on-evict write failures.

use crate::errors::ServeError;
use crate::faults;
use crate::obs::ObsHub;
use cyclesteal_core::time::{Time, Work};
use cyclesteal_dp::compressed::CompressedTable;
use cyclesteal_dp::{CacheStats, Grid, Phase, PhaseTimings, TableCache, ValueRun};
use cyclesteal_obs::{Counter, Gauge, Histogram, Registry, SpanRecord};
use cyclesteal_par::WorkerPool;
use cyclesteal_store::CacheSnapshotExt;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

/// One guarantee query: "how much work is guaranteed at
/// `(setup, Q, p, L)`?" — the unit the wire protocol and the batch API
/// share.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuaranteeQuery {
    /// The setup charge `c`.
    pub setup: Time,
    /// Grid resolution in ticks per setup charge.
    pub ticks_per_setup: u32,
    /// The adversary's interrupt budget `p`.
    pub interrupts: u32,
    /// The episode lifespan `L`.
    pub lifespan: Time,
}

/// One query's answer, in both the continuous and the exact grid view.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuaranteeAnswer {
    /// `W^(p)(L)` interpolated to the requested lifespan — bit-identical
    /// to `table.value(p, L)` on the covering cached table.
    pub value: Work,
    /// The exact integer value at the nearest grid tick.
    pub value_ticks: i64,
}

/// One streaming sweep: the exact tick staircase of one `(setup, Q, p)`
/// row over the consecutive lifespan-tick window `first_tick ..
/// first_tick + count`, answered as arithmetic-run descriptors
/// ([`ValueRun`]) — the unit of the op-3 streaming wire mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepQuery {
    /// The setup charge `c`.
    pub setup: Time,
    /// Grid resolution in ticks per setup charge.
    pub ticks_per_setup: u32,
    /// The adversary's interrupt budget `p`.
    pub interrupts: u32,
    /// First lifespan tick of the window (inclusive, `≥ 0`).
    pub first_tick: i64,
    /// Window width in ticks (`≥ 1`).
    pub count: u32,
}

/// In-flight batch budget used when [`BrokerConfig::max_inflight`] is
/// zero: far above any sane concurrency, small enough that a runaway
/// client sheds instead of exhausting memory.
pub const DEFAULT_MAX_INFLIGHT: usize = 1024;

/// Per-tenant cold-solve quota used when [`BrokerConfig::tenant_quota`]
/// is zero: how many cold solves one grid may have in flight (leading
/// or queued for a lane) before further ones shed with `Overloaded`.
pub const DEFAULT_TENANT_QUOTA: usize = 4;

/// Broker construction options.
#[derive(Clone, Debug, Default)]
pub struct BrokerConfig {
    /// Worker threads of the solve pool (`0` = machine default /
    /// `CYCLESTEAL_THREADS`).
    pub threads: usize,
    /// Resident-bytes cap for the underlying [`TableCache`]
    /// (`None` = unbounded). Evicted compressed tables are snapshotted
    /// first when `snapshot_dir` is set.
    pub memory_budget: Option<usize>,
    /// Snapshot directory: warmed from at startup, snapshotted to on
    /// eviction and on [`Broker::snapshot`].
    pub snapshot_dir: Option<PathBuf>,
    /// Most batches admitted concurrently; the rest are shed with
    /// `Overloaded` (`0` = [`DEFAULT_MAX_INFLIGHT`]).
    pub max_inflight: usize,
    /// Most cold solves one tenant grid `(setup, ticks_per_setup)` may
    /// have in flight before further ones shed with `Overloaded`
    /// (`0` = [`DEFAULT_TENANT_QUOTA`]). Warm hits never consume quota.
    pub tenant_quota: usize,
    /// Most cold solves running concurrently across all tenants — the
    /// fairness gate's lane count; queued solvers are released
    /// round-robin by tenant (`0` = one less than the pool's worker
    /// count, minimum 1, so cold solves can never occupy every worker).
    pub solve_lanes: usize,
}

/// Resilience-event counters (all monotone): how often the broker shed,
/// rejected on deadline, contained a panic, re-led a poisoned flight,
/// or failed a snapshot-on-evict write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Batches shed by the in-flight budget (`Overloaded`).
    pub shed: u64,
    /// Batches rejected because their deadline expired (on admission,
    /// before a solve, or waiting on a coalesced flight).
    pub deadline_rejects: u64,
    /// Solve panics contained by the flight machinery.
    pub solve_panics: u64,
    /// Poisoned flights re-led by a follower-turned-leader.
    pub flight_retries: u64,
    /// Snapshot-on-evict writes that failed (logged, never propagated).
    pub snapshot_failures: u64,
    /// Cold solves shed by a tenant's per-grid quota (`Overloaded`).
    /// Distinct from `shed`, which counts whole batches shed by the
    /// global in-flight budget.
    pub tenant_sheds: u64,
}

/// Live resilience counters ([`ResilienceStats`] is their snapshot).
/// `snapshot_failures` is an `Arc` because the store's counting evict
/// hook holds the other reference.
struct Resilience {
    shed: AtomicU64,
    deadline_rejects: AtomicU64,
    solve_panics: AtomicU64,
    flight_retries: AtomicU64,
    snapshot_failures: Arc<AtomicU64>,
    tenant_sheds: AtomicU64,
}

impl Resilience {
    fn new() -> Resilience {
        Resilience {
            shed: AtomicU64::new(0),
            deadline_rejects: AtomicU64::new(0),
            solve_panics: AtomicU64::new(0),
            flight_retries: AtomicU64::new(0),
            snapshot_failures: Arc::new(AtomicU64::new(0)),
            tenant_sheds: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            shed: self.shed.load(Ordering::Relaxed),
            deadline_rejects: self.deadline_rejects.load(Ordering::Relaxed),
            solve_panics: self.solve_panics.load(Ordering::Relaxed),
            flight_retries: self.flight_retries.load(Ordering::Relaxed),
            snapshot_failures: self.snapshot_failures.load(Ordering::Relaxed),
            tenant_sheds: self.tenant_sheds.load(Ordering::Relaxed),
        }
    }
}

/// Everything the in-flight solve closures share with the broker.
struct Shared {
    cache: Arc<TableCache>,
    inflight: StdMutex<HashMap<SolveKey, Arc<Flight>>>,
    res: Resilience,
    fair: FairGate,
    obs: ObsHub,
}

/// A tenant is a grid — the `(setup_bits, ticks_per_setup)` every key
/// of one user's sweep shares. Interrupt budgets deliberately do not
/// distinguish tenants: all of one grid's solves draw on one quota.
type TenantKey = (u64, u32);

/// Why the fairness gate refused a cold solve.
enum GateReject {
    /// The tenant already has `quota` cold solves in flight.
    Quota { held: usize },
    /// The caller's deadline expired while queued for a lane.
    Deadline,
}

/// One tenant's gate bookkeeping: cold solves in flight (leading or
/// queued) and the FIFO of queued ticket ids.
#[derive(Default)]
struct TenantLane {
    inflight: usize,
    waiting: VecDeque<u64>,
}

/// Admission for **cold solves only** (warm hits bypass the broker's
/// flight machinery entirely via the cache fast lane): at most `lanes`
/// solves run at once, a tenant may hold at most `per_tenant` in
/// flight, and queued solvers are released **round-robin by tenant** —
/// a tenant fanning out many cold grids takes turns with every other
/// tenant's single cold solve instead of monopolizing the lanes.
struct FairGate {
    lanes: usize,
    per_tenant: usize,
    state: StdMutex<FairGateState>,
    cv: Condvar,
    /// Registry gauge mirroring `FairGateState::running` — how many
    /// cold solves hold a lane right now.
    running_g: Gauge,
    /// Registry gauge counting solvers queued for a lane across all
    /// tenants — the cold-solve queue depth.
    waiting_g: Gauge,
}

#[derive(Default)]
struct FairGateState {
    /// Cold solves currently holding a lane.
    running: usize,
    /// Monotone ticket source ordering each tenant's queue.
    next_ticket: u64,
    tenants: HashMap<TenantKey, TenantLane>,
    /// Tenants with queued solvers, in round-robin release order.
    rotation: VecDeque<TenantKey>,
}

impl FairGate {
    /// A gate with detached (unregistered) gauges — unit-test flavor of
    /// [`FairGate::with_gauges`].
    #[cfg(test)]
    fn new(lanes: usize, per_tenant: usize) -> FairGate {
        FairGate::with_gauges(lanes, per_tenant, Gauge::new(), Gauge::new())
    }

    /// [`FairGate::new`] wired to registry gauges (lane occupancy and
    /// queue depth) — what the broker uses; bare `new` keeps detached
    /// gauges for unit tests.
    fn with_gauges(
        lanes: usize,
        per_tenant: usize,
        running_g: Gauge,
        waiting_g: Gauge,
    ) -> FairGate {
        FairGate {
            lanes: lanes.max(1),
            per_tenant: per_tenant.max(1),
            state: StdMutex::new(FairGateState::default()),
            cv: Condvar::new(),
            running_g,
            waiting_g,
        }
    }

    /// Takes a solve lane for `tenant`, queueing (round-robin, bounded
    /// by `deadline`) when all lanes are busy, shedding when the tenant
    /// quota is already spent. The returned permit releases the lane on
    /// drop — including when the solve panics.
    fn acquire(
        &self,
        tenant: TenantKey,
        deadline: Option<Instant>,
    ) -> Result<FairPermit<'_>, GateReject> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let lane = state.tenants.entry(tenant).or_default();
        if lane.inflight >= self.per_tenant {
            let held = lane.inflight;
            return Err(GateReject::Quota { held });
        }
        lane.inflight += 1;
        // Fast path only when nobody is queued: barging past a waiting
        // tenant would undo the round-robin guarantee.
        if state.running < self.lanes && state.rotation.is_empty() {
            state.running += 1;
            self.running_g.set(state.running as u64);
            return Ok(FairPermit { gate: self, tenant });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        if let Some(lane) = state.tenants.get_mut(&tenant) {
            lane.waiting.push_back(ticket);
            self.waiting_g.inc();
        }
        if !state.rotation.contains(&tenant) {
            state.rotation.push_back(tenant);
        }
        loop {
            let my_turn = state.running < self.lanes
                && state.rotation.front() == Some(&tenant)
                && state.tenants.get(&tenant).and_then(|l| l.waiting.front()) == Some(&ticket);
            if my_turn {
                state.rotation.pop_front();
                if let Some(lane) = state.tenants.get_mut(&tenant) {
                    lane.waiting.pop_front();
                    self.waiting_g.dec();
                    if !lane.waiting.is_empty() {
                        state.rotation.push_back(tenant);
                    }
                }
                state.running += 1;
                self.running_g.set(state.running as u64);
                // Another lane may have freed for the next tenant too.
                self.cv.notify_all();
                return Ok(FairPermit { gate: self, tenant });
            }
            match deadline {
                None => state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        Self::abandon(&mut state, tenant, ticket);
                        self.waiting_g.dec();
                        self.cv.notify_all();
                        return Err(GateReject::Deadline);
                    }
                    state = self
                        .cv
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        }
    }

    /// Removes an expired waiter's ticket and quota charge, keeping the
    /// rotation honest (a tenant with no remaining waiters leaves it).
    fn abandon(state: &mut FairGateState, tenant: TenantKey, ticket: u64) {
        if let Some(lane) = state.tenants.get_mut(&tenant) {
            lane.waiting.retain(|&t| t != ticket);
            lane.inflight = lane.inflight.saturating_sub(1);
            let empty_queue = lane.waiting.is_empty();
            let gone = empty_queue && lane.inflight == 0;
            if empty_queue {
                state.rotation.retain(|&t| t != tenant);
            }
            if gone {
                state.tenants.remove(&tenant);
            }
        }
    }

    fn release(&self, tenant: TenantKey) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.running = state.running.saturating_sub(1);
        self.running_g.set(state.running as u64);
        if let Some(lane) = state.tenants.get_mut(&tenant) {
            lane.inflight = lane.inflight.saturating_sub(1);
            if lane.inflight == 0 && lane.waiting.is_empty() {
                state.tenants.remove(&tenant);
            }
        }
        self.cv.notify_all();
    }
}

/// RAII lane holder: one granted cold solve. Releasing on drop keeps
/// the gate correct through panicking solves.
struct FairPermit<'a> {
    gate: &'a FairGate,
    tenant: TenantKey,
}

impl Drop for FairPermit<'_> {
    fn drop(&mut self) {
        self.gate.release(self.tenant);
    }
}

/// Single-flight key: one concurrent solve per `(setup, Q, p_max)` —
/// the `TableCache` key shape (lifespan rides along via headroom).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct SolveKey {
    setup_bits: u64,
    ticks_per_setup: u32,
    max_interrupts: u32,
}

/// One in-flight solve: followers park on the condvar until the leader
/// publishes. `Err(())` means the leader died without publishing
/// (poisoned flight) — followers then re-lead once, then solve for
/// themselves.
struct Flight {
    result: StdMutex<Option<Result<Arc<CompressedTable>, ()>>>,
    cv: Condvar,
}

/// Removes the flight from the in-flight map on drop and poisons it if
/// the leader never published — a panicking solve must not strand its
/// followers on the condvar forever.
struct FlightGuard<'a> {
    shared: &'a Shared,
    key: SolveKey,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        {
            let mut result = self.flight.result.lock().unwrap_or_else(|e| e.into_inner());
            if result.is_none() {
                *result = Some(Err(()));
            }
        }
        self.flight.cv.notify_all();
        if let Ok(mut map) = self.shared.inflight.lock() {
            map.remove(&self.key);
        }
    }
}

/// Bounded admission: a relaxed counter plus an RAII permit. A batch
/// past the budget is never queued — it sheds immediately, keeping the
/// broker's memory and latency bounded under overload.
struct Admission {
    inflight: AtomicUsize,
    budget: usize,
    /// Registry gauge mirroring `inflight` — the live batch depth.
    gauge: Gauge,
}

impl Admission {
    fn try_acquire(&self) -> Option<Permit<'_>> {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.budget {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            None
        } else {
            self.gauge.inc();
            Some(Permit { admission: self })
        }
    }
}

struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        self.admission.gauge.dec();
    }
}

/// Per-endpoint handles into the shared metrics registry: request and
/// query totals, solves coalesced onto another request's flight, and a
/// log₂-bucketed batch-latency histogram (microseconds) from which the
/// p50/p99 snapshots are read. These are registry series — the op-4
/// exposition and [`Broker::stats`] read the *same* atomics, so the two
/// views reconcile exactly.
struct Endpoint {
    requests: Counter,
    queries: Counter,
    coalesced: Counter,
    latency_us: Histogram,
}

impl Endpoint {
    fn new(registry: &Registry, name: &str) -> Endpoint {
        let labels = [("endpoint", name)];
        Endpoint {
            requests: registry.counter_with("cyclesteal_requests_total", &labels),
            queries: registry.counter_with("cyclesteal_queries_total", &labels),
            coalesced: registry.counter_with("cyclesteal_coalesced_total", &labels),
            latency_us: registry.histogram_with("cyclesteal_request_latency_us", &labels),
        }
    }

    fn record(&self, queries: usize, elapsed_us: u64) {
        self.requests.inc();
        self.queries.add(queries as u64);
        self.latency_us.record(elapsed_us);
    }
}

/// A point-in-time view of one endpoint's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EndpointStats {
    /// Endpoint label (`"inproc"`, `"tcp"`).
    pub endpoint: String,
    /// Batches served.
    pub requests: u64,
    /// Individual queries answered across those batches.
    pub queries: u64,
    /// Solves this endpoint's requests coalesced onto another request's
    /// in-flight solve instead of running themselves.
    pub coalesced: u64,
    /// Approximate median batch latency in microseconds (log₂ bucket
    /// upper bound).
    pub p50_us: u64,
    /// Approximate 99th-percentile batch latency in microseconds.
    pub p99_us: u64,
}

/// Broker-level observability: per-endpoint request stats, the
/// underlying cache's counters, and the resilience-event counters.
#[derive(Clone, Debug)]
pub struct BrokerStats {
    /// One entry per endpoint that served at least one request, sorted
    /// by label.
    pub endpoints: Vec<EndpointStats>,
    /// The shared [`TableCache`]'s counters (hits, misses, evictions,
    /// resident bytes, entry counts).
    pub cache: CacheStats,
    /// Shed/deadline/panic/retry/snapshot-failure counters.
    pub resilience: ResilienceStats,
}

/// The batched guarantee-query broker. Cheap to share: wrap it in an
/// [`Arc`] and hand clones to every connection/test thread.
pub struct Broker {
    shared: Arc<Shared>,
    pool: WorkerPool,
    snapshot_dir: Option<PathBuf>,
    admission: Admission,
    endpoints: parking_lot::Mutex<HashMap<&'static str, Arc<Endpoint>>>,
}

impl Broker {
    /// Builds a broker: a fresh [`TableCache`] (budgeted if configured),
    /// a worker pool, and — when a snapshot directory is configured — a
    /// warm start from it plus snapshot-on-evict wiring (whose write
    /// failures are counted, never propagated). Returns the warm-start
    /// I/O error if the directory exists but cannot be read.
    pub fn new(config: BrokerConfig) -> Result<Broker, cyclesteal_store::StoreError> {
        Broker::with_obs(config, ObsHub::new())
    }

    /// [`Broker::new`] over an explicit observability hub — how tests
    /// inject a deterministic clock, and how a server embedding several
    /// brokers could share one registry.
    pub fn with_obs(
        config: BrokerConfig,
        obs: ObsHub,
    ) -> Result<Broker, cyclesteal_store::StoreError> {
        let cache = Arc::new(TableCache::new());
        cache.set_memory_budget(config.memory_budget);
        let res = Resilience::new();
        if let Some(dir) = &config.snapshot_dir {
            cache.warm_from_dir(dir)?;
            cache.set_evict_hook(Some(cyclesteal_store::evict_hook_to_dir_counting(
                dir.clone(),
                res.snapshot_failures.clone(),
            )));
        }
        let pool = WorkerPool::new(config.threads);
        // Default lane count: one below the worker count (min 1), so
        // cold solves dispatched through the pool can never occupy
        // every worker — there is always headroom for another tenant's
        // batch to make progress.
        let lanes = if config.solve_lanes == 0 {
            pool.threads().saturating_sub(1).max(1)
        } else {
            config.solve_lanes
        };
        let quota = if config.tenant_quota == 0 {
            DEFAULT_TENANT_QUOTA
        } else {
            config.tenant_quota
        };
        let registry = obs.registry();
        let fair = FairGate::with_gauges(
            lanes,
            quota,
            registry.gauge("cyclesteal_lanes_running"),
            registry.gauge("cyclesteal_lane_waiters"),
        );
        let inflight_gauge = registry.gauge("cyclesteal_inflight_batches");
        Ok(Broker {
            shared: Arc::new(Shared {
                cache,
                inflight: StdMutex::new(HashMap::new()),
                res,
                fair,
                obs,
            }),
            pool,
            snapshot_dir: config.snapshot_dir,
            admission: Admission {
                inflight: AtomicUsize::new(0),
                budget: if config.max_inflight == 0 {
                    DEFAULT_MAX_INFLIGHT
                } else {
                    config.max_inflight
                },
                gauge: inflight_gauge,
            },
            endpoints: parking_lot::Mutex::new(HashMap::new()),
        })
    }

    /// The broker's observability hub: the metrics registry, span
    /// journal and injected clock shared by every pipeline stage.
    pub fn obs(&self) -> &ObsHub {
        &self.shared.obs
    }

    /// Wires solver **phase profiling** into the hub: every cache solve
    /// is timed against the hub's clock and its per-phase durations land
    /// in `cyclesteal_solve_phase_ns{phase=…}` histograms. Off by
    /// default — the unprofiled solve path pays zero clock reads, and
    /// solver outputs are bit-identical either way (pinned in
    /// `cyclesteal-dp`'s profiling tests).
    pub fn enable_profiling(&self) {
        let registry = self.shared.obs.registry();
        let hists: Vec<(Phase, Histogram)> = Phase::ALL
            .iter()
            .map(|&phase| {
                let h = registry
                    .histogram_with("cyclesteal_solve_phase_ns", &[("phase", phase.name())]);
                (phase, h)
            })
            .collect();
        let sink = Box::new(move |timings: &PhaseTimings| {
            for (phase, hist) in &hists {
                if timings.calls(*phase) > 0 {
                    hist.record(timings.ns(*phase));
                }
            }
        });
        self.shared
            .cache
            .set_profiling(Some(self.shared.obs.clock().clone()), Some(sink));
    }

    /// The broker's shared solve cache (for diffing broker answers
    /// against direct queries, and for operational introspection).
    pub fn cache(&self) -> &TableCache {
        &self.shared.cache
    }

    /// Answers a batch of queries, grouping them per `(setup, Q)` grid,
    /// resolving each grid's covering table once (coalescing with any
    /// concurrent request for the same solve), and answering every
    /// query by table lookup. Answers are in input order and
    /// bit-identical to querying the covering `TableCache` table
    /// directly.
    pub fn query_batch(
        &self,
        queries: &[GuaranteeQuery],
    ) -> Result<Vec<GuaranteeAnswer>, ServeError> {
        self.query_batch_within("inproc", queries, None)
    }

    /// [`Self::query_batch`] recorded under an explicit endpoint label —
    /// what the TCP server calls with `"tcp"`.
    pub fn query_batch_at(
        &self,
        endpoint: &'static str,
        queries: &[GuaranteeQuery],
    ) -> Result<Vec<GuaranteeAnswer>, ServeError> {
        self.query_batch_within(endpoint, queries, None)
    }

    /// The full batch entry point: endpoint label plus an optional
    /// deadline. The deadline is enforced on admission, before any
    /// solve starts, and while waiting on a coalesced flight — an
    /// expired deadline is the retryable `DeadlineExceeded`, never an
    /// open-ended block.
    pub fn query_batch_within(
        &self,
        endpoint: &'static str,
        queries: &[GuaranteeQuery],
        deadline: Option<Instant>,
    ) -> Result<Vec<GuaranteeAnswer>, ServeError> {
        self.query_batch_traced(endpoint, queries, deadline, 0)
    }

    /// [`Self::query_batch_within`] carrying a request **trace id**: a
    /// nonzero id makes every pipeline stage the batch crosses record a
    /// span into the hub's journal (`broker.admission`, `broker.lane`,
    /// `broker.flight`, `broker.solve`, `broker.batch`). Trace id 0 is
    /// the untraced fast path — no clock reads, no journal writes.
    pub fn query_batch_traced(
        &self,
        endpoint: &'static str,
        queries: &[GuaranteeQuery],
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<Vec<GuaranteeAnswer>, ServeError> {
        let start = Instant::now();
        let t_batch = self.shared.obs.start_ns(trace_id);
        let _permit = match self.admission.try_acquire() {
            Some(permit) => permit,
            None => {
                self.shared.res.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::overloaded(
                    self.admission.inflight.load(Ordering::Relaxed),
                    self.admission.budget,
                ));
            }
        };
        if expired(deadline) {
            self.shared
                .res
                .deadline_rejects
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded("expired on arrival"));
        }
        validate(queries)?;
        self.shared.obs.span(trace_id, "broker.admission", t_batch);
        let ep = self.endpoint(endpoint);

        // Group by grid; each group solves once at the max (p, L) asked
        // of it — a p_max solve holds every smaller budget exactly. The
        // per-group query count feeds the per-tenant traffic counters.
        let mut groups: HashMap<(u64, u32), (GuaranteeQuery, u64)> = HashMap::new();
        for q in queries {
            groups
                .entry((q.setup.get().to_bits(), q.ticks_per_setup))
                .and_modify(|(g, n)| {
                    if q.lifespan > g.lifespan {
                        g.lifespan = q.lifespan;
                    }
                    if q.interrupts > g.interrupts {
                        g.interrupts = q.interrupts;
                    }
                    *n += 1;
                })
                .or_insert((*q, 1));
        }

        let group_list: Vec<((u64, u32), GuaranteeQuery)> = groups
            .into_iter()
            .map(|(key, (g, n))| {
                record_tenant_queries(self.shared.obs.registry(), &g, n);
                (key, g)
            })
            .collect();
        let tables: Vec<Result<Arc<CompressedTable>, ServeError>> = if group_list.len() <= 1 {
            // The common case (one grid per batch) resolves inline —
            // no pool hand-off latency.
            group_list
                .iter()
                .map(|(_, g)| resolve(&self.shared, &ep, g, deadline, 0, trace_id))
                .collect()
        } else {
            // Jobs return Results and contain their own panics, so no
            // panic can cross the pool boundary and abort the scatter.
            let jobs: Vec<_> = group_list
                .iter()
                .map(|(_, g)| {
                    let shared = self.shared.clone();
                    let ep = ep.clone();
                    let g = *g;
                    move || resolve(&shared, &ep, &g, deadline, 0, trace_id)
                })
                .collect();
            self.pool.scatter(jobs)
        };
        let tables: Vec<Arc<CompressedTable>> =
            tables.into_iter().collect::<Result<Vec<_>, _>>()?;
        // The answer contract is "within the deadline or a typed
        // reject", so a solve that finished late still errors — but its
        // table is cached now, which is exactly why the error is
        // retryable: the next attempt answers from cache in time.
        if expired(deadline) {
            self.shared
                .res
                .deadline_rejects
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded(
                "answer ready only after the deadline",
            ));
        }
        let by_group: HashMap<(u64, u32), Arc<CompressedTable>> =
            group_list.iter().map(|(k, _)| *k).zip(tables).collect();

        let answers = queries
            .iter()
            .map(|q| {
                let table = &by_group[&(q.setup.get().to_bits(), q.ticks_per_setup)];
                let ticks = table
                    .grid()
                    .to_ticks(q.lifespan)
                    .clamp(0, table.max_ticks());
                GuaranteeAnswer {
                    value: table.value(q.interrupts, q.lifespan),
                    value_ticks: table.value_ticks(q.interrupts, ticks),
                }
            })
            .collect();
        ep.record(queries.len(), start.elapsed().as_micros() as u64);
        self.shared.obs.span(trace_id, "broker.batch", t_batch);
        Ok(answers)
    }

    /// Answers one streaming sweep in-process: resolves the covering
    /// table for the window through the same admission, tenant-quota,
    /// deadline and coalescing machinery as [`Self::query_batch`], then
    /// returns the row's arithmetic-run descriptors. Expanding them
    /// ([`cyclesteal_dp::expand_value_runs`]) is bit-identical to
    /// querying `value_ticks` at every tick of the window.
    pub fn query_sweep(&self, sweep: &SweepQuery) -> Result<Vec<ValueRun>, ServeError> {
        self.query_sweep_within("inproc", sweep, None)
    }

    /// The full sweep entry point: endpoint label plus an optional
    /// deadline, with the admission/deadline semantics of
    /// [`Self::query_batch_within`].
    pub fn query_sweep_within(
        &self,
        endpoint: &'static str,
        sweep: &SweepQuery,
        deadline: Option<Instant>,
    ) -> Result<Vec<ValueRun>, ServeError> {
        self.query_sweep_traced(endpoint, sweep, deadline, 0)
    }

    /// [`Self::query_sweep_within`] carrying a request trace id, with
    /// the span semantics of [`Self::query_batch_traced`] (the
    /// request-level span is `broker.sweep`).
    pub fn query_sweep_traced(
        &self,
        endpoint: &'static str,
        sweep: &SweepQuery,
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<Vec<ValueRun>, ServeError> {
        let start = Instant::now();
        let t_sweep = self.shared.obs.start_ns(trace_id);
        let _permit = match self.admission.try_acquire() {
            Some(permit) => permit,
            None => {
                self.shared.res.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::overloaded(
                    self.admission.inflight.load(Ordering::Relaxed),
                    self.admission.budget,
                ));
            }
        };
        if expired(deadline) {
            self.shared
                .res
                .deadline_rejects
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded("expired on arrival"));
        }
        let covering = sweep_covering_query(sweep)?;
        self.shared.obs.span(trace_id, "broker.admission", t_sweep);
        let ep = self.endpoint(endpoint);
        record_tenant_queries(
            self.shared.obs.registry(),
            &covering,
            u64::from(sweep.count),
        );
        let table = resolve(&self.shared, &ep, &covering, deadline, 0, trace_id)?;
        if expired(deadline) {
            self.shared
                .res
                .deadline_rejects
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded(
                "answer ready only after the deadline",
            ));
        }
        let last = sweep.first_tick + i64::from(sweep.count) - 1;
        if last > table.max_ticks() {
            // Defensive: the covering solve must reach the window's end
            // (grid round-trips are exact on tick points). A table that
            // doesn't is an internal inconsistency, not the client's
            // fault — and retryable, since the next attempt resolves a
            // fresh covering table.
            return Err(ServeError::internal(format!(
                "covering table stops at tick {} before sweep end {last}",
                table.max_ticks()
            )));
        }
        let runs = table.value_runs(sweep.interrupts, sweep.first_tick, i64::from(sweep.count));
        ep.record(sweep.count as usize, start.elapsed().as_micros() as u64);
        self.shared.obs.span(trace_id, "broker.sweep", t_sweep);
        Ok(runs)
    }

    /// Snapshot every cached table to the configured directory (no-op
    /// `Ok(0)` without one) — the graceful-shutdown path.
    pub fn snapshot(&self) -> Result<usize, cyclesteal_store::StoreError> {
        match &self.snapshot_dir {
            Some(dir) => self.shared.cache.snapshot_to_dir(dir),
            None => Ok(0),
        }
    }

    /// Test-only: takes one admission permit directly (released on
    /// drop), so suites can fill the in-flight budget deterministically
    /// instead of racing real requests against it. Hidden — not part of
    /// the serving API.
    #[doc(hidden)]
    pub fn hold_admission(&self) -> Option<impl Drop + '_> {
        self.admission.try_acquire()
    }

    /// Per-endpoint, cache-level and resilience counters.
    pub fn stats(&self) -> BrokerStats {
        let mut endpoints: Vec<EndpointStats> = self
            .endpoints
            .lock()
            .iter()
            .map(|(name, ep)| EndpointStats {
                endpoint: (*name).to_string(),
                requests: ep.requests.get(),
                queries: ep.queries.get(),
                coalesced: ep.coalesced.get(),
                p50_us: ep.latency_us.quantile(0.50),
                p99_us: ep.latency_us.quantile(0.99),
            })
            .collect();
        endpoints.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
        BrokerStats {
            endpoints,
            cache: self.shared.cache.stats(),
            resilience: self.shared.res.snapshot(),
        }
    }

    /// The op-4 payload: the registry's text exposition plus the span
    /// journal's snapshot, taken together. Cache-shard and resilience
    /// gauges are refreshed from their authoritative counters first, so
    /// the exposition reconciles with [`Broker::stats`]: summing the
    /// `cyclesteal_cache_shard_*` gauges reproduces
    /// [`CacheStats`]'s totals exactly (they are one read of the same
    /// per-shard atomics).
    pub fn metrics_snapshot(&self) -> (String, Vec<SpanRecord>) {
        self.refresh_gauges();
        (
            self.shared.obs.registry().render(),
            self.shared.obs.journal().snapshot(),
        )
    }

    /// The registry exposition alone (gauges refreshed) — the in-process
    /// flavor of the op-4 pull.
    pub fn metrics_text(&self) -> String {
        self.refresh_gauges();
        self.shared.obs.registry().render()
    }

    /// Copies the authoritative per-shard cache counters and resilience
    /// event counts into registry gauges, so one exposition carries the
    /// whole picture.
    fn refresh_gauges(&self) {
        let registry = self.shared.obs.registry();
        for s in self.shared.cache.shard_stats() {
            let shard = s.shard.to_string();
            let labels = [("shard", shard.as_str())];
            for (name, value) in [
                ("cyclesteal_cache_shard_hits", s.hits),
                ("cyclesteal_cache_shard_misses", s.misses),
                ("cyclesteal_cache_shard_evictions", s.evictions),
                ("cyclesteal_cache_shard_entries", s.entries as u64),
                (
                    "cyclesteal_cache_shard_compressed_entries",
                    s.compressed_entries as u64,
                ),
                (
                    "cyclesteal_cache_shard_resident_bytes",
                    s.resident_bytes as u64,
                ),
            ] {
                registry.gauge_with(name, &labels).set(value);
            }
        }
        let r = self.shared.res.snapshot();
        for (kind, value) in [
            ("shed", r.shed),
            ("deadline_rejects", r.deadline_rejects),
            ("solve_panics", r.solve_panics),
            ("flight_retries", r.flight_retries),
            ("snapshot_failures", r.snapshot_failures),
            ("tenant_sheds", r.tenant_sheds),
        ] {
            registry
                .gauge_with("cyclesteal_resilience_events", &[("kind", kind)])
                .set(value);
        }
    }

    fn endpoint(&self, name: &'static str) -> Arc<Endpoint> {
        self.endpoints
            .lock()
            .entry(name)
            .or_insert_with(|| Arc::new(Endpoint::new(self.shared.obs.registry(), name)))
            .clone()
    }
}

/// Bumps the per-tenant traffic counter for one resolved group: `n`
/// queries against the tenant grid `(setup, ticks_per_setup)`. The
/// label is human-readable (`"<setup>x<Q>"`), and tenant cardinality is
/// bounded by the distinct grids a deployment actually serves.
fn record_tenant_queries(registry: &Registry, g: &GuaranteeQuery, n: u64) {
    let tenant = format!("{}x{}", g.setup.get(), g.ticks_per_setup);
    registry
        .counter_with("cyclesteal_tenant_queries_total", &[("tenant", &tenant)])
        .add(n);
}

/// Largest grid extent (in ticks) one query may demand —
/// ~16× the `10⁹`-tick acceptance point, still a sub-minute solve.
/// Solve cost scales with the tick count, so without this cap a single
/// 24-byte frame could demand an effectively unbounded solve.
pub const MAX_QUERY_TICKS: i64 = 1 << 34;

/// Largest interrupt budget one query may demand (one solved level per
/// interrupt).
pub const MAX_QUERY_INTERRUPTS: u32 = 1 << 12;

/// Largest grid resolution one query may demand.
pub const MAX_QUERY_TICKS_PER_SETUP: u32 = 1 << 20;

fn validate(queries: &[GuaranteeQuery]) -> Result<(), ServeError> {
    for (index, q) in queries.iter().enumerate() {
        let reason = if !q.setup.get().is_finite() || !q.setup.is_positive() {
            Some(format!("setup charge {} must be positive", q.setup))
        } else if q.ticks_per_setup < 1 {
            Some("ticks_per_setup must be ≥ 1".to_string())
        } else if q.ticks_per_setup > MAX_QUERY_TICKS_PER_SETUP {
            Some(format!(
                "ticks_per_setup {} exceeds the broker cap {MAX_QUERY_TICKS_PER_SETUP}",
                q.ticks_per_setup
            ))
        } else if q.interrupts > MAX_QUERY_INTERRUPTS {
            Some(format!(
                "interrupt budget {} exceeds the broker cap {MAX_QUERY_INTERRUPTS}",
                q.interrupts
            ))
        } else if !q.lifespan.get().is_finite() || q.lifespan.is_negative() {
            Some(format!("lifespan {} must be nonnegative", q.lifespan))
        } else {
            // Solve cost scales with the tick extent, so the magnitude
            // cap is on ticks, not raw lifespan: a tiny setup charge at
            // a huge lifespan is just as expensive.
            let ticks = q.lifespan.get() / q.setup.get() * q.ticks_per_setup as f64;
            if ticks > MAX_QUERY_TICKS as f64 {
                Some(format!(
                    "lifespan {} at this resolution is {ticks:.0} ticks, over the broker cap {MAX_QUERY_TICKS}",
                    q.lifespan
                ))
            } else {
                None
            }
        };
        if let Some(reason) = reason {
            return Err(ServeError::invalid_query(index, reason));
        }
    }
    Ok(())
}

/// Validates a sweep and derives the batch query whose covering table
/// holds the whole window: same grid and interrupt budget, lifespan at
/// the window's last tick. Scalar checks run *before* [`Grid`] is
/// constructed — `Grid::new` panics on nonpositive setups, and a
/// hostile frame must never be able to panic the broker.
fn sweep_covering_query(sweep: &SweepQuery) -> Result<GuaranteeQuery, ServeError> {
    if sweep.count < 1 {
        return Err(ServeError::invalid_query(0, "sweep count must be ≥ 1"));
    }
    if sweep.first_tick < 0 {
        return Err(ServeError::invalid_query(
            0,
            format!("sweep first_tick {} must be ≥ 0", sweep.first_tick),
        ));
    }
    if !sweep.setup.get().is_finite() || !sweep.setup.is_positive() {
        return Err(ServeError::invalid_query(
            0,
            format!("setup charge {} must be positive", sweep.setup),
        ));
    }
    if sweep.ticks_per_setup < 1 {
        return Err(ServeError::invalid_query(0, "ticks_per_setup must be ≥ 1"));
    }
    // checked_add: first_tick arrives straight off the wire, so the
    // window end must not be able to overflow i64.
    let last = sweep
        .first_tick
        .checked_add(i64::from(sweep.count) - 1)
        .filter(|&last| last <= MAX_QUERY_TICKS)
        .ok_or_else(|| {
            ServeError::invalid_query(
                0,
                format!(
                    "sweep window ends past the broker cap {MAX_QUERY_TICKS} ticks (first_tick {}, count {})",
                    sweep.first_tick, sweep.count
                ),
            )
        })?;
    let grid = Grid::new(sweep.setup, sweep.ticks_per_setup);
    let covering = GuaranteeQuery {
        setup: sweep.setup,
        ticks_per_setup: sweep.ticks_per_setup,
        interrupts: sweep.interrupts,
        lifespan: grid.to_time(last),
    };
    // The shared validator applies the resolution/interrupt/tick caps
    // identically to both wire modes.
    validate(std::slice::from_ref(&covering))?;
    Ok(covering)
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Runs one cache solve with panic containment: the fault harness's
/// solve-panic injection point sits inside the `catch_unwind`, and any
/// panic — injected or real — is converted into a counted, retryable
/// `Internal` error instead of unwinding through the broker.
fn solve_guarded(shared: &Shared, g: &GuaranteeQuery) -> Result<Arc<CompressedTable>, ServeError> {
    catch_unwind(AssertUnwindSafe(|| {
        faults::maybe_panic_solve();
        shared
            .cache
            .get_compressed(g.setup, g.ticks_per_setup, g.lifespan, g.interrupts)
    }))
    .map_err(|payload| {
        shared.res.solve_panics.fetch_add(1, Ordering::Relaxed);
        let what = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        ServeError::internal(format!("solve panicked (contained): {what}"))
    })
}

/// Resolves one grid group to a covering table. Warm hits take the
/// **fast lane**: a covering cached table answers immediately, with no
/// flight, no solve lane and no tenant quota — so one tenant's cold
/// solves can never queue (or shed) another tenant's warm traffic.
/// Cold groups run single-flight coalescing: the first arrival for a
/// `(setup, Q, p_max)` key leads the solve — after taking a fairness
/// lane under its tenant's quota ([`FairGate`]) — and concurrent
/// arrivals park and reuse its result.
///
/// Failure paths: a leader whose solve panics poisons the flight and
/// returns a retryable `Internal` error; the first follower to observe
/// the poison re-resolves at `attempt + 1` — the guard already removed
/// the dead flight, so the retrier becomes (or joins) a fresh leader —
/// and a follower seeing poison at `attempt ≥ 1` solves for itself. A
/// follower whose lifespan outruns what the leader solved also falls
/// back to its own solve (rare: headroom absorbs creeping lifespans).
/// A deadline bounds the condvar wait; expiry is a retryable
/// `DeadlineExceeded`.
fn resolve(
    shared: &Shared,
    ep: &Endpoint,
    g: &GuaranteeQuery,
    deadline: Option<Instant>,
    attempt: u32,
    trace_id: u64,
) -> Result<Arc<CompressedTable>, ServeError> {
    // Warm-hit fast lane: answered straight from the sharded cache.
    if let Some(table) =
        shared
            .cache
            .try_get_compressed(g.setup, g.ticks_per_setup, g.lifespan, g.interrupts)
    {
        return Ok(table);
    }
    let key = SolveKey {
        setup_bits: g.setup.get().to_bits(),
        ticks_per_setup: g.ticks_per_setup,
        max_interrupts: g.interrupts,
    };
    let (flight, leader) = {
        let mut map = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&key) {
            Some(flight) => (flight.clone(), false),
            None => {
                let flight = Arc::new(Flight {
                    result: StdMutex::new(None),
                    cv: Condvar::new(),
                });
                map.insert(key, flight.clone());
                (flight, true)
            }
        }
    };

    if leader {
        let guard = FlightGuard {
            shared,
            key,
            flight: flight.clone(),
        };
        // Gate the solve on the deadline *before* paying for it: a cold
        // solve that cannot finish in time would just burn a worker. The
        // guard's drop poisons the flight, so followers re-check their
        // own deadlines instead of hanging.
        if expired(deadline) {
            shared.res.deadline_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded("before the solve started"));
        }
        // A cold solve holds a fairness lane under its tenant's quota
        // for the whole solve; both reject paths are typed retryable
        // errors (the guard's drop un-strands any followers).
        let tenant: TenantKey = (key.setup_bits, key.ticks_per_setup);
        let t_lane = shared.obs.start_ns(trace_id);
        let _lane = match shared.fair.acquire(tenant, deadline) {
            Ok(permit) => {
                shared.obs.span(trace_id, "broker.lane", t_lane);
                permit
            }
            Err(GateReject::Quota { held }) => {
                shared.res.tenant_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::new(
                    crate::ErrorCode::Overloaded,
                    format!("tenant quota exhausted: {held} cold solves in flight for this grid"),
                ));
            }
            Err(GateReject::Deadline) => {
                shared.res.deadline_rejects.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::deadline_exceeded("queued for a solve lane"));
            }
        };
        let t_solve = shared.obs.start_ns(trace_id);
        let table = solve_guarded(shared, g)?;
        shared.obs.span(trace_id, "broker.solve", t_solve);
        *flight.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(table.clone()));
        drop(guard); // notifies followers, removes the flight
        return Ok(table);
    }

    ep.coalesced.inc();
    let t_flight = shared.obs.start_ns(trace_id);
    let mut result = flight.result.lock().unwrap_or_else(|e| e.into_inner());
    // Wait until the leader publishes; break *with* the value so there
    // is no "loop exited but the slot is empty" state to unwrap later.
    let outcome = loop {
        if let Some(outcome) = result.clone() {
            break outcome;
        }
        match deadline {
            None => result = flight.cv.wait(result).unwrap_or_else(|e| e.into_inner()),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    drop(result);
                    shared.res.deadline_rejects.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::deadline_exceeded(
                        "waiting on a coalesced solve",
                    ));
                }
                result = flight
                    .cv
                    .wait_timeout(result, d - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
    };
    shared.obs.span(trace_id, "broker.flight", t_flight);
    match outcome {
        // `covers` is the table's own coverage contract — the same
        // check the cache applies — so a coalesced result is never
        // returned for a range it cannot answer.
        Ok(table) if table.covers(g.lifespan) => Ok(table),
        // Leader solved a smaller lifespan than we need: pay our own
        // cache call (usually still a hit).
        Ok(_) => {
            drop(result);
            let t_solve = shared.obs.start_ns(trace_id);
            let table = solve_guarded(shared, g)?;
            shared.obs.span(trace_id, "broker.solve", t_solve);
            Ok(table)
        }
        // Poisoned flight: the dead leader's guard already removed the
        // key, so re-resolving makes (or joins) a fresh leader — the
        // "retried once by a new leader" step. A second poison means
        // the solve itself is sick: solve for ourselves so one broken
        // flight cannot starve the whole key.
        Err(()) => {
            drop(result);
            if attempt == 0 {
                shared.res.flight_retries.fetch_add(1, Ordering::Relaxed);
                resolve(shared, ep, g, deadline, attempt + 1, trace_id)
            } else {
                let t_solve = shared.obs.start_ns(trace_id);
                let table = solve_guarded(shared, g)?;
                shared.obs.span(trace_id, "broker.solve", t_solve);
                Ok(table)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::ErrorCode;
    use cyclesteal_core::time::secs;
    use std::time::Duration;

    fn q(setup: f64, ticks: u32, p: u32, lifespan: f64) -> GuaranteeQuery {
        GuaranteeQuery {
            setup: secs(setup),
            ticks_per_setup: ticks,
            interrupts: p,
            lifespan: secs(lifespan),
        }
    }

    #[test]
    fn batch_answers_match_direct_cache_queries() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        let queries = vec![
            q(1.0, 8, 1, 40.0),
            q(1.0, 8, 2, 100.0),
            q(1.0, 8, 2, 0.0),
            q(2.0, 4, 1, 60.0),
        ];
        let answers = broker.query_batch(&queries).unwrap();
        // Two grids → at most two solves, whatever the batch size.
        assert!(broker.cache().stats().misses <= 2);
        for (query, answer) in queries.iter().zip(&answers) {
            let direct = broker.cache().get_compressed(
                query.setup,
                query.ticks_per_setup,
                query.lifespan,
                query.interrupts,
            );
            let want = direct.value(query.interrupts, query.lifespan);
            assert_eq!(
                answer.value.get().to_bits(),
                want.get().to_bits(),
                "value at {query:?}"
            );
            let ticks = direct.grid().to_ticks(query.lifespan);
            assert_eq!(
                answer.value_ticks,
                direct.value_ticks(query.interrupts, ticks)
            );
        }
    }

    #[test]
    fn invalid_queries_are_rejected_not_solved() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        // NaN/infinite inputs cannot exist in-process (`Time::new`
        // refuses them); the wire decoder rejects those bit patterns
        // before they ever reach the broker (see `wire::finite_time`).
        let bad = [
            q(-1.0, 8, 1, 40.0),
            q(0.0, 8, 1, 40.0),
            q(1.0, 0, 1, 40.0),
            q(1.0, 8, 1, -40.0),
        ];
        for (i, query) in bad.iter().enumerate() {
            let batch = [q(1.0, 8, 1, 10.0), *query];
            let err = broker.query_batch(&batch).unwrap_err();
            assert_eq!(err.code, ErrorCode::InvalidQuery, "bad case {i}");
            assert!(!err.retryable, "bad case {i} must not invite retries");
            assert!(err.message.contains("query 1"), "names the index: {err}");
        }
        assert_eq!(broker.cache().stats().misses, 0, "nothing was solved");
    }

    #[test]
    fn oversized_queries_are_rejected_before_solving() {
        // A 24-byte frame must not be able to demand an unbounded
        // solve: the caps on tick extent, interrupts and resolution
        // all reject before any table is built.
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        let too_big = [
            q(1.0, 8, 1, 1e300),                            // astronomic lifespan
            q(1e-12, 8, 1, 1e6),                            // tiny setup ⇒ huge tick count
            q(1.0, 8, MAX_QUERY_INTERRUPTS + 1, 10.0),      // interrupt budget
            q(1.0, MAX_QUERY_TICKS_PER_SETUP + 1, 1, 10.0), // resolution
        ];
        for (i, query) in too_big.iter().enumerate() {
            assert!(broker.query_batch(&[*query]).is_err(), "cap case {i}");
        }
        assert_eq!(broker.cache().stats().misses, 0, "nothing was solved");
        // The acceptance-scale deep query (10⁹ ticks) stays well inside
        // the caps.
        let deep = q(1.0, 32, 16, 31_250_000.0);
        assert!(super::validate(&[deep]).is_ok());
    }

    #[test]
    fn expired_deadlines_reject_before_any_solve() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        let err = broker
            .query_batch_within("inproc", &[q(1.0, 8, 1, 20.0)], Some(past))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(err.retryable);
        assert_eq!(broker.cache().stats().misses, 0, "nothing was solved");
        assert_eq!(broker.stats().resilience.deadline_rejects, 1);

        // A generous deadline changes nothing about the answer.
        let future = Instant::now() + Duration::from_secs(60);
        let within = broker
            .query_batch_within("inproc", &[q(1.0, 8, 1, 20.0)], Some(future))
            .unwrap();
        let without = broker.query_batch(&[q(1.0, 8, 1, 20.0)]).unwrap();
        assert_eq!(within, without);
    }

    #[test]
    fn the_inflight_budget_sheds_with_a_typed_overloaded_error() {
        // Budget 0 admits nothing — the degenerate case makes shedding
        // deterministic without racing threads.
        let broker = Broker::new(BrokerConfig {
            max_inflight: 1,
            ..BrokerConfig::default()
        })
        .unwrap();
        // Hold the only permit and probe from another thread.
        let permit = broker.admission.try_acquire().expect("first admit");
        let err = broker.query_batch(&[q(1.0, 8, 1, 20.0)]).unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert!(err.retryable);
        assert_eq!(broker.stats().resilience.shed, 1);
        drop(permit);
        // Budget released: the same batch now succeeds.
        assert!(broker.query_batch(&[q(1.0, 8, 1, 20.0)]).is_ok());
    }

    #[test]
    fn admission_permits_are_raii() {
        let admission = Admission {
            inflight: AtomicUsize::new(0),
            budget: 2,
            gauge: Gauge::new(),
        };
        let a = admission.try_acquire().expect("1st");
        let _b = admission.try_acquire().expect("2nd");
        assert!(admission.try_acquire().is_none(), "budget exhausted");
        drop(a);
        let _c = admission.try_acquire().expect("slot freed by drop");
        // A failed acquire must not leak counter increments.
        assert!(admission.try_acquire().is_none());
        assert_eq!(admission.inflight.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stats_track_requests_and_endpoints() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        broker.query_batch(&[q(1.0, 8, 1, 20.0)]).unwrap();
        broker
            .query_batch_at("tcp", &[q(1.0, 8, 1, 20.0), q(1.0, 8, 1, 10.0)])
            .unwrap();
        let stats = broker.stats();
        assert_eq!(stats.endpoints.len(), 2);
        let inproc = &stats.endpoints[0];
        assert_eq!(
            (inproc.endpoint.as_str(), inproc.requests, inproc.queries),
            ("inproc", 1, 1)
        );
        let tcp = &stats.endpoints[1];
        assert_eq!(
            (tcp.endpoint.as_str(), tcp.requests, tcp.queries),
            ("tcp", 1, 2)
        );
        assert!(inproc.p50_us > 0, "latency histogram recorded");
        assert!(inproc.p99_us >= inproc.p50_us);
        assert_eq!(stats.cache.hits + stats.cache.misses, 2);
        // A clean run has no resilience events.
        assert_eq!(stats.resilience, ResilienceStats::default());
    }

    #[test]
    fn fair_gate_sheds_past_the_tenant_quota_and_releases_on_drop() {
        let gate = FairGate::new(8, 2);
        let tenant: TenantKey = (1, 8);
        let a = gate.acquire(tenant, None).ok().expect("1st");
        let _b = gate.acquire(tenant, None).ok().expect("2nd");
        assert!(
            matches!(
                gate.acquire(tenant, None),
                Err(GateReject::Quota { held: 2 })
            ),
            "3rd cold solve for the grid must shed"
        );
        // A different tenant is unaffected by the first one's quota.
        let other: TenantKey = (2, 8);
        let _c = gate.acquire(other, None).ok().expect("other tenant");
        drop(a);
        let _d = gate.acquire(tenant, None).ok().expect("slot freed by drop");
    }

    #[test]
    fn fair_gate_releases_queued_tenants_round_robin() {
        use std::sync::mpsc;
        let gate = Arc::new(FairGate::new(1, 4));
        let hog: TenantKey = (1, 8);
        let other: TenantKey = (2, 8);
        let first = gate.acquire(hog, None).ok().expect("lane taken");
        let (tx, rx) = mpsc::channel::<&'static str>();
        std::thread::scope(|scope| {
            // The hog queues two more solves *before* the other tenant
            // arrives; round-robin must still alternate hog → other.
            let g1 = gate.clone();
            let t1 = tx.clone();
            scope.spawn(move || {
                let p = g1.acquire(hog, None).ok().expect("hog #2");
                t1.send("hog").ok();
                std::thread::sleep(Duration::from_millis(5));
                drop(p);
            });
            // Give the first hog waiter time to enqueue.
            std::thread::sleep(Duration::from_millis(20));
            let g2 = gate.clone();
            let t2 = tx.clone();
            scope.spawn(move || {
                let p = g2.acquire(hog, None).ok().expect("hog #3");
                t2.send("hog").ok();
                std::thread::sleep(Duration::from_millis(5));
                drop(p);
            });
            std::thread::sleep(Duration::from_millis(20));
            let g3 = gate.clone();
            let t3 = tx.clone();
            scope.spawn(move || {
                let p = g3.acquire(other, None).ok().expect("other tenant");
                t3.send("other").ok();
                std::thread::sleep(Duration::from_millis(5));
                drop(p);
            });
            std::thread::sleep(Duration::from_millis(20));
            drop(first);
        });
        let order: Vec<&str> = rx.try_iter().collect();
        assert_eq!(order.len(), 3);
        assert_eq!(
            order[1], "other",
            "the other tenant must not wait behind the hog's whole queue: {order:?}"
        );
    }

    #[test]
    fn warm_hits_bypass_quota_while_a_tenant_is_saturated() {
        // Quota 1 and one lane: tenant A's cold solve both fills its
        // quota and occupies the only lane. Tenant B's *warm* query
        // must still be answered (fast lane), and A's own warm queries
        // too — quotas govern solves, never lookups.
        let broker = Broker::new(BrokerConfig {
            tenant_quota: 1,
            solve_lanes: 1,
            ..BrokerConfig::default()
        })
        .unwrap();
        // Warm both grids.
        broker.query_batch(&[q(1.0, 8, 2, 50.0)]).unwrap();
        broker.query_batch(&[q(2.0, 8, 2, 50.0)]).unwrap();
        // Saturate the gate by hand: pretend tenant A leads a solve.
        let tenant_a: TenantKey = (secs(1.0).get().to_bits(), 8);
        let _lane = broker.shared.fair.acquire(tenant_a, None).ok().unwrap();
        assert!(matches!(
            broker.shared.fair.acquire(tenant_a, None),
            Err(GateReject::Quota { .. })
        ));
        // Warm queries of both tenants sail through regardless.
        assert!(broker.query_batch(&[q(1.0, 8, 1, 40.0)]).is_ok());
        assert!(broker.query_batch(&[q(2.0, 8, 1, 40.0)]).is_ok());
        assert_eq!(broker.stats().resilience.tenant_sheds, 0);
    }

    #[test]
    fn a_queued_cold_solve_respects_its_deadline() {
        let gate = FairGate::new(1, 4);
        let hold = gate.acquire((1, 8), None).ok().expect("lane");
        let deadline = Instant::now() + Duration::from_millis(30);
        let start = Instant::now();
        let rejected = gate.acquire((2, 8), Some(deadline));
        assert!(matches!(rejected, Err(GateReject::Deadline)));
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(hold);
        // The expired waiter left no residue: the lane is free again.
        assert!(gate.acquire((2, 8), None).is_ok());
    }

    #[test]
    fn concurrent_same_key_requests_coalesce() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        // A moderately expensive grid so the flights genuinely overlap.
        let query = q(1.0, 16, 3, 20_000.0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let broker = broker.clone();
                scope.spawn(move || broker.query_batch(&[query]).unwrap());
            }
        });
        let stats = broker.stats();
        // Single-flight: the 8 concurrent requests ran ≤ … well, at
        // least one coalesced or hit the cache; never 8 solves.
        assert!(
            stats.cache.misses < 8,
            "8 identical requests must not run 8 solves (got {})",
            stats.cache.misses
        );
        let answers: Vec<_> = (0..3)
            .map(|_| broker.query_batch(&[query]).unwrap()[0])
            .collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }
}
