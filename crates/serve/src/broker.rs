//! The batched guarantee-query broker (see the crate docs for the
//! serving model). All solve work funnels through one
//! [`TableCache`] and one [`WorkerPool`]; request threads only group,
//! look up and format.
//!
//! ## Failure semantics
//!
//! Every failure a batch can hit is a typed [`ServeError`]:
//!
//! * **Admission.** At most [`BrokerConfig::max_inflight`] batches are
//!   admitted concurrently; the rest are shed immediately with
//!   [`ErrorCode::Overloaded`](crate::ErrorCode::Overloaded) — the
//!   broker never queues unboundedly.
//! * **Deadlines.** A batch may carry a deadline
//!   ([`Broker::query_batch_within`]). It is checked on admission,
//!   before a leader starts a solve, and bounds how long a follower
//!   waits on a coalesced flight — a query that would blow its deadline
//!   joining a cold solve is rejected early with the retryable
//!   [`ErrorCode::DeadlineExceeded`](crate::ErrorCode::DeadlineExceeded)
//!   instead of blocking past it.
//! * **Panic containment.** A panicking solve is caught
//!   ([`std::panic::catch_unwind`]) — it can *never* escape
//!   [`Broker::query_batch`]. The poisoned flight is retried once by a
//!   new leader (the first follower to observe the poison); a second
//!   poison makes followers solve for themselves. The panicked
//!   request itself gets a retryable
//!   [`ErrorCode::Internal`](crate::ErrorCode::Internal) error.
//!
//! All shed/deadline/panic/retry events are counted in
//! [`ResilienceStats`], as are snapshot-on-evict write failures.

use crate::errors::ServeError;
use crate::faults;
use cyclesteal_core::time::{Time, Work};
use cyclesteal_dp::compressed::CompressedTable;
use cyclesteal_dp::{CacheStats, TableCache};
use cyclesteal_par::WorkerPool;
use cyclesteal_store::CacheSnapshotExt;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

/// One guarantee query: "how much work is guaranteed at
/// `(setup, Q, p, L)`?" — the unit the wire protocol and the batch API
/// share.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuaranteeQuery {
    /// The setup charge `c`.
    pub setup: Time,
    /// Grid resolution in ticks per setup charge.
    pub ticks_per_setup: u32,
    /// The adversary's interrupt budget `p`.
    pub interrupts: u32,
    /// The episode lifespan `L`.
    pub lifespan: Time,
}

/// One query's answer, in both the continuous and the exact grid view.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuaranteeAnswer {
    /// `W^(p)(L)` interpolated to the requested lifespan — bit-identical
    /// to `table.value(p, L)` on the covering cached table.
    pub value: Work,
    /// The exact integer value at the nearest grid tick.
    pub value_ticks: i64,
}

/// In-flight batch budget used when [`BrokerConfig::max_inflight`] is
/// zero: far above any sane concurrency, small enough that a runaway
/// client sheds instead of exhausting memory.
pub const DEFAULT_MAX_INFLIGHT: usize = 1024;

/// Broker construction options.
#[derive(Clone, Debug, Default)]
pub struct BrokerConfig {
    /// Worker threads of the solve pool (`0` = machine default /
    /// `CYCLESTEAL_THREADS`).
    pub threads: usize,
    /// Resident-bytes cap for the underlying [`TableCache`]
    /// (`None` = unbounded). Evicted compressed tables are snapshotted
    /// first when `snapshot_dir` is set.
    pub memory_budget: Option<usize>,
    /// Snapshot directory: warmed from at startup, snapshotted to on
    /// eviction and on [`Broker::snapshot`].
    pub snapshot_dir: Option<PathBuf>,
    /// Most batches admitted concurrently; the rest are shed with
    /// `Overloaded` (`0` = [`DEFAULT_MAX_INFLIGHT`]).
    pub max_inflight: usize,
}

/// Resilience-event counters (all monotone): how often the broker shed,
/// rejected on deadline, contained a panic, re-led a poisoned flight,
/// or failed a snapshot-on-evict write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Batches shed by the in-flight budget (`Overloaded`).
    pub shed: u64,
    /// Batches rejected because their deadline expired (on admission,
    /// before a solve, or waiting on a coalesced flight).
    pub deadline_rejects: u64,
    /// Solve panics contained by the flight machinery.
    pub solve_panics: u64,
    /// Poisoned flights re-led by a follower-turned-leader.
    pub flight_retries: u64,
    /// Snapshot-on-evict writes that failed (logged, never propagated).
    pub snapshot_failures: u64,
}

/// Live resilience counters ([`ResilienceStats`] is their snapshot).
/// `snapshot_failures` is an `Arc` because the store's counting evict
/// hook holds the other reference.
struct Resilience {
    shed: AtomicU64,
    deadline_rejects: AtomicU64,
    solve_panics: AtomicU64,
    flight_retries: AtomicU64,
    snapshot_failures: Arc<AtomicU64>,
}

impl Resilience {
    fn new() -> Resilience {
        Resilience {
            shed: AtomicU64::new(0),
            deadline_rejects: AtomicU64::new(0),
            solve_panics: AtomicU64::new(0),
            flight_retries: AtomicU64::new(0),
            snapshot_failures: Arc::new(AtomicU64::new(0)),
        }
    }

    fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            shed: self.shed.load(Ordering::Relaxed),
            deadline_rejects: self.deadline_rejects.load(Ordering::Relaxed),
            solve_panics: self.solve_panics.load(Ordering::Relaxed),
            flight_retries: self.flight_retries.load(Ordering::Relaxed),
            snapshot_failures: self.snapshot_failures.load(Ordering::Relaxed),
        }
    }
}

/// Everything the in-flight solve closures share with the broker.
struct Shared {
    cache: Arc<TableCache>,
    inflight: StdMutex<HashMap<SolveKey, Arc<Flight>>>,
    res: Resilience,
}

/// Single-flight key: one concurrent solve per `(setup, Q, p_max)` —
/// the `TableCache` key shape (lifespan rides along via headroom).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct SolveKey {
    setup_bits: u64,
    ticks_per_setup: u32,
    max_interrupts: u32,
}

/// One in-flight solve: followers park on the condvar until the leader
/// publishes. `Err(())` means the leader died without publishing
/// (poisoned flight) — followers then re-lead once, then solve for
/// themselves.
struct Flight {
    result: StdMutex<Option<Result<Arc<CompressedTable>, ()>>>,
    cv: Condvar,
}

/// Removes the flight from the in-flight map on drop and poisons it if
/// the leader never published — a panicking solve must not strand its
/// followers on the condvar forever.
struct FlightGuard<'a> {
    shared: &'a Shared,
    key: SolveKey,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        {
            let mut result = self.flight.result.lock().unwrap_or_else(|e| e.into_inner());
            if result.is_none() {
                *result = Some(Err(()));
            }
        }
        self.flight.cv.notify_all();
        if let Ok(mut map) = self.shared.inflight.lock() {
            map.remove(&self.key);
        }
    }
}

/// Bounded admission: a relaxed counter plus an RAII permit. A batch
/// past the budget is never queued — it sheds immediately, keeping the
/// broker's memory and latency bounded under overload.
struct Admission {
    inflight: AtomicUsize,
    budget: usize,
}

impl Admission {
    fn try_acquire(&self) -> Option<Permit<'_>> {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.budget {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            None
        } else {
            Some(Permit { admission: self })
        }
    }
}

struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

const HIST_BUCKETS: usize = 40;

/// Per-endpoint counters: request/query totals, solves coalesced onto
/// another request's flight, and a log₂-bucketed latency histogram
/// (microseconds), from which the p50/p99 snapshots are read.
struct Endpoint {
    requests: AtomicU64,
    queries: AtomicU64,
    coalesced: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

impl Default for Endpoint {
    fn default() -> Endpoint {
        Endpoint {
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Endpoint {
    fn record(&self, queries: usize, elapsed_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(queries as u64, Ordering::Relaxed);
        let bucket = (63 - (elapsed_us.max(1)).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding the `q`-quantile request —
    /// accurate to within the 2× bucket width.
    fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (1u64 << (i + 1)).saturating_sub(1);
            }
        }
        u64::MAX
    }
}

/// A point-in-time view of one endpoint's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EndpointStats {
    /// Endpoint label (`"inproc"`, `"tcp"`).
    pub endpoint: String,
    /// Batches served.
    pub requests: u64,
    /// Individual queries answered across those batches.
    pub queries: u64,
    /// Solves this endpoint's requests coalesced onto another request's
    /// in-flight solve instead of running themselves.
    pub coalesced: u64,
    /// Approximate median batch latency in microseconds (log₂ bucket
    /// upper bound).
    pub p50_us: u64,
    /// Approximate 99th-percentile batch latency in microseconds.
    pub p99_us: u64,
}

/// Broker-level observability: per-endpoint request stats, the
/// underlying cache's counters, and the resilience-event counters.
#[derive(Clone, Debug)]
pub struct BrokerStats {
    /// One entry per endpoint that served at least one request, sorted
    /// by label.
    pub endpoints: Vec<EndpointStats>,
    /// The shared [`TableCache`]'s counters (hits, misses, evictions,
    /// resident bytes, entry counts).
    pub cache: CacheStats,
    /// Shed/deadline/panic/retry/snapshot-failure counters.
    pub resilience: ResilienceStats,
}

/// The batched guarantee-query broker. Cheap to share: wrap it in an
/// [`Arc`] and hand clones to every connection/test thread.
pub struct Broker {
    shared: Arc<Shared>,
    pool: WorkerPool,
    snapshot_dir: Option<PathBuf>,
    admission: Admission,
    endpoints: parking_lot::Mutex<HashMap<&'static str, Arc<Endpoint>>>,
}

impl Broker {
    /// Builds a broker: a fresh [`TableCache`] (budgeted if configured),
    /// a worker pool, and — when a snapshot directory is configured — a
    /// warm start from it plus snapshot-on-evict wiring (whose write
    /// failures are counted, never propagated). Returns the warm-start
    /// I/O error if the directory exists but cannot be read.
    pub fn new(config: BrokerConfig) -> Result<Broker, cyclesteal_store::StoreError> {
        let cache = Arc::new(TableCache::new());
        cache.set_memory_budget(config.memory_budget);
        let res = Resilience::new();
        if let Some(dir) = &config.snapshot_dir {
            cache.warm_from_dir(dir)?;
            cache.set_evict_hook(Some(cyclesteal_store::evict_hook_to_dir_counting(
                dir.clone(),
                res.snapshot_failures.clone(),
            )));
        }
        Ok(Broker {
            shared: Arc::new(Shared {
                cache,
                inflight: StdMutex::new(HashMap::new()),
                res,
            }),
            pool: WorkerPool::new(config.threads),
            snapshot_dir: config.snapshot_dir,
            admission: Admission {
                inflight: AtomicUsize::new(0),
                budget: if config.max_inflight == 0 {
                    DEFAULT_MAX_INFLIGHT
                } else {
                    config.max_inflight
                },
            },
            endpoints: parking_lot::Mutex::new(HashMap::new()),
        })
    }

    /// The broker's shared solve cache (for diffing broker answers
    /// against direct queries, and for operational introspection).
    pub fn cache(&self) -> &TableCache {
        &self.shared.cache
    }

    /// Answers a batch of queries, grouping them per `(setup, Q)` grid,
    /// resolving each grid's covering table once (coalescing with any
    /// concurrent request for the same solve), and answering every
    /// query by table lookup. Answers are in input order and
    /// bit-identical to querying the covering `TableCache` table
    /// directly.
    pub fn query_batch(
        &self,
        queries: &[GuaranteeQuery],
    ) -> Result<Vec<GuaranteeAnswer>, ServeError> {
        self.query_batch_within("inproc", queries, None)
    }

    /// [`Self::query_batch`] recorded under an explicit endpoint label —
    /// what the TCP server calls with `"tcp"`.
    pub fn query_batch_at(
        &self,
        endpoint: &'static str,
        queries: &[GuaranteeQuery],
    ) -> Result<Vec<GuaranteeAnswer>, ServeError> {
        self.query_batch_within(endpoint, queries, None)
    }

    /// The full batch entry point: endpoint label plus an optional
    /// deadline. The deadline is enforced on admission, before any
    /// solve starts, and while waiting on a coalesced flight — an
    /// expired deadline is the retryable `DeadlineExceeded`, never an
    /// open-ended block.
    pub fn query_batch_within(
        &self,
        endpoint: &'static str,
        queries: &[GuaranteeQuery],
        deadline: Option<Instant>,
    ) -> Result<Vec<GuaranteeAnswer>, ServeError> {
        let start = Instant::now();
        let _permit = match self.admission.try_acquire() {
            Some(permit) => permit,
            None => {
                self.shared.res.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::overloaded(
                    self.admission.inflight.load(Ordering::Relaxed),
                    self.admission.budget,
                ));
            }
        };
        if expired(deadline) {
            self.shared
                .res
                .deadline_rejects
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded("expired on arrival"));
        }
        validate(queries)?;
        let ep = self.endpoint(endpoint);

        // Group by grid; each group solves once at the max (p, L) asked
        // of it — a p_max solve holds every smaller budget exactly.
        let mut groups: HashMap<(u64, u32), GuaranteeQuery> = HashMap::new();
        for q in queries {
            groups
                .entry((q.setup.get().to_bits(), q.ticks_per_setup))
                .and_modify(|g| {
                    if q.lifespan > g.lifespan {
                        g.lifespan = q.lifespan;
                    }
                    if q.interrupts > g.interrupts {
                        g.interrupts = q.interrupts;
                    }
                })
                .or_insert(*q);
        }

        let group_list: Vec<((u64, u32), GuaranteeQuery)> = groups.into_iter().collect();
        let tables: Vec<Result<Arc<CompressedTable>, ServeError>> = if group_list.len() <= 1 {
            // The common case (one grid per batch) resolves inline —
            // no pool hand-off latency.
            group_list
                .iter()
                .map(|(_, g)| resolve(&self.shared, &ep, g, deadline, 0))
                .collect()
        } else {
            // Jobs return Results and contain their own panics, so no
            // panic can cross the pool boundary and abort the scatter.
            let jobs: Vec<_> = group_list
                .iter()
                .map(|(_, g)| {
                    let shared = self.shared.clone();
                    let ep = ep.clone();
                    let g = *g;
                    move || resolve(&shared, &ep, &g, deadline, 0)
                })
                .collect();
            self.pool.scatter(jobs)
        };
        let tables: Vec<Arc<CompressedTable>> =
            tables.into_iter().collect::<Result<Vec<_>, _>>()?;
        // The answer contract is "within the deadline or a typed
        // reject", so a solve that finished late still errors — but its
        // table is cached now, which is exactly why the error is
        // retryable: the next attempt answers from cache in time.
        if expired(deadline) {
            self.shared
                .res
                .deadline_rejects
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded(
                "answer ready only after the deadline",
            ));
        }
        let by_group: HashMap<(u64, u32), Arc<CompressedTable>> =
            group_list.iter().map(|(k, _)| *k).zip(tables).collect();

        let answers = queries
            .iter()
            .map(|q| {
                let table = &by_group[&(q.setup.get().to_bits(), q.ticks_per_setup)];
                let ticks = table
                    .grid()
                    .to_ticks(q.lifespan)
                    .clamp(0, table.max_ticks());
                GuaranteeAnswer {
                    value: table.value(q.interrupts, q.lifespan),
                    value_ticks: table.value_ticks(q.interrupts, ticks),
                }
            })
            .collect();
        ep.record(queries.len(), start.elapsed().as_micros() as u64);
        Ok(answers)
    }

    /// Snapshot every cached table to the configured directory (no-op
    /// `Ok(0)` without one) — the graceful-shutdown path.
    pub fn snapshot(&self) -> Result<usize, cyclesteal_store::StoreError> {
        match &self.snapshot_dir {
            Some(dir) => self.shared.cache.snapshot_to_dir(dir),
            None => Ok(0),
        }
    }

    /// Test-only: takes one admission permit directly (released on
    /// drop), so suites can fill the in-flight budget deterministically
    /// instead of racing real requests against it. Hidden — not part of
    /// the serving API.
    #[doc(hidden)]
    pub fn hold_admission(&self) -> Option<impl Drop + '_> {
        self.admission.try_acquire()
    }

    /// Per-endpoint, cache-level and resilience counters.
    pub fn stats(&self) -> BrokerStats {
        let mut endpoints: Vec<EndpointStats> = self
            .endpoints
            .lock()
            .iter()
            .map(|(name, ep)| EndpointStats {
                endpoint: (*name).to_string(),
                requests: ep.requests.load(Ordering::Relaxed),
                queries: ep.queries.load(Ordering::Relaxed),
                coalesced: ep.coalesced.load(Ordering::Relaxed),
                p50_us: ep.quantile_us(0.50),
                p99_us: ep.quantile_us(0.99),
            })
            .collect();
        endpoints.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
        BrokerStats {
            endpoints,
            cache: self.shared.cache.stats(),
            resilience: self.shared.res.snapshot(),
        }
    }

    fn endpoint(&self, name: &'static str) -> Arc<Endpoint> {
        self.endpoints.lock().entry(name).or_default().clone()
    }
}

/// Largest grid extent (in ticks) one query may demand —
/// ~16× the `10⁹`-tick acceptance point, still a sub-minute solve.
/// Solve cost scales with the tick count, so without this cap a single
/// 24-byte frame could demand an effectively unbounded solve.
pub const MAX_QUERY_TICKS: i64 = 1 << 34;

/// Largest interrupt budget one query may demand (one solved level per
/// interrupt).
pub const MAX_QUERY_INTERRUPTS: u32 = 1 << 12;

/// Largest grid resolution one query may demand.
pub const MAX_QUERY_TICKS_PER_SETUP: u32 = 1 << 20;

fn validate(queries: &[GuaranteeQuery]) -> Result<(), ServeError> {
    for (index, q) in queries.iter().enumerate() {
        let reason = if !q.setup.get().is_finite() || !q.setup.is_positive() {
            Some(format!("setup charge {} must be positive", q.setup))
        } else if q.ticks_per_setup < 1 {
            Some("ticks_per_setup must be ≥ 1".to_string())
        } else if q.ticks_per_setup > MAX_QUERY_TICKS_PER_SETUP {
            Some(format!(
                "ticks_per_setup {} exceeds the broker cap {MAX_QUERY_TICKS_PER_SETUP}",
                q.ticks_per_setup
            ))
        } else if q.interrupts > MAX_QUERY_INTERRUPTS {
            Some(format!(
                "interrupt budget {} exceeds the broker cap {MAX_QUERY_INTERRUPTS}",
                q.interrupts
            ))
        } else if !q.lifespan.get().is_finite() || q.lifespan.is_negative() {
            Some(format!("lifespan {} must be nonnegative", q.lifespan))
        } else {
            // Solve cost scales with the tick extent, so the magnitude
            // cap is on ticks, not raw lifespan: a tiny setup charge at
            // a huge lifespan is just as expensive.
            let ticks = q.lifespan.get() / q.setup.get() * q.ticks_per_setup as f64;
            if ticks > MAX_QUERY_TICKS as f64 {
                Some(format!(
                    "lifespan {} at this resolution is {ticks:.0} ticks, over the broker cap {MAX_QUERY_TICKS}",
                    q.lifespan
                ))
            } else {
                None
            }
        };
        if let Some(reason) = reason {
            return Err(ServeError::invalid_query(index, reason));
        }
    }
    Ok(())
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Runs one cache solve with panic containment: the fault harness's
/// solve-panic injection point sits inside the `catch_unwind`, and any
/// panic — injected or real — is converted into a counted, retryable
/// `Internal` error instead of unwinding through the broker.
fn solve_guarded(shared: &Shared, g: &GuaranteeQuery) -> Result<Arc<CompressedTable>, ServeError> {
    catch_unwind(AssertUnwindSafe(|| {
        faults::maybe_panic_solve();
        shared
            .cache
            .get_compressed(g.setup, g.ticks_per_setup, g.lifespan, g.interrupts)
    }))
    .map_err(|payload| {
        shared.res.solve_panics.fetch_add(1, Ordering::Relaxed);
        let what = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        ServeError::internal(format!("solve panicked (contained): {what}"))
    })
}

/// Resolves one grid group to a covering table with single-flight
/// coalescing: the first arrival for a `(setup, Q, p_max)` key leads
/// the solve (through the cache, so already-cached tables are plain
/// hits); concurrent arrivals park and reuse its result.
///
/// Failure paths: a leader whose solve panics poisons the flight and
/// returns a retryable `Internal` error; the first follower to observe
/// the poison re-resolves at `attempt + 1` — the guard already removed
/// the dead flight, so the retrier becomes (or joins) a fresh leader —
/// and a follower seeing poison at `attempt ≥ 1` solves for itself. A
/// follower whose lifespan outruns what the leader solved also falls
/// back to its own solve (rare: headroom absorbs creeping lifespans).
/// A deadline bounds the condvar wait; expiry is a retryable
/// `DeadlineExceeded`.
fn resolve(
    shared: &Shared,
    ep: &Endpoint,
    g: &GuaranteeQuery,
    deadline: Option<Instant>,
    attempt: u32,
) -> Result<Arc<CompressedTable>, ServeError> {
    let key = SolveKey {
        setup_bits: g.setup.get().to_bits(),
        ticks_per_setup: g.ticks_per_setup,
        max_interrupts: g.interrupts,
    };
    let (flight, leader) = {
        let mut map = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&key) {
            Some(flight) => (flight.clone(), false),
            None => {
                let flight = Arc::new(Flight {
                    result: StdMutex::new(None),
                    cv: Condvar::new(),
                });
                map.insert(key, flight.clone());
                (flight, true)
            }
        }
    };

    if leader {
        let guard = FlightGuard {
            shared,
            key,
            flight: flight.clone(),
        };
        // Gate the solve on the deadline *before* paying for it: a cold
        // solve that cannot finish in time would just burn a worker. The
        // guard's drop poisons the flight, so followers re-check their
        // own deadlines instead of hanging.
        if expired(deadline) {
            shared.res.deadline_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::deadline_exceeded("before the solve started"));
        }
        let table = solve_guarded(shared, g)?;
        *flight.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(table.clone()));
        drop(guard); // notifies followers, removes the flight
        return Ok(table);
    }

    ep.coalesced.fetch_add(1, Ordering::Relaxed);
    let mut result = flight.result.lock().unwrap_or_else(|e| e.into_inner());
    // Wait until the leader publishes; break *with* the value so there
    // is no "loop exited but the slot is empty" state to unwrap later.
    let outcome = loop {
        if let Some(outcome) = result.clone() {
            break outcome;
        }
        match deadline {
            None => result = flight.cv.wait(result).unwrap_or_else(|e| e.into_inner()),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    drop(result);
                    shared.res.deadline_rejects.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::deadline_exceeded(
                        "waiting on a coalesced solve",
                    ));
                }
                result = flight
                    .cv
                    .wait_timeout(result, d - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
    };
    match outcome {
        // `covers` is the table's own coverage contract — the same
        // check the cache applies — so a coalesced result is never
        // returned for a range it cannot answer.
        Ok(table) if table.covers(g.lifespan) => Ok(table),
        // Leader solved a smaller lifespan than we need: pay our own
        // cache call (usually still a hit).
        Ok(_) => {
            drop(result);
            solve_guarded(shared, g)
        }
        // Poisoned flight: the dead leader's guard already removed the
        // key, so re-resolving makes (or joins) a fresh leader — the
        // "retried once by a new leader" step. A second poison means
        // the solve itself is sick: solve for ourselves so one broken
        // flight cannot starve the whole key.
        Err(()) => {
            drop(result);
            if attempt == 0 {
                shared.res.flight_retries.fetch_add(1, Ordering::Relaxed);
                resolve(shared, ep, g, deadline, attempt + 1)
            } else {
                solve_guarded(shared, g)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::ErrorCode;
    use cyclesteal_core::time::secs;
    use std::time::Duration;

    fn q(setup: f64, ticks: u32, p: u32, lifespan: f64) -> GuaranteeQuery {
        GuaranteeQuery {
            setup: secs(setup),
            ticks_per_setup: ticks,
            interrupts: p,
            lifespan: secs(lifespan),
        }
    }

    #[test]
    fn batch_answers_match_direct_cache_queries() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        let queries = vec![
            q(1.0, 8, 1, 40.0),
            q(1.0, 8, 2, 100.0),
            q(1.0, 8, 2, 0.0),
            q(2.0, 4, 1, 60.0),
        ];
        let answers = broker.query_batch(&queries).unwrap();
        // Two grids → at most two solves, whatever the batch size.
        assert!(broker.cache().stats().misses <= 2);
        for (query, answer) in queries.iter().zip(&answers) {
            let direct = broker.cache().get_compressed(
                query.setup,
                query.ticks_per_setup,
                query.lifespan,
                query.interrupts,
            );
            let want = direct.value(query.interrupts, query.lifespan);
            assert_eq!(
                answer.value.get().to_bits(),
                want.get().to_bits(),
                "value at {query:?}"
            );
            let ticks = direct.grid().to_ticks(query.lifespan);
            assert_eq!(
                answer.value_ticks,
                direct.value_ticks(query.interrupts, ticks)
            );
        }
    }

    #[test]
    fn invalid_queries_are_rejected_not_solved() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        // NaN/infinite inputs cannot exist in-process (`Time::new`
        // refuses them); the wire decoder rejects those bit patterns
        // before they ever reach the broker (see `wire::finite_time`).
        let bad = [
            q(-1.0, 8, 1, 40.0),
            q(0.0, 8, 1, 40.0),
            q(1.0, 0, 1, 40.0),
            q(1.0, 8, 1, -40.0),
        ];
        for (i, query) in bad.iter().enumerate() {
            let batch = [q(1.0, 8, 1, 10.0), *query];
            let err = broker.query_batch(&batch).unwrap_err();
            assert_eq!(err.code, ErrorCode::InvalidQuery, "bad case {i}");
            assert!(!err.retryable, "bad case {i} must not invite retries");
            assert!(err.message.contains("query 1"), "names the index: {err}");
        }
        assert_eq!(broker.cache().stats().misses, 0, "nothing was solved");
    }

    #[test]
    fn oversized_queries_are_rejected_before_solving() {
        // A 24-byte frame must not be able to demand an unbounded
        // solve: the caps on tick extent, interrupts and resolution
        // all reject before any table is built.
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        let too_big = [
            q(1.0, 8, 1, 1e300),                            // astronomic lifespan
            q(1e-12, 8, 1, 1e6),                            // tiny setup ⇒ huge tick count
            q(1.0, 8, MAX_QUERY_INTERRUPTS + 1, 10.0),      // interrupt budget
            q(1.0, MAX_QUERY_TICKS_PER_SETUP + 1, 1, 10.0), // resolution
        ];
        for (i, query) in too_big.iter().enumerate() {
            assert!(broker.query_batch(&[*query]).is_err(), "cap case {i}");
        }
        assert_eq!(broker.cache().stats().misses, 0, "nothing was solved");
        // The acceptance-scale deep query (10⁹ ticks) stays well inside
        // the caps.
        let deep = q(1.0, 32, 16, 31_250_000.0);
        assert!(super::validate(&[deep]).is_ok());
    }

    #[test]
    fn expired_deadlines_reject_before_any_solve() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        let err = broker
            .query_batch_within("inproc", &[q(1.0, 8, 1, 20.0)], Some(past))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(err.retryable);
        assert_eq!(broker.cache().stats().misses, 0, "nothing was solved");
        assert_eq!(broker.stats().resilience.deadline_rejects, 1);

        // A generous deadline changes nothing about the answer.
        let future = Instant::now() + Duration::from_secs(60);
        let within = broker
            .query_batch_within("inproc", &[q(1.0, 8, 1, 20.0)], Some(future))
            .unwrap();
        let without = broker.query_batch(&[q(1.0, 8, 1, 20.0)]).unwrap();
        assert_eq!(within, without);
    }

    #[test]
    fn the_inflight_budget_sheds_with_a_typed_overloaded_error() {
        // Budget 0 admits nothing — the degenerate case makes shedding
        // deterministic without racing threads.
        let broker = Broker::new(BrokerConfig {
            max_inflight: 1,
            ..BrokerConfig::default()
        })
        .unwrap();
        // Hold the only permit and probe from another thread.
        let permit = broker.admission.try_acquire().expect("first admit");
        let err = broker.query_batch(&[q(1.0, 8, 1, 20.0)]).unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert!(err.retryable);
        assert_eq!(broker.stats().resilience.shed, 1);
        drop(permit);
        // Budget released: the same batch now succeeds.
        assert!(broker.query_batch(&[q(1.0, 8, 1, 20.0)]).is_ok());
    }

    #[test]
    fn admission_permits_are_raii() {
        let admission = Admission {
            inflight: AtomicUsize::new(0),
            budget: 2,
        };
        let a = admission.try_acquire().expect("1st");
        let _b = admission.try_acquire().expect("2nd");
        assert!(admission.try_acquire().is_none(), "budget exhausted");
        drop(a);
        let _c = admission.try_acquire().expect("slot freed by drop");
        // A failed acquire must not leak counter increments.
        assert!(admission.try_acquire().is_none());
        assert_eq!(admission.inflight.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stats_track_requests_and_endpoints() {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        broker.query_batch(&[q(1.0, 8, 1, 20.0)]).unwrap();
        broker
            .query_batch_at("tcp", &[q(1.0, 8, 1, 20.0), q(1.0, 8, 1, 10.0)])
            .unwrap();
        let stats = broker.stats();
        assert_eq!(stats.endpoints.len(), 2);
        let inproc = &stats.endpoints[0];
        assert_eq!(
            (inproc.endpoint.as_str(), inproc.requests, inproc.queries),
            ("inproc", 1, 1)
        );
        let tcp = &stats.endpoints[1];
        assert_eq!(
            (tcp.endpoint.as_str(), tcp.requests, tcp.queries),
            ("tcp", 1, 2)
        );
        assert!(inproc.p50_us > 0, "latency histogram recorded");
        assert!(inproc.p99_us >= inproc.p50_us);
        assert_eq!(stats.cache.hits + stats.cache.misses, 2);
        // A clean run has no resilience events.
        assert_eq!(stats.resilience, ResilienceStats::default());
    }

    #[test]
    fn concurrent_same_key_requests_coalesce() {
        let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        // A moderately expensive grid so the flights genuinely overlap.
        let query = q(1.0, 16, 3, 20_000.0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let broker = broker.clone();
                scope.spawn(move || broker.query_batch(&[query]).unwrap());
            }
        });
        let stats = broker.stats();
        // Single-flight: the 8 concurrent requests ran ≤ … well, at
        // least one coalesced or hit the cache; never 8 solves.
        assert!(
            stats.cache.misses < 8,
            "8 identical requests must not run 8 solves (got {})",
            stats.cache.misses
        );
        let answers: Vec<_> = (0..3)
            .map(|_| broker.query_batch(&[query]).unwrap()[0])
            .collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }
}
