//! The wire protocol: checksummed, length-prefixed binary frames over a
//! byte stream.
//!
//! Every message is one **frame**:
//!
//! ```text
//! len  u32        payload length (capped at MAX_FRAME_BYTES)
//! crc  u32        CRC-32/IEEE of the payload
//! payload         len bytes
//! ```
//!
//! The CRC exists for the chaos invariant, not for TCP (which already
//! checksums): a corrupted frame — injected by the fault harness or by
//! a buggy middlebox — must surface as a **detectable, retryable
//! transport error** ([`is_corrupt_frame`]), never as a silently wrong
//! answer. The length cap means a corrupt peer cannot make either side
//! allocate unboundedly. All multi-byte integers are little-endian;
//! `f64`s travel as their IEEE bit patterns, so answers survive the
//! wire **bit-identically**.
//!
//! Request payload:
//!
//! ```text
//! op  u8          1 = query batch, 2 = stats, 3 = streaming sweep,
//!                 4 = metrics/introspection
//! op 1: deadline_us u64 (0 = none; remaining budget in µs)
//!       count u32, then per query (24 B):
//!       setup_bits u64 · ticks_per_setup u32 · interrupts u32 · lifespan_bits u64
//!       [trace_id u64]   optional trailing field, see below
//! op 2: (empty)
//! op 3: deadline_us u64 · setup_bits u64 · ticks_per_setup u32 ·
//!       interrupts u32 · first_tick i64 · count u32 · [trace_id u64]
//! op 4: (empty)
//! ```
//!
//! The deadline travels as a *relative* budget (µs left), not a wall
//! timestamp — the two hosts' clocks never need to agree. The server
//! converts it to an absolute `Instant` the moment it decodes the
//! request.
//!
//! The **trace_id** is an optional trailing `u64` on op 1 and op 3: a
//! nonzero client-generated request id the server threads through every
//! pipeline stage's trace span (see `cyclesteal_obs::trace`). The field
//! is version-tolerant in both directions: decoders accept the legacy
//! layout (no trailing field — trace id 0, untraced) *and* the extended
//! layout, and encoders omit the field when the id is 0, so old clients
//! talk to new servers and new clients to old servers byte-compatibly.
//! Any other trailing length still errors — tolerance is exactly
//! `{0, 8}` extra bytes, pinned truncation-cut by truncation-cut in the
//! tests.
//!
//! Response payload:
//!
//! ```text
//! status u8       0 = ok, 1 = error
//! ok, op 1: count u32, then per answer (16 B): value_bits u64 · value_ticks i64
//! ok, op 2: hits u64 · misses u64 · evictions u64 · entries u64 ·
//!           compressed_entries u64 · resident_bytes u64 ·
//!           shed u64 · deadline_rejects u64 · solve_panics u64 ·
//!           flight_retries u64 · snapshot_failures u64 ·
//!           tenant_sheds u64 ·
//!           endpoint_count u32, then per endpoint:
//!           name_len u8 · name bytes · requests u64 · queries u64 ·
//!           coalesced u64 · p50_us u64 · p99_us u64
//! ok, op 3: run_count u32, then per run (24 B):
//!           start i64 · step i64 · len i64
//! ok, op 4: metrics_len u32 · metrics bytes (UTF-8 exposition text) ·
//!           span_count u32, then per span:
//!           trace_id u64 · start_ns u64 · end_ns u64 ·
//!           stage_len u8 · stage bytes
//! error:    code u8 · retryable u8 · UTF-8 message (rest of payload)
//! ```
//!
//! Op 3 is the **streaming wire mode** for sweep-shaped queries: a
//! request names one consecutive tick window `first_tick ..
//! first_tick + count` of one `(setup, Q, p)` row, and the answer
//! travels as the row's arithmetic-run descriptors
//! ([`cyclesteal_dp::ValueRun`]) instead of a dense array — `O(flats
//! in range)` bytes for an `O(count)`-tick window. The client expands
//! runs locally ([`cyclesteal_dp::expand_value_runs`]); expansion is
//! bit-identical to asking op 1 for each tick, pinned by the streaming
//! property suite.
//!
//! The typed error body carries the [`ErrorCode`] and the retryable
//! flag explicitly, so a client can decide *back off and retry* versus
//! *fix the request* without parsing prose (see [`crate::errors`]).

use crate::broker::{
    BrokerStats, EndpointStats, GuaranteeAnswer, GuaranteeQuery, ResilienceStats, SweepQuery,
};
use crate::errors::{ErrorCode, ServeError};
use cyclesteal_core::time::Time;
use cyclesteal_dp::{CacheStats, ValueRun};
use cyclesteal_obs::SpanRecord;
use cyclesteal_store::crc::crc32;
use std::io::{self, Read, Write};

/// Largest payload either side will accept (64 MiB ≈ 2.7M queries per
/// batch — far past any sane batch, small enough to bound allocation).
pub const MAX_FRAME_BYTES: u32 = 1 << 26;

/// Request opcode: batched guarantee queries.
pub const OP_QUERY_BATCH: u8 = 1;
/// Request opcode: broker stats.
pub const OP_STATS: u8 = 2;
/// Request opcode: streaming sweep — one consecutive tick window of one
/// row, answered as arithmetic-run descriptors.
pub const OP_SWEEP: u8 = 3;
/// Request opcode: metrics/introspection — pulls the server's metrics
/// registry exposition plus its trace-span journal snapshot.
pub const OP_METRICS: u8 = 4;

/// Most run descriptors one sweep response can carry and still fit a
/// frame (24 B per run after status + run_count). The broker rejects
/// wider sweeps as non-retryable before solving.
pub const MAX_SWEEP_RUNS: usize = (MAX_FRAME_BYTES as usize - 5) / 24;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: error (payload is `code · retryable · message`).
pub const STATUS_ERR: u8 = 1;

/// On-wire deadline meaning "none".
pub const NO_DEADLINE_US: u64 = 0;

/// Marker error for a frame whose payload failed its CRC: the bytes
/// made it but are provably damaged. Distinguishable via
/// [`is_corrupt_frame`] so the client's retry loop can treat it as
/// transient (re-request) rather than protocol-fatal.
#[derive(Debug)]
pub struct CorruptFrame;

impl std::fmt::Display for CorruptFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame payload failed CRC check (corrupt on the wire)")
    }
}

impl std::error::Error for CorruptFrame {}

/// Whether `err` is the frame-CRC-mismatch marker ([`CorruptFrame`]).
pub fn is_corrupt_frame(err: &io::Error) -> bool {
    err.get_ref()
        .is_some_and(|inner| (inner as &(dyn std::error::Error + 'static)).is::<CorruptFrame>())
}

/// Serializes a complete frame (header + payload) into one buffer. The
/// server's corrupt-frame fault injection flips a byte of this buffer
/// before writing it raw — which is exactly what the CRC exists to
/// catch.
pub(crate) fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    // lint:allow(lossy-cast): response payloads answer requests that
    // already passed read_frame's 64 MiB cap, so the length fits u32
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame (length prefix, payload CRC, payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_BYTES)
        .ok_or_else(|| invalid("frame exceeds MAX_FRAME_BYTES"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload, verifying its CRC. `Ok(None)` is a clean
/// EOF *between* frames (the peer hung up); EOF mid-frame is an error,
/// and a CRC mismatch is the [`CorruptFrame`] marker error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    // A clean close before any header byte is a normal end of session;
    // a signal landing mid-wait (Interrupted) is retried, matching
    // read_exact's convention — neither should tear the session down.
    loop {
        match r.read(&mut header) {
            Ok(0) => return Ok(None),
            Ok(n) => {
                r.read_exact(&mut header[n..])?;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    // An impossible length is indistinguishable from a damaged length
    // byte (no honest peer sends one), so it classifies as wire
    // corruption: the connection is unusable, but a retry on a fresh
    // connection is sound.
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, CorruptFrame));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != stored_crc {
        return Err(io::Error::new(io::ErrorKind::InvalidData, CorruptFrame));
    }
    Ok(Some(payload))
}

/// Parses one frame out of an in-memory buffer — the readiness loop's
/// per-connection accumulator. `Ok(None)` means *incomplete, keep
/// reading*; a parsed frame returns its payload plus the bytes
/// consumed; an impossible length or a CRC mismatch is the
/// [`CorruptFrame`] marker, exactly as [`read_frame`] classifies them.
pub(crate) fn parse_frame(buf: &[u8]) -> io::Result<Option<(Vec<u8>, usize)>> {
    let Some(header) = buf.get(..8) else {
        return Ok(None);
    };
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, CorruptFrame));
    }
    let total = 8 + len as usize;
    let Some(payload) = buf.get(8..total) else {
        return Ok(None);
    };
    if crc32(payload) != stored_crc {
        return Err(io::Error::new(io::ErrorKind::InvalidData, CorruptFrame));
    }
    Ok(Some((payload.to_vec(), total)))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Rebuilds a [`Time`] from wire bits, rejecting NaN/infinite patterns
/// *before* construction — `Time::new` panics on them, and a corrupt or
/// hostile peer must never be able to panic the decoder.
fn finite_time(bits: u64) -> io::Result<Time> {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        Ok(Time::new(v))
    } else {
        Err(invalid("non-finite time value on the wire"))
    }
}

// ---- payload encode/decode -------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| invalid("payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    /// Exact inverse of an `i64::to_le_bytes` write — negative values
    /// round-trip without any integer cast.
    fn i64(&mut self) -> io::Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(invalid("trailing bytes in payload"))
        }
    }
}

/// Encodes a query-batch request payload. `deadline_us` is the
/// remaining budget in microseconds ([`NO_DEADLINE_US`] for none).
/// Emits the legacy (untraced) layout — identical to
/// [`encode_query_batch_traced`] with trace id 0.
pub fn encode_query_batch(queries: &[GuaranteeQuery], deadline_us: u64) -> Vec<u8> {
    encode_query_batch_traced(queries, deadline_us, 0)
}

/// Encodes a query-batch request payload carrying a trace id. A zero
/// `trace_id` omits the trailing field entirely, producing bytes
/// identical to what a pre-tracing client sends.
pub fn encode_query_batch_traced(
    queries: &[GuaranteeQuery],
    deadline_us: u64,
    trace_id: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(21 + queries.len() * 24);
    out.push(OP_QUERY_BATCH);
    out.extend_from_slice(&deadline_us.to_le_bytes());
    // lint:allow(lossy-cast): a batch whose count wraps u32 is a >96 GiB
    // payload — write_frame's 64 MiB cap rejects it before it reaches
    // the wire
    out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for q in queries {
        out.extend_from_slice(&q.setup.get().to_bits().to_le_bytes());
        out.extend_from_slice(&q.ticks_per_setup.to_le_bytes());
        out.extend_from_slice(&q.interrupts.to_le_bytes());
        out.extend_from_slice(&q.lifespan.get().to_bits().to_le_bytes());
    }
    if trace_id != 0 {
        out.extend_from_slice(&trace_id.to_le_bytes());
    }
    out
}

/// Decodes a query-batch request payload (after the op byte was read):
/// the queries plus the relative deadline budget in µs
/// ([`NO_DEADLINE_US`] = none). Accepts both the legacy and the traced
/// layout, discarding any trace id.
pub fn decode_query_batch(r: &mut &[u8]) -> io::Result<(Vec<GuaranteeQuery>, u64)> {
    decode_query_batch_traced(r).map(|(queries, deadline_us, _)| (queries, deadline_us))
}

/// Decodes a query-batch request payload, returning the trace id too:
/// the optional trailing u64 (0 = untraced / legacy peer). Exactly two
/// trailing lengths decode — 0 (legacy) and 8 (traced); anything else
/// is a truncation or miscount error.
pub fn decode_query_batch_traced(r: &mut &[u8]) -> io::Result<(Vec<GuaranteeQuery>, u64, u64)> {
    let mut rd = Reader { buf: r, pos: 0 };
    let deadline_us = rd.u64()?;
    let count = rd.u32()? as usize;
    // checked_mul: on 32-bit targets a hostile count could wrap the
    // size check and reach a huge Vec::with_capacity below.
    let body = count
        .checked_mul(24)
        .ok_or_else(|| invalid("query count does not match payload size"))?;
    let traced = match (rd.buf.len() - rd.pos).checked_sub(body) {
        Some(0) => false,
        Some(8) => true,
        _ => return Err(invalid("query count does not match payload size")),
    };
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        queries.push(GuaranteeQuery {
            setup: finite_time(rd.u64()?)?,
            ticks_per_setup: rd.u32()?,
            interrupts: rd.u32()?,
            lifespan: finite_time(rd.u64()?)?,
        });
    }
    let trace_id = if traced { rd.u64()? } else { 0 };
    rd.done()?;
    Ok((queries, deadline_us, trace_id))
}

/// Encodes a streaming-sweep request payload. `deadline_us` is the
/// remaining budget in microseconds ([`NO_DEADLINE_US`] for none).
/// Emits the legacy (untraced) layout — identical to
/// [`encode_sweep_traced`] with trace id 0.
pub fn encode_sweep(sweep: &SweepQuery, deadline_us: u64) -> Vec<u8> {
    encode_sweep_traced(sweep, deadline_us, 0)
}

/// Encodes a streaming-sweep request payload carrying a trace id. A
/// zero `trace_id` omits the trailing field entirely, producing bytes
/// identical to what a pre-tracing client sends.
pub fn encode_sweep_traced(sweep: &SweepQuery, deadline_us: u64, trace_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(45);
    out.push(OP_SWEEP);
    out.extend_from_slice(&deadline_us.to_le_bytes());
    out.extend_from_slice(&sweep.setup.get().to_bits().to_le_bytes());
    out.extend_from_slice(&sweep.ticks_per_setup.to_le_bytes());
    out.extend_from_slice(&sweep.interrupts.to_le_bytes());
    out.extend_from_slice(&sweep.first_tick.to_le_bytes());
    out.extend_from_slice(&sweep.count.to_le_bytes());
    if trace_id != 0 {
        out.extend_from_slice(&trace_id.to_le_bytes());
    }
    out
}

/// Decodes a streaming-sweep request payload (after the op byte was
/// read): the sweep plus the relative deadline budget in µs
/// ([`NO_DEADLINE_US`] = none). Accepts both the legacy and the traced
/// layout, discarding any trace id.
pub fn decode_sweep(r: &mut &[u8]) -> io::Result<(SweepQuery, u64)> {
    decode_sweep_traced(r).map(|(sweep, deadline_us, _)| (sweep, deadline_us))
}

/// Decodes a streaming-sweep request payload, returning the trace id
/// too: the optional trailing u64 (0 = untraced / legacy peer). Exactly
/// two trailing lengths decode — 0 (legacy) and 8 (traced).
pub fn decode_sweep_traced(r: &mut &[u8]) -> io::Result<(SweepQuery, u64, u64)> {
    let mut rd = Reader { buf: r, pos: 0 };
    let deadline_us = rd.u64()?;
    let sweep = SweepQuery {
        setup: finite_time(rd.u64()?)?,
        ticks_per_setup: rd.u32()?,
        interrupts: rd.u32()?,
        first_tick: rd.i64()?,
        count: rd.u32()?,
    };
    let trace_id = match rd.buf.len() - rd.pos {
        0 => 0,
        8 => rd.u64()?,
        _ => return Err(invalid("trailing bytes in payload")),
    };
    rd.done()?;
    Ok((sweep, deadline_us, trace_id))
}

/// Encodes a successful streaming-sweep response payload: the run
/// descriptors of the requested window.
pub fn encode_runs(runs: &[ValueRun]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + runs.len() * 24);
    out.push(STATUS_OK);
    // lint:allow(lossy-cast): the server caps sweep responses at
    // MAX_SWEEP_RUNS (~2.8M) before encoding, far inside u32
    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    for run in runs {
        out.extend_from_slice(&run.start.to_le_bytes());
        out.extend_from_slice(&run.step.to_le_bytes());
        out.extend_from_slice(&run.len.to_le_bytes());
    }
    out
}

/// Decodes a streaming-sweep response payload into run descriptors.
/// Descriptors are *transport* — expansion-side sanity (window length,
/// value bounds) is the client's job, since a corrupt-but-CRC-passing
/// frame is not in this layer's threat model while a truncated or
/// miscounted one is.
pub fn decode_runs(payload: &[u8]) -> io::Result<Vec<ValueRun>> {
    let body = response_body(payload)?;
    let mut rd = Reader { buf: body, pos: 0 };
    let count = rd.u32()? as usize;
    if count.checked_mul(24) != Some(body.len() - 4) {
        return Err(invalid("run count does not match payload size"));
    }
    let mut runs = Vec::with_capacity(count);
    for _ in 0..count {
        runs.push(ValueRun {
            start: rd.i64()?,
            step: rd.i64()?,
            len: rd.i64()?,
        });
    }
    rd.done()?;
    Ok(runs)
}

/// Encodes a successful query-batch response payload.
pub fn encode_answers(answers: &[GuaranteeAnswer]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + answers.len() * 16);
    out.push(STATUS_OK);
    // lint:allow(lossy-cast): answers mirror a decoded batch whose count
    // already fit u32 (decode_query_batch checked it against the frame)
    out.extend_from_slice(&(answers.len() as u32).to_le_bytes());
    for a in answers {
        out.extend_from_slice(&a.value.get().to_bits().to_le_bytes());
        out.extend_from_slice(&a.value_ticks.to_le_bytes());
    }
    out
}

/// Encodes a typed error response payload: `code · retryable · message`.
pub fn encode_error(err: &ServeError) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + err.message.len());
    out.push(STATUS_ERR);
    out.push(err.code.wire());
    out.push(u8::from(err.retryable));
    out.extend_from_slice(err.message.as_bytes());
    out
}

/// Decodes the body of a [`STATUS_ERR`] response into the typed error.
/// Unknown codes (a newer peer) degrade to [`ErrorCode::Internal`] but
/// keep the frame's own retryable flag — forward compatibility must not
/// turn a permanent error into a retry storm or vice versa.
pub fn decode_error(body: &[u8]) -> ServeError {
    match body {
        [code, retryable, message @ ..] => ServeError {
            code: ErrorCode::from_wire(*code).unwrap_or(ErrorCode::Internal),
            retryable: *retryable != 0,
            message: String::from_utf8_lossy(message).into_owned(),
        },
        // A short error body is itself malformed; report what we can.
        _ => ServeError::malformed("error frame too short for code + retryable flag"),
    }
}

/// Splits a response payload into its status-checked body: `Ok` bytes
/// after the status on success, the server's typed [`ServeError`]
/// (carried inside the `io::Error`, recoverable via
/// [`ServeError::from_io`]) otherwise.
fn response_body(payload: &[u8]) -> io::Result<&[u8]> {
    match payload.split_first() {
        Some((&STATUS_OK, body)) => Ok(body),
        Some((&STATUS_ERR, body)) => Err(decode_error(body).into()),
        _ => Err(invalid("empty response payload")),
    }
}

/// Decodes a query-batch response payload.
pub fn decode_answers(payload: &[u8]) -> io::Result<Vec<GuaranteeAnswer>> {
    let body = response_body(payload)?;
    let mut rd = Reader { buf: body, pos: 0 };
    let count = rd.u32()? as usize;
    if count.checked_mul(16) != Some(body.len() - 4) {
        return Err(invalid("answer count does not match payload size"));
    }
    let mut answers = Vec::with_capacity(count);
    for _ in 0..count {
        answers.push(GuaranteeAnswer {
            value: finite_time(rd.u64()?)?,
            value_ticks: rd.i64()?,
        });
    }
    rd.done()?;
    Ok(answers)
}

/// Encodes a stats response payload.
pub fn encode_stats(stats: &BrokerStats) -> Vec<u8> {
    let mut out = vec![STATUS_OK];
    for v in [
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        stats.cache.entries as u64,
        stats.cache.compressed_entries as u64,
        stats.cache.resident_bytes as u64,
        stats.resilience.shed,
        stats.resilience.deadline_rejects,
        stats.resilience.solve_panics,
        stats.resilience.flight_retries,
        stats.resilience.snapshot_failures,
        stats.resilience.tenant_sheds,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    // lint:allow(lossy-cast): the endpoint list is the server's
    // per-connection counter registry — a handful of entries, never 2³²
    out.extend_from_slice(&(stats.endpoints.len() as u32).to_le_bytes());
    for ep in &stats.endpoints {
        let name = ep.endpoint.as_bytes();
        // lint:allow(lossy-cast): min(255) clamps the length into u8
        // range on this same expression
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
        for v in [ep.requests, ep.queries, ep.coalesced, ep.p50_us, ep.p99_us] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes a stats response payload.
pub fn decode_stats(payload: &[u8]) -> io::Result<BrokerStats> {
    let body = response_body(payload)?;
    let mut rd = Reader { buf: body, pos: 0 };
    let cache = CacheStats {
        hits: rd.u64()?,
        misses: rd.u64()?,
        evictions: rd.u64()?,
        entries: rd.u64()? as usize,
        compressed_entries: rd.u64()? as usize,
        resident_bytes: rd.u64()? as usize,
    };
    let resilience = ResilienceStats {
        shed: rd.u64()?,
        deadline_rejects: rd.u64()?,
        solve_panics: rd.u64()?,
        flight_retries: rd.u64()?,
        snapshot_failures: rd.u64()?,
        tenant_sheds: rd.u64()?,
    };
    let count = rd.u32()? as usize;
    let mut endpoints = Vec::new();
    for _ in 0..count {
        let name_len = rd.u8()? as usize;
        let name = String::from_utf8_lossy(rd.take(name_len)?).into_owned();
        endpoints.push(EndpointStats {
            endpoint: name,
            requests: rd.u64()?,
            queries: rd.u64()?,
            coalesced: rd.u64()?,
            p50_us: rd.u64()?,
            p99_us: rd.u64()?,
        });
    }
    rd.done()?;
    Ok(BrokerStats {
        endpoints,
        cache,
        resilience,
    })
}

/// Smallest on-wire footprint of one span: three u64s plus the stage
/// length byte. Bounds both the encoder's defensive clamp and the
/// decoder's count sanity check.
const SPAN_MIN_BYTES: usize = 25;

/// Encodes a metrics/introspection (op 4) response payload: the
/// registry's text exposition followed by the span-journal snapshot.
/// Defensive clamps (exposition to the frame cap, stage names to 255
/// bytes, span count to what a frame can hold) keep every length prefix
/// exact without any lossy cast.
pub fn encode_metrics(text: &str, spans: &[SpanRecord]) -> Vec<u8> {
    let text = &text.as_bytes()[..text.len().min(MAX_FRAME_BYTES as usize)];
    let spans = &spans[..spans.len().min(MAX_FRAME_BYTES as usize / SPAN_MIN_BYTES)];
    let mut out = Vec::with_capacity(9 + text.len() + spans.len() * 40);
    out.push(STATUS_OK);
    // try_from cannot fail after the clamps above; the fallback merely
    // keeps the panic policy honest (a mismatched prefix fails decode,
    // never corrupts silently).
    out.extend_from_slice(&u32::try_from(text.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(text);
    out.extend_from_slice(&u32::try_from(spans.len()).unwrap_or(u32::MAX).to_le_bytes());
    for span in spans {
        out.extend_from_slice(&span.trace_id.to_le_bytes());
        out.extend_from_slice(&span.start_ns.to_le_bytes());
        out.extend_from_slice(&span.end_ns.to_le_bytes());
        let stage = &span.stage.as_bytes()[..span.stage.len().min(255)];
        out.push(u8::try_from(stage.len()).unwrap_or(u8::MAX));
        out.extend_from_slice(stage);
    }
    out
}

/// Decodes a metrics/introspection (op 4) response payload into the
/// exposition text and the span-journal snapshot.
pub fn decode_metrics(payload: &[u8]) -> io::Result<(String, Vec<SpanRecord>)> {
    let body = response_body(payload)?;
    let mut rd = Reader { buf: body, pos: 0 };
    let text_len = rd.u32()? as usize;
    let text = String::from_utf8_lossy(rd.take(text_len)?).into_owned();
    let count = rd.u32()? as usize;
    // A hostile count cannot reserve more memory than the remaining
    // payload could possibly justify (each span is ≥ 25 bytes).
    let min_bytes = count
        .checked_mul(SPAN_MIN_BYTES)
        .ok_or_else(|| invalid("span count does not match payload size"))?;
    if min_bytes > body.len() - rd.pos {
        return Err(invalid("span count does not match payload size"));
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        let trace_id = rd.u64()?;
        let start_ns = rd.u64()?;
        let end_ns = rd.u64()?;
        let stage_len = rd.u8()? as usize;
        let stage = String::from_utf8_lossy(rd.take(stage_len)?).into_owned();
        spans.push(SpanRecord {
            trace_id,
            stage,
            start_ns,
            end_ns,
        });
    }
    rd.done()?;
    Ok((text, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // Truncated mid-frame is an error, not a silent None.
        let mut r = &buf[..3];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn buffer_parsing_matches_stream_reading_at_every_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        // Every strict prefix of the first frame is "incomplete", never
        // an error or a phantom frame.
        let first_len = 8 + b"payload bytes".len();
        for cut in 0..first_len {
            assert!(
                parse_frame(&buf[..cut]).unwrap().is_none(),
                "cut at {cut} must read as incomplete"
            );
        }
        // A complete first frame parses and reports its exact extent,
        // leaving the second frame's bytes untouched.
        let (payload, consumed) = parse_frame(&buf).unwrap().expect("complete");
        assert_eq!(payload, b"payload bytes");
        assert_eq!(consumed, first_len);
        let (payload, _) = parse_frame(&buf[consumed..]).unwrap().expect("second");
        assert_eq!(payload, b"second");
        // A flipped payload byte is CRC-detected; an impossible length
        // is classified as corruption without waiting for more bytes.
        let mut bad = buf.clone();
        bad[9] ^= 0x01;
        assert!(is_corrupt_frame(&parse_frame(&bad).unwrap_err()));
        let mut bad = buf.clone();
        bad[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(is_corrupt_frame(&parse_frame(&bad).unwrap_err()));
    }

    #[test]
    fn truncated_frames_error_at_every_cut_point() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        // Mid-header, exactly at header end, and mid-payload: every
        // truncation is an error, never a hang or a silent None.
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_payload_bytes_are_detected_by_the_frame_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"the answer is 42").unwrap();
        // Flip each payload byte in turn (payload starts after the 8 B
        // header): every flip must surface as the CorruptFrame marker.
        for i in 8..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            let err = read_frame(&mut &bad[..]).unwrap_err();
            assert!(is_corrupt_frame(&err), "flip at {i} detected");
        }
        // A flipped CRC byte is also a mismatch.
        let mut bad = buf.clone();
        bad[5] ^= 0x80;
        assert!(is_corrupt_frame(&read_frame(&mut &bad[..]).unwrap_err()));
        // And an intact frame is not flagged.
        assert!(read_frame(&mut &buf[..]).unwrap().is_some());
    }

    #[test]
    fn oversized_frame_lengths_are_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        // Classified as wire corruption: an honest peer never sends an
        // impossible length, so it reads as a damaged length byte.
        assert!(is_corrupt_frame(&read_frame(&mut &buf[..]).unwrap_err()));
    }

    #[test]
    fn query_batches_round_trip_bit_identically() {
        let queries = vec![
            GuaranteeQuery {
                setup: secs(1.5),
                ticks_per_setup: 32,
                interrupts: 7,
                lifespan: secs(1234.5678),
            },
            GuaranteeQuery {
                setup: secs(0.1),
                ticks_per_setup: 1,
                interrupts: 0,
                lifespan: secs(0.0),
            },
        ];
        let payload = encode_query_batch(&queries, 250_000);
        assert_eq!(payload[0], OP_QUERY_BATCH);
        let (decoded, deadline_us) = decode_query_batch(&mut &payload[1..]).unwrap();
        assert_eq!(deadline_us, 250_000);
        for (a, b) in queries.iter().zip(&decoded) {
            assert_eq!(a.setup.get().to_bits(), b.setup.get().to_bits());
            assert_eq!(a.lifespan.get().to_bits(), b.lifespan.get().to_bits());
            assert_eq!(
                (a.ticks_per_setup, a.interrupts),
                (b.ticks_per_setup, b.interrupts)
            );
        }
        // No deadline travels as the zero sentinel.
        let payload = encode_query_batch(&queries, NO_DEADLINE_US);
        assert_eq!(decode_query_batch(&mut &payload[1..]).unwrap().1, 0);
        // A count/size mismatch is an error.
        assert!(decode_query_batch(&mut &payload[1..payload.len() - 1]).is_err());
    }

    #[test]
    fn non_finite_wire_times_error_instead_of_panicking() {
        let mut payload = encode_query_batch(
            &[GuaranteeQuery {
                setup: secs(1.0),
                ticks_per_setup: 8,
                interrupts: 1,
                lifespan: secs(10.0),
            }],
            NO_DEADLINE_US,
        );
        // Overwrite the setup bits (after op + deadline + count) with NaN.
        payload[13..21].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(decode_query_batch(&mut &payload[1..]).is_err());
    }

    #[test]
    fn answers_round_trip() {
        let answers = vec![
            GuaranteeAnswer {
                value: secs(42.125),
                value_ticks: 337,
            },
            GuaranteeAnswer {
                value: secs(0.0),
                value_ticks: -1,
            },
        ];
        let decoded = decode_answers(&encode_answers(&answers)).unwrap();
        for (a, b) in answers.iter().zip(&decoded) {
            assert_eq!(a.value.get().to_bits(), b.value.get().to_bits());
            assert_eq!(a.value_ticks, b.value_ticks);
        }
    }

    #[test]
    fn sweeps_and_runs_round_trip_bit_identically() {
        let sweep = SweepQuery {
            setup: secs(1.5),
            ticks_per_setup: 32,
            interrupts: 7,
            first_tick: 123_456_789,
            count: 1_000_000,
        };
        let payload = encode_sweep(&sweep, 250_000);
        assert_eq!(payload[0], OP_SWEEP);
        let (decoded, deadline_us) = decode_sweep(&mut &payload[1..]).unwrap();
        assert_eq!(deadline_us, 250_000);
        assert_eq!(decoded.setup.get().to_bits(), sweep.setup.get().to_bits());
        assert_eq!(
            (decoded.ticks_per_setup, decoded.interrupts),
            (sweep.ticks_per_setup, sweep.interrupts)
        );
        assert_eq!(
            (decoded.first_tick, decoded.count),
            (123_456_789, 1_000_000)
        );
        // A truncated request is an error, not a short read.
        assert!(decode_sweep(&mut &payload[1..payload.len() - 1]).is_err());
        // NaN setup bits are rejected before Time construction.
        let mut bad = payload.clone();
        bad[9..17].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(decode_sweep(&mut &bad[1..]).is_err());

        let runs = vec![
            ValueRun {
                start: 0,
                step: 0,
                len: 17,
            },
            ValueRun {
                start: -3,
                step: 1,
                len: 1 << 40,
            },
        ];
        let decoded = decode_runs(&encode_runs(&runs)).unwrap();
        assert_eq!(decoded, runs);
        // A count/size mismatch is an error at every truncation cut.
        let enc = encode_runs(&runs);
        for cut in 1..enc.len() {
            assert!(decode_runs(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn typed_errors_round_trip_code_flag_and_message() {
        let e = ServeError::overloaded(12, 8);
        let err = decode_answers(&encode_error(&e)).unwrap_err();
        let back = ServeError::from_io(&err).expect("typed error on the wire");
        assert_eq!(*back, e);

        // An unknown code from a future peer degrades to Internal but
        // keeps the frame's retryable flag.
        let mut payload = encode_error(&e);
        payload[1] = 0xEE;
        let err = decode_answers(&payload).unwrap_err();
        let back = ServeError::from_io(&err).unwrap();
        assert_eq!(back.code, ErrorCode::Internal);
        assert!(back.retryable);
        assert_eq!(back.message, e.message);
    }

    #[test]
    fn stats_round_trip() {
        let stats = BrokerStats {
            endpoints: vec![EndpointStats {
                endpoint: "tcp".into(),
                requests: 3,
                queries: 17,
                coalesced: 2,
                p50_us: 127,
                p99_us: 1023,
            }],
            cache: CacheStats {
                hits: 5,
                misses: 2,
                evictions: 1,
                entries: 0,
                compressed_entries: 2,
                resident_bytes: 16_000_000,
            },
            resilience: ResilienceStats {
                shed: 4,
                deadline_rejects: 3,
                solve_panics: 2,
                flight_retries: 1,
                snapshot_failures: 9,
                tenant_sheds: 6,
            },
        };
        let decoded = decode_stats(&encode_stats(&stats)).unwrap();
        assert_eq!(decoded.endpoints, stats.endpoints);
        assert_eq!(decoded.resilience, stats.resilience);
        let (a, b) = (decoded.cache, stats.cache);
        assert_eq!(
            (
                a.hits,
                a.misses,
                a.evictions,
                a.entries,
                a.compressed_entries,
                a.resident_bytes
            ),
            (
                b.hits,
                b.misses,
                b.evictions,
                b.entries,
                b.compressed_entries,
                b.resident_bytes
            )
        );
    }

    #[test]
    fn trace_ids_ride_query_batches_version_tolerantly() {
        let queries = vec![GuaranteeQuery {
            setup: secs(1.5),
            ticks_per_setup: 32,
            interrupts: 7,
            lifespan: secs(1234.5678),
        }];
        // Trace 0 emits byte-for-byte the legacy layout: an old server
        // sees exactly what an old client would have sent.
        let legacy = encode_query_batch(&queries, 250_000);
        assert_eq!(legacy, encode_query_batch_traced(&queries, 250_000, 0));
        // A nonzero trace adds exactly the trailing 8 bytes.
        let traced = encode_query_batch_traced(&queries, 250_000, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(traced.len(), legacy.len() + 8);
        assert_eq!(&traced[..legacy.len()], &legacy[..]);
        let (decoded, deadline_us, trace_id) =
            decode_query_batch_traced(&mut &traced[1..]).unwrap();
        assert_eq!((deadline_us, trace_id), (250_000, 0xDEAD_BEEF_CAFE_F00D));
        assert_eq!(decoded.len(), 1);
        // A new server decodes a legacy payload as untraced (id 0), and
        // the legacy-signature decoder tolerates a traced payload.
        assert_eq!(decode_query_batch_traced(&mut &legacy[1..]).unwrap().2, 0);
        assert!(decode_query_batch(&mut &traced[1..]).is_ok());
        // Truncation at every cut: only the exact legacy boundary
        // decodes (as untraced) — every other cut is an error, in
        // particular all seven cuts inside the trailing trace field.
        for cut in 1..traced.len() {
            let slice = &traced[1..cut];
            let got = decode_query_batch_traced(&mut &slice[..]);
            if cut == legacy.len() {
                assert_eq!(got.unwrap().2, 0, "legacy boundary decodes untraced");
            } else {
                assert!(got.is_err(), "cut at {cut} must error");
            }
        }
    }

    #[test]
    fn trace_ids_ride_sweeps_version_tolerantly() {
        let sweep = SweepQuery {
            setup: secs(1.5),
            ticks_per_setup: 32,
            interrupts: 7,
            first_tick: 123_456_789,
            count: 1_000_000,
        };
        let legacy = encode_sweep(&sweep, 250_000);
        assert_eq!(legacy, encode_sweep_traced(&sweep, 250_000, 0));
        let traced = encode_sweep_traced(&sweep, 250_000, 99);
        assert_eq!(traced.len(), legacy.len() + 8);
        assert_eq!(&traced[..legacy.len()], &legacy[..]);
        let (decoded, deadline_us, trace_id) = decode_sweep_traced(&mut &traced[1..]).unwrap();
        assert_eq!((deadline_us, trace_id), (250_000, 99));
        assert_eq!(
            (decoded.first_tick, decoded.count),
            (123_456_789, 1_000_000)
        );
        assert_eq!(decode_sweep_traced(&mut &legacy[1..]).unwrap().2, 0);
        assert!(decode_sweep(&mut &traced[1..]).is_ok());
        for cut in 1..traced.len() {
            let slice = &traced[1..cut];
            let got = decode_sweep_traced(&mut &slice[..]);
            if cut == legacy.len() {
                assert_eq!(got.unwrap().2, 0, "legacy boundary decodes untraced");
            } else {
                assert!(got.is_err(), "cut at {cut} must error");
            }
        }
    }

    #[test]
    fn metrics_responses_round_trip_text_and_spans() {
        let text = "cyclesteal_requests_total{endpoint=\"tcp\"} 17\n";
        let spans = vec![
            SpanRecord {
                trace_id: 0xABCD,
                stage: "broker.solve".into(),
                start_ns: 100,
                end_ns: 250,
            },
            SpanRecord {
                trace_id: u64::MAX,
                stage: String::new(),
                start_ns: 0,
                end_ns: u64::MAX,
            },
        ];
        let payload = encode_metrics(text, &spans);
        assert_eq!(payload[0], STATUS_OK);
        let (got_text, got_spans) = decode_metrics(&payload).unwrap();
        assert_eq!(got_text, text);
        assert_eq!(got_spans, spans);
        // Empty on both axes round-trips too.
        let (t, s) = decode_metrics(&encode_metrics("", &[])).unwrap();
        assert!(t.is_empty() && s.is_empty());
        // Every length is an exact prefix, so every truncation cut is an
        // error — never a short read or a phantom span.
        for cut in 1..payload.len() {
            assert!(decode_metrics(&payload[..cut]).is_err(), "cut at {cut}");
        }
        // A hostile span count cannot force a large allocation: the
        // count/size sanity check rejects it first.
        let mut bad = encode_metrics("x", &[]);
        let n = bad.len();
        bad[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_metrics(&bad).is_err());
    }

    #[test]
    fn metrics_encoding_clamps_oversized_stage_names() {
        let spans = vec![SpanRecord {
            trace_id: 1,
            stage: "s".repeat(300),
            start_ns: 5,
            end_ns: 6,
        }];
        let (_, got) = decode_metrics(&encode_metrics("", &spans)).unwrap();
        assert_eq!(got[0].stage.len(), 255, "stage clamped to the u8 prefix");
        assert_eq!(got[0].stage, "s".repeat(255));
        assert_eq!((got[0].trace_id, got[0].start_ns, got[0].end_ns), (1, 5, 6));
    }
}
