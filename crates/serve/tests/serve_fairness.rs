//! Multi-tenant fairness acceptance test.
//!
//! Two tenants share one broker. Tenant A fires the deep cold solve
//! (the 10⁹-tick acceptance point in release; two orders smaller in
//! debug so tier-1 `cargo test` stays quick). Tenant B fires warm point
//! queries on its own, already-solved grid the whole time. The fairness
//! contract:
//!
//! * B's p99 under A's load — read from the broker's own per-endpoint
//!   latency digests ([`cyclesteal_serve::BrokerStats`]) — stays within
//!   a fixed multiple of B's solo p99: a tenant's cold solve may warm
//!   the cache, never monopolize the serving path.
//! * Not a single B query sheds while A solves (B's warm hits bypass
//!   the cold-solve lane machinery entirely), and no tenant-quota shed
//!   fires anywhere.
//! * B's answers under load are bit-identical to B's answers solo.

use cyclesteal_core::time::secs;
use cyclesteal_serve::{Broker, BrokerConfig, EndpointStats, GuaranteeAnswer, GuaranteeQuery};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// B's p99 under load may exceed its solo p99 by at most this factor
/// (with a floor absorbing scheduler noise on µs-scale solo numbers).
const P99_FACTOR: u64 = 50;
const P99_FLOOR_US: u64 = 100;

/// Tenant A's cold solve: `Q = 32` at `p = 16`. Release exercises the
/// 10⁹-tick acceptance point; debug scales the lifespan down two orders
/// so the default test profile finishes promptly.
fn deep_query() -> GuaranteeQuery {
    let lifespan = if cfg!(debug_assertions) {
        312_500.0
    } else {
        31_250_000.0
    };
    GuaranteeQuery {
        setup: secs(1.0),
        ticks_per_setup: 32,
        interrupts: 16,
        lifespan: secs(lifespan),
    }
}

/// Tenant B's warm point queries: a small grid, several `(p, L)`
/// points, all answered from one cached table.
fn warm_queries() -> Vec<GuaranteeQuery> {
    (0..8u32)
        .map(|i| GuaranteeQuery {
            setup: secs(1.0),
            ticks_per_setup: 8,
            interrupts: 1 + i % 3,
            lifespan: secs(10.0 + 12.0 * f64::from(i)),
        })
        .collect()
}

fn endpoint<'a>(stats: &'a [EndpointStats], name: &str) -> &'a EndpointStats {
    stats
        .iter()
        .find(|e| e.endpoint == name)
        .unwrap_or_else(|| panic!("endpoint {name} missing from stats"))
}

#[test]
fn a_cold_tenant_cannot_blow_up_a_warm_tenants_p99() {
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let queries = warm_queries();

    // Warm B's grid, then measure B's solo p99 on its own endpoint.
    let reference: Vec<GuaranteeAnswer> = broker.query_batch(&queries).unwrap();
    let solo_batches = 300;
    for _ in 0..solo_batches {
        let answers = broker.query_batch_at("b_solo", &queries).unwrap();
        assert_eq!(answers, reference, "warm answers drifted solo");
    }
    let solo_p99 = endpoint(&broker.stats().endpoints, "b_solo").p99_us;

    // Tenant A's cold solve runs concurrently with B's warm stream.
    let a_done = Arc::new(AtomicBool::new(false));
    let a_thread = {
        let broker = broker.clone();
        let a_done = a_done.clone();
        std::thread::spawn(move || {
            let result = broker.query_batch_at("a_cold", &[deep_query()]);
            a_done.store(true, Ordering::SeqCst);
            result
        })
    };
    let mut load_batches = 0u64;
    // Keep firing until A lands, with a floor so the p99 digest always
    // has data and a ceiling so a stuck solve fails fast instead of
    // spinning forever.
    while load_batches < 200 || (!a_done.load(Ordering::SeqCst) && load_batches < 500_000) {
        let answers = broker.query_batch_at("b_load", &queries).unwrap();
        assert_eq!(answers, reference, "warm answers drifted under load");
        load_batches += 1;
    }
    let a_answers = a_thread.join().expect("tenant A panicked").unwrap();
    assert!(
        a_answers[0].value_ticks > 0,
        "the deep solve answered nothing"
    );

    let stats = broker.stats();
    let load_p99 = endpoint(&stats.endpoints, "b_load").p99_us;
    let budget = P99_FACTOR * solo_p99.max(P99_FLOOR_US);
    assert!(
        load_p99 <= budget,
        "B's p99 under A's cold solve: {load_p99}µs vs solo {solo_p99}µs \
         (budget {budget}µs over {load_batches} load batches)"
    );

    // Fairness also means *no shedding*: B's warm hits never touch the
    // cold-solve quota, and nothing about this workload may overload
    // the broker.
    assert_eq!(stats.resilience.shed, 0, "a query was shed");
    assert_eq!(
        stats.resilience.tenant_sheds, 0,
        "a tenant-quota shed fired"
    );
    assert_eq!(stats.resilience.deadline_rejects, 0);
}
