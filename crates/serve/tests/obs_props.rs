//! Observability acceptance tests.
//!
//! Three contracts from the obs PR:
//!
//! 1. **Trace propagation** — a client-chosen trace id rides the op-1/
//!    op-3 wire frames and stamps a span at *every* pipeline stage the
//!    request crosses (`server.recv` → `server.dispatch` →
//!    `broker.admission` → `broker.lane` → `broker.solve` →
//!    `broker.batch` on a cold solve), all retrievable over the op-4
//!    introspection pull.
//! 2. **Reconciliation** — the op-4 text exposition and
//!    [`Broker::stats`] are two reads of the *same* atomics: endpoint
//!    counters match exactly, and summing the per-shard cache gauges
//!    reproduces [`cyclesteal_dp::CacheStats`] totals exactly, even
//!    after concurrent load.
//! 3. **Profiling neutrality** — enabling solver phase profiling (and
//!    tracing) changes observability output only; answers stay
//!    bit-identical to an uninstrumented broker.

use cyclesteal_core::time::secs;
use cyclesteal_obs::{parse_exposition, LogicalClock, Sample};
use cyclesteal_serve::{Broker, BrokerConfig, Client, GuaranteeQuery, ObsHub, Server, SweepQuery};
use std::collections::BTreeSet;
use std::sync::Arc;

fn query(p: u32, lifespan: f64) -> GuaranteeQuery {
    GuaranteeQuery {
        setup: secs(1.0),
        ticks_per_setup: 8,
        interrupts: p,
        lifespan: secs(lifespan),
    }
}

/// The one value a series must have: exactly one sample with `name` and
/// (at least) the given label pair.
fn sample_value(samples: &[Sample], name: &str, label: (&str, &str)) -> u64 {
    let matches: Vec<&Sample> = samples
        .iter()
        .filter(|s| {
            s.name == name
                && s.labels
                    .iter()
                    .any(|(k, v)| (k.as_str(), v.as_str()) == label)
        })
        .collect();
    assert_eq!(
        matches.len(),
        1,
        "expected exactly one sample of {name}{{{}={}}}, got {matches:?}",
        label.0,
        label.1
    );
    matches[0].value
}

/// Sums every sample of `name` across all label sets (e.g. a per-shard
/// gauge summed over shards).
fn sample_sum(samples: &[Sample], name: &str) -> u64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

#[test]
fn trace_ids_stamp_every_pipeline_stage_on_a_cold_solve() {
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let server = Server::start("127.0.0.1:0", broker).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A cold batch under an explicit trace id: the grid is fresh, so
    // the request must cross admission, a fairness lane and a solve.
    let batch_trace = 0xB10C_5EED_u64;
    client
        .query_batch_traced(&[query(2, 80.0)], None, batch_trace)
        .unwrap();
    // And a sweep under a different id, against a different grid so it
    // also runs cold.
    let sweep_trace = 0x051E_E7ED_u64;
    client
        .query_sweep_traced(
            &SweepQuery {
                setup: secs(2.0),
                ticks_per_setup: 4,
                interrupts: 2,
                first_tick: 1,
                count: 64,
            },
            None,
            sweep_trace,
        )
        .unwrap();

    let (_text, spans) = client.fetch_metrics().unwrap();
    for span in &spans {
        assert!(span.end_ns >= span.start_ns, "span runs forward: {span:?}");
    }
    let stages_of = |trace: u64| -> BTreeSet<String> {
        spans
            .iter()
            .filter(|s| s.trace_id == trace)
            .map(|s| s.stage.clone())
            .collect()
    };

    let batch_stages = stages_of(batch_trace);
    for stage in [
        "server.recv",
        "server.dispatch",
        "broker.admission",
        "broker.lane",
        "broker.solve",
        "broker.batch",
    ] {
        assert!(
            batch_stages.contains(stage),
            "cold batch trace missing {stage}: {batch_stages:?}"
        );
    }

    let sweep_stages = stages_of(sweep_trace);
    for stage in [
        "server.recv",
        "server.dispatch",
        "broker.admission",
        "broker.lane",
        "broker.solve",
        "broker.sweep",
    ] {
        assert!(
            sweep_stages.contains(stage),
            "cold sweep trace missing {stage}: {sweep_stages:?}"
        );
    }
    server.shutdown();
}

#[test]
fn op4_pull_reconciles_exactly_with_broker_stats() {
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let server = Server::start("127.0.0.1:0", broker).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for round in 1..=3u32 {
        let queries: Vec<GuaranteeQuery> = (1..=3)
            .map(|p| query(p, 30.0 * f64::from(round * p)))
            .collect();
        client.query_batch(&queries).unwrap();
    }

    // Stats first, then the op-4 pull: neither endpoint touches the
    // request counters, so with no traffic in between the two reads
    // must agree exactly.
    let stats = client.stats().unwrap();
    let (text, _spans) = client.fetch_metrics().unwrap();
    let samples = parse_exposition(&text);

    let tcp = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "tcp")
        .expect("tcp endpoint served traffic");
    let label = ("endpoint", "tcp");
    assert_eq!(
        sample_value(&samples, "cyclesteal_requests_total", label),
        tcp.requests
    );
    assert_eq!(
        sample_value(&samples, "cyclesteal_queries_total", label),
        tcp.queries
    );
    assert_eq!(
        sample_value(&samples, "cyclesteal_coalesced_total", label),
        tcp.coalesced
    );
    assert_eq!(
        sample_value(&samples, "cyclesteal_request_latency_us_count", label),
        tcp.requests,
        "every request records exactly one latency observation"
    );

    // Per-shard cache gauges sum to the CacheStats totals — same
    // atomics, one relaxed read each.
    for (series, want) in [
        ("cyclesteal_cache_shard_hits", stats.cache.hits),
        ("cyclesteal_cache_shard_misses", stats.cache.misses),
        ("cyclesteal_cache_shard_evictions", stats.cache.evictions),
        ("cyclesteal_cache_shard_entries", stats.cache.entries as u64),
        (
            "cyclesteal_cache_shard_compressed_entries",
            stats.cache.compressed_entries as u64,
        ),
        (
            "cyclesteal_cache_shard_resident_bytes",
            stats.cache.resident_bytes as u64,
        ),
    ] {
        assert_eq!(sample_sum(&samples, series), want, "series {series}");
    }

    // Per-tenant traffic: the single grid in play accounts for every
    // query the tcp endpoint counted.
    assert_eq!(
        sample_value(
            &samples,
            "cyclesteal_tenant_queries_total",
            ("tenant", "1x8")
        ),
        tcp.queries
    );
    server.shutdown();
}

#[test]
fn shard_gauges_stay_consistent_under_concurrent_load() {
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    std::thread::scope(|scope| {
        for t in 0..8u32 {
            let broker = &broker;
            scope.spawn(move || {
                for round in 0..20u32 {
                    let p = 1 + (t + round) % 3;
                    let queries = [query(p, 10.0 + f64::from(round))];
                    broker.query_batch(&queries).unwrap();
                }
            });
        }
    });
    let samples = parse_exposition(&broker.metrics_text());
    let stats = broker.stats();
    assert_eq!(
        sample_sum(&samples, "cyclesteal_cache_shard_hits"),
        stats.cache.hits
    );
    assert_eq!(
        sample_sum(&samples, "cyclesteal_cache_shard_misses"),
        stats.cache.misses
    );
    assert_eq!(
        sample_value(
            &samples,
            "cyclesteal_requests_total",
            ("endpoint", "inproc")
        ),
        160,
        "8 threads x 20 rounds, one request each"
    );
}

#[test]
fn profiling_and_tracing_leave_answers_bit_identical() {
    let plain = Broker::new(BrokerConfig::default()).unwrap();
    // The instrumented broker runs under a logical clock (so this test
    // is deterministic) with phase profiling enabled and every request
    // traced.
    let hub = ObsHub::with_clock(Arc::new(LogicalClock::with_step(100)));
    let instrumented = Broker::with_obs(BrokerConfig::default(), hub).unwrap();
    instrumented.enable_profiling();

    let queries: Vec<GuaranteeQuery> = (1..=3)
        .flat_map(|p| [query(p, 25.0 * f64::from(p)), query(p, 90.0)])
        .collect();
    let want = plain.query_batch(&queries).unwrap();
    let got = instrumented
        .query_batch_traced("inproc", &queries, None, 0x0B5E_7E57)
        .unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.value.get().to_bits(), w.value.get().to_bits());
        assert_eq!(g.value_ticks, w.value_ticks);
    }

    // The cold solves recorded phase timings into the registry. The
    // cache's default compressed path is event-driven (no tick walk),
    // so `event_loop` is the phase guaranteed to fire; every phase
    // series exists either way (registered eagerly), and only observed
    // phases count.
    let samples = parse_exposition(&instrumented.metrics_text());
    assert!(
        sample_value(
            &samples,
            "cyclesteal_solve_phase_ns_count",
            ("phase", "event_loop")
        ) >= 1,
        "cold event-driven solves time the event-loop phase"
    );
    assert!(
        sample_sum(&samples, "cyclesteal_solve_phase_ns_sum") > 0,
        "the logical clock ticked between phases"
    );
    // ...and the logical clock makes the span timings byte-stable:
    // every span is a whole number of 100 ns steps.
    let spans = instrumented.obs().journal().snapshot();
    assert!(!spans.is_empty());
    for span in &spans {
        assert_eq!(span.start_ns % 100, 0);
        assert_eq!(span.end_ns % 100, 0);
    }
}
