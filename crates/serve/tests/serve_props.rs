//! Serving-layer acceptance tests.
//!
//! The headline contract: under concurrent multi-client load (8+
//! client threads, in-process and over TCP) the broker's batched
//! answers are **bit-identical** to querying tables solved directly
//! through [`TableCache::solve_many`] — the broker adds batching,
//! coalescing and eviction, never a different number. Plus the full
//! persistence loop: snapshot-on-evict under a memory budget, then a
//! warm start that serves without a single solve.

use cyclesteal_core::time::{secs, Time};
use cyclesteal_dp::{SolveConfig, TableCache};
use cyclesteal_serve::{Broker, BrokerConfig, Client, GuaranteeAnswer, GuaranteeQuery, Server};
use std::sync::Arc;

const CLIENT_THREADS: usize = 8;

/// The mixed workload: two grids, several budgets and lifespans.
fn workload() -> Vec<GuaranteeQuery> {
    let mut queries = Vec::new();
    for (setup, ticks) in [(1.0, 8u32), (2.0, 4)] {
        for p in 1..=3u32 {
            for u in [0.0, 0.4, 17.0, 63.5, 120.0, 200.0] {
                queries.push(GuaranteeQuery {
                    setup: secs(setup),
                    ticks_per_setup: ticks,
                    interrupts: p,
                    lifespan: secs(u),
                });
            }
        }
    }
    queries
}

/// Reference answers straight from `TableCache::solve_many` — the
/// direct path the broker must match bit for bit.
fn reference_answers(queries: &[GuaranteeQuery]) -> Vec<GuaranteeAnswer> {
    let cache = TableCache::new();
    let configs: Vec<SolveConfig> = queries
        .iter()
        .map(|q| SolveConfig {
            setup: q.setup,
            ticks_per_setup: q.ticks_per_setup,
            max_lifespan: Time::max(q.lifespan, secs(1.0)),
            max_interrupts: q.interrupts,
        })
        .collect();
    let tables = cache.solve_many(&configs);
    queries
        .iter()
        .zip(&tables)
        .map(|(q, table)| {
            let ticks = table
                .grid()
                .to_ticks(q.lifespan)
                .clamp(0, table.max_ticks());
            GuaranteeAnswer {
                value: table.value(q.interrupts, q.lifespan),
                value_ticks: table.value_ticks(q.interrupts, ticks),
            }
        })
        .collect()
}

fn assert_bit_identical(got: &[GuaranteeAnswer], want: &[GuaranteeAnswer], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: answer count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.value.get().to_bits(),
            w.value.get().to_bits(),
            "{ctx}: value bits differ at query {i} ({} vs {})",
            g.value,
            w.value
        );
        assert_eq!(
            g.value_ticks, w.value_ticks,
            "{ctx}: ticks differ at query {i}"
        );
    }
}

#[test]
fn broker_matches_solve_many_bit_identically_under_concurrent_load() {
    let queries = workload();
    let want = reference_answers(&queries);
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());

    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let broker = broker.clone();
            let queries = &queries;
            let want = &want;
            scope.spawn(move || {
                for round in 0..4 {
                    // Each thread rotates the batch so concurrent
                    // requests overlap on every grid in every order.
                    let shift = (t * 5 + round) % queries.len();
                    let mut batch = queries.clone();
                    batch.rotate_left(shift);
                    let mut expect = want.clone();
                    expect.rotate_left(shift);
                    let got = broker.query_batch(&batch).unwrap();
                    assert_bit_identical(&got, &expect, &format!("thread {t} round {round}"));
                }
            });
        }
    });

    let stats = broker.stats();
    // Two grids → two solves, no matter how many threads hammered it.
    assert_eq!(
        stats.cache.misses, 2,
        "batching+coalescing broke: {stats:?}"
    );
    assert_eq!(stats.endpoints.len(), 1);
    assert_eq!(stats.endpoints[0].requests, (CLIENT_THREADS * 4) as u64);
}

#[test]
fn tcp_clients_match_solve_many_bit_identically() {
    let queries = workload();
    let want = reference_answers(&queries);
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let server = Server::start("127.0.0.1:0", broker.clone()).unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let queries = &queries;
            let want = &want;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..3 {
                    let got = client.query_batch(queries).unwrap();
                    assert_bit_identical(&got, want, &format!("tcp thread {t} round {round}"));
                }
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.misses, 2);
    let tcp = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "tcp")
        .expect("tcp endpoint recorded");
    assert_eq!(tcp.requests, (CLIENT_THREADS * 3) as u64);
    assert_eq!(tcp.queries, (CLIENT_THREADS * 3 * queries.len()) as u64);
    assert!(tcp.p99_us >= tcp.p50_us);
    server.shutdown();
}

#[test]
fn eviction_snapshots_and_warm_start_serves_without_solving() {
    let dir = std::env::temp_dir().join(format!("cyclesteal-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let queries = workload();
    let want = reference_answers(&queries);

    // Phase 1: a budgeted broker under load — evictions must happen and
    // every evicted table must land in the snapshot dir.
    {
        let broker = Broker::new(BrokerConfig {
            threads: 2,
            memory_budget: Some(1), // evict everything immediately
            snapshot_dir: Some(dir.clone()),
            max_inflight: 0,
            ..BrokerConfig::default()
        })
        .unwrap();
        let got = broker.query_batch(&queries).unwrap();
        assert_bit_identical(&got, &want, "budgeted broker");
        let stats = broker.stats();
        assert!(stats.cache.evictions >= 2, "budget must evict: {stats:?}");
        assert_eq!(stats.cache.resident_bytes, 0);
    }
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cst"))
        .collect();
    assert_eq!(snapshots.len(), 2, "one snapshot per evicted grid");

    // Phase 2: a fresh broker warm-starts from the snapshots and serves
    // the whole workload without a single solve.
    {
        let broker = Broker::new(BrokerConfig {
            threads: 2,
            memory_budget: None,
            snapshot_dir: Some(dir.clone()),
            max_inflight: 0,
            ..BrokerConfig::default()
        })
        .unwrap();
        assert_eq!(
            broker.cache().stats().compressed_entries,
            2,
            "warm start loaded"
        );
        let got = broker.query_batch(&queries).unwrap();
        assert_bit_identical(&got, &want, "warm broker");
        let stats = broker.stats();
        assert_eq!(stats.cache.misses, 0, "warm start must skip every solve");

        // Graceful snapshot keeps the directory current.
        assert_eq!(broker.snapshot().unwrap(), 2);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
