//! Streaming wire-mode (op 3) property suite.
//!
//! The contract under test: a sweep answered as arithmetic-run
//! descriptors and expanded client-side is **bit-identical** to asking
//! the non-streaming op-1 path for every tick of the window — under
//! both row representations — and a damaged response can only ever
//! surface as a *detected* transport error (CRC-caught, classified
//! transient), never as a believed wrong answer:
//!
//! * `value_runs` → op-3 codec → `expand_value_runs` reproduces
//!   `value_ticks` at every covered tick, for [`RowRepr::Breakpoints`]
//!   and [`RowRepr::Runs`] alike — and the two representations emit
//!   *identical descriptors*, not merely equal expansions.
//! * The broker's sweep entry matches its own op-1 batch answers bit
//!   for bit at every tick of the window.
//! * Truncating the response frame at **every** byte cut is an error —
//!   never a hang, never a silently short answer.
//! * Flipping **any** single payload byte is caught by the frame CRC
//!   and classified as the corrupt-frame marker (the client's
//!   transient, retry-worthy class), so a damaged frame is re-requested
//!   rather than expanded.

use cyclesteal_core::time::secs;
use cyclesteal_dp::value::{RowRepr, SolveOptions};
use cyclesteal_dp::{expand_value_runs, CompressedTable, Grid};
use cyclesteal_serve::{wire, Broker, BrokerConfig, GuaranteeQuery, SweepQuery};
use proptest::prelude::*;

fn solve_repr(q: u32, max_u: f64, p: u32, repr: RowRepr) -> CompressedTable {
    CompressedTable::solve_with(
        secs(1.0),
        q,
        secs(max_u),
        p,
        SolveOptions {
            keep_policy: false,
            repr,
            ..SolveOptions::default()
        },
    )
}

/// Maps two unit draws onto a valid `(first_tick, count)` window of a
/// `0..=max_ticks` domain.
fn window(max_ticks: i64, a: f64, b: f64) -> (i64, i64) {
    let first = ((a * max_ticks as f64) as i64).clamp(0, max_ticks);
    let remaining = max_ticks - first + 1;
    let count = (1.0 + b * (remaining - 1).min(300) as f64) as i64;
    (first, count.clamp(1, remaining))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Descriptors → wire → expansion reproduces the exact staircase
    /// under both representations, and the representations agree on the
    /// descriptors themselves.
    #[test]
    fn streamed_windows_expand_bit_identically(
        q in 2u32..12,
        max_u in 10.0f64..80.0,
        p in 0u32..4,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let flat = solve_repr(q, max_u, p, RowRepr::Breakpoints);
        let runs = solve_repr(q, max_u, p, RowRepr::Runs);
        let (first, count) = window(flat.max_ticks(), a, b);
        let descriptors = flat.value_runs(p, first, count);
        prop_assert_eq!(&descriptors, &runs.value_runs(p, first, count),
            "representations must emit identical descriptors");

        // Through the real op-3 response codec, frame and all.
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &wire::encode_runs(&descriptors)).unwrap();
        let payload = wire::read_frame(&mut &frame[..]).unwrap().unwrap();
        let expanded = expand_value_runs(&wire::decode_runs(&payload).unwrap());
        prop_assert_eq!(expanded.len() as i64, count);
        for (j, &v) in expanded.iter().enumerate() {
            let l = first + j as i64;
            prop_assert_eq!(v, flat.value_ticks(p, l), "tick {}", l);
            prop_assert_eq!(v, runs.value_ticks(p, l), "tick {} (runs)", l);
        }
    }

    /// A response frame truncated at any cut is an error, and any
    /// single flipped payload byte is CRC-detected and classified
    /// transient — a damaged sweep is never believed.
    #[test]
    fn damaged_sweep_frames_are_detected_at_every_position(
        q in 2u32..10,
        max_u in 10.0f64..40.0,
        p in 0u32..3,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let table = solve_repr(q, max_u, p, RowRepr::Runs);
        let (first, count) = window(table.max_ticks(), a, b);
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &wire::encode_runs(&table.value_runs(p, first, count)))
            .unwrap();
        // Truncation at every cut: error, never a phantom short answer.
        for cut in 0..frame.len() {
            prop_assert!(
                wire::read_frame(&mut &frame[..cut]).map(|f| f.is_none()).unwrap_or(true),
                "cut at {} produced a frame", cut
            );
        }
        // Every single-byte payload flip trips the CRC, and the marker
        // is the transient (retry) class, not a decodable answer.
        for i in 8..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            let err = wire::read_frame(&mut &bad[..]).unwrap_err();
            prop_assert!(wire::is_corrupt_frame(&err), "flip at {} undetected", i);
        }
    }

    /// The broker's streaming entry answers exactly what its op-1 batch
    /// entry answers, tick for tick.
    #[test]
    fn broker_sweeps_match_batch_answers(
        q in 2u32..10,
        max_u in 10.0f64..60.0,
        p in 0u32..3,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let broker = Broker::new(BrokerConfig::default()).unwrap();
        let grid = Grid::new(secs(1.0), q);
        let max_ticks = grid.to_ticks(secs(max_u));
        let (first, count) = window(max_ticks, a, b);
        let sweep = SweepQuery {
            setup: secs(1.0),
            ticks_per_setup: q,
            interrupts: p,
            first_tick: first,
            count: u32::try_from(count).unwrap(),
        };
        let expanded = expand_value_runs(&broker.query_sweep(&sweep).unwrap());
        let queries: Vec<GuaranteeQuery> = (0..count)
            .map(|j| GuaranteeQuery {
                setup: secs(1.0),
                ticks_per_setup: q,
                interrupts: p,
                lifespan: grid.to_time(first + j),
            })
            .collect();
        let answers = broker.query_batch(&queries).unwrap();
        prop_assert_eq!(expanded.len(), answers.len());
        for (j, (v, answer)) in expanded.iter().zip(&answers).enumerate() {
            prop_assert_eq!(*v, answer.value_ticks, "tick {}", first + j as i64);
        }
    }
}
