//! Chaos suite: the serving layer's failure contract under seeded fault
//! injection.
//!
//! The invariant, checked across ≥ 64 seeded [`FaultPlan`]s (connection
//! drops, read delays, corrupted wire bytes, panicking solves, failing
//! snapshot writes):
//!
//! > Every query returns either the **bit-identical answer** (vs. the
//! > direct `TableCache` path) or a **typed retryable / transient
//! > transport error** — never a hang, never an escaped panic, never a
//! > wrong value. Once the faults clear, a retrying client converges
//! > to exact answers on the same connection object.
//!
//! Fault plans are process-global, so every test here serializes on one
//! lock; integration-test binaries run apart from the unit-test binary,
//! so nothing outside this file ever sees an armed plan.

// The sweep's per-seed progress lines are this suite's output contract
// for humans bisecting a failing seed.
#![allow(clippy::print_stdout)]

use cyclesteal_core::time::{secs, Time};
use cyclesteal_dp::{CompressedTable, SolveConfig, TableCache};
use cyclesteal_serve::{
    wire, Broker, BrokerConfig, Client, ClientConfig, ErrorCode, FaultPlan, GuaranteeAnswer,
    GuaranteeQuery, RetryPolicy, ServeError, Server, ServerConfig, SweepQuery,
};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes tests in this binary: the fault registry is process-wide.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Silences the default panic hook while injected solve panics fire, so
/// the (contained) panics don't spam the test log. Restores on drop.
struct QuietPanics;

impl QuietPanics {
    fn install() -> QuietPanics {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

fn q(setup: f64, ticks: u32, p: u32, lifespan: f64) -> GuaranteeQuery {
    GuaranteeQuery {
        setup: secs(setup),
        ticks_per_setup: ticks,
        interrupts: p,
        lifespan: secs(lifespan),
    }
}

/// Small mixed workload (two grids, three budgets): cheap enough that
/// 64 plans × (faulted + converged) passes stay fast in debug builds.
fn workload() -> Vec<GuaranteeQuery> {
    vec![
        q(1.0, 8, 1, 40.0),
        q(1.0, 8, 2, 120.0),
        q(1.0, 8, 3, 300.0),
        q(2.0, 4, 1, 60.0),
        q(2.0, 4, 2, 0.0),
        q(1.5, 8, 2, 200.0),
    ]
}

/// Ground truth from the direct `TableCache` path — what every
/// successful answer must match bit for bit.
fn reference_answers(queries: &[GuaranteeQuery]) -> Vec<GuaranteeAnswer> {
    let cache = TableCache::new();
    let configs: Vec<SolveConfig> = queries
        .iter()
        .map(|query| SolveConfig {
            setup: query.setup,
            ticks_per_setup: query.ticks_per_setup,
            max_lifespan: Time::max(query.lifespan, secs(1.0)),
            max_interrupts: query.interrupts,
        })
        .collect();
    let tables = cache.solve_many(&configs);
    queries
        .iter()
        .zip(&tables)
        .map(|(query, table)| {
            let ticks = table
                .grid()
                .to_ticks(query.lifespan)
                .clamp(0, table.max_ticks());
            GuaranteeAnswer {
                value: table.value(query.interrupts, query.lifespan),
                value_ticks: table.value_ticks(query.interrupts, ticks),
            }
        })
        .collect()
}

fn assert_bit_identical(got: &GuaranteeAnswer, want: &GuaranteeAnswer, ctx: &str) {
    assert_eq!(
        got.value.get().to_bits(),
        want.value.get().to_bits(),
        "{ctx}: value bits differ ({} vs {})",
        got.value,
        want.value
    );
    assert_eq!(got.value_ticks, want.value_ticks, "{ctx}: ticks differ");
}

/// The only failures the contract admits: a typed retryable server
/// error, a transient transport error, or provable wire corruption.
fn acceptable_failure(err: &io::Error) -> bool {
    if let Some(se) = ServeError::from_io(err) {
        return se.retryable;
    }
    if wire::is_corrupt_frame(err) {
        return true;
    }
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cyclesteal-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Client options tuned for a hostile server: short socket timeouts so
/// a stalled or mis-framed stream surfaces as `TimedOut` instead of a
/// hang, and quick seeded backoff.
fn chaos_client(addr: std::net::SocketAddr, seed: u64, max_retries: u32) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            retry: RetryPolicy {
                max_retries,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(10),
                seed,
            },
        },
    )
    .expect("connect (accept path is never faulted)")
}

fn chaos_server(broker: Arc<Broker>) -> Server {
    Server::start_with(
        "127.0.0.1:0",
        broker,
        ServerConfig {
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral")
}

/// The headline sweep: 64 seeded plans over a live server + retrying
/// client, with a tight memory budget (every batch re-solves, so the
/// panic and store-write points actually fire) and snapshot-on-evict
/// wired so store faults are in play too.
#[test]
fn every_query_answers_bit_identically_or_fails_retryably_across_64_plans() {
    let _serial = chaos_lock();
    let _quiet = QuietPanics::install();
    let queries = workload();
    let want = reference_answers(&queries);
    let dir = scratch_dir("sweep");
    let mut acceptable = 0u32;
    let mut answered = 0u32;

    for seed in 0..64u64 {
        let broker = Arc::new(
            Broker::new(BrokerConfig {
                threads: 2,
                memory_budget: Some(1), // evict always → cold solves + snapshot writes
                snapshot_dir: Some(dir.clone()),
                max_inflight: 0,
                ..BrokerConfig::default()
            })
            .unwrap(),
        );
        let server = chaos_server(broker.clone());
        let guard = FaultPlan::from_seed(seed).install();
        let mut client = chaos_client(server.local_addr(), seed, 5);

        for (i, (query, expect)) in queries.iter().zip(&want).enumerate() {
            let budget = Some(Duration::from_millis(400));
            match client.query_batch_within(std::slice::from_ref(query), budget) {
                Ok(answers) => {
                    assert_eq!(answers.len(), 1, "seed {seed} query {i}: answer count");
                    assert_bit_identical(&answers[0], expect, &format!("seed {seed} query {i}"));
                    answered += 1;
                }
                Err(err) => {
                    assert!(
                        acceptable_failure(&err),
                        "seed {seed} query {i}: non-retryable failure escaped: \
                         {err} (kind {:?})",
                        err.kind()
                    );
                    acceptable += 1;
                }
            }
        }

        // Faults cleared: the same client object must converge to exact
        // answers (reconnecting if its stream was left mid-frame).
        drop(guard);
        for (i, (query, expect)) in queries.iter().zip(&want).enumerate() {
            let answers = client
                .query_batch(std::slice::from_ref(query))
                .unwrap_or_else(|e| panic!("seed {seed} query {i}: no convergence: {e}"));
            assert_bit_identical(&answers[0], expect, &format!("seed {seed} post query {i}"));
        }
        server.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        answered > 0,
        "the sweep never succeeded once — workload broken?"
    );
    println!(
        "chaos sweep: {answered} exact answers, {acceptable} acceptable failures \
         across 64 plans"
    );
}

/// The readiness-loop server at 64 **concurrent** clients under seeded
/// fault plans, mixing op-1 batches with op-3 streaming sweeps: every
/// query returns the bit-identical answer or an acceptable
/// typed/transient failure — no hangs, no escaped panics — and once
/// the plan clears, a fresh client converges to exact answers.
#[test]
fn sixty_four_concurrent_clients_survive_fault_plans_on_the_readiness_loop() {
    let _serial = chaos_lock();
    let _quiet = QuietPanics::install();
    const CLIENTS: usize = 64;
    let queries = workload();
    let want = reference_answers(&queries);
    // Sweep ground truth straight from the solver: one table covers
    // every per-client window below.
    let sweep_table = CompressedTable::solve(secs(1.0), 8, secs(20.0), 3);

    for seed in [3u64, 29] {
        let broker = Arc::new(
            Broker::new(BrokerConfig {
                threads: 2,
                ..BrokerConfig::default()
            })
            .unwrap(),
        );
        let server = Server::start_with(
            "127.0.0.1:0",
            broker.clone(),
            ServerConfig {
                read_timeout: Some(Duration::from_secs(2)),
                write_timeout: Some(Duration::from_secs(2)),
                // Enough handler contexts that injected read delays
                // stall requests, not the whole fleet.
                handlers: 16,
            },
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();
        let guard = FaultPlan::from_seed(seed).install();
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let exact = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);
        // Diagnostics collected instead of asserted in-thread: the quiet
        // panic hook would swallow a worker's assert message.
        let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let barrier = barrier.clone();
                let (queries, want, sweep_table) = (&queries, &want, &sweep_table);
                let (exact, failed, violations) = (&exact, &failed, &violations);
                scope.spawn(move || {
                    let mut client = chaos_client(addr, seed * 1000 + c as u64, 3);
                    let budget = Some(Duration::from_millis(400));
                    barrier.wait();
                    for (i, (query, expect)) in queries.iter().zip(want.iter()).enumerate() {
                        match client.query_batch_within(std::slice::from_ref(query), budget) {
                            Ok(answers)
                                if answers.len() == 1
                                    && answers[0].value.get().to_bits()
                                        == expect.value.get().to_bits()
                                    && answers[0].value_ticks == expect.value_ticks =>
                            {
                                exact.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(answers) => violations
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(format!(
                                    "seed {seed} client {c} query {i}: wrong answer {answers:?}"
                                )),
                            Err(err) if acceptable_failure(&err) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => {
                                violations
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(format!(
                                        "seed {seed} client {c} query {i}: unacceptable failure \
                                     {err} (kind {:?})",
                                        err.kind()
                                    ))
                            }
                        }
                    }
                    // One streaming sweep per client, windows staggered
                    // across clients.
                    let sweep = SweepQuery {
                        setup: secs(1.0),
                        ticks_per_setup: 8,
                        interrupts: 1 + (c as u32) % 3,
                        first_tick: (c as i64) % 40,
                        count: 64,
                    };
                    match client.query_sweep_within(&sweep, budget) {
                        Ok(values) => {
                            let ok = values.len() == 64
                                && values.iter().enumerate().all(|(j, &v)| {
                                    v == sweep_table
                                        .value_ticks(sweep.interrupts, sweep.first_tick + j as i64)
                                });
                            if ok {
                                exact.fetch_add(1, Ordering::Relaxed);
                            } else {
                                violations
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(format!("seed {seed} client {c}: wrong sweep expansion"));
                            }
                        }
                        Err(err) if acceptable_failure(&err) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => {
                            violations
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(format!(
                                    "seed {seed} client {c}: unacceptable sweep failure {err}"
                                ))
                        }
                    }
                });
            }
        });

        let violations = violations.into_inner().unwrap_or_else(|e| e.into_inner());
        assert!(violations.is_empty(), "{}", violations.join("\n"));
        let (exact, failed) = (
            exact.load(Ordering::Relaxed),
            failed.load(Ordering::Relaxed),
        );
        assert_eq!(
            exact + failed,
            CLIENTS * (queries.len() + 1),
            "seed {seed}: an outcome went missing (hang?)"
        );

        // Faults cleared: a fresh client converges on the same server.
        drop(guard);
        let mut client = chaos_client(addr, seed, 5);
        for (i, (query, expect)) in queries.iter().zip(&want).enumerate() {
            let answers = client
                .query_batch(std::slice::from_ref(query))
                .unwrap_or_else(|e| panic!("seed {seed} post query {i}: no convergence: {e}"));
            assert_bit_identical(&answers[0], expect, &format!("seed {seed} post query {i}"));
        }
        server.shutdown();
        println!("chaos 64c seed {seed}: {exact} exact, {failed} acceptable failures");
    }
}

/// A plan that panics **every** solve: queries surface as typed
/// retryable `Internal` errors, the panic counter advances, nothing
/// escapes, and after disarming the same broker serves exact answers.
#[test]
fn always_panicking_solves_are_contained_as_typed_internal_errors() {
    let _serial = chaos_lock();
    let _quiet = QuietPanics::install();
    let broker = Broker::new(BrokerConfig::default()).unwrap();
    let plan = FaultPlan {
        panic_solve_pm: 1000,
        ..FaultPlan::quiet(7)
    };
    let guard = plan.install();

    let query = q(1.0, 8, 2, 80.0);
    let se = broker.query_batch(&[query]).unwrap_err();
    assert_eq!(se.code, ErrorCode::Internal);
    assert!(se.retryable, "contained panics must invite a retry");
    assert!(broker.stats().resilience.solve_panics >= 1);

    // Concurrent hammering on one cold key: every thread gets a typed
    // error (possibly after re-leading a poisoned flight) — no panic
    // ever crosses query_batch.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let broker = &broker;
            scope.spawn(move || {
                let se = broker.query_batch(&[q(1.0, 8, 3, 160.0)]).unwrap_err();
                assert!(se.retryable, "typed retryable under contention: {se}");
            });
        }
    });
    let stats = broker.stats().resilience;
    assert!(
        stats.solve_panics >= 2,
        "each failed solve counted: {stats:?}"
    );

    drop(guard);
    let want = reference_answers(&[query]);
    let got = broker.query_batch(&[query]).expect("heals after disarm");
    assert_bit_identical(&got[0], &want[0], "post-disarm");
}

/// A plan that drops **every** connection before responding: the retry
/// budget exhausts into a transient transport error (no hang, no lie),
/// and the very same client converges once the plan is dropped.
#[test]
fn always_dropped_connections_exhaust_into_a_transient_error_then_converge() {
    let _serial = chaos_lock();
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let server = chaos_server(broker.clone());
    let plan = FaultPlan {
        drop_connection_pm: 1000,
        ..FaultPlan::quiet(11)
    };
    let guard = plan.install();

    let query = q(1.0, 8, 1, 50.0);
    let mut client = chaos_client(server.local_addr(), 11, 2);
    let err = client.query_batch(&[query]).unwrap_err();
    assert!(
        ServeError::from_io(&err).is_none(),
        "a dropped connection is transport-level, not a typed frame"
    );
    assert!(acceptable_failure(&err), "must classify transient: {err}");

    drop(guard);
    let want = reference_answers(&[query]);
    let got = client.query_batch(&[query]).expect("reconnect + converge");
    assert_bit_identical(&got[0], &want[0], "post-drop convergence");
    server.shutdown();
}

/// A plan that corrupts a byte of **every** response frame: the client
/// either proves corruption via the frame CRC or times out on a
/// mis-framed stream — it never accepts a damaged answer.
#[test]
fn always_corrupted_frames_are_detected_never_believed() {
    let _serial = chaos_lock();
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let server = chaos_server(broker.clone());
    let plan = FaultPlan {
        corrupt_frame_pm: 1000,
        ..FaultPlan::quiet(13)
    };
    let guard = plan.install();

    let query = q(1.0, 8, 2, 70.0);
    let want = reference_answers(&[query]);
    let mut client = chaos_client(server.local_addr(), 13, 1);
    match client.query_batch(&[query]) {
        // Only possible if the flipped byte landed outside the payload
        // bytes the answer decodes from — and then it must be exact.
        Ok(answers) => assert_bit_identical(&answers[0], &want[0], "lucky corrupt"),
        Err(err) => assert!(
            wire::is_corrupt_frame(&err) || acceptable_failure(&err),
            "corruption must be detected, got: {err} (kind {:?})",
            err.kind()
        ),
    }

    drop(guard);
    let got = client.query_batch(&[query]).expect("clean frames again");
    assert_bit_identical(&got[0], &want[0], "post-corruption convergence");
    server.shutdown();
}

/// `max_inflight = 1` with the single permit held: every TCP request
/// sheds with the typed retryable `Overloaded` (nothing queues), and
/// once the permit frees, eight concurrent retrying clients all
/// converge to the exact answer through the shed/retry path.
#[test]
fn a_full_admission_budget_sheds_with_typed_overloaded_errors() {
    let _serial = chaos_lock();
    let broker = Arc::new(
        Broker::new(BrokerConfig {
            threads: 2,
            memory_budget: None,
            snapshot_dir: None,
            max_inflight: 1,
            ..BrokerConfig::default()
        })
        .unwrap(),
    );
    let server = chaos_server(broker.clone());
    let addr = server.local_addr();
    let query = q(1.0, 16, 4, 30_000.0);
    let want = reference_answers(&[query]);

    // Hold the only permit: the budget is deterministically full, so a
    // no-retry client must observe the shed — instantly, not queued.
    let permit = broker.hold_admission().expect("fresh broker, budget 1");
    let err = chaos_client(addr, 0, 0).query_batch(&[query]).unwrap_err();
    let se = ServeError::from_io(&err).unwrap_or_else(|| panic!("untyped overload error: {err}"));
    assert_eq!(se.code, ErrorCode::Overloaded);
    assert!(se.retryable);
    assert!(broker.stats().resilience.shed >= 1, "the shed is counted");
    assert!(
        broker.hold_admission().is_none(),
        "shedding must never consume budget"
    );
    drop(permit);

    // Warm the grid once so contended batches hold the permit for a
    // lookup, not a cold solve — the contention below then exercises
    // pure shed/retry races instead of stacking retries behind one
    // long solve.
    let answers = chaos_client(addr, 0, 3).query_batch(&[query]).unwrap();
    assert_bit_identical(&answers[0], &want[0], "warming batch");

    // Budget free again: eight barrier-synced retrying clients contend
    // for one permit — shed batches retry until admitted, so every
    // client ends with the bit-identical answer.
    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let shed_before = broker.stats().resilience.shed;
    let ok = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let barrier = barrier.clone();
            let (ok, want) = (&ok, &want);
            scope.spawn(move || {
                let mut client = chaos_client(addr, 0, 10);
                barrier.wait();
                let answers = client
                    .query_batch(&[query])
                    .expect("Overloaded is retryable — contention must converge");
                assert_bit_identical(&answers[0], &want[0], "contended batch");
                ok.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(ok.load(Ordering::Relaxed), CLIENTS);
    let _ = shed_before; // further sheds during contention are expected, not required
    server.shutdown();
}

/// Deadlines over the wire: an already-expired budget rejects typed and
/// retryable *before* any solve; without a deadline the solve lands in
/// cache; and the retried deadline then succeeds from cache — the
/// convergence story `DeadlineExceeded` promises.
#[test]
fn wire_deadlines_reject_early_then_converge_from_cache() {
    let _serial = chaos_lock();
    let broker = Arc::new(Broker::new(BrokerConfig::default()).unwrap());
    let server = chaos_server(broker.clone());
    let mut client = chaos_client(server.local_addr(), 0, 0);

    let query = q(1.0, 8, 2, 90.0);
    let err = client
        .query_batch_within(&[query], Some(Duration::from_micros(1)))
        .unwrap_err();
    let se = ServeError::from_io(&err).expect("typed deadline frame");
    assert_eq!(se.code, ErrorCode::DeadlineExceeded);
    assert!(se.retryable);
    let rejected = broker.stats().resilience.deadline_rejects;
    assert!(rejected >= 1, "reject counted");
    assert_eq!(broker.stats().cache.misses, 0, "rejected before any solve");

    // Unbounded attempt populates the cache…
    let want = reference_answers(&[query]);
    let got = client.query_batch(&[query]).unwrap();
    assert_bit_identical(&got[0], &want[0], "unbounded attempt");
    // …after which even a tight budget is met from cache.
    let got = client
        .query_batch_within(&[query], Some(Duration::from_millis(250)))
        .expect("cache hit inside the budget");
    assert_bit_identical(&got[0], &want[0], "budgeted cache hit");
    server.shutdown();
}

/// Failing snapshot writes: answers stay exact, the failure is counted
/// (never propagated), and once the plan clears snapshots land on disk.
#[test]
fn failing_snapshot_writes_never_touch_answers() {
    let _serial = chaos_lock();
    let dir = scratch_dir("store");
    let broker = Broker::new(BrokerConfig {
        threads: 2,
        memory_budget: Some(1), // every solve evicts → snapshot write
        snapshot_dir: Some(dir.clone()),
        max_inflight: 0,
        ..BrokerConfig::default()
    })
    .unwrap();
    let plan = FaultPlan {
        fail_store_write_pm: 1000,
        ..FaultPlan::quiet(17)
    };
    let guard = plan.install();

    let queries = [q(1.0, 8, 2, 64.0), q(2.0, 4, 2, 64.0)];
    let want = reference_answers(&queries);
    let got = broker
        .query_batch(&queries)
        .expect("store faults stay behind the cache");
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_bit_identical(g, w, &format!("under store faults, query {i}"));
    }
    let failures = broker.stats().resilience.snapshot_failures;
    assert!(failures >= 2, "each failed snapshot counted: {failures}");
    assert!(
        std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) == 0,
        "no snapshot (and no temp litter) lands while writes fail"
    );

    drop(guard);
    let got = broker
        .query_batch(&queries)
        .expect("re-solve after eviction");
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_bit_identical(g, w, &format!("post-disarm, query {i}"));
    }
    let snapshots = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|ext| ext == "cst")
        })
        .count();
    assert!(snapshots >= 1, "healed writes reach the snapshot dir");
    let _ = std::fs::remove_dir_all(&dir);
}
