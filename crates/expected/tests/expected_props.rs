//! Property tests for the expected-output companion submodel.

use cyclesteal_core::prelude::*;
use cyclesteal_expected::opt::{optimal_exponential_period, optimal_exponential_value, ExpectedDp};
use cyclesteal_expected::{expected_work, InterruptLaw};
use proptest::prelude::*;

fn arb_schedule() -> impl Strategy<Value = EpisodeSchedule> {
    prop::collection::vec(0.2f64..15.0, 1..20)
        .prop_map(|v| EpisodeSchedule::from_periods(v.into_iter().map(secs).collect()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Expectations are bounded by the no-risk work and are antitone in
    /// risk (higher hazard ⇒ lower expected work).
    #[test]
    fn expectation_bounds_and_risk_monotonicity(
        sched in arb_schedule(),
        rate in 0.001f64..0.1,
        bump in 1.1f64..5.0,
    ) {
        let c = secs(1.0);
        let low = expected_work(&sched, c, &InterruptLaw::Exponential { rate });
        let high = expected_work(&sched, c, &InterruptLaw::Exponential { rate: rate * bump });
        prop_assert!(low >= high - secs(1e-12), "more risk increased E[W]");
        prop_assert!(low <= sched.work_uninterrupted(c) + secs(1e-12));
        prop_assert!(high >= Work::ZERO);
    }

    /// The uniform law's expectation interpolates: full survival weight at
    /// horizon → ∞ recovers the uninterrupted work.
    #[test]
    fn uniform_law_interpolates(sched in arb_schedule()) {
        let c = secs(1.0);
        let total = sched.total();
        let tight = expected_work(&sched, c, &InterruptLaw::Uniform { horizon: total });
        let loose = expected_work(&sched, c, &InterruptLaw::Uniform {
            horizon: total * 1e6,
        });
        prop_assert!(tight <= loose + secs(1e-9));
        prop_assert!(
            (loose - sched.work_uninterrupted(c)).abs() <= sched.work_uninterrupted(c) * 1e-5 + secs(1e-6)
        );
    }

    /// The expected-output DP dominates every random schedule under its
    /// own law.
    #[test]
    fn dp_dominates_random_schedules(
        sched in arb_schedule(),
    ) {
        let c = secs(1.0);
        let u = sched.total();
        let law = InterruptLaw::Uniform { horizon: u };
        let dp = ExpectedDp::solve(c, 8, u, &law);
        let w = expected_work(&sched, c, &law);
        // Grid quantization of the DP costs at most ~a tick per period.
        let slack = secs(0.125 * sched.len() as f64 + 0.25);
        prop_assert!(w <= dp.value() + slack,
            "random schedule {w} beats DP {} beyond slack", dp.value());
    }

    /// The memoryless stationary optimum is scale-free:
    /// `t*(λ/k, k·c) = k · t*(λ, c)` and the value scales likewise.
    #[test]
    fn exponential_optimum_is_scale_free(
        rate in 0.001f64..0.1,
        k in 0.1f64..10.0,
    ) {
        let t1 = optimal_exponential_period(rate, secs(1.0));
        let t2 = optimal_exponential_period(rate / k, secs(k));
        prop_assert!((t2.get() - t1.get() * k).abs() <= 1e-6 * k.max(1.0),
            "t* not scale-free: {t1} vs {t2}/{k}");
        let v1 = optimal_exponential_value(rate, secs(1.0));
        let v2 = optimal_exponential_value(rate / k, secs(k));
        prop_assert!((v2.get() - v1.get() * k).abs() <= 1e-6 * k.max(1.0));
    }

    /// Survival functions integrate the samplers (coarse KS-style check at
    /// a single random threshold, cheap enough to run many cases).
    #[test]
    fn sampler_matches_survival_at_threshold(
        seed in 0u64..5_000,
        frac in 0.05f64..0.95,
        escape in 0.0f64..0.9,
    ) {
        use rand::SeedableRng;
        let horizon = secs(100.0);
        let law = InterruptLaw::UniformWithEscape { horizon, escape };
        let t0 = horizon * frac;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 4_000;
        let hits = (0..n).filter(|_| match law.sample(&mut rng) {
            None => true,
            Some(t) => t >= t0,
        }).count();
        let emp = hits as f64 / n as f64;
        prop_assert!((emp - law.survival(t0)).abs() < 0.05,
            "empirical {emp} vs S = {}", law.survival(t0));
    }
}
