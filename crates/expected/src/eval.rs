//! Expected-work evaluation under an interrupt law.
//!
//! In the expected-output submodel the first interrupt ends the
//! opportunity, so a schedule `S = t_1, …, t_m` banks period `k` iff the
//! owner survives to its end:
//!
//! ```text
//! E[W(S)] = Σ_k  S(T_k) · (t_k ⊖ c).
//! ```
//!
//! [`expected_work`] computes this exactly; [`expected_work_monte_carlo`]
//! cross-checks by simulation (used in tests and E-series sanity checks).

use crate::law::InterruptLaw;
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::{Time, Work};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact expected banked work of `schedule` under `law`.
pub fn expected_work(schedule: &EpisodeSchedule, setup: Time, law: &InterruptLaw) -> Work {
    let mut acc = 0.0f64;
    let mut boundary = Time::ZERO;
    for &t in schedule.periods() {
        boundary += t;
        acc += law.survival(boundary) * t.pos_sub(setup).get();
    }
    Time::new(acc)
}

/// Monte-Carlo estimate of the same expectation (seeded, `trials` draws).
pub fn expected_work_monte_carlo(
    schedule: &EpisodeSchedule,
    setup: Time,
    law: &InterruptLaw,
    seed: u64,
    trials: usize,
) -> Work {
    let mut rng = StdRng::seed_from_u64(seed);
    let boundaries = schedule.boundaries();
    let mut total = 0.0f64;
    for _ in 0..trials {
        let t_int = law.sample(&mut rng);
        let mut run = 0.0f64;
        for (k, &t) in schedule.periods().iter().enumerate() {
            let end = boundaries[k + 1];
            let completed = match t_int {
                None => true,
                Some(ti) => ti >= end,
            };
            if completed {
                run += t.pos_sub(setup).get();
            } else {
                break;
            }
        }
        total += run;
    }
    Time::new(total / trials.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    fn sched(v: &[f64]) -> EpisodeSchedule {
        EpisodeSchedule::from_periods(v.iter().map(|&x| secs(x)).collect()).unwrap()
    }

    #[test]
    fn never_law_recovers_uninterrupted_work() {
        let s = sched(&[10.0, 10.0, 5.0]);
        let c = secs(1.0);
        let w = expected_work(&s, c, &InterruptLaw::Never);
        assert!(w.approx_eq(s.work_uninterrupted(c), secs(1e-12)));
    }

    #[test]
    fn uniform_law_hand_computed() {
        // U = 20, two periods of 10, c = 1, T ~ U[0, 20]:
        // S(10) = 0.5, S(20) = 0.0 ⇒ E[W] = 0.5·9 + 0·9 = 4.5.
        let s = sched(&[10.0, 10.0]);
        let law = InterruptLaw::Uniform {
            horizon: secs(20.0),
        };
        let w = expected_work(&s, secs(1.0), &law);
        assert!(w.approx_eq(secs(4.5), secs(1e-12)));
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let c = secs(1.0);
        let schedules = [
            sched(&[10.0, 10.0, 10.0]),
            sched(&[20.0, 7.0, 3.0]),
            sched(&[2.0, 2.0, 2.0, 2.0, 2.0]),
        ];
        let laws = [
            InterruptLaw::Uniform {
                horizon: secs(30.0),
            },
            InterruptLaw::Exponential { rate: 0.03 },
            InterruptLaw::UniformWithEscape {
                horizon: secs(30.0),
                escape: 0.2,
            },
        ];
        for s in &schedules {
            for law in &laws {
                let exact = expected_work(s, c, law);
                let mc = expected_work_monte_carlo(s, c, law, 5, 60_000);
                assert!(
                    (exact - mc).abs() <= secs(0.15),
                    "{law:?}: exact {exact} vs MC {mc}"
                );
            }
        }
    }

    #[test]
    fn splitting_periods_trades_risk_against_setup() {
        // Under high risk, two short periods beat one long one; under no
        // risk the long period wins (saves a setup charge).
        let c = secs(1.0);
        let long = sched(&[20.0]);
        let split = sched(&[10.0, 10.0]);
        let risky = InterruptLaw::Uniform {
            horizon: secs(20.0),
        };
        assert!(expected_work(&split, c, &risky) > expected_work(&long, c, &risky));
        assert!(
            expected_work(&long, c, &InterruptLaw::Never)
                > expected_work(&split, c, &InterruptLaw::Never)
        );
    }
}
