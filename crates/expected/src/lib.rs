//! # cyclesteal-expected
//!
//! The *expected-output* companion submodel (Rosenberg, IPPS 1998 — paper
//! I of the pair; the model of Bhatt–Chung–Leighton–Rosenberg \[3\]): the
//! owner's return time is a random variable, the first interrupt ends the
//! opportunity, and schedules maximize the **expectation** of banked work
//! instead of the guarantee.
//!
//! This crate lets the benches and examples compare the two philosophies
//! on the same opportunities:
//!
//! * [`law`] — interrupt-time distributions (uniform, exponential, escape
//!   mixtures) with exact survival functions and samplers;
//! * [`eval`] — exact and Monte-Carlo expected work of any
//!   [`cyclesteal_core::schedule::EpisodeSchedule`];
//! * [`opt`] — an exact grid DP for optimal expected-output schedules, and
//!   the memoryless owner's stationary closed form
//!   (`1 − e^(−λt*) = λ(t* − c)`, with the small-`λ` limit `√(2c/λ)`).
//!
//! ```
//! use cyclesteal_core::prelude::*;
//! use cyclesteal_expected::{eval::expected_work, law::InterruptLaw, opt::ExpectedDp};
//!
//! let c = secs(1.0);
//! let law = InterruptLaw::Uniform { horizon: secs(60.0) };
//! let dp = ExpectedDp::solve(c, 8, secs(60.0), &law);
//! // The guaranteed-output p=1 optimum is a fine but not optimal hedge
//! // against a *random* owner:
//! let s_opt1 = optimal_p1_schedule(secs(60.0), c).unwrap();
//! assert!(expected_work(&s_opt1, c, &law) <= dp.value());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod law;
pub mod opt;

pub use eval::{expected_work, expected_work_monte_carlo};
pub use law::InterruptLaw;
pub use opt::{optimal_exponential_period, optimal_exponential_value, ExpectedDp};
