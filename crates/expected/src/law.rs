//! Interrupt-time laws for the expected-output submodel.
//!
//! The two-faceted model of Bhatt–Chung–Leighton–Rosenberg \[3\] pairs the
//! guaranteed-output submodel (this repository's main subject) with an
//! *expected-output* submodel, studied in the companion paper
//! (Rosenberg, IPPS 1998 \[9\]): the owner's return is a random variable
//! `T`, the first interrupt ends the opportunity, and the owner of `A`
//! maximizes the expectation of the banked work. An [`InterruptLaw`] is
//! the distribution of `T`.

use cyclesteal_core::time::Time;
use rand::rngs::StdRng;
use rand::Rng;

/// The distribution of the (single, terminal) interrupt time `T`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InterruptLaw {
    /// The owner never returns within the opportunity (`T = ∞`).
    Never,
    /// `T` uniform on `[0, horizon]`: the interrupt certainly falls within
    /// the horizon.
    Uniform {
        /// Right end of the support.
        horizon: Time,
    },
    /// With probability `escape` the owner never returns; otherwise `T` is
    /// uniform on `[0, horizon]`.
    UniformWithEscape {
        /// Right end of the uniform part's support.
        horizon: Time,
        /// Probability that no interrupt ever occurs.
        escape: f64,
    },
    /// Memoryless owner: `T ~ Exp(rate)`.
    Exponential {
        /// Hazard rate (interrupts per time unit).
        rate: f64,
    },
}

impl InterruptLaw {
    /// Survival function `S(t) = P(T ≥ t)` (equivalently `P(T > t)`; the
    /// laws here are continuous, except `Never`'s atom at infinity).
    pub fn survival(&self, t: Time) -> f64 {
        let x = t.get().max(0.0);
        match *self {
            InterruptLaw::Never => 1.0,
            InterruptLaw::Uniform { horizon } => {
                let h = horizon.get();
                (1.0 - x / h).max(0.0)
            }
            InterruptLaw::UniformWithEscape { horizon, escape } => {
                let h = horizon.get();
                escape + (1.0 - escape) * (1.0 - x / h).max(0.0)
            }
            InterruptLaw::Exponential { rate } => (-rate * x).exp(),
        }
    }

    /// Samples an interrupt time; `None` means "never" (possible for
    /// [`InterruptLaw::Never`] and the escape branch).
    pub fn sample(&self, rng: &mut StdRng) -> Option<Time> {
        match *self {
            InterruptLaw::Never => None,
            InterruptLaw::Uniform { horizon } => Some(Time::new(rng.gen_range(0.0..horizon.get()))),
            InterruptLaw::UniformWithEscape { horizon, escape } => {
                if rng.gen_bool(escape) {
                    None
                } else {
                    Some(Time::new(rng.gen_range(0.0..horizon.get())))
                }
            }
            InterruptLaw::Exponential { rate } => {
                let u: f64 = rng.gen();
                Some(Time::new(-(1.0 - u).ln() / rate))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;
    use rand::SeedableRng;

    #[test]
    fn survival_functions_are_valid() {
        let laws = [
            InterruptLaw::Never,
            InterruptLaw::Uniform {
                horizon: secs(100.0),
            },
            InterruptLaw::UniformWithEscape {
                horizon: secs(100.0),
                escape: 0.3,
            },
            InterruptLaw::Exponential { rate: 0.02 },
        ];
        for law in laws {
            let mut prev = law.survival(secs(0.0));
            assert!((prev - 1.0).abs() < 1e-12, "{law:?}: S(0) = {prev}");
            let mut t = 0.0;
            while t < 300.0 {
                t += 7.3;
                let s = law.survival(secs(t));
                assert!((0.0..=1.0).contains(&s));
                assert!(s <= prev + 1e-12, "{law:?} not nonincreasing at {t}");
                prev = s;
            }
        }
    }

    #[test]
    fn uniform_survival_hits_zero_at_horizon() {
        let law = InterruptLaw::Uniform {
            horizon: secs(50.0),
        };
        assert_eq!(law.survival(secs(50.0)), 0.0);
        assert_eq!(law.survival(secs(500.0)), 0.0);
        assert!((law.survival(secs(25.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn escape_mass_floors_the_survival() {
        let law = InterruptLaw::UniformWithEscape {
            horizon: secs(50.0),
            escape: 0.25,
        };
        assert!((law.survival(secs(1e6)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_survival() {
        let laws = [
            InterruptLaw::Uniform {
                horizon: secs(80.0),
            },
            InterruptLaw::Exponential { rate: 0.05 },
            InterruptLaw::UniformWithEscape {
                horizon: secs(80.0),
                escape: 0.4,
            },
        ];
        let mut rng = StdRng::seed_from_u64(17);
        for law in laws {
            let n = 40_000;
            let t0 = secs(30.0);
            let hits = (0..n)
                .filter(|_| match law.sample(&mut rng) {
                    None => true,
                    Some(t) => t >= t0,
                })
                .count();
            let emp = hits as f64 / n as f64;
            let want = law.survival(t0);
            assert!(
                (emp - want).abs() < 0.01,
                "{law:?}: empirical {emp} vs S(30) = {want}"
            );
        }
    }
}
