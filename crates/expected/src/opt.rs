//! Optimal schedules for the expected-output submodel.
//!
//! * [`ExpectedDp`] — a grid dynamic program over elapsed time: with
//!   `F(e)` the maximum expected *additional* work given the owner has not
//!   yet returned at elapsed time `e`,
//!
//!   ```text
//!   F(e) = max_t  (S(e+t)/S(e)) · ((t ⊖ c) + F(e+t)),    F(U) = 0,
//!   ```
//!
//!   solved backwards exactly on the grid for any [`InterruptLaw`].
//! * [`optimal_exponential_period`] — for the memoryless owner the optimal
//!   schedule is stationary (every period the same length `t*`), with `t*`
//!   the unique root of `1 − e^(−λt) = λ(t − c)`; for small `λ` this is
//!   the classic `t* ≈ √(2c/λ)` rule, the expected-output twin of the
//!   guaranteed model's `√(2cU)` leading term.

use crate::law::InterruptLaw;
use cyclesteal_core::error::{ModelError, Result};
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::{Time, Work};

/// Exact grid solution of the expected-work control problem.
#[derive(Clone, Debug)]
pub struct ExpectedDp {
    setup: Time,
    tick: Time,
    n: usize,
    values: Vec<f64>, // F at elapsed e ticks, in time units
    argmax: Vec<u32>, // optimal next-period length in ticks (0 = stop)
}

impl ExpectedDp {
    /// Solves the DP for `law` on `[0, horizon]` at `ticks_per_setup`
    /// resolution.
    pub fn solve(
        setup: Time,
        ticks_per_setup: u32,
        horizon: Time,
        law: &InterruptLaw,
    ) -> ExpectedDp {
        assert!(setup.is_positive() && ticks_per_setup >= 1);
        let tick = setup / ticks_per_setup as f64;
        let q = ticks_per_setup as usize;
        let n = (horizon.get() / tick.get()).round() as usize;

        // Precompute survival at every grid instant.
        let surv: Vec<f64> = (0..=n).map(|e| law.survival(tick * e as f64)).collect();

        let mut values = vec![0.0f64; n + 1];
        let mut argmax = vec![0u32; n + 1];
        for e in (0..n).rev() {
            if surv[e] <= 0.0 {
                continue; // unreachable alive; F = 0
            }
            let mut best = 0.0f64;
            let mut best_t = 0u32;
            // Periods of t ≤ q ticks bank nothing and cannot help (they
            // only burn survival probability), so scan t ∈ [q+1, n−e].
            for t in (q + 1)..=(n - e) {
                let end = e + t;
                let banked = (t - q) as f64 * tick.get();
                let v = surv[end] / surv[e] * (banked + values[end]);
                if v > best {
                    best = v;
                    best_t = t as u32;
                }
            }
            values[e] = best;
            argmax[e] = best_t;
        }
        ExpectedDp {
            setup,
            tick,
            n,
            values,
            argmax,
        }
    }

    /// The optimal expected work from the start of the opportunity.
    pub fn value(&self) -> Work {
        Time::new(self.values[0])
    }

    /// `F(e)` at elapsed time `e` (nearest grid point).
    pub fn value_at(&self, elapsed: Time) -> Work {
        let i = (elapsed.get() / self.tick.get()).round() as usize;
        Time::new(self.values[i.min(self.n)])
    }

    /// Reconstructs the optimal schedule from elapsed 0. Stops when the
    /// optimal action is to stop (remaining lifespan worthless); returns
    /// an error only for the degenerate case where stopping immediately
    /// is optimal.
    pub fn schedule(&self) -> Result<EpisodeSchedule> {
        let mut periods = Vec::new();
        let mut e = 0usize;
        while e < self.n {
            let t = self.argmax[e] as usize;
            if t == 0 {
                break;
            }
            periods.push(self.tick * t as f64);
            e += t;
        }
        if periods.is_empty() {
            return Err(ModelError::EmptySchedule);
        }
        EpisodeSchedule::from_periods(periods)
    }

    /// The setup charge the DP was solved for.
    pub fn setup(&self) -> Time {
        self.setup
    }
}

/// The optimal stationary period length for the memoryless owner:
/// the unique `t* > c` with `1 − e^(−rate·t) = rate·(t − c)`.
pub fn optimal_exponential_period(rate: f64, setup: Time) -> Time {
    assert!(rate > 0.0 && setup.is_positive());
    let c = setup.get();
    let h = |t: f64| rate * (t - c) - 1.0 + (-rate * t).exp();
    let mut lo = c; // h(c) = e^{−λc} − 1 < 0
    let mut hi = c + 1.0 / rate; // h(c + 1/λ) = e^{−λ(c+1/λ)} > 0
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if h(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Time::new(0.5 * (lo + hi))
}

/// The stationary optimal expected work for the memoryless owner over an
/// unbounded horizon: `F* = (t* − c)/(e^(rate·t*) − 1)`.
pub fn optimal_exponential_value(rate: f64, setup: Time) -> Work {
    let t = optimal_exponential_period(rate, setup).get();
    let c = setup.get();
    Time::new((t - c) / ((rate * t).exp() - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::expected_work;
    use cyclesteal_core::time::secs;

    #[test]
    fn never_law_yields_single_period() {
        let dp = ExpectedDp::solve(secs(1.0), 8, secs(64.0), &InterruptLaw::Never);
        assert!(dp.value().approx_eq(secs(63.0), secs(1e-9)));
        let s = dp.schedule().unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.total().approx_eq(secs(64.0), secs(1e-9)));
    }

    #[test]
    fn dp_dominates_equal_period_schedules() {
        let c = secs(1.0);
        let u = secs(60.0);
        let law = InterruptLaw::Uniform { horizon: u };
        let dp = ExpectedDp::solve(c, 8, u, &law);
        for m in 1..=30usize {
            let s = EpisodeSchedule::equal(u, m).unwrap();
            let w = expected_work(&s, c, &law);
            assert!(
                w <= dp.value() + secs(1e-9),
                "equal-{m} gets {w}, DP claims {}",
                dp.value()
            );
        }
        // And the DP's own schedule realizes its value.
        let s = dp.schedule().unwrap();
        let w = expected_work(&s, c, &law);
        assert!(
            w.approx_eq(dp.value(), secs(1e-9)),
            "reconstruction {w} vs DP {}",
            dp.value()
        );
    }

    #[test]
    fn uniform_law_optimal_periods_decrease() {
        // Known structure in the expected-output submodel: as the horizon
        // nears (hazard grows), optimal periods shrink.
        let c = secs(1.0);
        let u = secs(100.0);
        let dp = ExpectedDp::solve(c, 8, u, &InterruptLaw::Uniform { horizon: u });
        let s = dp.schedule().unwrap();
        assert!(s.len() >= 3);
        for k in 0..s.len() - 1 {
            assert!(
                s.period(k) >= s.period(k + 1) - secs(0.126),
                "period {k} grows: {} -> {}",
                s.period(k),
                s.period(k + 1)
            );
        }
    }

    #[test]
    fn exponential_stationary_period_matches_dp() {
        let c = secs(1.0);
        let rate = 0.02; // mean return at 50
        let t_star = optimal_exponential_period(rate, c);
        // Root condition holds.
        let lhs = 1.0 - (-rate * t_star.get()).exp();
        let rhs = rate * (t_star.get() - c.get());
        assert!((lhs - rhs).abs() < 1e-9);
        // Truncated-horizon DP's first period approaches t* (horizon must
        // dwarf the mean interrupt time).
        let dp = ExpectedDp::solve(c, 8, secs(600.0), &InterruptLaw::Exponential { rate });
        let s = dp.schedule().unwrap();
        assert!(
            (s.period(0) - t_star).abs() <= secs(0.6),
            "DP first period {} vs stationary {}",
            s.period(0),
            t_star
        );
        // Value close to the stationary closed form.
        let v = optimal_exponential_value(rate, c);
        assert!(
            (dp.value() - v).abs() <= secs(0.5),
            "DP {} vs stationary {}",
            dp.value(),
            v
        );
    }

    #[test]
    fn small_rate_recovers_sqrt_rule() {
        // t* → √(2c/λ) as λ → 0: the expected-output twin of √(2cU).
        let c = secs(1.0);
        for &rate in &[1e-3, 1e-4, 1e-5] {
            let t = optimal_exponential_period(rate, c).get();
            let sqrt_rule = (2.0 / rate).sqrt();
            assert!(
                (t - sqrt_rule).abs() / sqrt_rule < 0.05,
                "rate {rate}: t* {t} vs √(2c/λ) {sqrt_rule}"
            );
        }
    }

    #[test]
    fn value_at_decreases_with_elapsed_time() {
        let c = secs(1.0);
        let u = secs(80.0);
        let dp = ExpectedDp::solve(c, 8, u, &InterruptLaw::Uniform { horizon: u });
        let mut prev = dp.value_at(secs(0.0));
        for e in [10.0, 20.0, 40.0, 60.0, 79.0] {
            let v = dp.value_at(secs(e));
            assert!(v <= prev + secs(1e-9), "F grew at e={e}");
            prev = v;
        }
    }
}
