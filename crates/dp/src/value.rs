//! The exact value table `W^(p)[L]` and the optimal policy it induces.
//!
//! ## The sequential formulation
//!
//! Within an episode no information reaches the owner, so committing an
//! episode schedule up front is equivalent to choosing period lengths one
//! at a time. The guaranteed-output game therefore satisfies
//!
//! ```text
//! W^(p)(L) = max_{0 < t ≤ L} min( W^(p−1)(L − t),          // interrupted
//!                                 (t ⊖ c) + W^(p)(L − t) ) // completed
//! W^(0)(L) = L ⊖ c
//! ```
//!
//! — the adversary interrupts the period at its last instant (any earlier
//! concedes more residual lifespan, and `W` is nondecreasing), or lets it
//! complete. The recursion is well-founded in `L` and is solved bottom-up
//! on the integer tick grid in exact `i64` arithmetic.
//!
//! ## The inner maximization, three ways
//!
//! On `t ∈ [Q+1, L]` the interrupted branch `A(t) = W^(p−1)(L−t)` is
//! nonincreasing and the completed branch `B(t) = (t−Q) + W^(p)(L−t)` is
//! nondecreasing (both because `W` is nondecreasing and 1-Lipschitz), so
//! `max_t min(A,B)` sits at the crossing. Nonproductive lengths `t ≤ Q`
//! are dominated by the 1-tick "wait" candidate `W^(p)(L−1)`, which is
//! also what makes each row monotone. [`SolveOptions::inner`] picks the
//! search:
//!
//! * [`InnerLoop::FrontierSweep`] (default) — substituting `s = L − t`,
//!   the crossing condition `B ≥ A` reads `h(s) ≤ L − Q` for
//!   `h(s) = s + W^(p−1)(s) − W^(p)(s)`, and `h` is **nondecreasing in
//!   `s`** (both rows are 1-Lipschitz). As `L` grows by a tick the
//!   threshold `L − Q` only rises, so the crossing residual `s*(L)` only
//!   advances: one monotone pointer serves the whole level in `O(L)`
//!   amortized — the solve is `O(p·L)` total.
//! * [`InnerLoop::Bisection`] — the seed algorithm: `O(log L)` bisection
//!   per state, `O(p·L·log L)` total. Kept as a correctness ablation and
//!   the baseline the `perf_dp` bench measures the sweep against.
//! * [`InnerLoop::LinearScan`] — the `O(L)`-per-state reference used by
//!   the E-series ablation and the equivalence property tests.
//!
//! Frontier sweep and bisection locate the *same* crossing and apply the
//! same tie-breaks, so they agree on values **and** argmax (hence on
//! reconstructed episodes) exactly; the linear scan takes the smallest
//! maximizer, which can differ on plateaus while realizing the same
//! value. The equivalence property tests in `tests/equivalence_props.rs`
//! pin all of this down, together with the breakpoint-compressed solver
//! in [`crate::compressed`].
//!
//! ## Storage
//!
//! Rows live in one flat arena (`Vec<i64>` indexed by `p · stride + l`)
//! rather than nested `Vec<Vec<i64>>`: one allocation, no pointer chase
//! on the hot `prev[s]`/`cur[s]` loads, and the argmax sits in a parallel
//! flat `Vec<u32>`. For lifespans too large to hold densely at all, use
//! [`crate::compressed::CompressedTable`].

use crate::grid::Grid;
use cyclesteal_core::error::{ModelError, Result};
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::{EpisodePolicy, WorkOracle};
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::{Time, Work};
use std::sync::Arc;

/// The inner-maximization algorithm used per state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InnerLoop {
    /// Monotone two-pointer crossing sweep: `O(L)` amortized per level.
    FrontierSweep,
    /// Per-state bisection on the crossing: `O(L log L)` per level.
    Bisection,
    /// Full scan over productive period lengths: `O(L²)` per level.
    LinearScan,
    /// Event-driven run skipping: `O(k log k)` per level, `k` =
    /// breakpoints (see [`crate::event`]). Native to the breakpoint
    /// skeleton, so it is only a distinct build for
    /// [`crate::CompressedTable::solve_with`]; a dense [`ValueTable`]
    /// has no runs to skip and solves with the frontier sweep (the two
    /// share one crossing rule, so values and argmax are identical
    /// either way).
    EventDriven,
}

/// Options for [`ValueTable::solve`].
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Keep the argmax (first-period choice) per state, enabling
    /// [`ValueTable::episode`] and [`OptimalPolicy`]. Costs 4 bytes/state.
    pub keep_policy: bool,
    /// Inner-maximization algorithm (default [`InnerLoop::FrontierSweep`];
    /// the others are correctness ablations).
    pub inner: InnerLoop,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            keep_policy: true,
            inner: InnerLoop::FrontierSweep,
        }
    }
}

/// The exact grid game value `W^(p)[L]` for all `p ≤ p_max` and all grid
/// lifespans `L ≤ L_max`, plus (optionally) the optimal first-period
/// choice per state. Dense flat-arena storage: `(p_max+1)·(L_max+1)`
/// values of 8 bytes (+4 with the policy).
#[derive(Clone, Debug)]
pub struct ValueTable {
    grid: Grid,
    max_ticks: i64,
    max_interrupts: u32,
    /// Row stride: `max_ticks + 1` states per level.
    stride: usize,
    /// `levels[p·stride + l]` = `W^(p)` at lifespan `l` ticks, in ticks.
    levels: Vec<i64>,
    /// `argmax[p·stride + l]` = optimal first-period ticks (0 ⇔ l = 0).
    argmax: Option<Vec<u32>>,
}

/// Solves one level: fills `cur[1..=n]` from the completed `prev` row.
/// `cur[0]` must already be 0. The three strategies share candidate
/// generation and tie-breaking; they differ only in how the crossing of
/// the interrupted branch `A` and completed branch `B` is located.
fn solve_level(
    prev: &[i64],
    cur: &mut [i64],
    mut arg: Option<&mut [u32]>,
    n: i64,
    q: i64,
    inner: InnerLoop,
) {
    // Frontier pointer: the crossing residual s* = L − t*, nondecreasing
    // in L (see module docs).
    let mut frontier: i64 = 0;

    for l in 1..=n {
        let lu = l as usize;
        // Wait candidate: a 1-tick (nonproductive) period. Any t ≤ Q is
        // dominated by it (see module docs).
        let mut best = cur[lu - 1];
        let mut best_t: i64 = 1;

        if l > q {
            let lo = q + 1;
            let hi = l;
            let (cand_t, cand_v) = match inner {
                InnerLoop::FrontierSweep | InnerLoop::EventDriven => {
                    // Advance s* while the crossing condition
                    // h(s+1) = (s+1) + prev[s+1] − cur[s+1] ≤ L − Q
                    // still holds; h is nondecreasing and the threshold
                    // only rises with l, so the pointer never retreats.
                    let tau = l - q;
                    let s_cap = l - q - 1;
                    while frontier < s_cap {
                        let s1 = (frontier + 1) as usize;
                        if frontier + 1 + prev[s1] - cur[s1] <= tau {
                            frontier += 1;
                        } else {
                            break;
                        }
                    }
                    let su = frontier as usize;
                    let t_star = l - frontier;
                    let v_star = prev[su].min((t_star - q) + cur[su]);
                    // The maximum of min(A, B) sits at the crossing t*
                    // or one tick before it; prefer t* on ties.
                    if t_star > lo {
                        let s1 = su + 1;
                        let v_left = prev[s1].min((t_star - 1 - q) + cur[s1]);
                        if v_left > v_star {
                            (t_star - 1, v_left)
                        } else {
                            (t_star, v_star)
                        }
                    } else {
                        (t_star, v_star)
                    }
                }
                InnerLoop::Bisection => {
                    let a = |t: i64| prev[(l - t) as usize];
                    let b = |t: i64| (t - q) + cur[(l - t) as usize];
                    // Smallest t with B(t) ≥ A(t); B−A is nondecreasing.
                    let (mut lo_s, mut hi_s) = (lo, hi);
                    while lo_s < hi_s {
                        let mid = lo_s + (hi_s - lo_s) / 2;
                        if b(mid) >= a(mid) {
                            hi_s = mid;
                        } else {
                            lo_s = mid + 1;
                        }
                    }
                    let t_star = lo_s;
                    let v_star = a(t_star).min(b(t_star));
                    if t_star > lo {
                        let v_left = a(t_star - 1).min(b(t_star - 1));
                        if v_left > v_star {
                            (t_star - 1, v_left)
                        } else {
                            (t_star, v_star)
                        }
                    } else {
                        (t_star, v_star)
                    }
                }
                InnerLoop::LinearScan => {
                    let a = |t: i64| prev[(l - t) as usize];
                    let b = |t: i64| (t - q) + cur[(l - t) as usize];
                    let mut bt = lo;
                    let mut bv = a(lo).min(b(lo));
                    for t in lo + 1..=hi {
                        let v = a(t).min(b(t));
                        if v > bv {
                            bv = v;
                            bt = t;
                        }
                    }
                    (bt, bv)
                }
            };
            // Prefer a real period over waiting on ties.
            if cand_v >= best {
                best = cand_v;
                best_t = cand_t;
            }
        }

        // A zero-value state might as well burn the lifespan in one
        // period; keeps reconstructed schedules small.
        if best == 0 {
            best_t = l;
        }
        cur[lu] = best;
        if let Some(arg) = arg.as_deref_mut() {
            arg[lu] = best_t as u32;
        }
    }
}

impl ValueTable {
    /// Solves the game bottom-up for `interrupt` levels `0..=max_interrupts`
    /// and lifespans `0..=max_lifespan` at `ticks_per_setup` resolution.
    pub fn solve(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: SolveOptions,
    ) -> ValueTable {
        let grid = Grid::new(setup, ticks_per_setup);
        let n = grid.to_ticks(max_lifespan).max(0);
        let q = grid.q();
        let stride = (n + 1) as usize;
        let p_levels = max_interrupts as usize + 1;

        let mut levels = vec![0i64; p_levels * stride];
        let mut argmax = opts.keep_policy.then(|| vec![0u32; p_levels * stride]);

        // Level 0: W^(0)(l) = l ⊖ Q; single period.
        for l in 0..=n {
            levels[l as usize] = (l - q).max(0);
        }
        if let Some(am) = argmax.as_mut() {
            for l in 0..=n {
                am[l as usize] = l as u32;
            }
        }

        for p in 1..=max_interrupts as usize {
            let (done, rest) = levels.split_at_mut(p * stride);
            let prev = &done[(p - 1) * stride..];
            let cur = &mut rest[..stride];
            let arg = argmax
                .as_mut()
                .map(|am| &mut am[p * stride..(p + 1) * stride]);
            solve_level(prev, cur, arg, n, q, opts.inner);
        }

        ValueTable {
            grid,
            max_ticks: n,
            max_interrupts,
            stride,
            levels,
            argmax,
        }
    }

    /// The grid the table was solved on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Largest lifespan (in ticks) the table covers.
    pub fn max_ticks(&self) -> i64 {
        self.max_ticks
    }

    /// Largest lifespan the table covers.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Largest interrupt budget the table covers.
    pub fn max_interrupts(&self) -> u32 {
        self.max_interrupts
    }

    /// Whether the optimal first-period choice was kept per state.
    pub fn has_policy(&self) -> bool {
        self.argmax.is_some()
    }

    /// One solved row `W^(p)[0..=max_ticks]` as a slice into the arena.
    #[inline]
    pub fn row(&self, p: u32) -> &[i64] {
        let p = p.min(self.max_interrupts) as usize;
        &self.levels[p * self.stride..(p + 1) * self.stride]
    }

    /// Bytes held by the value arena and (if kept) the argmax arena.
    /// The accounting the `perf_dp` bench and the compression tests use.
    pub fn memory_bytes(&self) -> usize {
        self.levels.len() * std::mem::size_of::<i64>()
            + self
                .argmax
                .as_ref()
                .map_or(0, |am| am.len() * std::mem::size_of::<u32>())
    }

    /// Exact grid value in work ticks. `p` above the solved range clamps
    /// (the adversary never benefits from more interrupts than periods, and
    /// `W^(p)` is nonincreasing in `p`, so this is an upper bound there);
    /// `l` outside `[0, max]` panics.
    #[inline]
    pub fn value_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        self.row(p)[l as usize]
    }

    /// Value at an arbitrary lifespan by linear interpolation between grid
    /// points (`W` is 1-Lipschitz, so the interpolation error is below half
    /// a tick). Lifespans beyond the solved range panic.
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside solved range {}",
            self.max_lifespan()
        );
        let x = x.clamp(0.0, self.max_ticks as f64);
        let i = x.floor() as i64;
        let row = self.row(p);
        if i >= self.max_ticks {
            return Time::new(row[self.max_ticks as usize] as f64 * tick);
        }
        let frac = x - i as f64;
        let lo = row[i as usize] as f64;
        let hi = row[i as usize + 1] as f64;
        Time::new((lo + (hi - lo) * frac) * tick)
    }

    /// The optimal first-period length (in ticks) at state `(p, l)`.
    /// Requires the table to have been solved with `keep_policy`;
    /// `l` outside `[0, max]` panics (it would otherwise silently read
    /// a neighbouring level's row in the flat arena).
    pub fn first_period_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        let am = self
            .argmax
            .as_ref()
            .expect("table solved without keep_policy");
        let p = p.min(self.max_interrupts) as usize;
        am[p * self.stride + l as usize] as i64
    }

    /// Reconstructs the full optimal episode schedule at `(p, lifespan)`
    /// (the lifespan is quantized to the grid; the residual quantization
    /// drift is absorbed by the first period).
    pub fn episode(&self, p: u32, lifespan: Time) -> Result<EpisodeSchedule> {
        let mut l = self.grid.to_ticks(lifespan);
        if l <= 0 {
            return Err(ModelError::NegativeLifespan { lifespan });
        }
        l = l.min(self.max_ticks);
        let mut periods_ticks: Vec<i64> = Vec::new();
        while l > 0 {
            let t = self.first_period_ticks(p, l).max(1).min(l);
            periods_ticks.push(t);
            l -= t;
        }
        let mut periods: Vec<Time> = periods_ticks
            .iter()
            .map(|&t| self.grid.to_time(t))
            .collect();
        // Absorb the off-grid drift into the longest (first) period.
        let total: Time = periods.iter().copied().sum();
        let drift = lifespan - total;
        if !drift.is_zero() {
            periods[0] += drift;
        }
        EpisodeSchedule::for_lifespan(periods, lifespan)
    }
}

impl WorkOracle for ValueTable {
    fn setup(&self) -> Time {
        self.grid.setup()
    }

    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        self.value(interrupts, lifespan)
    }
}

/// The exact-DP optimal strategy as an [`EpisodePolicy`].
#[derive(Clone)]
pub struct OptimalPolicy {
    table: Arc<ValueTable>,
}

impl OptimalPolicy {
    /// Wraps a solved table (must have been solved with `keep_policy`).
    pub fn new(table: Arc<ValueTable>) -> OptimalPolicy {
        assert!(
            table.argmax.is_some(),
            "OptimalPolicy needs a table solved with keep_policy"
        );
        OptimalPolicy { table }
    }

    /// The backing table.
    pub fn table(&self) -> &ValueTable {
        &self.table
    }
}

impl EpisodePolicy for OptimalPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        self.table.episode(opp.interrupts(), opp.lifespan())
    }

    fn name(&self) -> String {
        format!(
            "optimal-dp(q={}, p≤{})",
            self.table.grid.q(),
            self.table.max_interrupts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::bounds::{w0, w1_exact};
    use cyclesteal_core::time::secs;

    fn small_table(q: u32, max_u: f64, p: u32) -> ValueTable {
        ValueTable::solve(secs(1.0), q, secs(max_u), p, SolveOptions::default())
    }

    fn with_inner(inner: InnerLoop) -> SolveOptions {
        SolveOptions {
            keep_policy: true,
            inner,
        }
    }

    #[test]
    fn level_zero_matches_prop_41d() {
        let t = small_table(8, 64.0, 0);
        for l in [0.0, 0.5, 1.0, 7.25, 64.0] {
            assert_eq!(t.value(0, secs(l)), w0(secs(l), secs(1.0)), "L={l}");
        }
    }

    #[test]
    fn monotone_in_lifespan_and_interrupts() {
        let t = small_table(8, 128.0, 4);
        for p in 0..=4u32 {
            for l in 1..=t.max_ticks() {
                assert!(
                    t.value_ticks(p, l) >= t.value_ticks(p, l - 1),
                    "Prop 4.1(a) fails at p={p}, l={l}"
                );
            }
        }
        for p in 1..=4u32 {
            for l in 0..=t.max_ticks() {
                assert!(
                    t.value_ticks(p, l) <= t.value_ticks(p - 1, l),
                    "Prop 4.1(b) fails at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn zero_region_is_prop_41c() {
        let t = small_table(8, 64.0, 3);
        let q = 8i64;
        for p in 0..=3u32 {
            let threshold = (p as i64 + 1) * q;
            for l in 0..=threshold {
                assert_eq!(t.value_ticks(p, l), 0, "W^{p}[{l}] should be 0");
            }
            // Just above: (p+1) periods of Q+1 ticks leave one survivor
            // banking one tick even after p kills.
            let above = (p as i64 + 1) * (q + 1);
            if above <= t.max_ticks() {
                assert!(
                    t.value_ticks(p, above) >= 1,
                    "W^{p}[{above}] should be positive"
                );
            }
        }
    }

    #[test]
    fn p1_matches_section_52_closed_form() {
        // Grid restriction can only lose; the loss is O(tick · m).
        let q = 64u32;
        let t = small_table(q, 200.0, 1);
        let c = secs(1.0);
        for &u in &[3.0, 5.0, 10.0, 50.0, 100.0, 200.0] {
            let dp = t.value(1, secs(u));
            let cf = w1_exact(secs(u), c);
            assert!(
                dp <= cf + secs(1e-9),
                "U={u}: grid value {dp} exceeds continuum optimum {cf}"
            );
            let m = cyclesteal_core::bounds::m1_opt(secs(u), c) as f64;
            let slack = secs((m + 2.0) / q as f64);
            assert!(
                dp >= cf - slack,
                "U={u}: grid value {dp} too far below optimum {cf} (slack {slack})"
            );
        }
    }

    #[test]
    fn all_inner_loops_agree_on_values() {
        let solve = |inner| ValueTable::solve(secs(1.0), 6, secs(80.0), 3, with_inner(inner));
        let sweep = solve(InnerLoop::FrontierSweep);
        let bisect = solve(InnerLoop::Bisection);
        let scan = solve(InnerLoop::LinearScan);
        for p in 0..=3u32 {
            for l in 0..=sweep.max_ticks() {
                assert_eq!(
                    sweep.value_ticks(p, l),
                    bisect.value_ticks(p, l),
                    "sweep vs bisection at p={p}, l={l}"
                );
                assert_eq!(
                    sweep.value_ticks(p, l),
                    scan.value_ticks(p, l),
                    "sweep vs linear scan at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn sweep_and_bisection_agree_on_argmax() {
        // Not just values: the crossing and its tie-breaks are identical,
        // so the induced policies coincide state by state.
        let sweep = ValueTable::solve(
            secs(1.0),
            7,
            secs(90.0),
            3,
            with_inner(InnerLoop::FrontierSweep),
        );
        let bisect = ValueTable::solve(
            secs(1.0),
            7,
            secs(90.0),
            3,
            with_inner(InnerLoop::Bisection),
        );
        for p in 0..=3u32 {
            for l in 1..=sweep.max_ticks() {
                assert_eq!(
                    sweep.first_period_ticks(p, l),
                    bisect.first_period_ticks(p, l),
                    "argmax mismatch at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn brute_force_full_range_cross_check() {
        // Reference implementation maximizing over ALL t ∈ [1, l] — no
        // wait-candidate shortcut, no productivity restriction.
        let q = 4i64;
        let n = 60i64;
        let mut ref_levels: Vec<Vec<i64>> = Vec::new();
        ref_levels.push((0..=n).map(|l| (l - q).max(0)).collect());
        for p in 1..=3usize {
            let mut cur = vec![0i64; (n + 1) as usize];
            for l in 1..=n {
                let mut best = 0;
                for t in 1..=l {
                    let a = ref_levels[p - 1][(l - t) as usize];
                    let b = (t - q).max(0) + cur[(l - t) as usize];
                    best = best.max(a.min(b));
                }
                cur[l as usize] = best;
            }
            ref_levels.push(cur);
        }

        let t = ValueTable::solve(
            secs(1.0),
            q as u32,
            secs(n as f64 / q as f64),
            3,
            SolveOptions::default(),
        );
        for p in 0..=3u32 {
            for l in 0..=n {
                assert_eq!(
                    t.value_ticks(p, l),
                    ref_levels[p as usize][l as usize],
                    "solver differs from brute force at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn reconstructed_episode_covers_lifespan_and_starts_like_s_opt1() {
        let t = small_table(64, 300.0, 1);
        let u = secs(250.0);
        let s = t.episode(1, u).unwrap();
        assert!(s.total().approx_eq(u, secs(1e-9)));
        let reference = cyclesteal_core::schedules::optimal_p1_schedule(u, secs(1.0)).unwrap();
        let diff = (s.period(0) - reference.period(0)).abs();
        assert!(
            diff <= secs(0.2),
            "DP first period {} vs closed form {}",
            s.period(0),
            reference.period(0)
        );
    }

    #[test]
    fn interpolation_is_between_grid_points() {
        let t = small_table(4, 32.0, 2);
        let a = t.value(2, secs(10.0));
        let b = t.value(2, secs(10.25));
        let mid = t.value(2, secs(10.125));
        assert!(mid >= a.min(b) && mid <= a.max(b));
    }

    #[test]
    #[should_panic(expected = "outside solved range")]
    fn out_of_range_lifespan_panics() {
        let t = small_table(4, 32.0, 1);
        let _ = t.value(1, secs(1000.0));
    }

    #[test]
    fn memory_accounting_matches_arena_sizes() {
        let t = small_table(4, 32.0, 2);
        let states = (t.max_ticks() + 1) as usize * 3;
        assert_eq!(t.memory_bytes(), states * 8 + states * 4);
        let bare = ValueTable::solve(
            secs(1.0),
            4,
            secs(32.0),
            2,
            SolveOptions {
                keep_policy: false,
                inner: InnerLoop::FrontierSweep,
            },
        );
        assert_eq!(bare.memory_bytes(), states * 8);
    }

    #[test]
    fn optimal_policy_is_an_episode_policy() {
        let t = Arc::new(small_table(16, 100.0, 2));
        let pol = OptimalPolicy::new(t);
        let opp = Opportunity::from_units(80.0, 1.0, 2);
        let s = pol.episode(&opp).unwrap();
        assert!(s.total().approx_eq(secs(80.0), secs(1e-9)));
        assert!(pol.name().contains("optimal-dp"));
    }
}
