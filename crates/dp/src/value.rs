//! The exact value table `W^(p)[L]` and the optimal policy it induces.
//!
//! ## The sequential formulation
//!
//! Within an episode no information reaches the owner, so committing an
//! episode schedule up front is equivalent to choosing period lengths one
//! at a time. The guaranteed-output game therefore satisfies
//!
//! ```text
//! W^(p)(L) = max_{0 < t ≤ L} min( W^(p−1)(L − t),          // interrupted
//!                                 (t ⊖ c) + W^(p)(L − t) ) // completed
//! W^(0)(L) = L ⊖ c
//! ```
//!
//! — the adversary interrupts the period at its last instant (any earlier
//! concedes more residual lifespan, and `W` is nondecreasing), or lets it
//! complete. The recursion is well-founded in `L` and is solved bottom-up
//! on the integer tick grid in exact `i64` arithmetic.
//!
//! ## The inner maximization, three ways
//!
//! On `t ∈ [Q+1, L]` the interrupted branch `A(t) = W^(p−1)(L−t)` is
//! nonincreasing and the completed branch `B(t) = (t−Q) + W^(p)(L−t)` is
//! nondecreasing (both because `W` is nondecreasing and 1-Lipschitz), so
//! `max_t min(A,B)` sits at the crossing. Nonproductive lengths `t ≤ Q`
//! are dominated by the 1-tick "wait" candidate `W^(p)(L−1)`, which is
//! also what makes each row monotone. [`SolveOptions::inner`] picks the
//! search:
//!
//! * [`InnerLoop::FrontierSweep`] (default) — substituting `s = L − t`,
//!   the crossing condition `B ≥ A` reads `h(s) ≤ L − Q` for
//!   `h(s) = s + W^(p−1)(s) − W^(p)(s)`, and `h` is **nondecreasing in
//!   `s`** (both rows are 1-Lipschitz). As `L` grows by a tick the
//!   threshold `L − Q` only rises, so the crossing residual `s*(L)` only
//!   advances: one monotone pointer serves the whole level in `O(L)`
//!   amortized — the solve is `O(p·L)` total.
//! * [`InnerLoop::Bisection`] — the seed algorithm: `O(log L)` bisection
//!   per state, `O(p·L·log L)` total. Kept as a correctness ablation and
//!   the baseline the `perf_dp` bench measures the sweep against.
//! * [`InnerLoop::LinearScan`] — the `O(L)`-per-state reference used by
//!   the E-series ablation and the equivalence property tests.
//!
//! Frontier sweep and bisection locate the *same* crossing and apply the
//! same tie-breaks, so they agree on values **and** argmax (hence on
//! reconstructed episodes) exactly; the linear scan takes the smallest
//! maximizer, which can differ on plateaus while realizing the same
//! value. The equivalence property tests in `tests/equivalence_props.rs`
//! pin all of this down, together with the breakpoint-compressed solver
//! in [`crate::compressed`].
//!
//! ## Intra-level parallelism
//!
//! The recursion is sequential in `p` (level `p` reads level `p−1`) and
//! self-referential in `l` (the completed branch reads `cur[s]` for
//! `s ≤ l − Q − 1`), so the row cannot simply be chopped up mid-sweep.
//! With [`SolveOptions::threads`] `> 1` each level is instead solved in
//! two phases that together cost less than one sequential sweep:
//!
//! 1. the level's **breakpoint skeleton** is built from the previous
//!    level's skeleton by the event-driven builder ([`crate::event`]) in
//!    `O(k log k)` — this fully determines the row's values, breaking
//!    the self-reference;
//! 2. workers expand disjoint `l`-ranges of the dense row concurrently.
//!    A value-only fill is a pure rank walk off the skeleton; with
//!    `keep_policy` each worker *replays* the frontier sweep over its
//!    range — started from its **`h`-crossing anchor**
//!    `frontier(a−1) = min(a−Q−2, max{s : h(s) ≤ a−1−Q})`, a binary
//!    search over the two completed rows — reading the row under
//!    construction through the skeleton, so candidate generation and
//!    tie-breaks are literally the sequential code path and the argmax
//!    comes out bit-identical at every thread count.
//!
//! Segment boundaries need no stitching: the anchor *is* the sweep state
//! the sequential solver would carry into the segment, and all reads are
//! of fully determined data.
//!
//! ## Storage
//!
//! Rows live in one flat arena (`Vec<i64>` indexed by `p · stride + l`)
//! rather than nested `Vec<Vec<i64>>`: one allocation, no pointer chase
//! on the hot `prev[s]`/`cur[s]` loads, and the argmax sits in a parallel
//! flat `Vec<u32>`. For lifespans too large to hold densely at all, use
//! [`crate::compressed::CompressedTable`].

use crate::compressed::{CompressedRow, SkelRead};
use crate::grid::Grid;
use cyclesteal_core::error::{ModelError, Result};
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::{EpisodePolicy, WorkOracle};
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::{Time, Work};
use std::sync::Arc;

/// The inner-maximization algorithm used per state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InnerLoop {
    /// Monotone two-pointer crossing sweep: `O(L)` amortized per level.
    FrontierSweep,
    /// Per-state bisection on the crossing: `O(L log L)` per level.
    Bisection,
    /// Full scan over productive period lengths: `O(L²)` per level.
    LinearScan,
    /// Event-driven run skipping: `O(k log k)` per level, `k` =
    /// breakpoints (see [`crate::event`]). Native to the breakpoint
    /// skeleton, so it is only a distinct build for
    /// [`crate::CompressedTable::solve_with`]; a dense [`ValueTable`]
    /// has no runs to skip and solves with the frontier sweep (the two
    /// share one crossing rule, so values and argmax are identical
    /// either way).
    EventDriven,
}

/// How compressed rows store their flat ticks — the skeletons of
/// [`crate::CompressedTable`] and the internal per-level skeletons the
/// intra-level parallel dense solve expands from. Purely a storage
/// choice: values, argmax and episodes are bit-identical either way
/// (pinned by the equivalence suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RowRepr {
    /// First-order: one sorted `i64` per flat tick (`O(k)` words).
    #[default]
    Breakpoints,
    /// Second-order: arithmetic runs (start, fixed-point common
    /// difference, length) plus an `i8` residual per jittery flat — the
    /// stored descriptor count tracks regime changes, not breakpoints,
    /// and memory drops to ≈1 byte per breakpoint. See [`crate::run`].
    Runs,
}

/// Options for [`ValueTable::solve`].
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Keep the argmax (first-period choice) per state, enabling
    /// [`ValueTable::episode`] and [`OptimalPolicy`]. Costs 4 bytes/state.
    pub keep_policy: bool,
    /// Inner-maximization algorithm (default [`InnerLoop::FrontierSweep`];
    /// the others are correctness ablations).
    pub inner: InnerLoop,
    /// Worker threads for the *intra-level* segmented sweep: `1` (the
    /// default) keeps the classic fully sequential solve, `0` resolves to
    /// [`cyclesteal_par::default_threads`] (which honors the
    /// `CYCLESTEAL_THREADS` override), any other value is used as given.
    ///
    /// Levels stay sequential (level `p` reads level `p−1`); with more
    /// than one thread each level is first skeletonized by the
    /// event-driven builder ([`crate::event`]) and then expanded into the
    /// dense row by workers sweeping disjoint `l`-ranges, each started at
    /// a precomputed `h`-crossing anchor. The result is **bit-identical**
    /// to the sequential solve at every thread count (values, argmax and
    /// episodes — pinned by the equivalence and determinism suites). Only
    /// [`InnerLoop::FrontierSweep`] and [`InnerLoop::EventDriven`] honor
    /// the knob; the bisection and linear-scan ablations always run
    /// sequentially.
    pub threads: usize,
    /// Skeleton representation for compressed rows (default
    /// [`RowRepr::Breakpoints`]): what [`crate::CompressedTable`] stores
    /// its levels as, and what the intra-level parallel dense solve
    /// reads its per-level skeletons through. [`RowRepr::Runs`] is the
    /// second-order-compressed form — bit-identical output, an order of
    /// magnitude fewer stored descriptors.
    pub repr: RowRepr,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            keep_policy: true,
            inner: InnerLoop::FrontierSweep,
            threads: 1,
            repr: RowRepr::Breakpoints,
        }
    }
}

impl SolveOptions {
    /// The worker count the solve will actually use: `threads` itself, or
    /// [`cyclesteal_par::default_threads`] when `threads == 0`.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            cyclesteal_par::default_threads()
        } else {
            self.threads
        }
    }
}

/// The exact grid game value `W^(p)[L]` for all `p ≤ p_max` and all grid
/// lifespans `L ≤ L_max`, plus (optionally) the optimal first-period
/// choice per state. Dense flat-arena storage: `(p_max+1)·(L_max+1)`
/// values of 8 bytes (+4 with the policy).
#[derive(Clone, Debug)]
pub struct ValueTable {
    grid: Grid,
    max_ticks: i64,
    max_interrupts: u32,
    /// Row stride: `max_ticks + 1` states per level.
    stride: usize,
    /// `levels[p·stride + l]` = `W^(p)` at lifespan `l` ticks, in ticks.
    levels: Vec<i64>,
    /// `argmax[p·stride + l]` = optimal first-period ticks (0 ⇔ l = 0).
    argmax: Option<Vec<u32>>,
}

/// Solves one level: fills `cur[1..=n]` from the completed `prev` row.
/// `cur[0]` must already be 0. The three strategies share candidate
/// generation and tie-breaking; they differ only in how the crossing of
/// the interrupted branch `A` and completed branch `B` is located.
fn solve_level(
    prev: &[i64],
    cur: &mut [i64],
    arg: Option<&mut [u32]>,
    n: i64,
    q: i64,
    inner: InnerLoop,
) {
    match inner {
        // The warm path: the register-carried frontier sweep below.
        InnerLoop::FrontierSweep | InnerLoop::EventDriven => match arg {
            Some(arg) => sweep_fill::<true>(prev, cur, arg, n, q),
            None => sweep_fill::<false>(prev, cur, &mut [], n, q),
        },
        InnerLoop::Bisection | InnerLoop::LinearScan => {
            solve_level_search(prev, cur, arg, n, q, inner)
        }
    }
}

/// The frontier-sweep level fill, bounds-check-audited (the first rung
/// of the ROADMAP's SIMD/bounds-check item). The crossing rule and
/// tie-breaks are literally the classic sweep's — values and argmax are
/// bit-identical — but the memory traffic is restructured so the
/// steady-state tick performs **no reads at all**:
///
/// * the wait candidate `cur[l−1]` is the carried local `last`;
/// * the four row values the candidates need — `prev`/`cur` at the
///   frontier `s` and at `s+1` — live in locals and are reloaded only
///   when the frontier *advances* (amortized ≤ 1 reload per tick across
///   the level, typically ~1 per period), which also removes the
///   per-tick bounds checks those indexed loads paid;
/// * the trivial prefix `l ≤ Q+1` (identically zero: the paper's
///   `(p+1)·c` zero region covers it for every level this fill solves)
///   is written by a dedicated loop instead of running the full
///   candidate machinery per tick.
///
/// The remaining per-tick slice accesses are the two sequential stores
/// (`cur[l]`, and `arg[l]` when `KEEP`); eliding those too needs the
/// blocked `split_at_mut` formulation — the next rung.
fn sweep_fill<const KEEP: bool>(prev: &[i64], cur: &mut [i64], arg: &mut [u32], n: i64, q: i64) {
    // Zero prefix: W(l) = 0 for l ≤ Q+1 on every level p ≥ 1, and a
    // zero-value state burns its whole lifespan in one period.
    let trivial = n.min(q + 1);
    for l in 1..=trivial {
        cur[l as usize] = 0;
        if KEEP {
            arg[l as usize] = l as u32;
        }
    }
    if n <= q + 1 {
        return;
    }

    // Frontier pointer s* = L − t*, nondecreasing in L (module docs),
    // plus the cached row values at s* and s*+1. `cur[1]` is the zero
    // just written above; `prev[0]` is 0 by the `cur[0] = 0` contract.
    let mut frontier: i64 = 0;
    let (mut prev_s, mut cur_s) = (prev[0], 0i64);
    let (mut prev_s1, mut cur_s1) = (prev[1], cur[1]);
    let mut last = 0i64; // cur[q+1], end of the trivial prefix

    for l in q + 2..=n {
        // Advance s* while the crossing condition
        // h(s+1) = (s+1) + prev[s+1] − cur[s+1] ≤ L − Q still holds;
        // h is nondecreasing and the threshold only rises with l, so
        // the pointer never retreats.
        let tau = l - q;
        let s_cap = l - q - 1;
        while frontier < s_cap && frontier + 1 + prev_s1 - cur_s1 <= tau {
            frontier += 1;
            prev_s = prev_s1;
            cur_s = cur_s1;
            // s*+1 ≤ l − Q, solved strictly earlier in this row (Q ≥ 1),
            // so both reloads see final values.
            let s1 = (frontier + 1) as usize;
            prev_s1 = prev[s1];
            cur_s1 = cur[s1];
        }
        let t_star = l - frontier;
        let v_star = prev_s.min((t_star - q) + cur_s);
        // The maximum of min(A, B) sits at the crossing t* or one tick
        // before it; prefer t* on ties. t* > Q+1 ⇔ s* < s_cap.
        let (cand_t, cand_v) = if frontier < s_cap {
            let v_left = prev_s1.min((t_star - 1 - q) + cur_s1);
            if v_left > v_star {
                (t_star - 1, v_left)
            } else {
                (t_star, v_star)
            }
        } else {
            (t_star, v_star)
        };
        // Wait candidate: a 1-tick (nonproductive) period. Any t ≤ Q is
        // dominated by it; prefer a real period over waiting on ties.
        let (mut best, mut best_t) = (last, 1i64);
        if cand_v >= best {
            best = cand_v;
            best_t = cand_t;
        }
        if best == 0 {
            best_t = l;
        }
        cur[l as usize] = best;
        if KEEP {
            arg[l as usize] = best_t as u32;
        }
        last = best;
    }
}

/// The bisection / linear-scan ablation fills (the seed algorithms the
/// sweep is benched against); candidate generation and tie-breaks match
/// [`sweep_fill`] exactly.
fn solve_level_search(
    prev: &[i64],
    cur: &mut [i64],
    mut arg: Option<&mut [u32]>,
    n: i64,
    q: i64,
    inner: InnerLoop,
) {
    for l in 1..=n {
        let lu = l as usize;
        // Wait candidate: a 1-tick (nonproductive) period. Any t ≤ Q is
        // dominated by it (see module docs).
        let mut best = cur[lu - 1];
        let mut best_t: i64 = 1;

        if l > q {
            let lo = q + 1;
            let hi = l;
            let (cand_t, cand_v) = match inner {
                InnerLoop::FrontierSweep | InnerLoop::EventDriven => {
                    unreachable!("sweep variants use sweep_fill")
                }
                InnerLoop::Bisection => {
                    let a = |t: i64| prev[(l - t) as usize];
                    let b = |t: i64| (t - q) + cur[(l - t) as usize];
                    // Smallest t with B(t) ≥ A(t); B−A is nondecreasing.
                    let (mut lo_s, mut hi_s) = (lo, hi);
                    while lo_s < hi_s {
                        let mid = lo_s + (hi_s - lo_s) / 2;
                        if b(mid) >= a(mid) {
                            hi_s = mid;
                        } else {
                            lo_s = mid + 1;
                        }
                    }
                    let t_star = lo_s;
                    let v_star = a(t_star).min(b(t_star));
                    if t_star > lo {
                        let v_left = a(t_star - 1).min(b(t_star - 1));
                        if v_left > v_star {
                            (t_star - 1, v_left)
                        } else {
                            (t_star, v_star)
                        }
                    } else {
                        (t_star, v_star)
                    }
                }
                InnerLoop::LinearScan => {
                    let a = |t: i64| prev[(l - t) as usize];
                    let b = |t: i64| (t - q) + cur[(l - t) as usize];
                    let mut bt = lo;
                    let mut bv = a(lo).min(b(lo));
                    for t in lo + 1..=hi {
                        let v = a(t).min(b(t));
                        if v > bv {
                            bv = v;
                            bt = t;
                        }
                    }
                    (bt, bv)
                }
            };
            // Prefer a real period over waiting on ties.
            if cand_v >= best {
                best = cand_v;
                best_t = cand_t;
            }
        }

        // A zero-value state might as well burn the lifespan in one
        // period; keeps reconstructed schedules small.
        if best == 0 {
            best_t = l;
        }
        cur[lu] = best;
        if let Some(arg) = arg.as_deref_mut() {
            arg[lu] = best_t as u32;
        }
    }
}

/// Minimum ticks per worker segment for the intra-level parallel sweep —
/// below this, per-segment anchor setup and thread hand-off dominate the
/// actual filling.
const MIN_SEGMENT_TICKS: i64 = 256;

/// How many segments an `n`-tick level is worth splitting into for
/// `threads` workers (1 ⇒ run the plain sequential sweep).
fn effective_segments(n: i64, threads: usize) -> usize {
    if n < 2 * MIN_SEGMENT_TICKS {
        return 1;
    }
    threads.max(1).min((n / MIN_SEGMENT_TICKS) as usize)
}

/// The frontier pointer's exact state after the sequential sweep has
/// processed tick `m` — the `h`-crossing anchor a segment starting at
/// `m + 1` resumes from. The sweep maintains
/// `frontier(m) = min(m − Q − 1, max{s ≥ 0 : h(s) ≤ m − Q})` with
/// `h(s) = s + prev(s) − cur(s)` nondecreasing, so the anchor is a
/// binary search over the two completed rows (`prev` dense, `cur` as its
/// skeleton in either representation).
fn anchor_frontier(prev: &[i64], skel: &CompressedRow, q: i64, m: i64) -> i64 {
    if m <= q {
        return 0;
    }
    let tau = m - q;
    let (mut lo, mut hi) = (0i64, m - q - 1);
    while lo < hi {
        let mid = lo + (hi - lo + 1) / 2;
        if mid + prev[mid as usize] - skel.value(mid) <= tau {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// One worker's share of a level: the tick range `[start, start+len)`
/// as disjoint `&mut` windows into the level's value (and optionally
/// argmax) arena rows.
struct RowSegment<'a> {
    start: i64,
    vals: &'a mut [i64],
    args: Option<&'a mut [u32]>,
}

/// Splits `cur[1..=n]` (and the matching argmax window) into `segments`
/// near-equal consecutive [`RowSegment`]s.
fn split_row_segments<'a>(
    cur: &'a mut [i64],
    arg: Option<&'a mut [u32]>,
    n: i64,
    segments: usize,
) -> Vec<RowSegment<'a>> {
    let mut out = Vec::with_capacity(segments);
    let mut vals_rest = &mut cur[1..=n as usize];
    let mut args_rest = arg.map(|a| &mut a[1..=n as usize]);
    let mut start = 1i64;
    for k in 0..segments {
        let remaining = n - start + 1;
        let take = (remaining / (segments - k) as i64).max(1).min(remaining);
        let (vals, vtail) = std::mem::take(&mut vals_rest).split_at_mut(take as usize);
        vals_rest = vtail;
        let args = args_rest.take().map(|a| {
            let (head, tail) = a.split_at_mut(take as usize);
            args_rest = Some(tail);
            head
        });
        out.push(RowSegment { start, vals, args });
        start += take;
    }
    debug_assert_eq!(start, n + 1, "segments must tile [1, n]");
    out
}

/// Fills one worker's segment of level `p ≥ 1` from the completed dense
/// `prev` row and the level's own skeleton (flat-list or run-backed —
/// every read goes through the representation-blind row API).
///
/// With an argmax window the segment *replays* the frontier sweep from
/// its anchor — every read of the row under construction is served by
/// the skeleton (those positions may belong to other segments), so the
/// per-tick candidate generation and tie-breaking are literally the
/// sequential [`solve_level`] arm and the argmax comes out bit-identical.
/// Without one, the values alone are expanded straight off the skeleton
/// by an incremental rank walk.
fn fill_segment(seg: RowSegment<'_>, prev: &[i64], skel: &CompressedRow, q: i64) {
    let RowSegment { start, vals, args } = seg;
    let end = start + vals.len() as i64 - 1;
    match args {
        None => {
            // Value-only expansion, run by run: between consecutive flat
            // ticks the row is an arithmetic ramp, written by a tight
            // (auto-vectorizable) loop instead of a per-tick rank check.
            // The zero-region prefix is skipped outright — the arena
            // arrives zero-initialized, so not touching it also avoids
            // faulting pages the solve never reads.
            let z = skel.zero_until;
            let mut l = start.max(z + 1);
            if l > end {
                return;
            }
            let mut i = (l - start) as usize;
            let (rank, mut flats) = skel.flats_after(l - 1);
            let mut rank = rank;
            let mut next_flat = flats.next().unwrap_or(i64::MAX);
            loop {
                let ramp_end = end.min(next_flat - 1);
                if l <= ramp_end {
                    let base = (l - z) - rank;
                    let len = (ramp_end - l + 1) as usize;
                    for (j, slot) in vals[i..i + len].iter_mut().enumerate() {
                        *slot = base + j as i64;
                    }
                    i += len;
                    l = ramp_end + 1;
                }
                if l > end {
                    break;
                }
                // l == next_flat: the value repeats the previous tick's.
                rank += 1;
                vals[i] = (l - z) - rank;
                i += 1;
                l += 1;
                next_flat = flats.next().unwrap_or(i64::MAX);
                if l > end {
                    break;
                }
            }
        }
        Some(args) => {
            let mut last = skel.value(start - 1);
            let mut frontier = anchor_frontier(prev, skel, q, start - 1);
            let mut cur_at = skel.cursor();
            for (i, l) in (start..=end).enumerate() {
                let mut best = last;
                let mut best_t: i64 = 1;
                if l > q {
                    let lo = q + 1;
                    let tau = l - q;
                    let s_cap = l - q - 1;
                    while frontier < s_cap {
                        let s1 = frontier + 1;
                        let h = s1 + prev[s1 as usize] - cur_at.value(s1);
                        if h <= tau {
                            frontier += 1;
                        } else {
                            break;
                        }
                    }
                    let su = frontier;
                    let t_star = l - su;
                    let v_star = prev[su as usize].min((t_star - q) + cur_at.value(su));
                    let (cand_t, cand_v) = if t_star > lo {
                        let s1 = su + 1;
                        let v_left = prev[s1 as usize].min((t_star - 1 - q) + cur_at.value(s1));
                        if v_left > v_star {
                            (t_star - 1, v_left)
                        } else {
                            (t_star, v_star)
                        }
                    } else {
                        (t_star, v_star)
                    };
                    if cand_v >= best {
                        best = cand_v;
                        best_t = cand_t;
                    }
                }
                if best == 0 {
                    best_t = l;
                }
                debug_assert_eq!(best, skel.value(l), "replay left the skeleton at l={l}");
                vals[i] = best;
                args[i] = best_t as u32;
                last = best;
            }
        }
    }
}

impl ValueTable {
    /// Solves the game bottom-up for `interrupt` levels `0..=max_interrupts`
    /// and lifespans `0..=max_lifespan` at `ticks_per_setup` resolution.
    ///
    /// ```
    /// use cyclesteal_core::time::secs;
    /// use cyclesteal_dp::{SolveOptions, ValueTable};
    ///
    /// // W^(p)[L] for p ≤ 2 and lifespans up to 100 setup charges, at 8
    /// // ticks per charge.
    /// let table = ValueTable::solve(secs(1.0), 8, secs(100.0), 2, SolveOptions::default());
    /// // Rows are nondecreasing in lifespan and nonincreasing in the
    /// // adversary's interrupt budget (paper Prop. 4.1):
    /// assert!(table.value(1, secs(80.0)) >= table.value(1, secs(40.0)));
    /// assert!(table.value(2, secs(80.0)) <= table.value(1, secs(80.0)));
    /// // keep_policy (the default) also records the optimal first period
    /// // per state, so full episode schedules reconstruct exactly:
    /// let episode = table.episode(2, secs(80.0)).unwrap();
    /// assert!(episode.total().approx_eq(secs(80.0), secs(1e-9)));
    /// ```
    pub fn solve(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: SolveOptions,
    ) -> ValueTable {
        Self::solve_inner(
            setup,
            ticks_per_setup,
            max_lifespan,
            max_interrupts,
            opts,
            None,
        )
    }

    /// [`Self::solve`] with per-phase timing recorded into `recorder`
    /// (see [`crate::profile`]): the skeleton pass of the parallel path
    /// is attributed to [`crate::Phase::EventLoop`] and the arena fill
    /// (parallel or sequential) to [`crate::Phase::DenseExpansion`].
    /// The clock is read only between phases, so the solved table is
    /// bit-identical to the unprofiled solve.
    pub fn solve_profiled(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: SolveOptions,
        recorder: &crate::profile::PhaseRecorder<'_>,
    ) -> ValueTable {
        Self::solve_inner(
            setup,
            ticks_per_setup,
            max_lifespan,
            max_interrupts,
            opts,
            Some(recorder),
        )
    }

    fn solve_inner(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: SolveOptions,
        prof: Option<&crate::profile::PhaseRecorder<'_>>,
    ) -> ValueTable {
        use crate::profile::{time_opt, Phase};
        let grid = Grid::new(setup, ticks_per_setup);
        let n = grid.to_ticks(max_lifespan).max(0);
        let q = grid.q();
        let stride = (n + 1) as usize;
        let p_levels = max_interrupts as usize + 1;

        let mut levels = vec![0i64; p_levels * stride];
        let mut argmax = opts.keep_policy.then(|| vec![0u32; p_levels * stride]);

        // Level 0: W^(0)(l) = l ⊖ Q; single period.
        for l in 0..=n {
            levels[l as usize] = (l - q).max(0);
        }
        if let Some(am) = argmax.as_mut() {
            for l in 0..=n {
                am[l as usize] = l as u32;
            }
        }

        // Intra-level parallel path: only the frontier-sweep crossing rule
        // has the segmented formulation (the event-driven build shares it);
        // the bisection/linear-scan ablations stay sequential.
        let segments = match opts.inner {
            InnerLoop::FrontierSweep | InnerLoop::EventDriven => {
                effective_segments(n, opts.resolved_threads())
            }
            InnerLoop::Bisection | InnerLoop::LinearScan => 1,
        };

        if segments > 1 {
            let threads = opts.resolved_threads();
            // Levels stay sequential; within each level the row is first
            // skeletonized (event-driven, O(k log k)) and then expanded —
            // values and argmax — by workers on disjoint l-ranges, each
            // resuming the sweep from its h-crossing anchor.
            let mut prev_skel = CompressedRow::empty(q.min(n));
            for p in 1..=max_interrupts as usize {
                let (skel, _events) = time_opt(prof, Phase::EventLoop, || {
                    crate::event::build_level_events(&prev_skel, n, q, threads, opts.repr)
                });
                let (done, rest) = levels.split_at_mut(p * stride);
                let prev = &done[(p - 1) * stride..];
                let cur = &mut rest[..stride];
                let arg = argmax
                    .as_mut()
                    .map(|am| &mut am[p * stride..(p + 1) * stride]);
                time_opt(prof, Phase::DenseExpansion, || {
                    let jobs = split_row_segments(cur, arg, n, segments);
                    cyclesteal_par::par_sweep_segments(jobs, threads, |seg| {
                        fill_segment(seg, prev, &skel, q)
                    });
                });
                prev_skel = skel;
            }
        } else {
            for p in 1..=max_interrupts as usize {
                let (done, rest) = levels.split_at_mut(p * stride);
                let prev = &done[(p - 1) * stride..];
                let cur = &mut rest[..stride];
                let arg = argmax
                    .as_mut()
                    .map(|am| &mut am[p * stride..(p + 1) * stride]);
                time_opt(prof, Phase::DenseExpansion, || {
                    solve_level(prev, cur, arg, n, q, opts.inner)
                });
            }
        }

        ValueTable {
            grid,
            max_ticks: n,
            max_interrupts,
            stride,
            levels,
            argmax,
        }
    }

    /// The grid the table was solved on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Largest lifespan (in ticks) the table covers.
    pub fn max_ticks(&self) -> i64 {
        self.max_ticks
    }

    /// Largest lifespan the table covers.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Whether the table can answer every query up to `max_lifespan`,
    /// with the same tolerance [`Self::value`] accepts — the coverage
    /// check the [`crate::TableCache`] and the serving layer share, so
    /// a "covered" table can never panic on the promised range.
    pub fn covers(&self, max_lifespan: Time) -> bool {
        max_lifespan.get() / self.grid.tick().get() <= self.max_ticks as f64 + 1e-9
    }

    /// Largest interrupt budget the table covers.
    pub fn max_interrupts(&self) -> u32 {
        self.max_interrupts
    }

    /// Whether the optimal first-period choice was kept per state.
    pub fn has_policy(&self) -> bool {
        self.argmax.is_some()
    }

    /// Short human label for the row representation — the counterpart of
    /// [`crate::CompressedTable::repr_name`] ("breakpoint" / "run"), so
    /// sweep reports can say which representation served each query.
    pub fn repr_name(&self) -> &'static str {
        "dense"
    }

    /// One solved row `W^(p)[0..=max_ticks]` as a slice into the arena.
    #[inline]
    pub fn row(&self, p: u32) -> &[i64] {
        let p = p.min(self.max_interrupts) as usize;
        &self.levels[p * self.stride..(p + 1) * self.stride]
    }

    /// Bytes held by the value arena and (if kept) the argmax arena.
    /// The accounting the `perf_dp` bench and the compression tests use.
    pub fn memory_bytes(&self) -> usize {
        self.levels.len() * std::mem::size_of::<i64>()
            + self
                .argmax
                .as_ref()
                .map_or(0, |am| am.len() * std::mem::size_of::<u32>())
    }

    /// Exact grid value in work ticks. `p` above the solved range clamps
    /// (the adversary never benefits from more interrupts than periods, and
    /// `W^(p)` is nonincreasing in `p`, so this is an upper bound there);
    /// `l` outside `[0, max]` panics.
    #[inline]
    pub fn value_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        self.row(p)[l as usize]
    }

    /// Value at an arbitrary lifespan by linear interpolation between grid
    /// points (`W` is 1-Lipschitz, so the interpolation error is below half
    /// a tick). Lifespans beyond the solved range panic.
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside solved range {}",
            self.max_lifespan()
        );
        let x = x.clamp(0.0, self.max_ticks as f64);
        let i = x.floor() as i64;
        let row = self.row(p);
        if i >= self.max_ticks {
            return Time::new(row[self.max_ticks as usize] as f64 * tick);
        }
        let frac = x - i as f64;
        let lo = row[i as usize] as f64;
        let hi = row[i as usize + 1] as f64;
        Time::new((lo + (hi - lo) * frac) * tick)
    }

    /// The optimal first-period length (in ticks) at state `(p, l)`.
    /// Requires the table to have been solved with `keep_policy`;
    /// `l` outside `[0, max]` panics (it would otherwise silently read
    /// a neighbouring level's row in the flat arena).
    pub fn first_period_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        let am = self
            .argmax
            .as_ref()
            .expect("table solved without keep_policy");
        let p = p.min(self.max_interrupts) as usize;
        am[p * self.stride + l as usize] as i64
    }

    /// Reconstructs the full optimal episode schedule at `(p, lifespan)`
    /// (the lifespan is quantized to the grid; the residual quantization
    /// drift is absorbed by the first period — see `assemble_episode` in
    /// this module for the coarse-grid guard).
    pub fn episode(&self, p: u32, lifespan: Time) -> Result<EpisodeSchedule> {
        let mut l = self.grid.to_ticks(lifespan);
        if l <= 0 {
            return Err(ModelError::NegativeLifespan { lifespan });
        }
        l = l.min(self.max_ticks);
        let mut periods_ticks: Vec<i64> = Vec::new();
        while l > 0 {
            let t = self.first_period_ticks(p, l).max(1).min(l);
            periods_ticks.push(t);
            l -= t;
        }
        assemble_episode(&self.grid, &periods_ticks, lifespan)
    }
}

/// Turns reconstructed on-grid period ticks into an [`EpisodeSchedule`]
/// at the requested (off-grid) lifespan. The quantization drift
/// `lifespan − Σ tᵢ·tick` is absorbed by the first period; when a
/// *negative* drift would consume the entire first period — reachable
/// only at very coarse grids, where half a tick can rival a whole period
/// — every period is instead scaled by the same positive factor, so the
/// schedule never contains a non-positive length and still sums to the
/// lifespan. Shared by the dense and compressed reconstructions so their
/// outputs stay bit-identical.
pub(crate) fn assemble_episode(
    grid: &Grid,
    periods_ticks: &[i64],
    lifespan: Time,
) -> Result<EpisodeSchedule> {
    let mut periods: Vec<Time> = periods_ticks.iter().map(|&t| grid.to_time(t)).collect();
    let total: Time = periods.iter().copied().sum();
    let drift = lifespan - total;
    if !drift.is_zero() {
        if (periods[0] + drift).is_positive() {
            periods[0] += drift;
        } else {
            let scale = lifespan.get() / total.get();
            for t in periods.iter_mut() {
                *t = Time::new(t.get() * scale);
            }
        }
    }
    EpisodeSchedule::for_lifespan(periods, lifespan)
}

impl WorkOracle for ValueTable {
    fn setup(&self) -> Time {
        self.grid.setup()
    }

    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        self.value(interrupts, lifespan)
    }
}

/// The exact-DP optimal strategy as an [`EpisodePolicy`].
#[derive(Clone)]
pub struct OptimalPolicy {
    table: Arc<ValueTable>,
}

impl OptimalPolicy {
    /// Wraps a solved table (must have been solved with `keep_policy`).
    pub fn new(table: Arc<ValueTable>) -> OptimalPolicy {
        assert!(
            table.argmax.is_some(),
            "OptimalPolicy needs a table solved with keep_policy"
        );
        OptimalPolicy { table }
    }

    /// The backing table.
    pub fn table(&self) -> &ValueTable {
        &self.table
    }
}

impl EpisodePolicy for OptimalPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        self.table.episode(opp.interrupts(), opp.lifespan())
    }

    fn name(&self) -> String {
        format!(
            "optimal-dp(q={}, p≤{})",
            self.table.grid.q(),
            self.table.max_interrupts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::bounds::{w0, w1_exact};
    use cyclesteal_core::time::secs;

    fn small_table(q: u32, max_u: f64, p: u32) -> ValueTable {
        ValueTable::solve(secs(1.0), q, secs(max_u), p, SolveOptions::default())
    }

    fn with_inner(inner: InnerLoop) -> SolveOptions {
        SolveOptions {
            inner,
            ..SolveOptions::default()
        }
    }

    #[test]
    fn level_zero_matches_prop_41d() {
        let t = small_table(8, 64.0, 0);
        for l in [0.0, 0.5, 1.0, 7.25, 64.0] {
            assert_eq!(t.value(0, secs(l)), w0(secs(l), secs(1.0)), "L={l}");
        }
    }

    #[test]
    fn monotone_in_lifespan_and_interrupts() {
        let t = small_table(8, 128.0, 4);
        for p in 0..=4u32 {
            for l in 1..=t.max_ticks() {
                assert!(
                    t.value_ticks(p, l) >= t.value_ticks(p, l - 1),
                    "Prop 4.1(a) fails at p={p}, l={l}"
                );
            }
        }
        for p in 1..=4u32 {
            for l in 0..=t.max_ticks() {
                assert!(
                    t.value_ticks(p, l) <= t.value_ticks(p - 1, l),
                    "Prop 4.1(b) fails at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn zero_region_is_prop_41c() {
        let t = small_table(8, 64.0, 3);
        let q = 8i64;
        for p in 0..=3u32 {
            let threshold = (p as i64 + 1) * q;
            for l in 0..=threshold {
                assert_eq!(t.value_ticks(p, l), 0, "W^{p}[{l}] should be 0");
            }
            // Just above: (p+1) periods of Q+1 ticks leave one survivor
            // banking one tick even after p kills.
            let above = (p as i64 + 1) * (q + 1);
            if above <= t.max_ticks() {
                assert!(
                    t.value_ticks(p, above) >= 1,
                    "W^{p}[{above}] should be positive"
                );
            }
        }
    }

    #[test]
    fn p1_matches_section_52_closed_form() {
        // Grid restriction can only lose; the loss is O(tick · m).
        let q = 64u32;
        let t = small_table(q, 200.0, 1);
        let c = secs(1.0);
        for &u in &[3.0, 5.0, 10.0, 50.0, 100.0, 200.0] {
            let dp = t.value(1, secs(u));
            let cf = w1_exact(secs(u), c);
            assert!(
                dp <= cf + secs(1e-9),
                "U={u}: grid value {dp} exceeds continuum optimum {cf}"
            );
            let m = cyclesteal_core::bounds::m1_opt(secs(u), c) as f64;
            let slack = secs((m + 2.0) / q as f64);
            assert!(
                dp >= cf - slack,
                "U={u}: grid value {dp} too far below optimum {cf} (slack {slack})"
            );
        }
    }

    #[test]
    fn all_inner_loops_agree_on_values() {
        let solve = |inner| ValueTable::solve(secs(1.0), 6, secs(80.0), 3, with_inner(inner));
        let sweep = solve(InnerLoop::FrontierSweep);
        let bisect = solve(InnerLoop::Bisection);
        let scan = solve(InnerLoop::LinearScan);
        for p in 0..=3u32 {
            for l in 0..=sweep.max_ticks() {
                assert_eq!(
                    sweep.value_ticks(p, l),
                    bisect.value_ticks(p, l),
                    "sweep vs bisection at p={p}, l={l}"
                );
                assert_eq!(
                    sweep.value_ticks(p, l),
                    scan.value_ticks(p, l),
                    "sweep vs linear scan at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn sweep_and_bisection_agree_on_argmax() {
        // Not just values: the crossing and its tie-breaks are identical,
        // so the induced policies coincide state by state.
        let sweep = ValueTable::solve(
            secs(1.0),
            7,
            secs(90.0),
            3,
            with_inner(InnerLoop::FrontierSweep),
        );
        let bisect = ValueTable::solve(
            secs(1.0),
            7,
            secs(90.0),
            3,
            with_inner(InnerLoop::Bisection),
        );
        for p in 0..=3u32 {
            for l in 1..=sweep.max_ticks() {
                assert_eq!(
                    sweep.first_period_ticks(p, l),
                    bisect.first_period_ticks(p, l),
                    "argmax mismatch at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn brute_force_full_range_cross_check() {
        // Reference implementation maximizing over ALL t ∈ [1, l] — no
        // wait-candidate shortcut, no productivity restriction.
        let q = 4i64;
        let n = 60i64;
        let mut ref_levels: Vec<Vec<i64>> = Vec::new();
        ref_levels.push((0..=n).map(|l| (l - q).max(0)).collect());
        for p in 1..=3usize {
            let mut cur = vec![0i64; (n + 1) as usize];
            for l in 1..=n {
                let mut best = 0;
                for t in 1..=l {
                    let a = ref_levels[p - 1][(l - t) as usize];
                    let b = (t - q).max(0) + cur[(l - t) as usize];
                    best = best.max(a.min(b));
                }
                cur[l as usize] = best;
            }
            ref_levels.push(cur);
        }

        let t = ValueTable::solve(
            secs(1.0),
            q as u32,
            secs(n as f64 / q as f64),
            3,
            SolveOptions::default(),
        );
        for p in 0..=3u32 {
            for l in 0..=n {
                assert_eq!(
                    t.value_ticks(p, l),
                    ref_levels[p as usize][l as usize],
                    "solver differs from brute force at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn reconstructed_episode_covers_lifespan_and_starts_like_s_opt1() {
        let t = small_table(64, 300.0, 1);
        let u = secs(250.0);
        let s = t.episode(1, u).unwrap();
        assert!(s.total().approx_eq(u, secs(1e-9)));
        let reference = cyclesteal_core::schedules::optimal_p1_schedule(u, secs(1.0)).unwrap();
        let diff = (s.period(0) - reference.period(0)).abs();
        assert!(
            diff <= secs(0.2),
            "DP first period {} vs closed form {}",
            s.period(0),
            reference.period(0)
        );
    }

    #[test]
    fn interpolation_is_between_grid_points() {
        let t = small_table(4, 32.0, 2);
        let a = t.value(2, secs(10.0));
        let b = t.value(2, secs(10.25));
        let mid = t.value(2, secs(10.125));
        assert!(mid >= a.min(b) && mid <= a.max(b));
    }

    #[test]
    #[should_panic(expected = "outside solved range")]
    fn out_of_range_lifespan_panics() {
        let t = small_table(4, 32.0, 1);
        let _ = t.value(1, secs(1000.0));
    }

    #[test]
    fn memory_accounting_matches_arena_sizes() {
        let t = small_table(4, 32.0, 2);
        let states = (t.max_ticks() + 1) as usize * 3;
        assert_eq!(t.memory_bytes(), states * 8 + states * 4);
        let bare = ValueTable::solve(
            secs(1.0),
            4,
            secs(32.0),
            2,
            SolveOptions {
                keep_policy: false,
                ..SolveOptions::default()
            },
        );
        assert_eq!(bare.memory_bytes(), states * 8);
    }

    #[test]
    fn coarse_grid_episodes_never_emit_nonpositive_periods() {
        // Q = 1 is the coarsest grid: one tick per setup charge, so the
        // quantization drift (up to half a tick) rivals whole periods.
        // Every reconstructed episode must consist of strictly positive
        // periods summing to the requested lifespan — including lifespans
        // sitting right at the round-half-away boundary.
        let t = ValueTable::solve(secs(1.0), 1, secs(40.0), 2, SolveOptions::default());
        for p in 0..=2u32 {
            for k in 1..=39i64 {
                for du in [-0.5, -0.499, -0.25, 0.0, 0.25, 0.499] {
                    let u = secs(k as f64 + du);
                    if t.grid().to_ticks(u) <= 0 {
                        continue;
                    }
                    let s = t.episode(p, u).unwrap();
                    assert!(
                        s.periods().iter().all(|pd| pd.is_positive()),
                        "non-positive period at p={p}, U={u}: {:?}",
                        s.periods()
                    );
                    assert!(
                        s.total().approx_eq(u, secs(1e-9)),
                        "episode at p={p}, U={u} sums to {}",
                        s.total()
                    );
                }
            }
        }
    }

    #[test]
    fn assemble_episode_renormalizes_when_drift_consumes_first_period() {
        // Direct exercise of the guard: a 1-tick first period with a
        // negative drift larger than itself. Unreachable through today's
        // reconstruction loop (|drift| ≤ tick/2 < any period), but the
        // helper must never emit a non-positive length even if a future
        // caller feeds it a worse quantization.
        let grid = Grid::new(secs(1.0), 1);
        let periods_ticks = [1i64, 5, 5];
        let lifespan = secs(0.5); // total is 11.0 — drift −10.5 swallows t₁
        let s = assemble_episode(&grid, &periods_ticks, lifespan).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.periods().iter().all(|pd| pd.is_positive()));
        assert!(s.total().approx_eq(lifespan, secs(1e-9)));
        // Proportions survive the renormalization.
        assert!(s.period(1).approx_eq(s.period(2), secs(1e-12)));
        assert!(s.period(1) > s.period(0));
    }

    #[test]
    fn optimal_policy_is_an_episode_policy() {
        let t = Arc::new(small_table(16, 100.0, 2));
        let pol = OptimalPolicy::new(t);
        let opp = Opportunity::from_units(80.0, 1.0, 2);
        let s = pol.episode(&opp).unwrap();
        assert!(s.total().approx_eq(secs(80.0), secs(1e-9)));
        assert!(pol.name().contains("optimal-dp"));
    }
}
