//! The exact value table `W^(p)[L]` and the optimal policy it induces.
//!
//! ## The sequential formulation
//!
//! Within an episode no information reaches the owner, so committing an
//! episode schedule up front is equivalent to choosing period lengths one
//! at a time. The guaranteed-output game therefore satisfies
//!
//! ```text
//! W^(p)(L) = max_{0 < t ≤ L} min( W^(p−1)(L − t),          // interrupted
//!                                 (t ⊖ c) + W^(p)(L − t) ) // completed
//! W^(0)(L) = L ⊖ c
//! ```
//!
//! — the adversary interrupts the period at its last instant (any earlier
//! concedes more residual lifespan, and `W` is nondecreasing), or lets it
//! complete. The recursion is well-founded in `L` and is solved bottom-up
//! on the integer tick grid in exact `i64` arithmetic.
//!
//! ## The inner maximization
//!
//! On `t ∈ [Q+1, L]` the interrupted branch `A(t) = W^(p−1)(L−t)` is
//! nonincreasing and the completed branch `B(t) = (t−Q) + W^(p)(L−t)` is
//! nondecreasing (both because `W` is nondecreasing and 1-Lipschitz), so
//! `max_t min(A,B)` sits at the crossing, found by bisection in
//! `O(log L)`. Nonproductive lengths `t ≤ Q` are dominated by the 1-tick
//! "wait" candidate `W^(p)(L−1)`, which is also what makes each row
//! monotone; a linear-scan fallback over the full range is kept for the
//! correctness tests and the E-series ablation (`SolveOptions::bisection`).

use crate::grid::Grid;
use cyclesteal_core::error::{ModelError, Result};
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::{EpisodePolicy, WorkOracle};
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::{Time, Work};
use std::sync::Arc;

/// Options for [`ValueTable::solve`].
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Keep the argmax (first-period choice) per state, enabling
    /// [`ValueTable::episode`] and [`OptimalPolicy`]. Costs 4 bytes/state.
    pub keep_policy: bool,
    /// Use the monotone-crossing bisection for the inner max (`true`,
    /// default) or the `O(L)` linear scan (ablation/reference).
    pub bisection: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            keep_policy: true,
            bisection: true,
        }
    }
}

/// The exact grid game value `W^(p)[L]` for all `p ≤ p_max` and all grid
/// lifespans `L ≤ L_max`, plus (optionally) the optimal first-period
/// choice per state.
#[derive(Clone, Debug)]
pub struct ValueTable {
    grid: Grid,
    max_ticks: i64,
    max_interrupts: u32,
    /// `levels[p][l]` = `W^(p)` at lifespan `l` ticks, in work ticks.
    levels: Vec<Vec<i64>>,
    /// `argmax[p][l]` = optimal first-period length in ticks (0 ⇔ l = 0).
    argmax: Option<Vec<Vec<u32>>>,
}

impl ValueTable {
    /// Solves the game bottom-up for `interrupt` levels `0..=max_interrupts`
    /// and lifespans `0..=max_lifespan` at `ticks_per_setup` resolution.
    pub fn solve(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: SolveOptions,
    ) -> ValueTable {
        let grid = Grid::new(setup, ticks_per_setup);
        let n = grid.to_ticks(max_lifespan).max(0);
        let q = grid.q();
        let states = (n + 1) as usize;

        let mut levels: Vec<Vec<i64>> = Vec::with_capacity(max_interrupts as usize + 1);
        let mut argmax: Option<Vec<Vec<u32>>> = opts.keep_policy.then(Vec::new);

        // Level 0: W^(0)(l) = l ⊖ Q; single period.
        let w0: Vec<i64> = (0..=n).map(|l| (l - q).max(0)).collect();
        if let Some(am) = argmax.as_mut() {
            am.push((0..=n).map(|l| l as u32).collect());
        }
        levels.push(w0);

        for _p in 1..=max_interrupts {
            let prev = levels.last().expect("level p−1 present");
            let mut cur = vec![0i64; states];
            let mut arg = opts.keep_policy.then(|| vec![0u32; states]);

            for l in 1..=n {
                let lu = l as usize;
                // Wait candidate: a 1-tick (nonproductive) period. Any
                // t ≤ Q is dominated by it (see module docs).
                let mut best = cur[lu - 1];
                let mut best_t: i64 = 1;

                if l > q {
                    let lo = q + 1;
                    let hi = l;
                    let a = |t: i64| prev[(l - t) as usize];
                    let b = |t: i64| (t - q) + cur[(l - t) as usize];
                    let (cand_t, cand_v) = if opts.bisection {
                        // Smallest t with B(t) ≥ A(t); B−A is nondecreasing.
                        if b(hi) < a(hi) {
                            (hi, b(hi))
                        } else {
                            let (mut lo_s, mut hi_s) = (lo, hi);
                            while lo_s < hi_s {
                                let mid = lo_s + (hi_s - lo_s) / 2;
                                if b(mid) >= a(mid) {
                                    hi_s = mid;
                                } else {
                                    lo_s = mid + 1;
                                }
                            }
                            let t_star = lo_s;
                            let v_star = a(t_star).min(b(t_star));
                            if t_star > lo {
                                let v_left = a(t_star - 1).min(b(t_star - 1));
                                if v_left > v_star {
                                    (t_star - 1, v_left)
                                } else {
                                    (t_star, v_star)
                                }
                            } else {
                                (t_star, v_star)
                            }
                        }
                    } else {
                        let mut bt = lo;
                        let mut bv = a(lo).min(b(lo));
                        for t in lo + 1..=hi {
                            let v = a(t).min(b(t));
                            if v > bv {
                                bv = v;
                                bt = t;
                            }
                        }
                        (bt, bv)
                    };
                    // Prefer a real period over waiting on ties.
                    if cand_v >= best {
                        best = cand_v;
                        best_t = cand_t;
                    }
                }

                // A zero-value state might as well burn the lifespan in one
                // period; keeps reconstructed schedules small.
                if best == 0 {
                    best_t = l;
                }
                cur[lu] = best;
                if let Some(arg) = arg.as_mut() {
                    arg[lu] = best_t as u32;
                }
            }

            levels.push(cur);
            if let (Some(am), Some(arg)) = (argmax.as_mut(), arg) {
                am.push(arg);
            }
        }

        ValueTable {
            grid,
            max_ticks: n,
            max_interrupts,
            levels,
            argmax,
        }
    }

    /// The grid the table was solved on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Largest lifespan (in ticks) the table covers.
    pub fn max_ticks(&self) -> i64 {
        self.max_ticks
    }

    /// Largest lifespan the table covers.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Largest interrupt budget the table covers.
    pub fn max_interrupts(&self) -> u32 {
        self.max_interrupts
    }

    /// Exact grid value in work ticks. `p` above the solved range clamps
    /// (the adversary never benefits from more interrupts than periods, and
    /// `W^(p)` is nonincreasing in `p`, so this is an upper bound there);
    /// `l` outside `[0, max]` panics.
    #[inline]
    pub fn value_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        let p = p.min(self.max_interrupts) as usize;
        self.levels[p][l as usize]
    }

    /// Value at an arbitrary lifespan by linear interpolation between grid
    /// points (`W` is 1-Lipschitz, so the interpolation error is below half
    /// a tick). Lifespans beyond the solved range panic.
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside solved range {}",
            self.max_lifespan()
        );
        let x = x.clamp(0.0, self.max_ticks as f64);
        let i = x.floor() as i64;
        let p = p.min(self.max_interrupts) as usize;
        let row = &self.levels[p];
        if i >= self.max_ticks {
            return Time::new(row[self.max_ticks as usize] as f64 * tick);
        }
        let frac = x - i as f64;
        let lo = row[i as usize] as f64;
        let hi = row[i as usize + 1] as f64;
        Time::new((lo + (hi - lo) * frac) * tick)
    }

    /// The optimal first-period length (in ticks) at state `(p, l)`.
    /// Requires the table to have been solved with `keep_policy`.
    pub fn first_period_ticks(&self, p: u32, l: i64) -> i64 {
        let am = self
            .argmax
            .as_ref()
            .expect("table solved without keep_policy");
        let p = p.min(self.max_interrupts) as usize;
        am[p][l as usize] as i64
    }

    /// Reconstructs the full optimal episode schedule at `(p, lifespan)`
    /// (the lifespan is quantized to the grid; the residual quantization
    /// drift is absorbed by the first period).
    pub fn episode(&self, p: u32, lifespan: Time) -> Result<EpisodeSchedule> {
        let mut l = self.grid.to_ticks(lifespan);
        if l <= 0 {
            return Err(ModelError::NegativeLifespan { lifespan });
        }
        l = l.min(self.max_ticks);
        let mut periods_ticks: Vec<i64> = Vec::new();
        while l > 0 {
            let t = self.first_period_ticks(p, l).max(1).min(l);
            periods_ticks.push(t);
            l -= t;
        }
        let mut periods: Vec<Time> = periods_ticks
            .iter()
            .map(|&t| self.grid.to_time(t))
            .collect();
        // Absorb the off-grid drift into the longest (first) period.
        let total: Time = periods.iter().copied().sum();
        let drift = lifespan - total;
        if !drift.is_zero() {
            periods[0] += drift;
        }
        EpisodeSchedule::for_lifespan(periods, lifespan)
    }
}

impl WorkOracle for ValueTable {
    fn setup(&self) -> Time {
        self.grid.setup()
    }

    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        self.value(interrupts, lifespan)
    }
}

/// The exact-DP optimal strategy as an [`EpisodePolicy`].
#[derive(Clone)]
pub struct OptimalPolicy {
    table: Arc<ValueTable>,
}

impl OptimalPolicy {
    /// Wraps a solved table (must have been solved with `keep_policy`).
    pub fn new(table: Arc<ValueTable>) -> OptimalPolicy {
        assert!(
            table.argmax.is_some(),
            "OptimalPolicy needs a table solved with keep_policy"
        );
        OptimalPolicy { table }
    }

    /// The backing table.
    pub fn table(&self) -> &ValueTable {
        &self.table
    }
}

impl EpisodePolicy for OptimalPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        self.table.episode(opp.interrupts(), opp.lifespan())
    }

    fn name(&self) -> String {
        format!(
            "optimal-dp(q={}, p≤{})",
            self.table.grid.q(),
            self.table.max_interrupts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::bounds::{w0, w1_exact};
    use cyclesteal_core::time::secs;

    fn small_table(q: u32, max_u: f64, p: u32) -> ValueTable {
        ValueTable::solve(secs(1.0), q, secs(max_u), p, SolveOptions::default())
    }

    #[test]
    fn level_zero_matches_prop_41d() {
        let t = small_table(8, 64.0, 0);
        for l in [0.0, 0.5, 1.0, 7.25, 64.0] {
            assert_eq!(t.value(0, secs(l)), w0(secs(l), secs(1.0)), "L={l}");
        }
    }

    #[test]
    fn monotone_in_lifespan_and_interrupts() {
        let t = small_table(8, 128.0, 4);
        for p in 0..=4u32 {
            for l in 1..=t.max_ticks() {
                assert!(
                    t.value_ticks(p, l) >= t.value_ticks(p, l - 1),
                    "Prop 4.1(a) fails at p={p}, l={l}"
                );
            }
        }
        for p in 1..=4u32 {
            for l in 0..=t.max_ticks() {
                assert!(
                    t.value_ticks(p, l) <= t.value_ticks(p - 1, l),
                    "Prop 4.1(b) fails at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn zero_region_is_prop_41c() {
        let t = small_table(8, 64.0, 3);
        let q = 8i64;
        for p in 0..=3u32 {
            let threshold = (p as i64 + 1) * q;
            for l in 0..=threshold {
                assert_eq!(t.value_ticks(p, l), 0, "W^{p}[{l}] should be 0");
            }
            // Just above: (p+1) periods of Q+1 ticks leave one survivor
            // banking one tick even after p kills.
            let above = (p as i64 + 1) * (q + 1);
            if above <= t.max_ticks() {
                assert!(
                    t.value_ticks(p, above) >= 1,
                    "W^{p}[{above}] should be positive"
                );
            }
        }
    }

    #[test]
    fn p1_matches_section_52_closed_form() {
        // Grid restriction can only lose; the loss is O(tick · m).
        let q = 64u32;
        let t = small_table(q, 200.0, 1);
        let c = secs(1.0);
        for &u in &[3.0, 5.0, 10.0, 50.0, 100.0, 200.0] {
            let dp = t.value(1, secs(u));
            let cf = w1_exact(secs(u), c);
            assert!(
                dp <= cf + secs(1e-9),
                "U={u}: grid value {dp} exceeds continuum optimum {cf}"
            );
            let m = cyclesteal_core::bounds::m1_opt(secs(u), c) as f64;
            let slack = secs((m + 2.0) / q as f64);
            assert!(
                dp >= cf - slack,
                "U={u}: grid value {dp} too far below optimum {cf} (slack {slack})"
            );
        }
    }

    #[test]
    fn bisection_agrees_with_linear_scan() {
        let fast = ValueTable::solve(
            secs(1.0),
            6,
            secs(80.0),
            3,
            SolveOptions {
                keep_policy: false,
                bisection: true,
            },
        );
        let slow = ValueTable::solve(
            secs(1.0),
            6,
            secs(80.0),
            3,
            SolveOptions {
                keep_policy: false,
                bisection: false,
            },
        );
        for p in 0..=3u32 {
            for l in 0..=fast.max_ticks() {
                assert_eq!(
                    fast.value_ticks(p, l),
                    slow.value_ticks(p, l),
                    "mismatch at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn brute_force_full_range_cross_check() {
        // Reference implementation maximizing over ALL t ∈ [1, l] — no
        // wait-candidate shortcut, no productivity restriction.
        let q = 4i64;
        let n = 60i64;
        let mut ref_levels: Vec<Vec<i64>> = Vec::new();
        ref_levels.push((0..=n).map(|l| (l - q).max(0)).collect());
        for p in 1..=3usize {
            let mut cur = vec![0i64; (n + 1) as usize];
            for l in 1..=n {
                let mut best = 0;
                for t in 1..=l {
                    let a = ref_levels[p - 1][(l - t) as usize];
                    let b = (t - q).max(0) + cur[(l - t) as usize];
                    best = best.max(a.min(b));
                }
                cur[l as usize] = best;
            }
            ref_levels.push(cur);
        }

        let t = ValueTable::solve(
            secs(1.0),
            q as u32,
            secs(n as f64 / q as f64),
            3,
            SolveOptions::default(),
        );
        for p in 0..=3u32 {
            for l in 0..=n {
                assert_eq!(
                    t.value_ticks(p, l),
                    ref_levels[p as usize][l as usize],
                    "solver differs from brute force at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn reconstructed_episode_covers_lifespan_and_starts_like_s_opt1() {
        let t = small_table(64, 300.0, 1);
        let u = secs(250.0);
        let s = t.episode(1, u).unwrap();
        assert!(s.total().approx_eq(u, secs(1e-9)));
        let reference = cyclesteal_core::schedules::optimal_p1_schedule(u, secs(1.0)).unwrap();
        let diff = (s.period(0) - reference.period(0)).abs();
        assert!(
            diff <= secs(0.2),
            "DP first period {} vs closed form {}",
            s.period(0),
            reference.period(0)
        );
    }

    #[test]
    fn interpolation_is_between_grid_points() {
        let t = small_table(4, 32.0, 2);
        let a = t.value(2, secs(10.0));
        let b = t.value(2, secs(10.25));
        let mid = t.value(2, secs(10.125));
        assert!(mid >= a.min(b) && mid <= a.max(b));
    }

    #[test]
    #[should_panic(expected = "outside solved range")]
    fn out_of_range_lifespan_panics() {
        let t = small_table(4, 32.0, 1);
        let _ = t.value(1, secs(1000.0));
    }

    #[test]
    fn optimal_policy_is_an_episode_policy() {
        let t = Arc::new(small_table(16, 100.0, 2));
        let pol = OptimalPolicy::new(t);
        let opp = Opportunity::from_units(80.0, 1.0, 2);
        let s = pol.episode(&opp).unwrap();
        assert!(s.total().approx_eq(secs(80.0), secs(1e-9)));
        assert!(pol.name().contains("optimal-dp"));
    }
}
