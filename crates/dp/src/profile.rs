//! Solver phase profiling over an injected [`Clock`].
//!
//! The determinism lint bans `Instant::now` in this crate, so phase
//! timings go through `cyclesteal-obs`'s [`Clock`] trait: production
//! callers (the serving layer, the benches) inject a wall-backed clock
//! from *outside* the determinism fence, tests inject the logical
//! clock, and unprofiled solves don't read any clock at all. The clock
//! is only ever read **between** phases — never inside the build
//! loops — so profiling cannot perturb solver output: a profiled solve
//! is bit-identical to an unprofiled one (pinned by
//! `profiled_solves_are_bit_identical`).
//!
//! Phases map onto the solver's real structure:
//!
//! - [`Phase::SkeletonBuild`] — the tick-walking breakpoint build
//!   (`compressed::build_level`), one walk per interrupt level.
//! - [`Phase::EventLoop`] — the event-driven run-skipping build
//!   (`event::build_level_events`), used by compressed event-driven
//!   solves and as the skeleton pass of parallel dense solves.
//! - [`Phase::RunCompression`] — re-encoding a built level into its
//!   second-order arithmetic-run representation (`into_repr`).
//! - [`Phase::DenseExpansion`] — filling the dense value/argmax arena
//!   (segmented parallel sweep or the sequential inner loop).

use cyclesteal_obs::Clock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of distinct [`Phase`]s.
pub const PHASE_COUNT: usize = 4;

/// One timed stage of a solve (see the module docs for the mapping
/// onto solver internals).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Tick-walking breakpoint-skeleton build.
    SkeletonBuild,
    /// Event-driven (run-skipping) build loop.
    EventLoop,
    /// Second-order run re-encoding of a built level.
    RunCompression,
    /// Dense value/argmax arena fill.
    DenseExpansion,
}

impl Phase {
    /// Every phase, in reporting order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::SkeletonBuild,
        Phase::EventLoop,
        Phase::RunCompression,
        Phase::DenseExpansion,
    ];

    /// Stable snake_case name, used as the metric label value.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SkeletonBuild => "skeleton_build",
            Phase::EventLoop => "event_loop",
            Phase::RunCompression => "run_compression",
            Phase::DenseExpansion => "dense_expansion",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::SkeletonBuild => 0,
            Phase::EventLoop => 1,
            Phase::RunCompression => 2,
            Phase::DenseExpansion => 3,
        }
    }
}

/// Accumulated per-phase durations and call counts for one solve (or a
/// batch of solves sharing a recorder).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    ns: [u64; PHASE_COUNT],
    calls: [u64; PHASE_COUNT],
}

impl PhaseTimings {
    /// Accumulated nanoseconds spent in `phase`.
    pub fn ns(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// How many times `phase` was entered.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.index()]
    }

    /// Nanoseconds summed over all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// `(phase, ns, calls)` triples in [`Phase::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64, u64)> + '_ {
        Phase::ALL
            .iter()
            .map(move |&p| (p, self.ns(p), self.calls(p)))
    }
}

/// Accumulates phase timings against an injected clock. Thread-safe:
/// the parallel dense path's coordinating thread and `TableCache`'s
/// fanned-out batch solves may share one recorder.
pub struct PhaseRecorder<'c> {
    clock: &'c dyn Clock,
    ns: [AtomicU64; PHASE_COUNT],
    calls: [AtomicU64; PHASE_COUNT],
}

impl<'c> PhaseRecorder<'c> {
    /// A recorder reading `clock` at phase boundaries.
    pub fn new(clock: &'c dyn Clock) -> PhaseRecorder<'c> {
        PhaseRecorder {
            clock,
            ns: std::array::from_fn(|_| AtomicU64::new(0)),
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Runs `f`, attributing its duration to `phase`.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = self.clock.now_ns();
        let out = f();
        let elapsed = self.clock.now_ns().saturating_sub(start);
        self.ns[phase.index()].fetch_add(elapsed, Ordering::Relaxed);
        self.calls[phase.index()].fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Snapshot of the accumulated timings.
    pub fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            ns: std::array::from_fn(|i| self.ns[i].load(Ordering::Relaxed)),
            calls: std::array::from_fn(|i| self.calls[i].load(Ordering::Relaxed)),
        }
    }
}

/// The callback [`crate::TableCache::set_profiling`] offers each
/// profiled solve's timings.
pub type ProfileSink = Box<dyn Fn(&PhaseTimings) + Send + Sync>;

/// Time `f` as `phase` when a recorder is present, else just run it.
/// The solver entry points thread an `Option` so the unprofiled path
/// does not even pay the no-op clock reads.
pub(crate) fn time_opt<T>(
    prof: Option<&PhaseRecorder<'_>>,
    phase: Phase,
    f: impl FnOnce() -> T,
) -> T {
    match prof {
        Some(rec) => rec.time(phase, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_obs::LogicalClock;

    #[test]
    fn recorder_attributes_time_per_phase() {
        let clock = LogicalClock::new();
        let rec = PhaseRecorder::new(&clock);
        rec.time(Phase::SkeletonBuild, || clock.advance(100));
        rec.time(Phase::DenseExpansion, || clock.advance(40));
        rec.time(Phase::DenseExpansion, || clock.advance(2));
        let t = rec.timings();
        assert_eq!(t.ns(Phase::SkeletonBuild), 100);
        assert_eq!(t.calls(Phase::SkeletonBuild), 1);
        assert_eq!(t.ns(Phase::DenseExpansion), 42);
        assert_eq!(t.calls(Phase::DenseExpansion), 2);
        assert_eq!(t.ns(Phase::EventLoop), 0);
        assert_eq!(t.total_ns(), 142);
    }

    #[test]
    fn iter_yields_all_phases_in_order() {
        let clock = LogicalClock::with_step(1);
        let rec = PhaseRecorder::new(&clock);
        rec.time(Phase::EventLoop, || ());
        let t = rec.timings();
        let seen: Vec<(Phase, u64, u64)> = t.iter().collect();
        assert_eq!(seen.len(), PHASE_COUNT);
        assert_eq!(seen[1], (Phase::EventLoop, 1, 1));
        assert_eq!(
            Phase::ALL.map(Phase::name).join(","),
            "skeleton_build,event_loop,run_compression,dense_expansion"
        );
    }

    #[test]
    fn noop_recorder_costs_nothing_and_records_zero() {
        let clock = cyclesteal_obs::NoopClock;
        let rec = PhaseRecorder::new(&clock);
        let v = rec.time(Phase::RunCompression, || 7);
        assert_eq!(v, 7);
        let t = rec.timings();
        assert_eq!(t.total_ns(), 0);
        assert_eq!(t.calls(Phase::RunCompression), 1);
    }
}
