//! Event-driven (run-skipping) construction of compressed `W^(p)` rows.
//!
//! ## Why ticks can be skipped
//!
//! The tick-walking builds ([`crate::value`] dense, [`crate::compressed`]
//! skeleton) spend `O(1)` per lifespan tick, which caps practical
//! lifespans near `10^6`–`10^7` ticks. But between breakpoints *every*
//! quantity the frontier-sweep recursion touches advances linearly in
//! `l`:
//!
//! * the threshold `τ = l − Q` and the frontier cap `s_cap = τ − 1` gain
//!   one tick per tick;
//! * the crossing function `h(s) = s + W^(p−1)(s) − W^(p)(s)` has slope
//!   exactly 1 in `s` wherever neither row has a flat tick, so the
//!   crossing residual `s*` advances in lockstep with `τ`;
//! * both candidate branches — the interrupted value `A = W^(p−1)(s*)`
//!   and the completed value `B = (τ − s* − 1) + W^(p)(s* + 1)` — are
//!   then linear too, and the output row is their running maximum.
//!
//! The builder therefore advances `l` **event to event** instead of tick
//! to tick. An *event* is any tick where the linear picture can change:
//!
//! * **stall end** — `h(s*+1)` exceeds `τ` by `d ≥ 2`, so the frontier
//!   sits still for exactly `d − 1` ticks while `B` climbs; the whole
//!   stall is applied at once;
//! * **flat-tick onset** — a flat tick of `W^(p−1)` or of the row under
//!   construction enters the sweep window, changing `h`'s local slope;
//! * **branch/regime switch** — the frontier reaches the cap `s_cap`
//!   (periods pinned at `Q+1` ticks) or leaves it, or the candidate
//!   crosses the running maximum (the row switches between banking and
//!   losing ticks);
//! * **zero-region edges** of either row.
//!
//! Between consecutive events the output is `max(last, C + j)` for a
//! span-constant `C`, so the span contributes either a run of slope-1
//! ticks (skipped in `O(1)`) or a run of flat ticks (appended to the
//! skeleton — and the skeleton is the output, so this work is already
//! accounted in `k`). Boundary ticks where no linear span applies fall
//! back to an exact single-tick transcription of the dense sweep.
//!
//! ## Cost
//!
//! All row reads go through cursors that only move forward (`s*` and the
//! sweep window are monotone in `l`), so each event costs `O(1)`
//! amortized — the `log k` is the rank re-synchronization a cursor pays
//! when a span jumps it. Event counts are `O(k)` flat-driven events plus
//! `O(L / t̄)` lockstep windows (`t̄` = the current optimal period length,
//! which bounds how far reads may run ahead of the determined prefix) —
//! `O(p·k log k)` overall for all levels, with `k = O(√(QL) + pQ) ≪ L`.
//! A `(Q=32, p=16, L=10^9)` table builds in under a second where the
//! tick walk would take minutes and a dense arena would need tens of
//! gigabytes.
//!
//! ## Exactness
//!
//! Every span formula is derived from (and checked against) invariants
//! of the dense sweep: `h(s*) ≤ τ` always holds, so the crossing value
//! is `A`; the stopped frontier has `h(s*+1) > τ`, so the left-neighbour
//! candidate is `B`; and both candidates were already `≤` the running
//! maximum when the span began. Whenever a precondition cannot be
//! verified the builder takes a single exact tick instead — so the
//! output is *bit-identical* to the tick-walking builds by construction,
//! which `tests/equivalence_props.rs` pins down over randomized setups.

use crate::compressed::CompressedRow;

/// Sentinel for "no flat tick ahead" — large enough to never constrain a
/// span, small enough to never overflow the arithmetic around it.
const NO_FLAT: i64 = i64::MAX / 4;

/// Row value at `x` given `rank_le` = the number of flat ticks `≤ x`:
/// the staircase banks every tick past the zero region except the flats.
#[inline(always)]
fn val(zero: i64, rank_le: usize, x: i64) -> i64 {
    if x <= zero {
        0
    } else {
        (x - zero) - rank_le as i64
    }
}

/// One exact tick of the monotone frontier sweep, transcribed from the
/// dense solver (`value::solve_level`) onto cursor reads. Used for every
/// tick where no linear span is provable: zero-region edges, flat
/// crossings, cap transitions. `rp1`/`rc1` are the forward-only cursor
/// ranks `#flats ≤ s+1` into `prev`/`cur` and are kept in sync as the
/// frontier advances.
#[allow(clippy::too_many_arguments)]
fn single_step(
    prev: &CompressedRow,
    cur: &mut CompressedRow,
    l: &mut i64,
    last: &mut i64,
    s: &mut i64,
    q: i64,
    rp1: &mut usize,
    rc1: &mut usize,
) {
    let pz = prev.zero_until;
    let pf: &[i64] = &prev.flats;
    let lt = *l + 1;
    let mut best = *last;
    if lt > q {
        let tau = lt - q;
        let s_cap = tau - 1;
        loop {
            while *rp1 < pf.len() && pf[*rp1] <= *s + 1 {
                *rp1 += 1;
            }
            while *rc1 < cur.flats.len() && cur.flats[*rc1] <= *s + 1 {
                *rc1 += 1;
            }
            if *s >= s_cap {
                break;
            }
            let h = (*s + 1) + val(pz, *rp1, *s + 1) - val(cur.zero_until, *rc1, *s + 1);
            if h <= tau {
                *s += 1;
            } else {
                break;
            }
        }
        let sf = *s;
        let rp0 = *rp1 - usize::from(*rp1 > 0 && pf[*rp1 - 1] == sf + 1);
        let rc0 = *rc1 - usize::from(*rc1 > 0 && cur.flats[*rc1 - 1] == sf + 1);
        let cz = cur.zero_until;
        let t_star = lt - sf;
        let v_star = val(pz, rp0, sf).min((t_star - q) + val(cz, rc0, sf));
        let cand = if t_star > q + 1 {
            let v_left = val(pz, *rp1, sf + 1).min((t_star - 1 - q) + val(cz, *rc1, sf + 1));
            v_star.max(v_left)
        } else {
            v_star
        };
        if cand >= best {
            best = cand;
        }
    }
    emit_tick(cur, l, last, best);
}

/// Applies one linear span of `delta` ticks whose output is
/// `out(l + j) = max(last, c + j)`: a (possibly empty) run of flat ticks
/// while `c + j ≤ last`, then pure slope-1 growth skipped in `O(1)`.
/// Requires `c ≤ last` (checked by the caller against the sweep
/// invariants).
#[inline]
fn emit_span(cur: &mut CompressedRow, l: &mut i64, last: &mut i64, delta: i64, c: i64) {
    debug_assert!(c <= *last, "span candidate {c} above running max {last}");
    let j_cut = (*last - c).min(delta);
    if j_cut > 0 {
        if *last == 0 {
            // Still inside the zero region: extend it, don't store flats.
            cur.zero_until = *l + j_cut;
        } else if j_cut == 1 {
            cur.flats.push(*l + 1);
        } else {
            cur.flats.extend(*l + 1..=*l + j_cut);
        }
    }
    *last = (*last).max(c + delta);
    *l += delta;
}

/// Records one computed tick `l+1` with value `best` — the shared tail
/// of [`single_step`] and the O(1) flat-crossing transitions.
#[inline(always)]
fn emit_tick(cur: &mut CompressedRow, l: &mut i64, last: &mut i64, best: i64) {
    let inc = best - *last;
    debug_assert!(
        inc == 0 || inc == 1,
        "row not monotone 1-Lipschitz at l={}: {} -> {best}",
        *l + 1,
        *last
    );
    if best == 0 {
        cur.zero_until = *l + 1;
    } else if inc == 0 {
        cur.flats.push(*l + 1);
    }
    *last = best;
    *l += 1;
}

/// Builds level `p` from the completed level `p−1` skeleton by event
/// jumps. Returns the row and the number of events (loop iterations —
/// span applications plus boundary single-steps) taken.
pub(crate) fn build_level_events(prev: &CompressedRow, n: i64, q: i64) -> (CompressedRow, u64) {
    let pz = prev.zero_until;
    let mut cur = CompressedRow::default();
    // Level p's loss exceeds level p−1's by roughly one period's worth;
    // seeding capacity near the parent's skeleton size skips most of the
    // doubling-and-copy churn (shrink_to_fit below returns any excess).
    cur.flats
        .reserve(prev.flats.len() + prev.flats.len() / 4 + 64);
    let mut l: i64 = 0; // last computed tick
    let mut last: i64 = 0; // W^(p)(l)
    let mut s: i64 = 0; // crossing residual s*, nondecreasing in l
    let mut events: u64 = 0;
    // Forward-only cursor ranks at position s+1: #flats ≤ s+1 in prev /
    // in the row under construction. `s` never retreats, so each cursor
    // crosses each flat once per level.
    let mut rp1: usize = 0;
    let mut rc1: usize = 0;

    // Ticks 1..=Q carry no productive period and a zero wait-chain: the
    // whole prefix is zero region, in one event.
    if n > 0 {
        let z = q.min(n);
        cur.zero_until = z;
        l = z;
        events += 1;
    }

    while l < n {
        events += 1;
        let pf: &[i64] = &prev.flats;
        while rp1 < pf.len() && pf[rp1] <= s + 1 {
            rp1 += 1;
        }
        while rc1 < cur.flats.len() && cur.flats[rc1] <= s + 1 {
            rc1 += 1;
        }

        // The span formulas difference the rows across the sweep window;
        // inside either zero region the slopes differ — single-step until
        // the frontier clears both prefixes (O(p·Q) ticks per level).
        let cz = cur.zero_until;
        if s > pz && s + 1 > cz {
            let tau = l - q; // threshold for the already-processed tick l
            let p1 = val(pz, rp1, s + 1);
            let c1 = val(cz, rc1, s + 1);
            let d = (s + 1) + p1 - c1 - tau;
            let s1_is_pflat = rp1 > 0 && pf[rp1 - 1] == s + 1;
            let a0 = val(pz, rp1 - usize::from(s1_is_pflat), s);

            if d >= 2 {
                // Stall: h(s*+1) > τ for the next d−1 ticks, so the
                // frontier sits still; A = prev(s*) is fixed and ≤ last
                // (it was a losing candidate at tick l), and only B
                // climbs.
                let b0 = tau - (s + 1) + c1;
                if a0 <= last && b0 <= last {
                    let delta = (d - 1).min(n - l);
                    emit_span(&mut cur, &mut l, &mut last, delta, b0);
                    continue;
                }
            } else {
                // Advancing: the frontier moves one residual per tick,
                // either in lockstep with the crossing (d == 1) or pinned
                // to the cap s_cap = τ − 1 (d ≤ 0, periods of exactly Q+1
                // ticks).
                let s_cap = tau - 1;
                let np = if s1_is_pflat {
                    s + 1
                } else if rp1 < pf.len() {
                    pf[rp1]
                } else {
                    NO_FLAT
                };
                let nc = if rc1 < cur.flats.len() {
                    cur.flats[rc1]
                } else {
                    NO_FLAT
                };
                if d >= 1 || s == s_cap {
                    // Genericity horizons: no flat of either row may
                    // enter the sweep window (s, s+Δ+1], and reads of the
                    // row under construction must stay inside the prefix
                    // determined before this span (positions ≤ l).
                    let delta = (np - s - 2).min(nc - s - 2).min(l - s - 1).min(n - l);
                    let c = if s == s_cap {
                        // At the cap the period is pinned to Q+1 ticks
                        // and the only candidate is the interrupted
                        // branch A.
                        a0
                    } else {
                        a0.max(tau - (s + 1) + c1)
                    };
                    if delta >= 1 && c <= last {
                        emit_span(&mut cur, &mut l, &mut last, delta, c);
                        s += delta;
                        continue;
                    }
                }
                // Flat-tick onset, resolved in O(1). Both transitions are
                // one exact tick of the dense sweep specialized to an
                // isolated flat entering the window from lockstep
                // (d == 1, so h(s*+1) = τ+1 and the frontier advances):
                if d == 1 && s < s_cap {
                    if nc == s + 2 && np > s + 2 {
                        // The window edge moves onto a flat of the row
                        // under construction: h jumps by 2 there, so the
                        // frontier advances exactly once and a stall of
                        // exactly one tick follows. cur(s+2) = cur(s+1),
                        // prev(s+1) generic: A = prev(s+1),
                        // B = (τ+1) − (s+2) + cur(s+2), and the stall
                        // tick replays the same crossing with B one
                        // higher — both ticks resolve in this one event.
                        let b = (tau + 1) - (s + 2) + c1;
                        let best = last.max(p1.max(b));
                        emit_tick(&mut cur, &mut l, &mut last, best);
                        if l < n {
                            let best2 = best.max(b + 1);
                            emit_tick(&mut cur, &mut l, &mut last, best2);
                        }
                        s += 1;
                        continue;
                    }
                    let s3_is_pflat = rp1 + 1 < pf.len() && pf[rp1 + 1] == s + 3;
                    if np == s + 2 && !s3_is_pflat && nc > s + 3 && s + 2 < tau {
                        // The window edge moves onto a flat of the
                        // completed level: h is locally flat there, so
                        // the frontier advances exactly twice in one tick
                        // (h(s+2) = h(s+1) = τ+1, h(s+3) = τ+2).
                        // A = prev(s+2) = prev(s+1); B reads the generic
                        // cur(s+3) = cur(s+1) + 2.
                        let b = (tau + 1) - (s + 3) + (c1 + 2);
                        let best = last.max(p1.max(b));
                        emit_tick(&mut cur, &mut l, &mut last, best);
                        s += 2;
                        continue;
                    }
                }
            }
        }
        // No provable span — take one exact tick of the dense sweep.
        single_step(
            prev, &mut cur, &mut l, &mut last, &mut s, q, &mut rp1, &mut rc1,
        );
    }

    cur.flats.shrink_to_fit();
    (cur, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The event builder against the tick-walking skeleton builder, level
    /// by level, across resolutions that exercise stalls, cap pinning and
    /// flat runs. (The cross-representation equivalence suite lives in
    /// `tests/equivalence_props.rs`.)
    #[test]
    fn levels_match_tick_walk_exactly() {
        for (q, n, p_max) in [(1i64, 400i64, 4u32), (4, 1000, 3), (16, 3000, 5), (7, 0, 2)] {
            let mut prev = CompressedRow {
                zero_until: q.min(n),
                flats: Vec::new(),
            };
            for p in 1..=p_max {
                let walked = crate::compressed::build_level(&prev, n, q);
                let (jumped, events) = build_level_events(&prev, n, q);
                assert_eq!(
                    walked.zero_until, jumped.zero_until,
                    "zero region differs at q={q}, n={n}, p={p}"
                );
                assert_eq!(
                    walked.flats, jumped.flats,
                    "flat ticks differ at q={q}, n={n}, p={p}"
                );
                if n >= 1000 {
                    assert!(
                        events < n as u64,
                        "event build took {events} events for {n} ticks — not skipping"
                    );
                }
                prev = jumped;
            }
        }
    }

    /// Deep lifespans build in few events: the whole point of the
    /// run-skipping formulation.
    #[test]
    fn deep_lifespan_event_count_is_sublinear() {
        let n: i64 = 5_000_000;
        let q: i64 = 8;
        let prev = CompressedRow {
            zero_until: q,
            flats: Vec::new(),
        };
        let (row, events) = build_level_events(&prev, n, q);
        // k = O(√(QL)): ~9e3 here. Events track k, not L.
        assert!(
            (events as i64) < n / 50,
            "{events} events for {n} ticks — skipping broke down"
        );
        // The flat count equals the total loss L − W(L) by construction;
        // confirm the far-end value closes the books.
        assert_eq!(row.value(n), n - row.zero_until - row.flats.len() as i64);
    }
}
