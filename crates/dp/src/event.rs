//! Event-driven (run-skipping) construction of compressed `W^(p)` rows.
//!
//! ## Why ticks can be skipped
//!
//! The tick-walking builds ([`crate::value`] dense, [`crate::compressed`]
//! skeleton) spend `O(1)` per lifespan tick, which caps practical
//! lifespans near `10^6`–`10^7` ticks. But between breakpoints *every*
//! quantity the frontier-sweep recursion touches advances linearly in
//! `l`:
//!
//! * the threshold `τ = l − Q` and the frontier cap `s_cap = τ − 1` gain
//!   one tick per tick;
//! * the crossing function `h(s) = s + W^(p−1)(s) − W^(p)(s)` has slope
//!   exactly 1 in `s` wherever neither row has a flat tick, so the
//!   crossing residual `s*` advances in lockstep with `τ`;
//! * both candidate branches — the interrupted value `A = W^(p−1)(s*)`
//!   and the completed value `B = (τ − s* − 1) + W^(p)(s* + 1)` — are
//!   then linear too, and the output row is their running maximum.
//!
//! The builder therefore advances `l` **event to event** instead of tick
//! to tick. An *event* is any tick where the linear picture can change:
//!
//! * **stall end** — `h(s*+1)` exceeds `τ` by `d ≥ 2`, so the frontier
//!   sits still for exactly `d − 1` ticks while `B` climbs; the whole
//!   stall is applied at once;
//! * **flat-tick onset** — a flat tick of `W^(p−1)` or of the row under
//!   construction enters the sweep window, changing `h`'s local slope;
//! * **branch/regime switch** — the frontier reaches the cap `s_cap`
//!   (periods pinned at `Q+1` ticks) or leaves it, or the candidate
//!   crosses the running maximum (the row switches between banking and
//!   losing ticks);
//! * **zero-region edges** of either row.
//!
//! Between consecutive events the output is `max(last, C + j)` for a
//! span-constant `C`, so the span contributes either a run of slope-1
//! ticks (skipped in `O(1)`) or a run of flat ticks. Boundary ticks
//! where no linear span applies fall back to an exact single-tick
//! transcription of the dense sweep.
//!
//! ## Emitting runs, not flat lists
//!
//! The row under construction is kept as **run-length-encoded flat
//! runs** (`FlatRun`): a stall of `d` ticks contributes one run
//! descriptor in `O(1)` instead of `d` vector pushes, and the builder's
//! own reads of the partial row go through a forward-only `BlockCursor`
//! (rank, next-flat and membership queries, each `O(1)` amortized).
//! Reads of the *completed* previous level go through the
//! representation-blind `SkelCursor` (see [`crate::compressed`]), so the build
//! loop — and therefore the event count and the emitted skeleton — is
//! identical whether level `p−1` was stored as a flat list or as
//! second-order arithmetic runs.
//!
//! Once a level is fully determined, [`crate::RowRepr`] decides what the
//! runs become: `Breakpoints` expands them into the sorted flat-tick
//! list (an embarrassingly parallel concatenation fanned out over
//! `cyclesteal-par` workers when the caller's `SolveOptions::threads`
//! asks for them — each worker owns a disjoint slice of the output, so
//! the result is byte-identical at every thread count), while `Runs`
//! feeds them straight into the second-order compressor of
//! [`crate::run`] **without ever materializing a per-breakpoint list**.
//!
//! ## Cost
//!
//! All row reads go through cursors that only move forward (`s*` and the
//! sweep window are monotone in `l`), so each event costs `O(1)`
//! amortized — the `log k` is the rank re-synchronization a cursor pays
//! when a span jumps it. Event counts are `O(k)` flat-driven events plus
//! `O(L / t̄)` lockstep windows (`t̄` = the current optimal period length,
//! which bounds how far reads may run ahead of the determined prefix) —
//! `O(p·k log k)` overall for all levels, with `k = O(√(QL) + pQ) ≪ L`.
//! A `(Q=32, p=16, L=10^9)` table builds in under a second where the
//! tick walk would take minutes and a dense arena would need tens of
//! gigabytes.
//!
//! ## Exactness
//!
//! Every span formula is derived from (and checked against) invariants
//! of the dense sweep: `h(s*) ≤ τ` always holds, so the crossing value
//! is `A`; the stopped frontier has `h(s*+1) > τ`, so the left-neighbour
//! candidate is `B`; and both candidates were already `≤` the running
//! maximum when the span began. Whenever a precondition cannot be
//! verified the builder takes a single exact tick instead — so the
//! output is *bit-identical* to the tick-walking builds by construction,
//! which `tests/equivalence_props.rs` pins down over randomized setups.

use crate::compressed::{CompressedRow, RowSkeleton, SkelRead};
use crate::run::{RunRow, NO_FLAT};
use crate::value::RowRepr;

/// A maximal run of consecutive flat ticks `start, start+1, …,
/// start+len−1` of the row under construction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FlatRun {
    /// First flat tick of the run.
    start: i64,
    /// Number of consecutive flat ticks.
    len: i64,
}

/// The row under construction: zero-region prefix plus run-length-encoded
/// flat ticks. The builder reads it through `BlockCursor`s and converts
/// it into a [`CompressedRow`] only once the level is complete.
#[derive(Debug, Default)]
struct BuildRow {
    /// Largest `l` with `W(l) = 0` so far.
    zero_until: i64,
    /// Flat runs, sorted, disjoint, never adjacent (adjacent appends are
    /// merged on push).
    runs: Vec<FlatRun>,
    /// Total flat ticks across `runs`.
    count: i64,
}

impl BuildRow {
    /// Appends the flat run `start..start+len`, merging with the last run
    /// when contiguous. Positions only ever grow, so append-or-merge is
    /// complete.
    #[inline]
    fn push_run(&mut self, start: i64, len: i64) {
        debug_assert!(len >= 1);
        match self.runs.last_mut() {
            Some(r) if r.start + r.len == start => r.len += len,
            _ => self.runs.push(FlatRun { start, len }),
        }
        self.count += len;
    }

    /// Appends a single flat tick.
    #[inline]
    fn push_flat(&mut self, pos: i64) {
        self.push_run(pos, 1);
    }
}

/// Forward-only reader over a [`BuildRow`]'s runs: rank (`#flats ≤ pos`),
/// next-flat-after and flat-membership queries in `O(1)` amortized, for
/// query positions that never decrease (the sweep residual `s` is
/// monotone in `l`).
#[derive(Clone, Copy, Debug, Default)]
struct BlockCursor {
    /// First run whose last flat is ≥ the latest query position.
    idx: usize,
    /// Total flats in `runs[..idx]`.
    before: i64,
}

impl BlockCursor {
    /// `#flats ≤ pos`. Also positions the cursor for [`Self::is_flat`] and
    /// [`Self::next_after`] at the same `pos`.
    #[inline]
    fn rank(&mut self, runs: &[FlatRun], pos: i64) -> i64 {
        while self.idx < runs.len() && runs[self.idx].start + runs[self.idx].len - 1 < pos {
            self.before += runs[self.idx].len;
            self.idx += 1;
        }
        match runs.get(self.idx) {
            Some(r) if r.start <= pos => self.before + (pos - r.start + 1),
            _ => self.before,
        }
    }

    /// Whether `pos` itself is a flat tick. Only valid immediately after
    /// [`Self::rank`] was called with the same `pos`.
    #[inline]
    fn is_flat(&self, runs: &[FlatRun], pos: i64) -> bool {
        matches!(runs.get(self.idx), Some(r) if r.start <= pos)
    }

    /// The smallest flat tick strictly greater than `pos`, or [`NO_FLAT`].
    /// Only valid immediately after [`Self::rank`] was called with the
    /// same `pos`.
    #[inline]
    fn next_after(&self, runs: &[FlatRun], pos: i64) -> i64 {
        match runs.get(self.idx) {
            Some(r) if r.start > pos => r.start,
            Some(r) if r.start + r.len - 1 > pos => pos + 1,
            Some(_) => runs.get(self.idx + 1).map_or(NO_FLAT, |r2| r2.start),
            None => NO_FLAT,
        }
    }
}

/// Row value at `x` given `rank_le` = the number of flat ticks `≤ x`:
/// the staircase banks every tick past the zero region except the flats.
#[inline(always)]
fn val(zero: i64, rank_le: i64, x: i64) -> i64 {
    if x <= zero {
        0
    } else {
        (x - zero) - rank_le
    }
}

/// One exact tick of the monotone frontier sweep, transcribed from the
/// dense solver (`value::solve_level`) onto cursor reads. Used for every
/// tick where no linear span is provable: zero-region edges, flat
/// crossings, cap transitions. `pc` is the forward-only cursor into the
/// completed previous level; `rc` serves the same queries against the
/// run-encoded row under construction.
#[allow(clippy::too_many_arguments)]
fn single_step<C: SkelRead>(
    pc: &mut C,
    cur: &mut BuildRow,
    l: &mut i64,
    last: &mut i64,
    s: &mut i64,
    q: i64,
    rc: &mut BlockCursor,
) {
    let pz = pc.zero_until();
    let lt = *l + 1;
    let mut best = *last;
    if lt > q {
        let tau = lt - q;
        let s_cap = tau - 1;
        let mut c1 = rc.rank(&cur.runs, *s + 1);
        let mut p1 = pc.rank_le(*s + 1);
        loop {
            if *s >= s_cap {
                break;
            }
            let h = (*s + 1) + val(pz, p1, *s + 1) - val(cur.zero_until, c1, *s + 1);
            if h <= tau {
                *s += 1;
                c1 = rc.rank(&cur.runs, *s + 1);
                p1 = pc.rank_le(*s + 1);
            } else {
                break;
            }
        }
        let sf = *s;
        let rp0 = p1 - i64::from(pc.is_flat(sf + 1));
        let rc0 = c1 - i64::from(rc.is_flat(&cur.runs, sf + 1));
        let cz = cur.zero_until;
        let t_star = lt - sf;
        let v_star = val(pz, rp0, sf).min((t_star - q) + val(cz, rc0, sf));
        let cand = if t_star > q + 1 {
            let v_left = val(pz, p1, sf + 1).min((t_star - 1 - q) + val(cz, c1, sf + 1));
            v_star.max(v_left)
        } else {
            v_star
        };
        if cand >= best {
            best = cand;
        }
    }
    emit_tick(cur, l, last, best);
}

/// Applies one linear span of `delta` ticks whose output is
/// `out(l + j) = max(last, c + j)`: a (possibly empty) run of flat ticks
/// while `c + j ≤ last`, then pure slope-1 growth skipped in `O(1)`.
/// Requires `c ≤ last` (checked by the caller against the sweep
/// invariants).
#[inline]
fn emit_span(cur: &mut BuildRow, l: &mut i64, last: &mut i64, delta: i64, c: i64) {
    debug_assert!(c <= *last, "span candidate {c} above running max {last}");
    let j_cut = (*last - c).min(delta);
    if j_cut > 0 {
        if *last == 0 {
            // Still inside the zero region: extend it, don't store flats.
            cur.zero_until = *l + j_cut;
        } else {
            cur.push_run(*l + 1, j_cut);
        }
    }
    *last = (*last).max(c + delta);
    *l += delta;
}

/// Records one computed tick `l+1` with value `best` — the shared tail
/// of [`single_step`] and the O(1) flat-crossing transitions.
#[inline(always)]
fn emit_tick(cur: &mut BuildRow, l: &mut i64, last: &mut i64, best: i64) {
    let inc = best - *last;
    debug_assert!(
        inc == 0 || inc == 1,
        "row not monotone 1-Lipschitz at l={}: {} -> {best}",
        *l + 1,
        *last
    );
    if best == 0 {
        cur.zero_until = *l + 1;
    } else if inc == 0 {
        cur.push_flat(*l + 1);
    }
    *last = best;
    *l += 1;
}

/// Expands run-length-encoded flat runs into the sorted flat-tick list a
/// flat-list [`CompressedRow`] stores. With `threads > 1` the runs are
/// partitioned into contiguous chunks of roughly equal flat count and
/// each worker writes its own disjoint slice of the output —
/// byte-identical to the sequential expansion by construction.
fn materialize_runs(runs: &[FlatRun], count: i64, threads: usize) -> Vec<i64> {
    let count = count as usize;
    let mut flats = vec![0i64; count];
    let expand = |out: &mut [i64], runs: &[FlatRun]| {
        let mut slot = out.iter_mut();
        for r in runs {
            for x in r.start..r.start + r.len {
                *slot.next().expect("run lengths sum to the slice length") = x;
            }
        }
        debug_assert!(slot.next().is_none(), "slice longer than its runs");
    };
    // Below ~16k flats the expansion is cheaper than waking workers.
    if threads <= 1 || count < (1 << 14) {
        expand(&mut flats, runs);
        return flats;
    }
    let target = count.div_ceil(threads);
    let mut jobs: Vec<(&mut [i64], &[FlatRun])> = Vec::with_capacity(threads + 1);
    let mut rest: &mut [i64] = &mut flats;
    let mut run_lo = 0usize;
    while run_lo < runs.len() {
        let mut take_flats = 0usize;
        let mut run_hi = run_lo;
        while run_hi < runs.len() && take_flats < target {
            take_flats += runs[run_hi].len as usize;
            run_hi += 1;
        }
        let (seg, tail) = std::mem::take(&mut rest).split_at_mut(take_flats);
        jobs.push((seg, &runs[run_lo..run_hi]));
        rest = tail;
        run_lo = run_hi;
    }
    cyclesteal_par::par_sweep_segments(jobs, threads, |(seg, chunk): (&mut [i64], &[FlatRun])| {
        expand(seg, chunk)
    });
    flats
}

/// Builds level `p` from the completed level `p−1` skeleton by event
/// jumps. Returns the row — in the representation `repr` asks for — and
/// the number of events (loop iterations — span applications plus
/// boundary single-steps) taken. `threads` only affects how a
/// flat-list expansion is fanned out; the build loop — and therefore the
/// event count and the emitted flat ticks — is identical at every thread
/// count and in every representation.
pub(crate) fn build_level_events(
    prev: &CompressedRow,
    n: i64,
    q: i64,
    threads: usize,
    repr: RowRepr,
) -> (CompressedRow, u64) {
    // Dispatch on the prev representation once per level, so the build
    // loop's few-reads-per-event monomorphize to direct slice/run walks.
    match prev.skeleton() {
        RowSkeleton::Flats(flats) => build_events_from(
            prev.flats_cursor_over(flats),
            prev.count(),
            n,
            q,
            threads,
            repr,
        ),
        RowSkeleton::Runs(runs) => build_events_from(
            prev.runs_cursor_over(runs),
            prev.count(),
            n,
            q,
            threads,
            repr,
        ),
    }
}

fn build_events_from<C: SkelRead>(
    mut pc: C,
    prev_count: i64,
    n: i64,
    q: i64,
    threads: usize,
    repr: RowRepr,
) -> (CompressedRow, u64) {
    let pz = pc.zero_until();
    let mut cur = BuildRow::default();
    // Level p's loss exceeds level p−1's by roughly one period's worth,
    // but runs compress consecutive flats; a modest seed avoids the first
    // few doubling-and-copy rounds without over-reserving.
    cur.runs.reserve(prev_count as usize / 8 + 32);
    let mut l: i64 = 0; // last computed tick
    let mut last: i64 = 0; // W^(p)(l)
    let mut s: i64 = 0; // crossing residual s*, nondecreasing in l
    let mut events: u64 = 0;
    // Forward-only cursors at position s+1: the previous level through
    // the representation-blind skeleton cursor, the row under
    // construction through the block cursor. `s` never retreats, so each
    // cursor crosses each flat once per level.
    let mut rc = BlockCursor::default();

    // Ticks 1..=Q carry no productive period and a zero wait-chain: the
    // whole prefix is zero region, in one event.
    if n > 0 {
        let z = q.min(n);
        cur.zero_until = z;
        l = z;
        events += 1;
    }

    while l < n {
        events += 1;
        let prank1 = pc.rank_le(s + 1);
        let crank1 = rc.rank(&cur.runs, s + 1);

        // The span formulas difference the rows across the sweep window;
        // inside either zero region the slopes differ — single-step until
        // the frontier clears both prefixes (O(p·Q) ticks per level).
        let cz = cur.zero_until;
        if s > pz && s + 1 > cz {
            let tau = l - q; // threshold for the already-processed tick l
            let p1 = val(pz, prank1, s + 1);
            let c1 = val(cz, crank1, s + 1);
            let d = (s + 1) + p1 - c1 - tau;
            let s1_is_pflat = pc.is_flat(s + 1);
            let a0 = val(pz, prank1 - i64::from(s1_is_pflat), s);

            if d >= 2 {
                // Stall: h(s*+1) > τ for the next d−1 ticks, so the
                // frontier sits still; A = prev(s*) is fixed and ≤ last
                // (it was a losing candidate at tick l), and only B
                // climbs.
                let b0 = tau - (s + 1) + c1;
                if a0 <= last && b0 <= last {
                    let delta = (d - 1).min(n - l);
                    emit_span(&mut cur, &mut l, &mut last, delta, b0);
                    continue;
                }
            } else {
                // Advancing: the frontier moves one residual per tick,
                // either in lockstep with the crossing (d == 1) or pinned
                // to the cap s_cap = τ − 1 (d ≤ 0, periods of exactly Q+1
                // ticks).
                let s_cap = tau - 1;
                let np = if s1_is_pflat { s + 1 } else { pc.peek(0) };
                let nc = rc.next_after(&cur.runs, s + 1);
                if d >= 1 || s == s_cap {
                    // Genericity horizons: no flat of either row may
                    // enter the sweep window (s, s+Δ+1], and reads of the
                    // row under construction must stay inside the prefix
                    // determined before this span (positions ≤ l).
                    let delta = (np - s - 2).min(nc - s - 2).min(l - s - 1).min(n - l);
                    let c = if s == s_cap {
                        // At the cap the period is pinned to Q+1 ticks
                        // and the only candidate is the interrupted
                        // branch A.
                        a0
                    } else {
                        a0.max(tau - (s + 1) + c1)
                    };
                    if delta >= 1 && c <= last {
                        emit_span(&mut cur, &mut l, &mut last, delta, c);
                        s += delta;
                        continue;
                    }
                }
                // Flat-tick onset, resolved in O(1). Both transitions are
                // one exact tick of the dense sweep specialized to an
                // isolated flat entering the window from lockstep
                // (d == 1, so h(s*+1) = τ+1 and the frontier advances):
                if d == 1 && s < s_cap {
                    if nc == s + 2 && np > s + 2 {
                        // The window edge moves onto a flat of the row
                        // under construction: h jumps by 2 there, so the
                        // frontier advances exactly once and a stall of
                        // exactly one tick follows. cur(s+2) = cur(s+1),
                        // prev(s+1) generic: A = prev(s+1),
                        // B = (τ+1) − (s+2) + cur(s+2), and the stall
                        // tick replays the same crossing with B one
                        // higher — both ticks resolve in this one event.
                        let b = (tau + 1) - (s + 2) + c1;
                        let best = last.max(p1.max(b));
                        emit_tick(&mut cur, &mut l, &mut last, best);
                        if l < n {
                            let best2 = best.max(b + 1);
                            emit_tick(&mut cur, &mut l, &mut last, best2);
                        }
                        s += 1;
                        continue;
                    }
                    let s3_is_pflat = pc.peek(1) == s + 3;
                    if np == s + 2 && !s3_is_pflat && nc > s + 3 && s + 2 < tau {
                        // The window edge moves onto a flat of the
                        // completed level: h is locally flat there, so
                        // the frontier advances exactly twice in one tick
                        // (h(s+2) = h(s+1) = τ+1, h(s+3) = τ+2).
                        // A = prev(s+2) = prev(s+1); B reads the generic
                        // cur(s+3) = cur(s+1) + 2.
                        let b = (tau + 1) - (s + 3) + (c1 + 2);
                        let best = last.max(p1.max(b));
                        emit_tick(&mut cur, &mut l, &mut last, best);
                        s += 2;
                        continue;
                    }
                }
            }
        }
        // No provable span — take one exact tick of the dense sweep.
        single_step(&mut pc, &mut cur, &mut l, &mut last, &mut s, q, &mut rc);
    }

    let row = match repr {
        RowRepr::Breakpoints => CompressedRow::from_flats(
            cur.zero_until,
            materialize_runs(&cur.runs, cur.count, threads),
        ),
        // Feed the block runs straight into the second-order compressor
        // without expanding a per-breakpoint list.
        RowRepr::Runs => CompressedRow::from_runs(
            cur.zero_until,
            RunRow::compress(cur.runs.iter().flat_map(|r| r.start..r.start + r.len)),
        ),
    };
    (row, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_flats(row: &CompressedRow) -> Vec<i64> {
        row.flats_after(i64::MIN + 1).1.collect()
    }

    /// The event builder against the tick-walking skeleton builder, level
    /// by level, across resolutions that exercise stalls, cap pinning and
    /// flat runs — in both output representations. (The
    /// cross-representation equivalence suite lives in
    /// `tests/equivalence_props.rs`.)
    #[test]
    fn levels_match_tick_walk_exactly() {
        for (q, n, p_max) in [(1i64, 400i64, 4u32), (4, 1000, 3), (16, 3000, 5), (7, 0, 2)] {
            let mut prev = CompressedRow::empty(q.min(n));
            for p in 1..=p_max {
                let walked = crate::compressed::build_level(&prev, n, q);
                let (jumped, events) = build_level_events(&prev, n, q, 1, RowRepr::Breakpoints);
                let (runs, run_events) = build_level_events(&prev, n, q, 1, RowRepr::Runs);
                assert_eq!(
                    walked.zero_until, jumped.zero_until,
                    "zero region differs at q={q}, n={n}, p={p}"
                );
                assert_eq!(
                    all_flats(&walked),
                    all_flats(&jumped),
                    "flat ticks differ at q={q}, n={n}, p={p}"
                );
                assert_eq!(events, run_events, "repr changed the event count");
                assert_eq!(runs.zero_until, jumped.zero_until);
                assert_eq!(
                    all_flats(&runs),
                    all_flats(&jumped),
                    "run-backed flat ticks differ at q={q}, n={n}, p={p}"
                );
                if n >= 1000 {
                    assert!(
                        events < n as u64,
                        "event build took {events} events for {n} ticks — not skipping"
                    );
                }
                // Alternate which representation seeds the next level, so
                // the builder's prev-reads cover both cursor paths.
                prev = if p % 2 == 0 { jumped } else { runs };
            }
        }
    }

    /// Deep lifespans build in few events: the whole point of the
    /// run-skipping formulation.
    #[test]
    fn deep_lifespan_event_count_is_sublinear() {
        let n: i64 = 5_000_000;
        let q: i64 = 8;
        let prev = CompressedRow::empty(q);
        let (row, events) = build_level_events(&prev, n, q, 1, RowRepr::Breakpoints);
        // k = O(√(QL)): ~9e3 here. Events track k, not L.
        assert!(
            (events as i64) < n / 50,
            "{events} events for {n} ticks — skipping broke down"
        );
        // The flat count equals the total loss L − W(L) by construction;
        // confirm the far-end value closes the books.
        assert_eq!(row.value(n), n - row.zero_until - row.count());

        // The run-backed output stores the same function in a fraction of
        // the descriptors.
        let (runs, _) = build_level_events(&prev, n, q, 1, RowRepr::Runs);
        assert_eq!(runs.value(n), row.value(n));
        assert_eq!(runs.count(), row.count());
        assert!(
            runs.stored_breakpoints() * 4 < row.stored_breakpoints(),
            "second-order compression inert: {} of {} descriptors",
            runs.stored_breakpoints(),
            row.stored_breakpoints()
        );
    }

    /// The parallel run expansion is byte-identical to the sequential
    /// one, events included, across thread counts and run shapes that
    /// land chunk boundaries inside and between runs.
    #[test]
    fn parallel_materialization_is_identical() {
        for (q, n) in [(3i64, 200_000i64), (16, 500_000), (1, 50_000)] {
            let mut prev = CompressedRow::empty(q.min(n));
            for _p in 1..=3u32 {
                let (seq, seq_events) = build_level_events(&prev, n, q, 1, RowRepr::Breakpoints);
                for threads in [2usize, 4, 8] {
                    let (par, par_events) =
                        build_level_events(&prev, n, q, threads, RowRepr::Breakpoints);
                    assert_eq!(seq_events, par_events, "event count at {threads} threads");
                    assert_eq!(seq.zero_until, par.zero_until);
                    assert_eq!(
                        all_flats(&seq),
                        all_flats(&par),
                        "flats differ at {threads} threads"
                    );
                }
                prev = seq;
            }
        }
    }

    /// BlockCursor rank/membership/next queries against a brute-force
    /// reference over irregular runs.
    #[test]
    fn block_cursor_matches_bruteforce() {
        let runs = [
            FlatRun { start: 5, len: 3 },
            FlatRun { start: 9, len: 1 },
            FlatRun { start: 20, len: 10 },
            FlatRun { start: 31, len: 2 },
        ];
        let flats: Vec<i64> = runs.iter().flat_map(|r| r.start..r.start + r.len).collect();
        let mut cursor = BlockCursor::default();
        for pos in 0..40i64 {
            let rank = flats.iter().filter(|&&f| f <= pos).count() as i64;
            assert_eq!(cursor.rank(&runs, pos), rank, "rank at {pos}");
            assert_eq!(
                cursor.is_flat(&runs, pos),
                flats.contains(&pos),
                "membership at {pos}"
            );
            let next = flats.iter().find(|&&f| f > pos).copied().unwrap_or(NO_FLAT);
            assert_eq!(cursor.next_after(&runs, pos), next, "next after {pos}");
        }
    }
}
