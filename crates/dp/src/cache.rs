//! Shared solve cache for `(U/c, p)` parameter sweeps.
//!
//! A solved table for lifespan `L_max` answers **every** smaller-lifespan
//! query for free — rows are indexed by lifespan, so `W^(p)(L)` for
//! `L ≤ L_max` is a plain lookup — and every smaller interrupt budget
//! too, since all levels `0..=p_max` are materialized. Sweeps therefore
//! need exactly one solve per distinct `(setup, ticks_per_setup, p_max)`
//! key; [`TableCache`] deduplicates those solves (serving a smaller-`p`
//! request from a larger-`p` table when one already covers the
//! lifespan), grows tables with headroom so a slowly increasing sweep
//! does not re-solve per step, and fans independent configurations out
//! over `cyclesteal-par` workers in [`TableCache::solve_many`] — with
//! any thread budget the fan-out leaves idle flowing into each solve's
//! *intra-level* segmented sweep (see [`SolveOptions::threads`]).
//!
//! Compressed tables cache alongside dense ones:
//! [`TableCache::get_compressed`] serves skeleton tables built
//! event-driven and stored **run-backed**
//! ([`RowRepr::Runs`](crate::RowRepr)) — second-order compression makes
//! `10^9`-tick lifespans cheap to build *and* cheap to keep resident —
//! under the same key/headroom/coalescing rules, letting huge-horizon
//! sweeps share one skeleton the way dense sweeps share one arena.
//!
//! ## Sharding
//!
//! Under many-tenant serving traffic one map lock is the contention
//! point: every warm hit of every tenant funnels through it. The maps
//! are therefore **sharded by grid key** — `(setup, ticks_per_setup)`
//! picks a shard deterministically, so every interrupt budget of one
//! grid lives in one shard (the larger-`p`-serves-smaller fallback
//! scan never crosses shards) while distinct tenant grids spread over
//! independent locks. Recency stamps still come from **one global
//! logical clock** and the memory budget is enforced across all shards
//! at once by always evicting the *globally* least-recently-used
//! entry, so [`CacheStats`] and the eviction victim sequence are
//! bit-identical at any shard count for a given workload order — the
//! shard-clock determinism rule (see `docs/INVARIANTS.md`), pinned by
//! the `shard_determinism` integration suite.
//!
//! ## Memory budget and eviction
//!
//! An unbounded cache grows forever under a long-running server's
//! traffic. [`TableCache::set_memory_budget`] caps the resident bytes
//! (dense arenas + compressed skeletons together, by each table's own
//! `memory_bytes` accounting); when an insert pushes the cache past the
//! budget, least-recently-used entries are **evicted** until it fits
//! again. Every lookup that serves a table — hit or insert — refreshes
//! its recency, so sweep working sets stay resident while stale grids
//! age out. Evicted *compressed* tables are offered to the optional
//! [`TableCache::set_evict_hook`] callback first (outside the cache
//! locks), which is how `cyclesteal-serve` snapshots them to disk
//! before dropping them; dense tables are simply dropped (their arenas
//! are cheap to re-solve relative to their size). [`CacheStats`]
//! reports `evictions` and `resident_bytes`. The budget is enforced
//! strictly: a table larger than the whole budget is still *served* to
//! its caller (who holds their own `Arc`) but is not retained — so
//! correctness never depends on the budget, only residency does.
//!
//! The persistence layer (`cyclesteal-store`) restores a cache through
//! [`TableCache::admit_compressed`] / [`TableCache::compressed_tables`]:
//! warm-started processes re-admit solved skeletons from disk instead
//! of paying the solve.
//!
//! The process-wide [`TableCache::global`] instance is what the bench
//! sweeps and `examples/guarantee_explorer.rs` share.

use crate::compressed::CompressedTable;
use crate::profile::{PhaseRecorder, PhaseTimings, ProfileSink};
use crate::value::{InnerLoop, RowRepr, SolveOptions, ValueTable};
use cyclesteal_core::time::Time;
use cyclesteal_obs::Clock;
use parking_lot::Mutex;
// BTreeMap, not HashMap: map iteration feeds the fallback lookup and
// LRU tie-breaking, so iteration order must be deterministic (the
// `hash-collections` lint rule pins this).
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Cache key: everything that shapes a solve except the lifespan bound.
/// Ordered (for the `BTreeMap`s) by setup bits, then resolution, then
/// interrupt budget — so same-grid keys are adjacent and the fallback
/// scan's "smallest larger budget" is the first match in key order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct TableKey {
    /// `setup.get().to_bits()` — setups are compared exactly.
    setup_bits: u64,
    ticks_per_setup: u32,
    max_interrupts: u32,
}

impl TableKey {
    fn new(setup: Time, ticks_per_setup: u32, max_interrupts: u32) -> TableKey {
        TableKey {
            setup_bits: setup.get().to_bits(),
            ticks_per_setup,
            max_interrupts,
        }
    }
}

/// What a cached table must expose for the shared cache policy — both
/// representations answer "how far do I reach", "can I serve this
/// lifespan" (each table's own `covers`, so the tolerance lives in one
/// place per type next to its `value()` contract) and "how many bytes
/// do I hold".
trait CachedTable {
    fn max_ticks(&self) -> i64;
    fn bytes(&self) -> usize;
    /// Whether the table can answer every query up to `max_lifespan` —
    /// the same tolerance the `value()` accessors accept, so a cache hit
    /// can never hand back a table that panics on the requested range.
    fn covers(&self, max_lifespan: Time) -> bool;
}

impl CachedTable for ValueTable {
    fn max_ticks(&self) -> i64 {
        ValueTable::max_ticks(self)
    }
    fn bytes(&self) -> usize {
        self.memory_bytes()
    }
    fn covers(&self, max_lifespan: Time) -> bool {
        ValueTable::covers(self, max_lifespan)
    }
}

impl CachedTable for CompressedTable {
    fn max_ticks(&self) -> i64 {
        CompressedTable::max_ticks(self)
    }
    fn bytes(&self) -> usize {
        self.memory_bytes()
    }
    fn covers(&self, max_lifespan: Time) -> bool {
        CompressedTable::covers(self, max_lifespan)
    }
}

/// One cached table plus its LRU recency stamp.
struct Entry<T> {
    table: Arc<T>,
    /// Value of the cache's logical clock when the entry last served a
    /// request (or was inserted). Larger = more recently used.
    last_used: u64,
}

/// The shared lookup policy: the exact key, or any table for the same
/// `(setup, resolution)` with a *larger* interrupt budget — levels are
/// solved bottom-up, so a `p_max` table holds every smaller budget
/// exactly. Serving an entry refreshes its LRU stamp.
fn peek_map<T: CachedTable>(
    map: &mut BTreeMap<TableKey, Entry<T>>,
    key: &TableKey,
    max_lifespan: Time,
    clock: &AtomicU64,
) -> Option<Arc<T>> {
    let hit_key = match map.get(key) {
        Some(entry) if entry.table.covers(max_lifespan) => Some(*key),
        _ => map
            .iter()
            .filter(|(k, entry)| {
                k.setup_bits == key.setup_bits
                    && k.ticks_per_setup == key.ticks_per_setup
                    && k.max_interrupts > key.max_interrupts
                    && entry.table.covers(max_lifespan)
            })
            .min_by_key(|(k, _)| k.max_interrupts)
            .map(|(k, _)| *k),
    }?;
    let entry = map.get_mut(&hit_key).expect("key located above");
    entry.last_used = clock.fetch_add(1, Ordering::Relaxed) + 1;
    Some(entry.table.clone())
}

/// The shared insert policy: keep whichever of the cached and offered
/// table covers more (a racing solver may have beaten us to the key);
/// either way the surviving entry becomes most recently used.
fn insert_if_larger<T: CachedTable>(
    map: &Mutex<BTreeMap<TableKey, Entry<T>>>,
    key: TableKey,
    table: Arc<T>,
    clock: &AtomicU64,
) -> Arc<T> {
    let stamp = clock.fetch_add(1, Ordering::Relaxed) + 1;
    let mut map = map.lock();
    match map.get_mut(&key) {
        Some(existing) if existing.table.max_ticks() >= table.max_ticks() => {
            existing.last_used = stamp;
            existing.table.clone()
        }
        _ => {
            map.insert(
                key,
                Entry {
                    table: table.clone(),
                    last_used: stamp,
                },
            );
            table
        }
    }
}

/// One solve request for [`TableCache::solve_many`].
#[derive(Clone, Copy, Debug)]
pub struct SolveConfig {
    /// The setup charge `c`.
    pub setup: Time,
    /// Grid resolution in ticks per setup charge.
    pub ticks_per_setup: u32,
    /// Largest lifespan the caller will query.
    pub max_lifespan: Time,
    /// Largest interrupt budget the caller will query.
    pub max_interrupts: u32,
}

/// Hit/miss/eviction counters for observability in sweeps and servers.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Queries answered from a cached table (dense or compressed).
    pub hits: u64,
    /// Queries that triggered (or re-triggered) a solve.
    pub misses: u64,
    /// Entries dropped by the memory budget's LRU eviction.
    pub evictions: u64,
    /// Distinct `(setup, ticks_per_setup, p_max)` dense entries held.
    pub entries: usize,
    /// Distinct compressed (breakpoint-skeleton) entries held.
    pub compressed_entries: usize,
    /// Bytes currently held by all cached tables (dense arenas plus
    /// compressed skeletons), by each table's own accounting.
    pub resident_bytes: usize,
}

/// The callback offered every compressed table the memory budget evicts
/// (see [`TableCache::set_evict_hook`]).
pub type EvictHook = Box<dyn Fn(&Arc<CompressedTable>) + Send + Sync>;

/// Shard count used by [`TableCache::new`] / [`TableCache::with_options`].
/// Semantics are shard-count-invariant (see the module docs), so this is
/// purely a contention knob.
const DEFAULT_SHARDS: usize = 8;

/// One lock domain of the sharded cache: the dense and compressed maps
/// for every grid key that hashes here, plus this shard's own
/// hit/miss/eviction counters (the global [`CacheStats`] is the sum of
/// these, so the aggregate and the per-shard view can never drift).
/// Both maps of one shard are independent locks; cross-shard
/// operations (stats, budget enforcement, clear) acquire shard locks
/// in index order, dense before compressed within a shard.
struct Shard {
    map: Mutex<BTreeMap<TableKey, Entry<ValueTable>>>,
    compressed: Mutex<BTreeMap<TableKey, Entry<CompressedTable>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: Mutex::new(BTreeMap::new()),
            compressed: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

/// Per-shard slice of [`CacheStats`]: the same counters, attributed to
/// the lock domain whose grid keys produced them. Summing every field
/// across [`TableCache::shard_stats`] reproduces [`TableCache::stats`]
/// exactly — events are counted once, on their key's shard, never on a
/// separate global counter that could drift.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Index of this shard in the cache's lock-domain array.
    pub shard: usize,
    /// Queries this shard answered from a cached table.
    pub hits: u64,
    /// Queries on this shard's grids that triggered a solve.
    pub misses: u64,
    /// Entries evicted from this shard by the global LRU budget.
    pub evictions: u64,
    /// Dense entries resident in this shard.
    pub entries: usize,
    /// Compressed entries resident in this shard.
    pub compressed_entries: usize,
    /// Bytes held by this shard's tables, by their own accounting.
    pub resident_bytes: usize,
}

/// A concurrent cache of solved [`ValueTable`]s keyed by
/// `(setup, ticks_per_setup, p_max)`, serving all smaller-lifespan
/// queries from one solve per key, sharded by grid key, with an
/// optional LRU memory budget enforced globally across shards.
pub struct TableCache {
    opts: SolveOptions,
    /// Lifespan headroom multiplier applied on every (re-)solve, so a
    /// sweep creeping upward in `L` amortizes to `O(log L)` solves.
    growth: f64,
    /// The lock domains. Selection mixes `(setup_bits, ticks_per_setup)`
    /// only — never `max_interrupts` — so all budgets of a grid share a
    /// shard and the fallback scan stays shard-local. Hit/miss/eviction
    /// counters live *on the shards* (see [`Shard`]); the global
    /// aggregate is their sum.
    shards: Vec<Shard>,
    /// Resident-bytes cap; `usize::MAX` means unbounded (the default).
    budget: AtomicUsize,
    /// Logical LRU clock, bumped whenever an entry serves a request.
    /// Global across shards: stamps are unique and totally ordered, so
    /// "globally least recently used" is well defined at any shard
    /// count.
    clock: AtomicU64,
    evict_hook: Mutex<Option<EvictHook>>,
    /// Injected monotonic clock for phase-profiled solves (see
    /// [`Self::set_profiling`]); `None` means solves run unprofiled.
    profile_clock: Mutex<Option<Arc<dyn Clock>>>,
    /// Callback offered each profiled solve's [`PhaseTimings`].
    profile_sink: Mutex<Option<ProfileSink>>,
}

impl Default for TableCache {
    fn default() -> Self {
        TableCache::new()
    }
}

impl TableCache {
    /// A cache solving with [`SolveOptions::default`] — except
    /// `threads: 0`, so cache-triggered solves use the machine's workers
    /// (or the `CYCLESTEAL_THREADS` override) for their intra-level
    /// sweeps — and 25% lifespan headroom. Results are bit-identical to
    /// sequential solves at any worker count. Unbounded until
    /// [`Self::set_memory_budget`].
    pub fn new() -> TableCache {
        TableCache::with_options(SolveOptions {
            threads: 0,
            ..SolveOptions::default()
        })
    }

    /// A cache with explicit solve options (e.g. `keep_policy: false`
    /// for value-only sweeps) and the default shard count.
    pub fn with_options(opts: SolveOptions) -> TableCache {
        TableCache::with_options_sharded(opts, DEFAULT_SHARDS)
    }

    /// A cache with explicit solve options *and* an explicit shard
    /// count. Sharding is a contention knob, never a semantics knob:
    /// stats and the eviction victim sequence are bit-identical at any
    /// `shards ≥ 1` (clamped up from 0) for a given workload order.
    pub fn with_options_sharded(opts: SolveOptions, shards: usize) -> TableCache {
        TableCache {
            opts,
            growth: 1.25,
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            budget: AtomicUsize::new(usize::MAX),
            clock: AtomicU64::new(0),
            evict_hook: Mutex::new(None),
            profile_clock: Mutex::new(None),
            profile_sink: Mutex::new(None),
        }
    }

    /// How many lock domains this cache spreads grid keys over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`'s grid. Mixes `(setup_bits,
    /// ticks_per_setup)` only, so every interrupt budget of a grid maps
    /// to the same shard and the larger-`p` fallback scan in
    /// [`peek_map`] never needs to look elsewhere.
    fn shard(&self, key: &TableKey) -> &Shard {
        &self.shards[self.shard_index(key.setup_bits, key.ticks_per_setup)]
    }

    /// Index of the shard owning the grid `(setup_bits,
    /// ticks_per_setup)` — the attribution point for per-shard
    /// counters when only the grid identity is at hand.
    fn shard_index(&self, setup_bits: u64, ticks_per_setup: u32) -> usize {
        // SplitMix64 finalizer over the grid identity — deterministic,
        // seedless, and uniform enough to spread tenant grids.
        let mut x = setup_bits ^ u64::from(ticks_per_setup).rotate_left(32);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.shards.len() as u64) as usize
    }

    /// The process-wide shared cache used by the sweep benches and
    /// examples.
    pub fn global() -> &'static TableCache {
        static GLOBAL: OnceLock<TableCache> = OnceLock::new();
        GLOBAL.get_or_init(TableCache::new)
    }

    /// Caps (or, with `None`, unbounds) the bytes the cache may keep
    /// resident, and immediately evicts LRU entries down to the new
    /// budget. The budget bounds *residency*, never correctness: an
    /// oversized solve is still served to its caller, it just doesn't
    /// stay cached.
    pub fn set_memory_budget(&self, budget: Option<usize>) {
        self.budget
            .store(budget.unwrap_or(usize::MAX), Ordering::Relaxed);
        self.enforce_budget();
    }

    /// The current resident-bytes cap, if one is set.
    pub fn memory_budget(&self) -> Option<usize> {
        match self.budget.load(Ordering::Relaxed) {
            usize::MAX => None,
            b => Some(b),
        }
    }

    /// Installs (or, with `None`, removes) the callback offered every
    /// *compressed* table the memory budget evicts — the
    /// snapshot-on-evict hook of the serving layer. Called outside the
    /// cache locks, after the entry is already gone from the cache;
    /// dense tables are evicted without a callback.
    pub fn set_evict_hook(&self, hook: Option<EvictHook>) {
        *self.evict_hook.lock() = hook;
    }

    /// Installs (or, with `None`s, removes) the phase-profiling pair:
    /// a monotonic [`Clock`] and a sink offered each cache-triggered
    /// solve's [`PhaseTimings`]. With no clock the solver runs
    /// unprofiled (not even no-op clock reads); with a clock and no
    /// sink phases are timed and discarded. Profiling never changes
    /// solver output — the clock is read only *between* phases — so
    /// instrumented solves stay bit-identical (pinned by the
    /// `profiled_solves_are_bit_identical` test and the determinism
    /// lint, which keeps `Instant::now` out of this crate: production
    /// clocks are injected by `cyclesteal-serve`).
    pub fn set_profiling(&self, clock: Option<Arc<dyn Clock>>, sink: Option<ProfileSink>) {
        *self.profile_clock.lock() = clock;
        *self.profile_sink.lock() = sink;
    }

    /// Dense solve, phase-profiled when a clock is installed.
    fn solve_dense(
        &self,
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: SolveOptions,
    ) -> ValueTable {
        let clock = self.profile_clock.lock().clone();
        match clock {
            None => ValueTable::solve(setup, ticks_per_setup, max_lifespan, max_interrupts, opts),
            Some(clock) => {
                let recorder = PhaseRecorder::new(&*clock);
                let table = ValueTable::solve_profiled(
                    setup,
                    ticks_per_setup,
                    max_lifespan,
                    max_interrupts,
                    opts,
                    &recorder,
                );
                self.offer_timings(recorder.timings());
                table
            }
        }
    }

    /// Compressed solve, phase-profiled when a clock is installed.
    fn solve_compressed(
        &self,
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: SolveOptions,
    ) -> CompressedTable {
        let clock = self.profile_clock.lock().clone();
        match clock {
            None => CompressedTable::solve_with(
                setup,
                ticks_per_setup,
                max_lifespan,
                max_interrupts,
                opts,
            ),
            Some(clock) => {
                let recorder = PhaseRecorder::new(&*clock);
                let table = CompressedTable::solve_profiled(
                    setup,
                    ticks_per_setup,
                    max_lifespan,
                    max_interrupts,
                    opts,
                    &recorder,
                );
                self.offer_timings(recorder.timings());
                table
            }
        }
    }

    fn offer_timings(&self, timings: PhaseTimings) {
        let sink = self.profile_sink.lock();
        if let Some(sink) = sink.as_ref() {
            sink(&timings);
        }
    }

    /// Returns a table covering `(setup, ticks_per_setup, ≥max_lifespan,
    /// max_interrupts)`, solving (with lifespan headroom) only when no
    /// cached table covers the request.
    pub fn get(
        &self,
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
    ) -> Arc<ValueTable> {
        let key = TableKey::new(setup, ticks_per_setup, max_interrupts);
        if let Some(table) = self.lookup(&key, max_lifespan) {
            return table;
        }
        self.shard(&key).misses.fetch_add(1, Ordering::Relaxed);
        // Solve outside the lock: concurrent callers may duplicate work,
        // but never block each other behind a long solve.
        let table = Arc::new(self.solve_dense(
            setup,
            ticks_per_setup,
            max_lifespan * self.growth,
            max_interrupts,
            self.opts,
        ));
        let table = insert_if_larger(&self.shard(&key).map, key, table, &self.clock);
        self.enforce_budget();
        table
    }

    /// Solves all `configs` with one solve per distinct key (at the
    /// largest requested lifespan), fanned out over `cyclesteal-par`
    /// workers — and, when the batch leaves workers idle (fewer pending
    /// solves than threads), each solve additionally parallelizes
    /// *within* its levels via [`SolveOptions::threads`]. Returns one
    /// covering table per input config, in input order.
    ///
    /// The returned tables are the solver's (or the dedup pass's) own
    /// `Arc`s, **not** re-read from the cache afterwards: cache insertion
    /// is best-effort, so a concurrent [`Self::clear`] — or a racing
    /// insert that kept a different table for the key — can never turn
    /// the collection into a panic or change what the caller gets.
    ///
    /// Every config counts exactly once in [`CacheStats`]: a hit when a
    /// cached table already covered it, a hit when it coalesced onto
    /// another config's solve, a miss for each solve actually run.
    ///
    /// ```
    /// use cyclesteal_core::time::secs;
    /// use cyclesteal_dp::{SolveConfig, TableCache};
    ///
    /// let cache = TableCache::new();
    /// // Three sweep cells on one grid: the batch coalesces them into a
    /// // single solve at the largest lifespan and budget.
    /// let configs: Vec<SolveConfig> = [(30.0, 1u32), (80.0, 2), (50.0, 2)]
    ///     .iter()
    ///     .map(|&(u, p)| SolveConfig {
    ///         setup: secs(1.0),
    ///         ticks_per_setup: 8,
    ///         max_lifespan: secs(u),
    ///         max_interrupts: p,
    ///     })
    ///     .collect();
    /// let tables = cache.solve_many(&configs);
    /// assert_eq!(tables.len(), 3);
    /// assert_eq!(cache.stats().misses, 1, "one grid → one solve");
    /// // Every returned table covers its config's full range.
    /// let w = tables[1].value(2, secs(80.0));
    /// assert!(w.get() > 0.0);
    /// ```
    pub fn solve_many(&self, configs: &[SolveConfig]) -> Vec<Arc<ValueTable>> {
        // Resolution pass: serve what the cache already covers, coalesce
        // the rest — one pending solve per (setup, resolution), at the
        // max interrupt budget and lifespan requested for that grid (a
        // `p_max` solve materializes every smaller budget, so mixed-p
        // batches need only one solve per grid).
        let mut results: Vec<Option<Arc<ValueTable>>> = vec![None; configs.len()];
        let mut pending: BTreeMap<(u64, u32), SolveConfig> = BTreeMap::new();
        let mut waiting: Vec<(usize, (u64, u32))> = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let key = TableKey::new(cfg.setup, cfg.ticks_per_setup, cfg.max_interrupts);
            if let Some(table) = self.lookup(&key, cfg.max_lifespan) {
                results[i] = Some(table);
                continue;
            }
            let group = (key.setup_bits, key.ticks_per_setup);
            pending
                .entry(group)
                .and_modify(|p| {
                    if cfg.max_lifespan > p.max_lifespan {
                        p.max_lifespan = cfg.max_lifespan;
                    }
                    if cfg.max_interrupts > p.max_interrupts {
                        p.max_interrupts = cfg.max_interrupts;
                    }
                })
                .or_insert(*cfg);
            waiting.push((i, group));
        }

        let jobs: Vec<((u64, u32), SolveConfig)> = pending.into_iter().collect();
        // One miss per solve run, on the solved grid's shard; configs
        // that coalesced onto another config's solve were still served
        // without their own solve, which is a hit on the same shard — so
        // hits + misses always equals the batch size, per shard and in
        // aggregate.
        let mut group_sizes: BTreeMap<(u64, u32), u64> = BTreeMap::new();
        for (_, group) in &waiting {
            *group_sizes.entry(*group).or_insert(0) += 1;
        }
        for ((setup_bits, ticks), members) in group_sizes {
            let shard = &self.shards[self.shard_index(setup_bits, ticks)];
            shard.misses.fetch_add(1, Ordering::Relaxed);
            shard.hits.fetch_add(members - 1, Ordering::Relaxed);
        }

        // Split the thread budget: distinct keys fan out across workers,
        // and whatever that fan-out leaves idle goes into each solve's
        // intra-level segmented sweep.
        let intra = (self.opts.resolved_threads() / jobs.len().max(1)).max(1);
        let solve_opts = SolveOptions {
            threads: intra,
            ..self.opts
        };
        let solved = cyclesteal_par::par_map(&jobs, |(_, cfg)| {
            self.solve_dense(
                cfg.setup,
                cfg.ticks_per_setup,
                cfg.max_lifespan * self.growth,
                cfg.max_interrupts,
                solve_opts,
            )
        });
        let mut by_group: BTreeMap<(u64, u32), Arc<ValueTable>> = BTreeMap::new();
        for ((group, cfg), table) in jobs.into_iter().zip(solved) {
            let key = TableKey::new(cfg.setup, cfg.ticks_per_setup, cfg.max_interrupts);
            let table = Arc::new(table);
            // Best-effort publication; the batch's answers come from the
            // solver output either way.
            insert_if_larger(&self.shard(&key).map, key, table.clone(), &self.clock);
            by_group.insert(group, table);
        }
        self.enforce_budget();
        for (i, group) in waiting {
            results[i] = Some(
                by_group
                    .get(&group)
                    .expect("every waiting config joined a pending group")
                    .clone(),
            );
        }

        results
            .into_iter()
            .map(|t| t.expect("every config resolved to a hit or a solved group"))
            .collect()
    }

    /// Returns a compressed (skeleton) table covering
    /// `(setup, ticks_per_setup, ≥max_lifespan, max_interrupts)`, built
    /// event-driven and stored **run-backed** on a miss
    /// ([`crate::RowRepr::Runs`]: second-order arithmetic-run rows, an
    /// order of magnitude fewer stored descriptors than flat lists,
    /// bit-identical answers) — the cache entry point for huge-horizon
    /// sweeps (`10^7`–`10^9` ticks) where a dense arena is not an
    /// option. Same key, headroom and larger-budget-serves-smaller rules
    /// as [`Self::get`].
    pub fn get_compressed(
        &self,
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
    ) -> Arc<CompressedTable> {
        let key = TableKey::new(setup, ticks_per_setup, max_interrupts);
        if let Some(table) = self.peek_compressed(&key, max_lifespan) {
            self.shard(&key).hits.fetch_add(1, Ordering::Relaxed);
            return table;
        }
        self.shard(&key).misses.fetch_add(1, Ordering::Relaxed);
        // Solve outside the lock, like the dense path.
        let table = Arc::new(self.solve_compressed(
            setup,
            ticks_per_setup,
            max_lifespan * self.growth,
            max_interrupts,
            SolveOptions {
                inner: InnerLoop::EventDriven,
                repr: RowRepr::Runs,
                ..self.opts
            },
        ));
        let table = insert_if_larger(&self.shard(&key).compressed, key, table, &self.clock);
        self.enforce_budget();
        table
    }

    /// [`Self::get_compressed`]'s lookup half only: returns a covering
    /// cached table (counting a hit and refreshing its recency) or
    /// `None` — **never** solving. This is the serving layer's warm-hit
    /// fast lane: a warm query can be answered without queueing behind
    /// any tenant's cold solve. A miss here counts nothing; the
    /// follow-up [`Self::get_compressed`] does the miss accounting.
    pub fn try_get_compressed(
        &self,
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
    ) -> Option<Arc<CompressedTable>> {
        let key = TableKey::new(setup, ticks_per_setup, max_interrupts);
        let found = self.peek_compressed(&key, max_lifespan);
        if found.is_some() {
            self.shard(&key).hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts an externally obtained compressed table — typically one
    /// deserialized from a snapshot — under its own
    /// `(setup, resolution, p_max)` key, so later
    /// [`Self::get_compressed`] calls it covers are hits instead of
    /// solves. Follows the normal insert policy (the larger-coverage
    /// table wins a key collision) and the memory budget; counts
    /// neither a hit nor a miss. Returns the entry that ended up cached
    /// for the key (the admitted table, unless a larger one was already
    /// there).
    pub fn admit_compressed(&self, table: Arc<CompressedTable>) -> Arc<CompressedTable> {
        let key = TableKey::new(
            table.grid().setup(),
            table.grid().q() as u32,
            table.max_interrupts(),
        );
        let table = insert_if_larger(&self.shard(&key).compressed, key, table, &self.clock);
        self.enforce_budget();
        table
    }

    /// A point-in-time snapshot of every cached compressed table — what
    /// the persistence layer writes out in
    /// `snapshot_to_dir`-style sweeps. Does not touch LRU recency or the
    /// hit/miss counters. Ordered by key (shards are visited in index
    /// order, keys in map order within a shard).
    pub fn compressed_tables(&self) -> Vec<Arc<CompressedTable>> {
        let mut tables: Vec<(TableKey, Arc<CompressedTable>)> = Vec::new();
        for shard in &self.shards {
            let compressed = shard.compressed.lock();
            tables.extend(compressed.iter().map(|(k, e)| (*k, e.table.clone())));
        }
        tables.sort_by_key(|(k, _)| *k);
        tables.into_iter().map(|(_, t)| t).collect()
    }

    fn peek_compressed(&self, key: &TableKey, max_lifespan: Time) -> Option<Arc<CompressedTable>> {
        peek_map(
            &mut self.shard(key).compressed.lock(),
            key,
            max_lifespan,
            &self.clock,
        )
    }

    /// Hit/miss/entry counters since construction (or [`Self::clear`]).
    /// Computed by summing the per-shard counters in one pass — the
    /// aggregate is definitionally the sum of [`Self::shard_stats`].
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.shard_stats() {
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
            total.compressed_entries += s.compressed_entries;
            total.resident_bytes += s.resident_bytes;
        }
        total
    }

    /// Per-shard hit/miss/eviction/residency counters, one entry per
    /// lock domain in shard-index order, read in a single pass holding
    /// each shard's locks (shard index order, dense before compressed
    /// within a shard — the cross-shard lock order used everywhere).
    /// Counter events are attributed to the shard owning the query's
    /// grid key, never double-counted globally, so summing this vector
    /// field-by-field reproduces [`Self::stats`] exactly.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                // Lock order within a shard: dense before compressed.
                let map = shard.map.lock();
                let compressed = shard.compressed.lock();
                ShardStats {
                    shard: i,
                    hits: shard.hits.load(Ordering::Relaxed),
                    misses: shard.misses.load(Ordering::Relaxed),
                    evictions: shard.evictions.load(Ordering::Relaxed),
                    entries: map.len(),
                    compressed_entries: compressed.len(),
                    resident_bytes: map.values().map(|e| e.table.bytes()).sum::<usize>()
                        + compressed.values().map(|e| e.table.bytes()).sum::<usize>(),
                }
            })
            .collect()
    }

    /// Drops every cached table and resets the counters (the budget and
    /// evict hook persist).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.map.lock().clear();
            shard.compressed.lock().clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
            shard.evictions.store(0, Ordering::Relaxed);
        }
    }

    /// Evicts least-recently-used entries (globally, across every shard
    /// and both maps) until the resident bytes fit the budget —
    /// strictly: the entry that triggered the enforcement is the most
    /// recently used and goes last, but even it is dropped when it
    /// alone exceeds the budget (its caller already holds the `Arc`).
    /// Victim order is a pure function of the global clock stamps —
    /// never of shard layout — which is the shard-clock determinism
    /// rule. Evicted compressed tables are offered to the evict hook
    /// after the locks are released.
    fn enforce_budget(&self) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == usize::MAX {
            return;
        }
        let mut snapshot_victims: Vec<Arc<CompressedTable>> = Vec::new();
        {
            // Cross-shard lock order: shard index order, dense before
            // compressed within a shard (matches stats()). All locks are
            // held for the whole enforcement so the global LRU choice
            // cannot race a concurrent stamp refresh.
            let mut guards: Vec<_> = self
                .shards
                .iter()
                .map(|s| (s.map.lock(), s.compressed.lock()))
                .collect();
            // Sum once, subtract per eviction: an eviction burst (e.g. a
            // shrinking budget over a large cache) stays O(N) sums + one
            // O(N) LRU scan per victim instead of O(N) sums per victim,
            // all while the locks are held.
            let mut resident = guards
                .iter()
                .map(|(map, compressed)| {
                    map.values().map(|e| e.table.bytes()).sum::<usize>()
                        + compressed.values().map(|e| e.table.bytes()).sum::<usize>()
                })
                .sum::<usize>();
            loop {
                if resident <= budget {
                    break;
                }
                // Global minima: clock stamps are unique (fetch_add), so
                // each side has at most one minimum across all shards;
                // the dense-wins tie rule is kept from the unsharded
                // cache for the impossible-in-practice equal case.
                let dense_lru = guards
                    .iter()
                    .enumerate()
                    .filter_map(|(si, (map, _))| {
                        map.iter()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(k, e)| (si, *k, e.last_used))
                    })
                    .min_by_key(|&(_, _, stamp)| stamp);
                let comp_lru = guards
                    .iter()
                    .enumerate()
                    .filter_map(|(si, (_, compressed))| {
                        compressed
                            .iter()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(k, e)| (si, *k, e.last_used))
                    })
                    .min_by_key(|&(_, _, stamp)| stamp);
                let evict_dense = match (dense_lru, comp_lru) {
                    (Some((_, _, d)), Some((_, _, c))) => d <= c,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let victim_shard = if evict_dense {
                    let (si, key, _) = dense_lru.expect("picked dense LRU");
                    if let Some(entry) = guards[si].0.remove(&key) {
                        resident = resident.saturating_sub(entry.table.bytes());
                    }
                    si
                } else {
                    let (si, key, _) = comp_lru.expect("picked compressed LRU");
                    if let Some(entry) = guards[si].1.remove(&key) {
                        resident = resident.saturating_sub(entry.table.bytes());
                        snapshot_victims.push(entry.table);
                    }
                    si
                };
                self.shards[victim_shard]
                    .evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        if !snapshot_victims.is_empty() {
            let hook = self.evict_hook.lock();
            if let Some(hook) = hook.as_ref() {
                for table in &snapshot_victims {
                    // A panicking hook must not unwind into whichever
                    // cache caller happened to trigger the eviction (and
                    // must not skip the remaining victims): eviction
                    // side effects are best-effort by contract, so the
                    // panic is contained here and merely logged.
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(table)))
                        .is_err()
                    {
                        eprintln!("cyclesteal-dp: evict hook panicked (contained)");
                    }
                }
            }
        }
    }

    fn lookup(&self, key: &TableKey, max_lifespan: Time) -> Option<Arc<ValueTable>> {
        let found = self.peek(key, max_lifespan);
        if found.is_some() {
            self.shard(key).hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// [`Self::lookup`] without touching the hit counter.
    fn peek(&self, key: &TableKey, max_lifespan: Time) -> Option<Arc<ValueTable>> {
        peek_map(
            &mut self.shard(key).map.lock(),
            key,
            max_lifespan,
            &self.clock,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    #[test]
    fn second_smaller_query_is_a_hit() {
        let cache = TableCache::new();
        let a = cache.get(secs(1.0), 8, secs(100.0), 2);
        let b = cache.get(secs(1.0), 8, secs(40.0), 2);
        assert!(
            Arc::ptr_eq(&a, &b),
            "smaller lifespan should reuse the solve"
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // The shared table answers the smaller query exactly.
        assert_eq!(
            a.value_ticks(2, 40 * 8),
            ValueTable::solve(secs(1.0), 8, secs(40.0), 2, SolveOptions::default())
                .value_ticks(2, 40 * 8)
        );
    }

    #[test]
    fn headroom_absorbs_creeping_sweeps() {
        let cache = TableCache::new();
        let _ = cache.get(secs(1.0), 4, secs(100.0), 1);
        // 25% headroom: up to 125 is covered without a re-solve.
        let _ = cache.get(secs(1.0), 4, secs(120.0), 1);
        assert_eq!(cache.stats().misses, 1);
        let _ = cache.get(secs(1.0), 4, secs(200.0), 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TableCache::new();
        let a = cache.get(secs(1.0), 8, secs(50.0), 1);
        let b = cache.get(secs(1.0), 8, secs(50.0), 2);
        let c = cache.get(secs(1.0), 16, secs(50.0), 1);
        let d = cache.get(secs(2.0), 8, secs(50.0), 1);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 4);
        assert_eq!(b.max_interrupts(), 2);
        assert_eq!(c.grid().q(), 16);
        assert_eq!(d.grid().setup(), secs(2.0));
    }

    #[test]
    fn solve_many_coalesces_and_preserves_order() {
        let cache = TableCache::new();
        let configs: Vec<SolveConfig> = [30.0, 80.0, 50.0]
            .iter()
            .map(|&u| SolveConfig {
                setup: secs(1.0),
                ticks_per_setup: 8,
                max_lifespan: secs(u),
                max_interrupts: 2,
            })
            .collect();
        let tables = cache.solve_many(&configs);
        assert_eq!(tables.len(), 3);
        // One key → one solve → one shared table.
        assert_eq!(cache.stats().misses, 1);
        assert!(Arc::ptr_eq(&tables[0], &tables[1]));
        assert!(Arc::ptr_eq(&tables[1], &tables[2]));
        assert!(tables[0].max_lifespan() >= secs(80.0));
    }

    #[test]
    fn solve_many_mixed_keys() {
        let cache = TableCache::new();
        let configs = vec![
            SolveConfig {
                setup: secs(1.0),
                ticks_per_setup: 8,
                max_lifespan: secs(60.0),
                max_interrupts: 1,
            },
            SolveConfig {
                setup: secs(1.0),
                ticks_per_setup: 8,
                max_lifespan: secs(60.0),
                max_interrupts: 3,
            },
        ];
        let tables = cache.solve_many(&configs);
        // Same grid, different budgets: one p=3 solve serves both.
        assert_eq!(cache.stats().misses, 1);
        assert!(Arc::ptr_eq(&tables[0], &tables[1]));
        assert_eq!(tables[1].max_interrupts(), 3);
        // Values agree with fresh direct solves at both budgets.
        let direct = ValueTable::solve(secs(1.0), 8, secs(60.0), 3, SolveOptions::default());
        for l in 0..=direct.max_ticks() {
            assert_eq!(tables[0].value_ticks(1, l), direct.value_ticks(1, l));
            assert_eq!(tables[1].value_ticks(3, l), direct.value_ticks(3, l));
        }
    }

    #[test]
    fn smaller_budget_served_from_larger_p_table() {
        let cache = TableCache::new();
        let big = cache.get(secs(1.0), 8, secs(60.0), 3);
        let small = cache.get(secs(1.0), 8, secs(60.0), 1);
        assert!(
            Arc::ptr_eq(&big, &small),
            "p=1 request should reuse the p=3 table"
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // Level 1 of the shared table is the exact p=1 answer.
        let direct = ValueTable::solve(secs(1.0), 8, secs(60.0), 1, SolveOptions::default());
        for l in 0..=direct.max_ticks() {
            assert_eq!(small.value_ticks(1, l), direct.value_ticks(1, l));
        }
    }

    #[test]
    fn hit_never_returns_a_table_too_small_to_query() {
        // A lifespan a fraction of a tick past the solved range must
        // re-solve, not hand back a table whose value() would panic.
        let cache = TableCache::new();
        let first = cache.get(secs(1.0), 8, secs(100.0), 1);
        let covered = first.max_lifespan();
        let just_past = covered + secs(0.01);
        let second = cache.get(secs(1.0), 8, just_past, 1);
        // Either way the contract holds: the returned table answers the
        // requested lifespan without panicking.
        let _ = second.value(1, just_past);
        assert!(second.max_lifespan() >= just_past);
    }

    #[test]
    fn solve_many_accounts_every_config_exactly_once() {
        let cache = TableCache::new();
        let configs: Vec<SolveConfig> = (0..3)
            .map(|_| SolveConfig {
                setup: secs(1.0),
                ticks_per_setup: 8,
                max_lifespan: secs(40.0),
                max_interrupts: 2,
            })
            .collect();
        let _ = cache.solve_many(&configs);
        let s = cache.stats();
        // One solve ran (miss); the two configs that coalesced onto it
        // were served without their own solve (hits). Every config is
        // counted: hits + misses == batch size.
        assert_eq!((s.hits, s.misses), (2, 1));

        // A second identical batch is pure cache hits.
        let _ = cache.solve_many(&configs);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (5, 1));
    }

    #[test]
    fn solve_many_survives_concurrent_clear() {
        // Regression: the collection pass used to re-read the cache after
        // the insert loop and `expect` the key to be present — a racing
        // `clear()` in that window panicked. Results now come straight
        // from the solver, so a clear storm must never break a batch.
        use std::sync::atomic::AtomicBool;

        let cache = TableCache::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    cache.clear();
                    std::thread::yield_now();
                }
            });
            for round in 0..40u32 {
                let configs: Vec<SolveConfig> = (0..3u32)
                    .map(|i| SolveConfig {
                        setup: secs(1.0),
                        ticks_per_setup: 4,
                        max_lifespan: secs(20.0 + (round % 5) as f64 + i as f64),
                        max_interrupts: 1 + (i % 2),
                    })
                    .collect();
                let tables = cache.solve_many(&configs);
                for (cfg, table) in configs.iter().zip(&tables) {
                    assert!(table.max_lifespan() >= cfg.max_lifespan);
                    assert!(table.max_interrupts() >= cfg.max_interrupts);
                    // The contract: every returned table answers its
                    // config's full range without panicking.
                    let _ = table.value(cfg.max_interrupts, cfg.max_lifespan);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn global_is_shared() {
        let a = TableCache::global();
        let b = TableCache::global();
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn compressed_side_shares_solves_and_counts_entries() {
        let cache = TableCache::new();
        let a = cache.get_compressed(secs(1.0), 8, secs(100.0), 2);
        let b = cache.get_compressed(secs(1.0), 8, secs(40.0), 2);
        assert!(
            Arc::ptr_eq(&a, &b),
            "smaller lifespan should reuse the solve"
        );
        // Smaller budget served from the larger-p skeleton, like dense.
        let c = cache.get_compressed(secs(1.0), 8, secs(40.0), 1);
        assert!(Arc::ptr_eq(&a, &c));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!((s.entries, s.compressed_entries), (0, 1));
        // Cached skeletons are run-backed (second-order compression) and
        // answer queries exactly like a fresh flat-list solve.
        assert_eq!(a.repr(), RowRepr::Runs);
        let direct = crate::compressed::CompressedTable::solve(secs(1.0), 8, secs(40.0), 2);
        for l in 0..=direct.max_ticks() {
            assert_eq!(a.value_ticks(2, l), direct.value_ticks(2, l));
        }
        cache.clear();
        assert_eq!(cache.stats().compressed_entries, 0);
    }

    #[test]
    fn dense_and_compressed_entries_are_independent() {
        let cache = TableCache::new();
        let dense = cache.get(secs(1.0), 8, secs(50.0), 1);
        let small = cache.get_compressed(secs(1.0), 8, secs(50.0), 1);
        let s = cache.stats();
        assert_eq!((s.entries, s.compressed_entries), (1, 1));
        assert_eq!(s.misses, 2, "representations solve independently");
        for l in 0..=dense.max_ticks().min(small.max_ticks()) {
            assert_eq!(dense.value_ticks(1, l), small.value_ticks(1, l));
        }
    }

    #[test]
    fn resident_bytes_track_cached_tables() {
        let cache = TableCache::new();
        assert_eq!(cache.stats().resident_bytes, 0);
        let a = cache.get(secs(1.0), 8, secs(60.0), 1);
        let b = cache.get_compressed(secs(1.0), 8, secs(60.0), 1);
        assert_eq!(
            cache.stats().resident_bytes,
            a.memory_bytes() + b.memory_bytes()
        );
        cache.clear();
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let cache = TableCache::new();
        // Three dense grids; the middle one is then refreshed by a hit,
        // so the *first* grid is the LRU victim when the budget bites.
        let a = cache.get(secs(1.0), 8, secs(60.0), 1);
        let b = cache.get(secs(2.0), 8, secs(60.0), 1);
        let _hit = cache.get(secs(1.0), 8, secs(30.0), 1);
        assert_eq!(cache.stats().entries, 2);
        let keep = a.memory_bytes() + b.memory_bytes() - 1;
        cache.set_memory_budget(Some(keep));
        let s = cache.stats();
        assert_eq!(s.entries, 1, "one entry must have been evicted");
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= keep);
        // The refreshed grid survived; the stale one re-solves.
        let before = cache.stats().misses;
        let _ = cache.get(secs(1.0), 8, secs(30.0), 1);
        assert_eq!(cache.stats().misses, before, "refreshed entry still hit");
        let _ = cache.get(secs(2.0), 8, secs(30.0), 1);
        assert_eq!(cache.stats().misses, before + 1, "evicted entry re-solves");
    }

    #[test]
    fn oversized_insert_is_served_but_not_retained() {
        let cache = TableCache::new();
        let small = cache.get(secs(1.0), 4, secs(30.0), 1);
        cache.set_memory_budget(Some(small.memory_bytes()));
        assert_eq!(cache.stats().entries, 1, "small table fits its budget");
        // A larger solve cannot fit the budget at all: the caller is
        // still served (this Arc), but the budget is enforced strictly —
        // both the old entry and the oversized new one are evicted.
        let big = cache.get(secs(1.0), 4, secs(300.0), 2);
        assert!(big.memory_bytes() > small.memory_bytes());
        assert!(big.max_lifespan() >= secs(300.0), "caller fully served");
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.entries, 0);
        assert!(s.resident_bytes <= small.memory_bytes());
    }

    #[test]
    fn evict_hook_sees_evicted_compressed_tables() {
        use std::sync::Mutex as StdMutex;
        let cache = TableCache::new();
        let seen: Arc<StdMutex<Vec<Arc<CompressedTable>>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink = seen.clone();
        cache.set_evict_hook(Some(Box::new(move |table| {
            sink.lock().unwrap().push(table.clone());
        })));
        let a = cache.get_compressed(secs(1.0), 8, secs(400.0), 2);
        let _b = cache.get_compressed(secs(2.0), 8, secs(400.0), 2);
        cache.set_memory_budget(Some(1));
        let evicted = seen.lock().unwrap();
        assert_eq!(evicted.len(), 2, "both compressed entries evicted");
        assert!(evicted.iter().any(|t| Arc::ptr_eq(t, &a)));
        assert_eq!(cache.stats().compressed_entries, 0);
    }

    #[test]
    fn a_panicking_evict_hook_is_contained() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = TableCache::new();
        let calls = Arc::new(AtomicU64::new(0));
        let counter = calls.clone();
        cache.set_evict_hook(Some(Box::new(move |_table| {
            counter.fetch_add(1, Ordering::Relaxed);
            panic!("snapshot disk is gone");
        })));
        let _a = cache.get_compressed(secs(1.0), 8, secs(400.0), 2);
        let _b = cache.get_compressed(secs(2.0), 8, secs(400.0), 2);
        // The evicting call must neither panic nor stop at the first
        // victim, and the cache stays fully usable afterwards.
        cache.set_memory_budget(Some(1));
        assert_eq!(calls.load(Ordering::Relaxed), 2, "hook ran per victim");
        assert_eq!(cache.stats().compressed_entries, 0);
        cache.set_memory_budget(None);
        let again = cache.get_compressed(secs(1.0), 8, secs(400.0), 2);
        assert!(again.covers(secs(400.0)));
    }

    #[test]
    fn admit_compressed_turns_later_gets_into_hits() {
        let source = TableCache::new();
        let table = source.get_compressed(secs(1.0), 8, secs(80.0), 2);

        let fresh = TableCache::new();
        let admitted = fresh.admit_compressed(table.clone());
        assert!(Arc::ptr_eq(&admitted, &table));
        let s = fresh.stats();
        assert_eq!((s.hits, s.misses, s.compressed_entries), (0, 0, 1));
        // The admitted table serves the covered range without a solve.
        let served = fresh.get_compressed(secs(1.0), 8, secs(80.0), 2);
        assert!(Arc::ptr_eq(&served, &table));
        let s = fresh.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
        // And the snapshot listing returns exactly the cached tables.
        let listed = fresh.compressed_tables();
        assert_eq!(listed.len(), 1);
        assert!(Arc::ptr_eq(&listed[0], &table));
    }

    #[test]
    fn shard_count_never_changes_stats_or_victims() {
        use std::sync::Mutex as StdMutex;
        // The same sequential workload against 1, 4 and 16 shards must
        // produce identical CacheStats and an identical eviction victim
        // sequence — the shard-clock determinism rule.
        let run = |shards: usize| {
            let cache = TableCache::with_options_sharded(
                SolveOptions {
                    threads: 1,
                    ..SolveOptions::default()
                },
                shards,
            );
            assert_eq!(cache.shard_count(), shards);
            let victims: Arc<StdMutex<Vec<(u64, u32, u32)>>> = Arc::new(StdMutex::new(Vec::new()));
            let sink = victims.clone();
            cache.set_evict_hook(Some(Box::new(move |t| {
                sink.lock().unwrap().push((
                    t.grid().setup().get().to_bits(),
                    t.grid().q() as u32,
                    t.max_interrupts(),
                ));
            })));
            for round in 0..3u32 {
                for grid in 1..=5u64 {
                    let _ = cache.get_compressed(
                        secs(grid as f64),
                        4 << (grid % 2),
                        secs(200.0 + (u64::from(round) * grid) as f64),
                        1 + (grid % 3) as u32,
                    );
                }
                // Halve the (identical-across-runs) resident footprint so
                // the budget genuinely bites every round.
                let resident = cache.stats().resident_bytes;
                cache.set_memory_budget(Some(resident / 2));
                cache.set_memory_budget(None);
            }
            let s = cache.stats();
            let seen = victims.lock().unwrap().clone();
            ((s.hits, s.misses, s.evictions, s.resident_bytes), seen)
        };
        let baseline = run(1);
        assert_eq!(run(4), baseline);
        assert_eq!(run(16), baseline);
        assert!(!baseline.1.is_empty(), "the workload must actually evict");
    }

    #[test]
    fn larger_p_fallback_stays_shard_local_at_any_shard_count() {
        // All budgets of one grid must land in one shard, so the
        // p=1-served-from-p=3 fallback works however many shards exist.
        for shards in [1usize, 3, 16] {
            let cache = TableCache::with_options_sharded(SolveOptions::default(), shards);
            let big = cache.get(secs(1.0), 8, secs(60.0), 3);
            let small = cache.get(secs(1.0), 8, secs(60.0), 1);
            assert!(Arc::ptr_eq(&big, &small), "{shards} shards");
            assert_eq!(cache.stats().hits, 1);
        }
    }

    #[test]
    fn profiled_solves_are_bit_identical() {
        use crate::profile::{Phase, PhaseRecorder};
        use cyclesteal_obs::LogicalClock;
        // A ticking logical clock: timings are nonzero and deterministic,
        // and the solved tables must not differ by a single bit.
        let clock = LogicalClock::with_step(7);

        let rec = PhaseRecorder::new(&clock);
        let plain = ValueTable::solve(secs(1.0), 8, secs(120.0), 3, SolveOptions::default());
        let profiled =
            ValueTable::solve_profiled(secs(1.0), 8, secs(120.0), 3, SolveOptions::default(), &rec);
        for p in 0..=3u32 {
            for l in 0..=plain.max_ticks() {
                assert_eq!(plain.value_ticks(p, l), profiled.value_ticks(p, l));
            }
        }
        let t = rec.timings();
        assert_eq!(t.calls(Phase::DenseExpansion), 3, "one fill per level");
        assert!(t.ns(Phase::DenseExpansion) > 0, "stepped clock ticks");

        let rec = PhaseRecorder::new(&clock);
        let opts = SolveOptions {
            inner: InnerLoop::EventDriven,
            repr: RowRepr::Runs,
            ..SolveOptions::default()
        };
        let plain_c = CompressedTable::solve_with(secs(1.0), 8, secs(300.0), 2, opts);
        let profiled_c = CompressedTable::solve_profiled(secs(1.0), 8, secs(300.0), 2, opts, &rec);
        assert_eq!(plain_c.events(), profiled_c.events());
        for p in 0..=2u32 {
            for l in 0..=plain_c.max_ticks() {
                assert_eq!(plain_c.value_ticks(p, l), profiled_c.value_ticks(p, l));
            }
        }
        let t = rec.timings();
        assert_eq!(t.calls(Phase::EventLoop), 2, "one event build per level");
        assert_eq!(t.calls(Phase::SkeletonBuild), 0, "no tick walk ran");

        // The tick-walking compressed build attributes skeleton build
        // and run re-encoding separately.
        let rec = PhaseRecorder::new(&clock);
        let walk_opts = SolveOptions {
            repr: RowRepr::Runs,
            keep_policy: false,
            inner: InnerLoop::FrontierSweep,
            threads: 1,
        };
        let walked = CompressedTable::solve_profiled(secs(1.0), 8, secs(100.0), 2, walk_opts, &rec);
        assert_eq!(
            walked.value_ticks(2, 800),
            plain_c.value_ticks(2, 800),
            "representations agree"
        );
        let t = rec.timings();
        assert_eq!(t.calls(Phase::SkeletonBuild), 2);
        assert_eq!(t.calls(Phase::RunCompression), 2);
    }

    #[test]
    fn cache_profiling_sink_receives_phase_timings() {
        use crate::profile::Phase;
        use cyclesteal_obs::LogicalClock;
        use std::sync::Mutex as StdMutex;
        let cache = TableCache::new();
        let seen: Arc<StdMutex<Vec<PhaseTimings>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink = seen.clone();
        cache.set_profiling(
            Some(Arc::new(LogicalClock::with_step(3))),
            Some(Box::new(move |t| sink.lock().unwrap().push(*t))),
        );
        let _ = cache.get_compressed(secs(1.0), 8, secs(200.0), 2);
        let _ = cache.get(secs(1.0), 8, secs(50.0), 1);
        let timings = seen.lock().unwrap().clone();
        assert_eq!(timings.len(), 2, "one timing per cache-triggered solve");
        assert_eq!(timings[0].calls(Phase::EventLoop), 2);
        assert!(timings[0].total_ns() > 0);
        assert!(timings[1].calls(Phase::DenseExpansion) >= 1);
        // Warm hits trigger no solve and no timing; removing the pair
        // stops profiling.
        let _ = cache.get_compressed(secs(1.0), 8, secs(200.0), 2);
        assert_eq!(seen.lock().unwrap().len(), 2);
        cache.set_profiling(None, None);
        let _ = cache.get_compressed(secs(2.0), 8, secs(200.0), 2);
        assert_eq!(seen.lock().unwrap().len(), 2);
    }

    #[test]
    fn shard_stats_sum_to_global_stats() {
        let cache = TableCache::new();
        for grid in 1..=6u64 {
            let _ = cache.get_compressed(secs(grid as f64), 8, secs(150.0), 1 + (grid % 3) as u32);
            let _ = cache.get(secs(grid as f64), 4, secs(40.0), 1);
        }
        // Re-query half the grids for hits, then shrink the budget so
        // evictions land on some shards too.
        for grid in 1..=3u64 {
            let _ = cache.get_compressed(secs(grid as f64), 8, secs(100.0), 1);
        }
        let resident = cache.stats().resident_bytes;
        cache.set_memory_budget(Some(resident / 3));

        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), cache.shard_count());
        let total = cache.stats();
        assert_eq!(total.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(
            total.misses,
            per_shard.iter().map(|s| s.misses).sum::<u64>()
        );
        assert_eq!(
            total.evictions,
            per_shard.iter().map(|s| s.evictions).sum::<u64>()
        );
        assert_eq!(
            total.entries,
            per_shard.iter().map(|s| s.entries).sum::<usize>()
        );
        assert_eq!(
            total.compressed_entries,
            per_shard
                .iter()
                .map(|s| s.compressed_entries)
                .sum::<usize>()
        );
        assert_eq!(
            total.resident_bytes,
            per_shard.iter().map(|s| s.resident_bytes).sum::<usize>()
        );
        assert!(total.evictions > 0, "the workload must actually evict");
        assert!(
            per_shard.iter().filter(|s| s.hits + s.misses > 0).count() > 1,
            "six grids must spread over more than one shard"
        );
    }

    #[test]
    fn shard_stats_stay_consistent_under_concurrent_load() {
        // Writers hammer distinct grids while a reader snapshots; after
        // the load quiesces, the per-shard sum must equal the aggregate
        // and the totals must account for every request exactly once.
        let cache = Arc::new(TableCache::new());
        let threads = 4u64;
        let rounds = 25u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = cache.clone();
                scope.spawn(move || {
                    for r in 0..rounds {
                        let grid = 1 + (t * rounds + r) % 5;
                        let _ = cache.get_compressed(secs(grid as f64), 4, secs(60.0), 1);
                    }
                });
            }
            // Concurrent snapshots must never tear structurally: each
            // snapshot's per-shard sum of hits+misses is monotone and
            // bounded by the number of requests issued so far.
            let cache = cache.clone();
            scope.spawn(move || {
                let mut last = 0u64;
                for _ in 0..50 {
                    let seen: u64 = cache.shard_stats().iter().map(|s| s.hits + s.misses).sum();
                    assert!(seen >= last, "per-shard sums must be monotone");
                    assert!(seen <= threads * rounds, "never more events than requests");
                    last = seen;
                    std::thread::yield_now();
                }
            });
        });
        let total = cache.stats();
        let per_shard = cache.shard_stats();
        assert_eq!(total.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(
            total.misses,
            per_shard.iter().map(|s| s.misses).sum::<u64>()
        );
        assert_eq!(
            total.hits + total.misses,
            threads * rounds,
            "every request counted exactly once"
        );
    }

    #[test]
    fn admit_keeps_the_larger_table_on_key_collision() {
        let source = TableCache::new();
        let big = source.get_compressed(secs(1.0), 8, secs(200.0), 2);
        let fresh = TableCache::new();
        let _ = fresh.get_compressed(secs(1.0), 8, secs(40.0), 2);
        let kept = fresh.admit_compressed(big.clone());
        assert!(Arc::ptr_eq(&kept, &big), "larger admitted table wins");
        let small_again = TableCache::new();
        let solved = small_again.get_compressed(secs(1.0), 8, secs(500.0), 2);
        let kept = small_again.admit_compressed(big.clone());
        assert!(
            Arc::ptr_eq(&kept, &solved),
            "existing larger table survives the admit"
        );
    }
}
