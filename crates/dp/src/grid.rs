//! The integer tick grid the exact solver works on.
//!
//! The game of §4 is continuous in time; the solver restricts schedules and
//! interrupts to an integer grid of `Q` ticks per setup charge `c`. On the
//! grid the minimax value is computed **exactly** (integer arithmetic, no
//! rounding); against the continuous game the restriction costs at most a
//! tick per period boundary, and since `W^(p)` is 1-Lipschitz the induced
//! error is `O(tick)` per level — the `p = 1` closed form lets the tests
//! measure it directly.

use cyclesteal_core::time::Time;

/// A uniform time grid with `ticks_per_setup` ticks per setup charge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    setup: Time,
    ticks_per_setup: u32,
}

impl Grid {
    /// Creates a grid; `ticks_per_setup` must be ≥ 1 and the setup charge
    /// positive.
    pub fn new(setup: Time, ticks_per_setup: u32) -> Grid {
        assert!(setup.is_positive(), "setup charge must be positive");
        assert!(ticks_per_setup >= 1, "need at least one tick per setup");
        Grid {
            setup,
            ticks_per_setup,
        }
    }

    /// The setup charge `c`.
    #[inline]
    pub fn setup(&self) -> Time {
        self.setup
    }

    /// `Q`: the setup charge in ticks.
    #[inline]
    pub fn q(&self) -> i64 {
        self.ticks_per_setup as i64
    }

    /// The duration of one tick, `c / Q`.
    #[inline]
    pub fn tick(&self) -> Time {
        self.setup / self.ticks_per_setup as f64
    }

    /// Nearest-tick quantization of a span.
    #[inline]
    pub fn to_ticks(&self, t: Time) -> i64 {
        (t.get() / self.tick().get()).round() as i64
    }

    /// The span of `ticks` grid ticks.
    #[inline]
    pub fn to_time(&self, ticks: i64) -> Time {
        self.tick() * ticks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    #[test]
    fn round_trips_on_grid_points() {
        let g = Grid::new(secs(2.0), 8);
        assert_eq!(g.q(), 8);
        assert_eq!(g.tick(), secs(0.25));
        for ticks in [0i64, 1, 7, 8, 100, 12345] {
            assert_eq!(g.to_ticks(g.to_time(ticks)), ticks);
        }
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        let g = Grid::new(secs(1.0), 4); // tick = 0.25
        assert_eq!(g.to_ticks(secs(0.37)), 1);
        assert_eq!(g.to_ticks(secs(0.38)), 2);
        assert_eq!(g.to_ticks(secs(1.0)), 4);
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_resolution_rejected() {
        let _ = Grid::new(secs(1.0), 0);
    }
}
