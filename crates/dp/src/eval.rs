//! Guaranteed-work evaluation of *arbitrary* episode policies.
//!
//! The [`ValueTable`](crate::value::ValueTable) answers "what can the best
//! owner guarantee"; this module answers "what does *this* owner
//! guarantee". For a policy `π` the value satisfies
//!
//! ```text
//! G_π(p, L) = min( W_uninterrupted(S),
//!                  min_k  accrued_k(S) + G_π(p−1, L − T_k) )
//! with S = π(p, L),
//! ```
//!
//! the adversary picking the cheapest of letting the committed episode
//! complete or killing some period `k` at its last instant. Levels are
//! computed bottom-up on a tick grid (each level is embarrassingly
//! parallel — continuations always drop to level `p−1` — and is fanned out
//! with `cyclesteal_par`), with linear interpolation between grid points.
//!
//! Last-instant interrupts are optimal for the adversary whenever the
//! policy's own value is nondecreasing in lifespan — true for every policy
//! in this workspace. For pathological policies
//! [`EvalOptions::scan_within_period`] makes the adversary scan every grid
//! instant inside each period, which is exact for any policy at `O(N²)`
//! cost; the tests confirm both modes agree on the shipped policies.
//!
//! ## Two row representations
//!
//! [`evaluate_policy`] materializes every grid state — `O(p·N)` policy
//! invocations and `f64`s, exact on the grid, right for `N ≲ 10^6`.
//! [`evaluate_policy_compressed`] instead exploits that `G_π` is
//! piecewise linear in the lifespan (schedules change shape at a
//! vanishing set of lifespans): each level is *adaptively sampled* into
//! a breakpoint-knot skeleton, refining any segment whose midpoint (and
//! quarter points) deviates from the chord by more than a tolerance, and
//! continuations in the recursion read the previous level's knots — the
//! compressed-oracle evaluator. Guideline scoring at `10^7`–`10^9` tick
//! grids then costs `O(p·k·log N)` policy invocations (`k` = knots)
//! instead of `O(p·N)`, with no dense `f64` rows anywhere.

use crate::grid::Grid;
use cyclesteal_core::error::Result;
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::EpisodePolicy;
use cyclesteal_core::time::{Time, Work};
use cyclesteal_par::par_map;

/// Options for [`evaluate_policy`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalOptions {
    /// Make the adversary consider every grid instant inside each period
    /// rather than only last instants. Exact for arbitrary (even
    /// non-monotone) policies; quadratic in the grid size.
    pub scan_within_period: bool,
}

/// The guaranteed-work table `G_π(p, ·)` of one policy on a tick grid.
#[derive(Clone, Debug)]
pub struct PolicyValue {
    grid: Grid,
    max_ticks: i64,
    /// `levels[p][l]`: guaranteed work (time units) at lifespan `l` ticks.
    levels: Vec<Vec<f64>>,
    name: String,
}

impl PolicyValue {
    /// The grid the evaluation ran on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The evaluated policy's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Largest lifespan covered.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Guaranteed work of the policy at `(p, lifespan)`, linearly
    /// interpolated between grid points.
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside evaluated range"
        );
        let x = x.clamp(0.0, self.max_ticks as f64);
        let p = (p as usize).min(self.levels.len() - 1);
        let row = &self.levels[p];
        let i = x.floor() as usize;
        if i as i64 >= self.max_ticks {
            return Time::new(row[self.max_ticks as usize] * tick);
        }
        let frac = x - i as f64;
        Time::new((row[i] + (row[i + 1] - row[i]) * frac) * tick)
    }
}

/// Worst-case guaranteed work (in ticks) of `policy` at state `(p, l)`:
/// the adversary picks the cheapest of letting the committed episode
/// complete or killing some period at its last instant (every instant
/// with `scan_within_period`), with level-`p−1` continuations answered
/// by `continuation` at a fractional residual in ticks. Shared by the
/// dense and the compressed-oracle evaluators.
fn state_worst_case<C: Fn(f64) -> f64>(
    policy: &dyn EpisodePolicy,
    grid: &Grid,
    p: u32,
    l: i64,
    continuation: Option<&C>,
    scan_within_period: bool,
) -> Result<f64> {
    if l == 0 {
        return Ok(0.0);
    }
    let setup = grid.setup();
    let tick = grid.tick().get();
    let lifespan = grid.to_time(l);
    let opp = Opportunity::new(lifespan, setup, p)?;
    let sched = policy.episode(&opp)?;
    debug_assert!(
        sched.total().approx_eq(lifespan, setup * 1e-6),
        "policy {} returned a schedule covering {} of {}",
        policy.name(),
        sched.total(),
        lifespan
    );

    let uninterrupted = sched.work_uninterrupted(setup).get() / tick;
    let mut worst = uninterrupted;
    if let Some(continuation) = continuation {
        let mut accrued = 0.0f64; // work ticks banked before period k
        for (_k, start, t) in sched.iter_windows() {
            let start_ticks = start.get() / tick;
            let end_ticks = (start + t).get() / tick;
            // Last-instant interrupt: residual L − T_k.
            let v = accrued + continuation(l as f64 - end_ticks);
            worst = worst.min(v);
            if scan_within_period {
                // Every interior grid instant τ ∈ [T_{k−1}, T_k).
                let first = start_ticks.ceil() as i64;
                let last = end_ticks.floor() as i64;
                for tau in first..last {
                    let v = accrued + continuation((l - tau) as f64);
                    worst = worst.min(v);
                }
            }
            accrued += t.pos_sub(setup).get() / tick;
        }
    }
    Ok(worst)
}

/// Evaluates `policy` against the optimal adversary for all budgets
/// `0..=max_interrupts` and lifespans `0..=max_lifespan` on a grid with
/// `ticks_per_setup` ticks per setup charge.
///
/// Errors propagate from the policy (e.g. a policy that cannot produce a
/// schedule for some residual it is asked about).
pub fn evaluate_policy(
    policy: &dyn EpisodePolicy,
    setup: Time,
    ticks_per_setup: u32,
    max_lifespan: Time,
    max_interrupts: u32,
    opts: EvalOptions,
) -> Result<PolicyValue> {
    let grid = Grid::new(setup, ticks_per_setup);
    let n = grid.to_ticks(max_lifespan).max(0);
    let mut levels: Vec<Vec<f64>> = Vec::with_capacity(max_interrupts as usize + 1);

    for p in 0..=max_interrupts {
        let prev = levels.last();
        let lattice: Vec<i64> = (0..=n).collect();
        let results: Vec<Result<f64>> = par_map(&lattice, |&l| {
            let continuation = prev.map(|prev| {
                move |residual_ticks: f64| -> f64 {
                    let x = residual_ticks.clamp(0.0, n as f64);
                    let i = x.floor() as usize;
                    if i as i64 >= n {
                        prev[n as usize]
                    } else {
                        let frac = x - i as f64;
                        prev[i] + (prev[i + 1] - prev[i]) * frac
                    }
                }
            });
            state_worst_case(
                policy,
                &grid,
                p,
                l,
                continuation.as_ref(),
                opts.scan_within_period,
            )
        });
        let mut row = Vec::with_capacity(results.len());
        for r in results {
            row.push(r?);
        }
        levels.push(row);
    }

    Ok(PolicyValue {
        grid,
        max_ticks: n,
        levels,
        name: policy.name(),
    })
}

/// Options for [`evaluate_policy_compressed`].
#[derive(Clone, Copy, Debug)]
pub struct CompressedEvalOptions {
    /// Adversary scans every grid instant inside each period (see
    /// [`EvalOptions::scan_within_period`]); quadratic per state, only
    /// sensible on small grids.
    pub scan_within_period: bool,
    /// Refinement tolerance in work ticks: a segment is accepted as
    /// linear when its mid- and quarter-point samples deviate from the
    /// chord by at most this much. At sampled points the rows are exact;
    /// between them the `O(p · tol)` deviation bound holds for rows
    /// whose pieces the probes can see — a kink pair narrower than the
    /// probe spacing inside one accepted segment can slip through, so
    /// for adversarially fine-structured policies raise
    /// [`Self::coarse_segments`] (or cross-check against the dense
    /// evaluator, which remains the exact small-grid oracle).
    pub tol_ticks: f64,
    /// Initial uniform segments per level the adaptive refinement starts
    /// from (and fans out over `cyclesteal-par` workers). More segments
    /// cost more up-front samples but localize refinement.
    pub coarse_segments: usize,
}

impl Default for CompressedEvalOptions {
    fn default() -> Self {
        CompressedEvalOptions {
            scan_within_period: false,
            tol_ticks: 0.25,
            coarse_segments: 64,
        }
    }
}

/// The guaranteed-work table `G_π(p, ·)` of one policy stored as
/// piecewise-linear breakpoint knots per level — the compressed-oracle
/// counterpart of [`PolicyValue`], built by [`evaluate_policy_compressed`]
/// for grids far too large to materialize densely.
#[derive(Clone, Debug)]
pub struct CompressedPolicyValue {
    grid: Grid,
    max_ticks: i64,
    /// `levels[p]`: `(tick, value-in-ticks)` knots, strictly increasing
    /// in tick, always containing `(0, 0)` and the far end. Runs of
    /// exactly collinear knots are merged (see [`merge_collinear_knots`]),
    /// so each stored knot marks a genuine slope change.
    levels: Vec<Vec<(i64, f64)>>,
    name: String,
}

/// Second-order compression of a knot row: drops every interior knot
/// that lies *exactly* on the chord of its neighbours, so a maximal run
/// of collinear knots — the adaptive sampler emits plenty, since `G_π`
/// is piecewise linear and probes land inside linear pieces — collapses
/// to its endpoints. Interpolated values are unchanged (the dropped
/// knots sat on the surviving segments), which keeps the next level's
/// continuation reads, and therefore the whole evaluation, on the same
/// function; the exactness predicate is conservative in `f64`, so a
/// knot is only elided when both slopes compare equal cross-multiplied.
fn merge_collinear_knots(knots: Vec<(i64, f64)>) -> Vec<(i64, f64)> {
    if knots.len() <= 2 {
        return knots;
    }
    let mut out: Vec<(i64, f64)> = Vec::with_capacity(knots.len());
    out.push(knots[0]);
    for &(t2, v2) in &knots[1..] {
        while out.len() >= 2 {
            let (t0, v0) = out[out.len() - 2];
            let (t1, v1) = out[out.len() - 1];
            // (v1−v0)/(t1−t0) == (v2−v1)/(t2−t1), cross-multiplied.
            if (v1 - v0) * (t2 - t1) as f64 == (v2 - v1) * (t1 - t0) as f64 {
                out.pop();
            } else {
                break;
            }
        }
        out.push((t2, v2));
    }
    out
}

/// Linear interpolation over a knot row at a fractional tick position.
fn knots_value(knots: &[(i64, f64)], x: f64) -> f64 {
    let last = knots[knots.len() - 1];
    let x = x.clamp(0.0, last.0 as f64);
    let i = knots.partition_point(|&(t, _)| (t as f64) <= x);
    if i >= knots.len() {
        return last.1;
    }
    let (t0, v0) = knots[i - 1];
    let (t1, v1) = knots[i];
    v0 + (v1 - v0) * ((x - t0 as f64) / (t1 - t0) as f64)
}

/// One level's adaptive sampler: evaluates states against the previous
/// level's knot row and bisects any segment that is not linear within
/// tolerance.
struct LevelSampler<'a> {
    policy: &'a dyn EpisodePolicy,
    grid: &'a Grid,
    p: u32,
    prev: Option<&'a [(i64, f64)]>,
    scan: bool,
    tol: f64,
}

impl LevelSampler<'_> {
    fn eval(&self, l: i64) -> Result<f64> {
        let continuation = self.prev.map(|knots| move |x: f64| knots_value(knots, x));
        state_worst_case(
            self.policy,
            self.grid,
            self.p,
            l,
            continuation.as_ref(),
            self.scan,
        )
    }

    /// Emits knots covering `(lo, hi]`; `lo`'s knot is owned by the
    /// caller (or the preceding segment). `mid_hint` carries a sample an
    /// enclosing call already paid for (a quarter-point probe lands
    /// exactly on the child's midpoint), so a failed linearity check
    /// never re-evaluates the probe that failed it.
    fn refine(
        &self,
        lo: i64,
        v_lo: f64,
        hi: i64,
        v_hi: f64,
        mid_hint: Option<(i64, f64)>,
        out: &mut Vec<(i64, f64)>,
    ) -> Result<()> {
        if hi - lo <= 1 {
            out.push((hi, v_hi));
            return Ok(());
        }
        let chord = |t: i64| v_lo + (v_hi - v_lo) * ((t - lo) as f64 / (hi - lo) as f64);
        let mid = lo + (hi - lo) / 2;
        let v_mid = match mid_hint {
            Some((t, v)) if t == mid => v,
            _ => self.eval(mid)?,
        };
        let mut linear = (v_mid - chord(mid)).abs() <= self.tol;
        let mut quarters: [Option<(i64, f64)>; 2] = [None, None];
        if linear && hi - lo > 8 {
            // A midpoint can sit on the chord of a non-linear segment by
            // accident; quarter-point probes catch the common wiggles.
            for (slot, t) in [lo + (hi - lo) / 4, lo + 3 * (hi - lo) / 4]
                .into_iter()
                .enumerate()
            {
                let v = self.eval(t)?;
                quarters[slot] = Some((t, v));
                if (v - chord(t)).abs() > self.tol {
                    linear = false;
                    break;
                }
            }
        }
        if linear {
            out.push((hi, v_hi));
            Ok(())
        } else {
            self.refine(lo, v_lo, mid, v_mid, quarters[0], out)?;
            self.refine(mid, v_mid, hi, v_hi, quarters[1], out)
        }
    }
}

impl CompressedPolicyValue {
    /// The grid the evaluation ran on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The evaluated policy's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Largest lifespan covered.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Stored knots at level `p` — the resolution-independent row size.
    /// Budgets above the evaluated range saturate to the deepest level,
    /// like [`Self::value`].
    pub fn knots(&self, p: u32) -> usize {
        self.levels[(p as usize).min(self.levels.len() - 1)].len()
    }

    /// Bytes held by all knot rows.
    pub fn memory_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|row| row.capacity() * std::mem::size_of::<(i64, f64)>())
            .sum()
    }

    /// Guaranteed work of the policy at `(p, lifespan)`, interpolated on
    /// the knot skeleton; same contract as [`PolicyValue::value`],
    /// including the budget saturation: `p` beyond the evaluated range
    /// clamps to the deepest level, whose value is an *upper* bound on
    /// the true guarantee there (`G_π` is nonincreasing in `p`) —
    /// evaluate with a larger `max_interrupts` if the exact deep-budget
    /// number matters. Lifespans outside the evaluated range panic.
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside evaluated range"
        );
        let p = (p as usize).min(self.levels.len() - 1);
        Time::new(knots_value(&self.levels[p], x) * tick)
    }
}

/// Evaluates `policy` like [`evaluate_policy`], but stores each level as
/// adaptively-sampled piecewise-linear knots and reads continuations
/// from the previous level's knots — no dense `f64` rows, so `10^7`+
/// tick grids cost `O(p·k·log N)` policy invocations instead of
/// `O(p·N)`. Within each level the coarse segments refine in parallel
/// over `cyclesteal-par`, and each finished row is run-merged
/// (`merge_collinear_knots`) so the knots the next level reads mark
/// genuine slope changes only.
///
/// Values agree with the dense evaluator up to the refinement tolerance
/// (compounded once per level); the `compressed_evaluator_*` tests
/// measure it.
///
/// ```
/// use cyclesteal_core::prelude::*;
/// use cyclesteal_dp::{evaluate_policy_compressed, CompressedEvalOptions};
///
/// // Score the closed-form p=1 guideline on a 16k-tick grid without
/// // materializing a dense row.
/// let pv = evaluate_policy_compressed(
///     &OptimalP1Policy,
///     secs(1.0),
///     8,
///     secs(2048.0),
///     1,
///     CompressedEvalOptions::default(),
/// )
/// .unwrap();
/// // A few hundred knots stand in for 16k dense states…
/// assert!(pv.knots(1) < 2000);
/// // …and the guarantee still tracks the §5.2 closed form.
/// let got = pv.value(1, secs(2000.0));
/// let want = w1_exact(secs(2000.0), secs(1.0));
/// assert!((got - want).abs() <= secs(1.0));
/// ```
pub fn evaluate_policy_compressed(
    policy: &dyn EpisodePolicy,
    setup: Time,
    ticks_per_setup: u32,
    max_lifespan: Time,
    max_interrupts: u32,
    opts: CompressedEvalOptions,
) -> Result<CompressedPolicyValue> {
    let grid = Grid::new(setup, ticks_per_setup);
    let n = grid.to_ticks(max_lifespan).max(0);
    let mut levels: Vec<Vec<(i64, f64)>> = Vec::with_capacity(max_interrupts as usize + 1);

    for p in 0..=max_interrupts {
        let knots = {
            let sampler = LevelSampler {
                policy,
                grid: &grid,
                p,
                prev: levels.last().map(|v| v.as_slice()),
                scan: opts.scan_within_period,
                tol: opts.tol_ticks.max(1e-9),
            };
            if n == 0 {
                vec![(0i64, 0.0f64)]
            } else {
                let segs = opts.coarse_segments.clamp(1, n as usize);
                let mut pts: Vec<i64> = (0..=segs)
                    .map(|i| (n as u128 * i as u128 / segs as u128) as i64)
                    .collect();
                pts.dedup();
                let vals = {
                    let sampled: Vec<Result<f64>> = par_map(&pts, |&l| sampler.eval(l));
                    let mut vals = Vec::with_capacity(sampled.len());
                    for v in sampled {
                        vals.push(v?);
                    }
                    vals
                };
                let seg_ids: Vec<usize> = (0..pts.len() - 1).collect();
                let parts: Vec<Result<Vec<(i64, f64)>>> = par_map(&seg_ids, |&i| {
                    let mut out = Vec::new();
                    sampler.refine(pts[i], vals[i], pts[i + 1], vals[i + 1], None, &mut out)?;
                    Ok(out)
                });
                let mut knots = vec![(0i64, 0.0f64)];
                for part in parts {
                    knots.extend(part?);
                }
                // Second-order pass: the next level's continuations (and
                // every query) read through run-merged knots.
                merge_collinear_knots(knots)
            }
        };
        levels.push(knots);
    }

    Ok(CompressedPolicyValue {
        grid,
        max_ticks: n,
        levels,
        name: policy.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{OptimalPolicy, SolveOptions, ValueTable};
    use cyclesteal_core::bounds::w1_exact;
    use cyclesteal_core::prelude::*;
    use std::sync::Arc;

    const C: f64 = 1.0;

    fn eval(policy: &dyn EpisodePolicy, q: u32, max_u: f64, p: u32) -> PolicyValue {
        evaluate_policy(policy, secs(C), q, secs(max_u), p, EvalOptions::default()).unwrap()
    }

    #[test]
    fn single_period_policy_guarantees_nothing_under_interrupts() {
        let pv = eval(&SinglePeriodPolicy, 8, 64.0, 2);
        for &u in &[5.0, 20.0, 64.0] {
            assert_eq!(pv.value(1, secs(u)), Work::ZERO);
            assert_eq!(pv.value(2, secs(u)), Work::ZERO);
            // …but is optimal with no interrupts.
            assert!(pv.value(0, secs(u)).approx_eq(secs(u - C), secs(1e-9)));
        }
    }

    #[test]
    fn optimal_p1_policy_achieves_w1() {
        let pv = eval(&OptimalP1Policy, 32, 150.0, 1);
        for &u in &[10.0, 50.0, 100.0, 150.0] {
            let got = pv.value(1, secs(u));
            let want = w1_exact(secs(u), secs(C));
            // Interpolated continuations cost a fraction of a tick.
            assert!(
                (got - want).abs() <= secs(3.0 / 32.0),
                "U={u}: evaluator {got} vs closed form {want}"
            );
        }
    }

    #[test]
    fn no_policy_beats_the_value_table() {
        let table = ValueTable::solve(secs(C), 16, secs(100.0), 2, SolveOptions::default());
        let policies: Vec<Box<dyn EpisodePolicy>> = vec![
            Box::new(SinglePeriodPolicy),
            Box::new(EqualPeriodsPolicy::new(5)),
            Box::new(EqualPeriodsPolicy::new(12)),
            Box::new(FixedChunkPolicy::new(secs(7.0))),
            Box::new(HalvingPolicy::default()),
            Box::new(AdaptiveGuideline::default()),
            Box::new(OptimalP1Policy),
        ];
        for pol in &policies {
            let pv = eval(pol.as_ref(), 16, 100.0, 2);
            for p in 0..=2u32 {
                for &u in &[7.0, 25.0, 60.0, 100.0] {
                    let g = pv.value(p, secs(u));
                    let w = table.value(p, secs(u));
                    assert!(
                        g <= w + secs(0.25),
                        "{} beats optimum at p={p}, U={u}: {g} > {w}",
                        pol.name()
                    );
                }
            }
        }
    }

    #[test]
    fn optimal_policy_self_consistency() {
        // Evaluating the DP's own reconstructed policy must reproduce the
        // DP's value (up to interpolation slack).
        let table = Arc::new(ValueTable::solve(
            secs(C),
            32,
            secs(120.0),
            2,
            SolveOptions::default(),
        ));
        let pol = OptimalPolicy::new(table.clone());
        let pv = eval(&pol, 32, 120.0, 2);
        for p in 0..=2u32 {
            for &u in &[10.0, 40.0, 80.0, 120.0] {
                let g = pv.value(p, secs(u));
                let w = table.value(p, secs(u));
                assert!(
                    (g - w).abs() <= secs(6.0 / 32.0),
                    "p={p} U={u}: policy eval {g} vs table {w}"
                );
            }
        }
    }

    #[test]
    fn adaptive_guideline_is_near_optimal() {
        // Thm 5.1's claim, measured: the guideline deviates from the exact
        // optimum by low-order terms only. Empirically the deficit is below
        // 0.5·√(cU) + 2c across this grid (see EXPERIMENTS.md E5 for the
        // large-U sweep against the closed-form bound).
        let table = ValueTable::solve(secs(C), 16, secs(256.0), 3, SolveOptions::default());
        let pv = eval(&AdaptiveGuideline::default(), 16, 256.0, 3);
        for p in 1..=3u32 {
            for &u in &[64.0, 128.0, 256.0] {
                let got = pv.value(p, secs(u));
                let opt = table.value(p, secs(u));
                let slack = secs(0.5 * (u * C).sqrt() + 2.0 * C);
                assert!(
                    got + slack >= opt,
                    "p={p} U={u}: guideline {got} too far below optimum {opt}"
                );
                // And it must beat the non-adaptive guarantee for p ≥ 2
                // (the paper's raison d'être).
                if p >= 2 {
                    let opp = Opportunity::from_units(u, C, p);
                    let na = nonadaptive_guarantee(&opp);
                    assert!(
                        got >= na - secs(1e-6),
                        "p={p} U={u}: adaptive {got} loses to non-adaptive {na}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_within_period_agrees_on_monotone_policies() {
        for pol in [
            &AdaptiveGuideline::default() as &dyn EpisodePolicy,
            &OptimalP1Policy,
            &EqualPeriodsPolicy::new(6),
        ] {
            let fast =
                evaluate_policy(pol, secs(C), 8, secs(48.0), 2, EvalOptions::default()).unwrap();
            let slow = evaluate_policy(
                pol,
                secs(C),
                8,
                secs(48.0),
                2,
                EvalOptions {
                    scan_within_period: true,
                },
            )
            .unwrap();
            for p in 0..=2u32 {
                for &u in &[5.0, 17.0, 33.0, 48.0] {
                    let a = fast.value(p, secs(u));
                    let b = slow.value(p, secs(u));
                    assert!(
                        (a - b).abs() <= secs(1e-9),
                        "{}: scan mode differs at p={p}, U={u}: {a} vs {b}",
                        pol.name()
                    );
                }
            }
        }
    }

    #[test]
    fn compressed_evaluator_tracks_dense_rows() {
        // The knot skeleton must reproduce the dense evaluator within the
        // compounded refinement tolerance, for a closed-form policy and
        // for the paper's adaptive guideline.
        let opts = CompressedEvalOptions::default();
        for pol in [
            &AdaptiveGuideline::default() as &dyn EpisodePolicy,
            &OptimalP1Policy,
            &EqualPeriodsPolicy::new(7),
        ] {
            let dense = eval(pol, 8, 96.0, 2);
            let sparse = evaluate_policy_compressed(pol, secs(C), 8, secs(96.0), 2, opts).unwrap();
            let slack = secs((2.0 + 1.0) * opts.tol_ticks / 8.0);
            for p in 0..=2u32 {
                for &u in &[0.5, 7.0, 23.25, 51.0, 96.0] {
                    let d = dense.value(p, secs(u));
                    let s = sparse.value(p, secs(u));
                    assert!(
                        (d - s).abs() <= slack,
                        "{}: dense {d} vs compressed {s} at p={p}, U={u}",
                        pol.name()
                    );
                }
            }
        }
    }

    #[test]
    fn compressed_evaluator_scales_to_huge_grids() {
        // 10⁷ ticks: the dense evaluator would need 3 × 10⁷ policy
        // invocations and 240 MB of rows; the knot skeleton answers from
        // a few thousand samples. The p = 1 closed form pins the far end.
        let ticks: i64 = 10_000_000;
        let q = 8u32;
        let u = ticks as f64 / q as f64;
        let pv = evaluate_policy_compressed(
            &OptimalP1Policy,
            secs(C),
            q,
            secs(u),
            1,
            CompressedEvalOptions::default(),
        )
        .unwrap();
        assert!(
            pv.knots(1) < 100_000,
            "knot skeleton too dense: {}",
            pv.knots(1)
        );
        assert!(pv.memory_bytes() < 4 << 20);
        let got = pv.value(1, secs(u));
        let want = w1_exact(secs(u), secs(C));
        // Grid restriction + knot interpolation both cost low-order
        // terms; at U ~ 10⁶ the closed form is ~10⁶ ticks of work.
        assert!(
            (got - want).abs() <= secs(2.0),
            "U={u}: compressed evaluator {got} vs closed form {want}"
        );
    }

    #[test]
    fn collinear_knot_merge_preserves_the_function() {
        // Three collinear spans with noise-free interior knots: only the
        // genuine slope changes survive, and interpolation is unchanged.
        let knots: Vec<(i64, f64)> = vec![
            (0, 0.0),
            (10, 0.0),
            (20, 0.0), // flat span
            (30, 5.0),
            (40, 10.0), // slope 1/2 span
            (60, 10.0),
            (80, 10.0), // flat tail
        ];
        let merged = merge_collinear_knots(knots.clone());
        assert_eq!(merged, vec![(0, 0.0), (20, 0.0), (40, 10.0), (80, 10.0)]);
        for x in 0..=80 {
            assert_eq!(
                knots_value(&knots, x as f64),
                knots_value(&merged, x as f64),
                "merge changed the function at {x}"
            );
        }
        // Degenerate rows pass through untouched.
        assert_eq!(merge_collinear_knots(vec![(0, 0.0)]), vec![(0, 0.0)]);
    }

    #[test]
    fn compressed_rows_store_only_slope_changes() {
        // The equal-periods policy has a piecewise-linear guarantee with
        // few pieces: after the run merge, the knot rows must be far
        // sparser than the probe count the adaptive sampler paid.
        let pv = evaluate_policy_compressed(
            &EqualPeriodsPolicy::new(4),
            secs(C),
            8,
            secs(512.0),
            2,
            CompressedEvalOptions::default(),
        )
        .unwrap();
        assert!(
            pv.knots(1) < 200,
            "knot row not run-merged: {} knots",
            pv.knots(1)
        );
    }

    #[test]
    fn values_monotone_in_budget() {
        let pv = eval(&AdaptiveGuideline::default(), 8, 100.0, 3);
        for &u in &[10.0, 50.0, 100.0] {
            let mut prev = pv.value(0, secs(u));
            for p in 1..=3u32 {
                let cur = pv.value(p, secs(u));
                assert!(cur <= prev + secs(1e-9), "p={p}, U={u}");
                prev = cur;
            }
        }
    }
}
