//! Guaranteed-work evaluation of *arbitrary* episode policies.
//!
//! The [`ValueTable`](crate::value::ValueTable) answers "what can the best
//! owner guarantee"; this module answers "what does *this* owner
//! guarantee". For a policy `π` the value satisfies
//!
//! ```text
//! G_π(p, L) = min( W_uninterrupted(S),
//!                  min_k  accrued_k(S) + G_π(p−1, L − T_k) )
//! with S = π(p, L),
//! ```
//!
//! the adversary picking the cheapest of letting the committed episode
//! complete or killing some period `k` at its last instant. Levels are
//! computed bottom-up on a tick grid (each level is embarrassingly
//! parallel — continuations always drop to level `p−1` — and is fanned out
//! with `cyclesteal_par`), with linear interpolation between grid points.
//!
//! Last-instant interrupts are optimal for the adversary whenever the
//! policy's own value is nondecreasing in lifespan — true for every policy
//! in this workspace. For pathological policies
//! [`EvalOptions::scan_within_period`] makes the adversary scan every grid
//! instant inside each period, which is exact for any policy at `O(N²)`
//! cost; the tests confirm both modes agree on the shipped policies.

use crate::grid::Grid;
use cyclesteal_core::error::Result;
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::EpisodePolicy;
use cyclesteal_core::time::{Time, Work};
use cyclesteal_par::par_map;

/// Options for [`evaluate_policy`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalOptions {
    /// Make the adversary consider every grid instant inside each period
    /// rather than only last instants. Exact for arbitrary (even
    /// non-monotone) policies; quadratic in the grid size.
    pub scan_within_period: bool,
}

/// The guaranteed-work table `G_π(p, ·)` of one policy on a tick grid.
#[derive(Clone, Debug)]
pub struct PolicyValue {
    grid: Grid,
    max_ticks: i64,
    /// `levels[p][l]`: guaranteed work (time units) at lifespan `l` ticks.
    levels: Vec<Vec<f64>>,
    name: String,
}

impl PolicyValue {
    /// The grid the evaluation ran on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The evaluated policy's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Largest lifespan covered.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Guaranteed work of the policy at `(p, lifespan)`, linearly
    /// interpolated between grid points.
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside evaluated range"
        );
        let x = x.clamp(0.0, self.max_ticks as f64);
        let p = (p as usize).min(self.levels.len() - 1);
        let row = &self.levels[p];
        let i = x.floor() as usize;
        if i as i64 >= self.max_ticks {
            return Time::new(row[self.max_ticks as usize] * tick);
        }
        let frac = x - i as f64;
        Time::new((row[i] + (row[i + 1] - row[i]) * frac) * tick)
    }
}

/// Evaluates `policy` against the optimal adversary for all budgets
/// `0..=max_interrupts` and lifespans `0..=max_lifespan` on a grid with
/// `ticks_per_setup` ticks per setup charge.
///
/// Errors propagate from the policy (e.g. a policy that cannot produce a
/// schedule for some residual it is asked about).
pub fn evaluate_policy(
    policy: &dyn EpisodePolicy,
    setup: Time,
    ticks_per_setup: u32,
    max_lifespan: Time,
    max_interrupts: u32,
    opts: EvalOptions,
) -> Result<PolicyValue> {
    let grid = Grid::new(setup, ticks_per_setup);
    let n = grid.to_ticks(max_lifespan).max(0);
    let tick = grid.tick().get();
    let mut levels: Vec<Vec<f64>> = Vec::with_capacity(max_interrupts as usize + 1);

    for p in 0..=max_interrupts {
        let prev = levels.last();
        let lattice: Vec<i64> = (0..=n).collect();
        let results: Vec<Result<f64>> = par_map(&lattice, |&l| {
            if l == 0 {
                return Ok(0.0);
            }
            let lifespan = grid.to_time(l);
            let opp = Opportunity::new(lifespan, setup, p)?;
            let sched = policy.episode(&opp)?;
            debug_assert!(
                sched.total().approx_eq(lifespan, setup * 1e-6),
                "policy {} returned a schedule covering {} of {}",
                policy.name(),
                sched.total(),
                lifespan
            );

            let uninterrupted = sched.work_uninterrupted(setup).get() / tick;
            let mut worst = uninterrupted;
            if let Some(prev) = prev {
                let continuation = |residual_ticks: f64| -> f64 {
                    let x = residual_ticks.clamp(0.0, n as f64);
                    let i = x.floor() as usize;
                    if i as i64 >= n {
                        prev[n as usize]
                    } else {
                        let frac = x - i as f64;
                        prev[i] + (prev[i + 1] - prev[i]) * frac
                    }
                };
                let mut accrued = 0.0f64; // work ticks banked before period k
                for (_k, start, t) in sched.iter_windows() {
                    let start_ticks = start.get() / tick;
                    let end_ticks = (start + t).get() / tick;
                    // Last-instant interrupt: residual L − T_k.
                    let v = accrued + continuation(l as f64 - end_ticks);
                    worst = worst.min(v);
                    if opts.scan_within_period {
                        // Every interior grid instant τ ∈ [T_{k−1}, T_k).
                        let first = start_ticks.ceil() as i64;
                        let last = end_ticks.floor() as i64;
                        for tau in first..last {
                            let v = accrued + continuation((l - tau) as f64);
                            worst = worst.min(v);
                        }
                    }
                    accrued += t.pos_sub(setup).get() / tick;
                }
            }
            Ok(worst)
        });
        let mut row = Vec::with_capacity(results.len());
        for r in results {
            row.push(r?);
        }
        levels.push(row);
    }

    Ok(PolicyValue {
        grid,
        max_ticks: n,
        levels,
        name: policy.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{OptimalPolicy, SolveOptions, ValueTable};
    use cyclesteal_core::bounds::w1_exact;
    use cyclesteal_core::prelude::*;
    use std::sync::Arc;

    const C: f64 = 1.0;

    fn eval(policy: &dyn EpisodePolicy, q: u32, max_u: f64, p: u32) -> PolicyValue {
        evaluate_policy(policy, secs(C), q, secs(max_u), p, EvalOptions::default()).unwrap()
    }

    #[test]
    fn single_period_policy_guarantees_nothing_under_interrupts() {
        let pv = eval(&SinglePeriodPolicy, 8, 64.0, 2);
        for &u in &[5.0, 20.0, 64.0] {
            assert_eq!(pv.value(1, secs(u)), Work::ZERO);
            assert_eq!(pv.value(2, secs(u)), Work::ZERO);
            // …but is optimal with no interrupts.
            assert!(pv.value(0, secs(u)).approx_eq(secs(u - C), secs(1e-9)));
        }
    }

    #[test]
    fn optimal_p1_policy_achieves_w1() {
        let pv = eval(&OptimalP1Policy, 32, 150.0, 1);
        for &u in &[10.0, 50.0, 100.0, 150.0] {
            let got = pv.value(1, secs(u));
            let want = w1_exact(secs(u), secs(C));
            // Interpolated continuations cost a fraction of a tick.
            assert!(
                (got - want).abs() <= secs(3.0 / 32.0),
                "U={u}: evaluator {got} vs closed form {want}"
            );
        }
    }

    #[test]
    fn no_policy_beats_the_value_table() {
        let table = ValueTable::solve(secs(C), 16, secs(100.0), 2, SolveOptions::default());
        let policies: Vec<Box<dyn EpisodePolicy>> = vec![
            Box::new(SinglePeriodPolicy),
            Box::new(EqualPeriodsPolicy::new(5)),
            Box::new(EqualPeriodsPolicy::new(12)),
            Box::new(FixedChunkPolicy::new(secs(7.0))),
            Box::new(HalvingPolicy::default()),
            Box::new(AdaptiveGuideline::default()),
            Box::new(OptimalP1Policy),
        ];
        for pol in &policies {
            let pv = eval(pol.as_ref(), 16, 100.0, 2);
            for p in 0..=2u32 {
                for &u in &[7.0, 25.0, 60.0, 100.0] {
                    let g = pv.value(p, secs(u));
                    let w = table.value(p, secs(u));
                    assert!(
                        g <= w + secs(0.25),
                        "{} beats optimum at p={p}, U={u}: {g} > {w}",
                        pol.name()
                    );
                }
            }
        }
    }

    #[test]
    fn optimal_policy_self_consistency() {
        // Evaluating the DP's own reconstructed policy must reproduce the
        // DP's value (up to interpolation slack).
        let table = Arc::new(ValueTable::solve(
            secs(C),
            32,
            secs(120.0),
            2,
            SolveOptions::default(),
        ));
        let pol = OptimalPolicy::new(table.clone());
        let pv = eval(&pol, 32, 120.0, 2);
        for p in 0..=2u32 {
            for &u in &[10.0, 40.0, 80.0, 120.0] {
                let g = pv.value(p, secs(u));
                let w = table.value(p, secs(u));
                assert!(
                    (g - w).abs() <= secs(6.0 / 32.0),
                    "p={p} U={u}: policy eval {g} vs table {w}"
                );
            }
        }
    }

    #[test]
    fn adaptive_guideline_is_near_optimal() {
        // Thm 5.1's claim, measured: the guideline deviates from the exact
        // optimum by low-order terms only. Empirically the deficit is below
        // 0.5·√(cU) + 2c across this grid (see EXPERIMENTS.md E5 for the
        // large-U sweep against the closed-form bound).
        let table = ValueTable::solve(secs(C), 16, secs(256.0), 3, SolveOptions::default());
        let pv = eval(&AdaptiveGuideline::default(), 16, 256.0, 3);
        for p in 1..=3u32 {
            for &u in &[64.0, 128.0, 256.0] {
                let got = pv.value(p, secs(u));
                let opt = table.value(p, secs(u));
                let slack = secs(0.5 * (u * C).sqrt() + 2.0 * C);
                assert!(
                    got + slack >= opt,
                    "p={p} U={u}: guideline {got} too far below optimum {opt}"
                );
                // And it must beat the non-adaptive guarantee for p ≥ 2
                // (the paper's raison d'être).
                if p >= 2 {
                    let opp = Opportunity::from_units(u, C, p);
                    let na = nonadaptive_guarantee(&opp);
                    assert!(
                        got >= na - secs(1e-6),
                        "p={p} U={u}: adaptive {got} loses to non-adaptive {na}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_within_period_agrees_on_monotone_policies() {
        for pol in [
            &AdaptiveGuideline::default() as &dyn EpisodePolicy,
            &OptimalP1Policy,
            &EqualPeriodsPolicy::new(6),
        ] {
            let fast =
                evaluate_policy(pol, secs(C), 8, secs(48.0), 2, EvalOptions::default()).unwrap();
            let slow = evaluate_policy(
                pol,
                secs(C),
                8,
                secs(48.0),
                2,
                EvalOptions {
                    scan_within_period: true,
                },
            )
            .unwrap();
            for p in 0..=2u32 {
                for &u in &[5.0, 17.0, 33.0, 48.0] {
                    let a = fast.value(p, secs(u));
                    let b = slow.value(p, secs(u));
                    assert!(
                        (a - b).abs() <= secs(1e-9),
                        "{}: scan mode differs at p={p}, U={u}: {a} vs {b}",
                        pol.name()
                    );
                }
            }
        }
    }

    #[test]
    fn values_monotone_in_budget() {
        let pv = eval(&AdaptiveGuideline::default(), 8, 100.0, 3);
        for &u in &[10.0, 50.0, 100.0] {
            let mut prev = pv.value(0, secs(u));
            for p in 1..=3u32 {
                let cur = pv.value(p, secs(u));
                assert!(cur <= prev + secs(1e-9), "p={p}, U={u}");
                prev = cur;
            }
        }
    }
}
