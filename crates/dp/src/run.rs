//! Second-order (arithmetic-run) compression of breakpoint skeletons.
//!
//! ## Why skeletons compress again
//!
//! The first-order representation ([`crate::compressed`]) stores a row as
//! its flat ticks — `k = O(√(QL) + pQ)` positions instead of `L` values.
//! But those positions are themselves highly structured: the optimal
//! episode loses roughly one tick per period, so flats recur once per
//! period length, and the period length drifts only slowly across the
//! row. The gap sequence between consecutive flats is therefore
//! **near-arithmetic** — long stretches of near-constant difference with
//! a few ticks of jitter inherited from the previous level's own
//! skeleton (measured at the `(Q=32, p=16, L=10⁹)` acceptance point the
//! gaps wobble by ±3 around means that drift over thousands of flats).
//!
//! ## The representation
//!
//! A `RunRow` stores a level as a list of `ArithRun`s. Each run
//! covers `len` consecutive flats modeled by an arithmetic progression
//! with a **fixed-point common difference** (`step_fx`, in units of
//! `1/2¹⁶` tick — fractional mean gaps would otherwise force a break
//! every couple of flats just to absorb rounding):
//!
//! ```text
//! flat_j = start + (j · step_fx) >> 16 + res_j        j ∈ [0, len)
//! ```
//!
//! The per-flat residual `res_j ∈ [−127, 127]` records the jitter
//! exactly; an all-zero residual block is elided entirely (`res_off ==
//! NO_RES`), so genuinely arithmetic stretches cost 32 bytes total.
//! A run closes when the next flat's residual would overflow an `i8` —
//! i.e. run boundaries track *regime changes* of the row, not individual
//! breakpoints. The representation is **lossless**: every query is
//! answered from the exact reconstructed positions, so run-backed tables
//! are bit-identical to flat-list and dense tables (the equivalence
//! suite pins this).
//!
//! ## Cost
//!
//! At the acceptance point the run count is 2–3 orders of magnitude
//! below the flat count and memory drops to ≈1 byte per breakpoint
//! (descriptors are amortized across their runs, jittery flats pay one
//! residual byte, arithmetic flats pay nothing) — the `perf_dp` bench
//! reports both as `run_compressed_breakpoints` / `run_memory_bytes`.
//! Queries stay `O(log r + log len)` random-access and `O(1)` amortized
//! through the forward `RunCursor`, which is what the event-driven
//! builder and the parallel dense expansion read the rows through.

/// Sentinel for "no flat tick ahead" — large enough to never constrain a
/// span, small enough to never overflow the arithmetic around it.
/// Shared with [`crate::event`].
pub(crate) const NO_FLAT: i64 = i64::MAX / 4;

/// Fixed-point fraction bits of [`ArithRun::step_fx`].
const STEP_FRAC_BITS: u32 = 16;

/// `res_off` sentinel: the run's residuals are all zero and not stored.
/// Shared with [`crate::snapshot`], which maps it to a `has_residuals`
/// flag at the persistence boundary.
pub(crate) const NO_RES: u32 = u32::MAX;

/// Residual magnitude bound; one `i8` per jittery flat, with ±128
/// reserved so the overflow check is symmetric.
const RES_MAX: i64 = 127;

/// How many upcoming flats the compressor inspects to estimate a new
/// run's common difference.
const LOOKAHEAD: usize = 64;

/// Hard cap on flats per run, keeping `len · step_fx` far from `i64`
/// overflow for any step the estimator can produce.
const LEN_CAP: u32 = 1 << 20;

/// One arithmetic run: `len` flat ticks starting at tick `start` (where
/// the row takes the value implied by `rank_before`), advancing by the
/// fixed-point common difference `step_fx`, corrected per flat by an
/// optional `i8` residual.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ArithRun {
    /// First flat tick of the run (`flat_0 == start` exactly: the
    /// compressor anchors each run so `res_0 == 0`).
    pub(crate) start: i64,
    /// Common difference between modeled flats, in `1/2¹⁶` ticks.
    pub(crate) step_fx: i64,
    /// Number of flats the run covers.
    pub(crate) len: u32,
    /// Offset of the run's residual block in [`RunRow::res`], or
    /// [`NO_RES`] when every residual is zero.
    pub(crate) res_off: u32,
    /// Flats stored before this run — the run's start *value* in
    /// staircase terms: `W(start) = (start − zero_until) − rank_before − 1`.
    pub(crate) rank_before: i64,
}

impl ArithRun {
    /// Largest `j` (exclusive) such that `j · step_fx` stays well inside
    /// `i64` for this run's step.
    pub(crate) fn len_cap(step_fx: i64) -> u32 {
        let by_overflow = ((1i64 << 62) / step_fx.max(1)).min(LEN_CAP as i64);
        by_overflow.max(1) as u32
    }
}

/// A row's flat ticks as arithmetic runs plus a shared residual stream.
/// The second-order counterpart of the flat-tick list inside
/// [`crate::compressed::CompressedRow`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct RunRow {
    pub(crate) runs: Vec<ArithRun>,
    /// Residual bytes, one per flat of every run with `res_off != NO_RES`.
    pub(crate) res: Vec<i8>,
    /// Total flats across all runs.
    pub(crate) count: i64,
}

impl RunRow {
    /// The exact flat tick at index `j` of `run`.
    #[inline]
    pub(crate) fn flat_at(&self, run: &ArithRun, j: u32) -> i64 {
        let modeled = run.start + ((j as i64 * run.step_fx) >> STEP_FRAC_BITS);
        if run.res_off == NO_RES {
            modeled
        } else {
            modeled + self.res[(run.res_off + j) as usize] as i64
        }
    }

    /// The exact last flat tick of `run`.
    #[inline]
    pub(crate) fn last_of(&self, run: &ArithRun) -> i64 {
        self.flat_at(run, run.len - 1)
    }

    /// Total flats stored.
    #[inline]
    pub(crate) fn count(&self) -> i64 {
        self.count
    }

    /// Stored run descriptors — the second-order `k` the bench reports.
    #[inline]
    pub(crate) fn descriptors(&self) -> usize {
        self.runs.len()
    }

    /// Heap bytes held (descriptors + residual stream), by capacity so
    /// the accounting matches real footprint.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<ArithRun>() + self.res.capacity()
    }

    /// `#flats ≤ pos` by binary search: over runs first, then over the
    /// (strictly increasing) flats inside the located run.
    pub(crate) fn rank_le(&self, pos: i64) -> i64 {
        let i = self.runs.partition_point(|r| r.start <= pos);
        if i == 0 {
            return 0;
        }
        let run = &self.runs[i - 1];
        if self.last_of(run) <= pos {
            return run.rank_before + run.len as i64;
        }
        // Exact flats are strictly increasing inside a run, so the usual
        // partition point applies to the index space.
        let (mut lo, mut hi) = (0u32, run.len - 1);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.flat_at(run, mid) <= pos {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        // lo = largest index with flat ≤ pos, unless even flat_0 > pos.
        if self.flat_at(run, lo) <= pos {
            run.rank_before + lo as i64 + 1
        } else {
            run.rank_before
        }
    }

    /// Builds a [`RunRow`] from strictly increasing flat ticks. The
    /// compression is deterministic: a new run estimates its common
    /// difference from the endpoint slope of up to [`LOOKAHEAD`] upcoming
    /// flats, then extends greedily while each flat's residual fits an
    /// `i8`; residual blocks that end up all-zero are elided.
    pub(crate) fn compress(flats: impl Iterator<Item = i64>) -> RunRow {
        let mut row = RunRow::default();
        let mut pending: std::collections::VecDeque<i64> = std::collections::VecDeque::new();
        let mut src = flats;
        loop {
            while pending.len() < LOOKAHEAD {
                match src.next() {
                    Some(f) => pending.push_back(f),
                    None => break,
                }
            }
            let Some(&start) = pending.front() else {
                break;
            };
            let m = pending.len();
            let step_fx = if m >= 2 {
                let span = pending[m - 1] - start;
                ((span << STEP_FRAC_BITS) / (m as i64 - 1)).max(1)
            } else {
                1 << STEP_FRAC_BITS
            };
            let cap = ArithRun::len_cap(step_fx);
            let res_off = row.res.len() as u32;
            let mut len: u32 = 0;
            let mut all_zero = true;
            loop {
                if len == cap {
                    break;
                }
                let f = match pending.front() {
                    Some(&f) => f,
                    None => match src.next() {
                        Some(f) => f,
                        None => break,
                    },
                };
                let modeled = start + ((len as i64 * step_fx) >> STEP_FRAC_BITS);
                let r = f - modeled;
                if r.abs() > RES_MAX {
                    // Put a flat pulled straight from the source back in
                    // front so the next run starts from it.
                    if pending.front() != Some(&f) {
                        pending.push_front(f);
                    }
                    break;
                }
                if pending.front() == Some(&f) {
                    pending.pop_front();
                }
                row.res.push(r as i8);
                all_zero &= r == 0;
                len += 1;
                if pending.is_empty() {
                    // Keep the source drained through the deque so the
                    // `front()` fast path above stays coherent.
                    if let Some(next) = src.next() {
                        pending.push_back(next);
                    }
                }
            }
            debug_assert!(len >= 1, "a run always covers its anchor flat");
            let run = ArithRun {
                start,
                step_fx,
                len,
                res_off: if all_zero { NO_RES } else { res_off },
                rank_before: row.count,
            };
            if all_zero {
                row.res.truncate(res_off as usize);
            }
            row.count += len as i64;
            row.runs.push(run);
        }
        row.runs.shrink_to_fit();
        row.res.shrink_to_fit();
        row
    }

    /// An iterator over all flat ticks, in increasing order.
    pub(crate) fn iter(&self) -> RunFlatIter<'_> {
        RunFlatIter {
            row: self,
            run: 0,
            j: 0,
        }
    }
}

/// Forward iterator over a [`RunRow`]'s exact flat ticks.
pub(crate) struct RunFlatIter<'a> {
    row: &'a RunRow,
    run: usize,
    j: u32,
}

impl Iterator for RunFlatIter<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        let run = self.row.runs.get(self.run)?;
        let f = self.row.flat_at(run, self.j);
        self.j += 1;
        if self.j == run.len {
            self.run += 1;
            self.j = 0;
        }
        Some(f)
    }
}

impl RunFlatIter<'_> {
    /// Positions the iterator at the first flat strictly greater than
    /// `pos` and returns the rank `#flats ≤ pos`. `O(log r + log len)`.
    pub(crate) fn seek_after(&mut self, pos: i64) -> i64 {
        let rank = self.row.rank_le(pos);
        let i = self.row.runs.partition_point(|r| r.rank_before < rank);
        // i = first run with rank_before ≥ rank; the target flat (index
        // `rank`, 0-based) lives in run i−1 unless it starts a new run.
        if i > 0 && rank < self.row.runs[i - 1].rank_before + self.row.runs[i - 1].len as i64 {
            self.run = i - 1;
            self.j = (rank - self.row.runs[i - 1].rank_before) as u32;
        } else {
            self.run = i;
            self.j = 0;
        }
        rank
    }
}

/// Forward-only cursor over a [`RunRow`]: `rank`/`is_flat`/`next_after`/
/// `next2_after` in `O(1)` amortized for query positions that move
/// (nearly) monotonically forward; tolerates the one-tick retreats the
/// frontier sweep performs when it interleaves `s` and `s+1`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RunCursor {
    /// Current run index (may equal `runs.len()` past the end).
    run: usize,
    /// Flats consumed inside the current run.
    j: u32,
}

impl RunCursor {
    /// `#flats ≤ pos`; positions the cursor for the sibling queries.
    #[inline]
    pub(crate) fn rank_le(&mut self, row: &RunRow, pos: i64) -> i64 {
        // Retreat (rare, bounded): step back while the last counted flat
        // exceeds pos.
        loop {
            if self.j > 0 {
                let run = &row.runs[self.run];
                if row.flat_at(run, self.j - 1) > pos {
                    self.j -= 1;
                    continue;
                }
            } else if self.run > 0 {
                let prev = &row.runs[self.run - 1];
                if row.last_of(prev) > pos {
                    self.run -= 1;
                    self.j = prev.len - 1;
                    continue;
                }
            }
            break;
        }
        // Advance while the next flat is ≤ pos.
        while self.run < row.runs.len() {
            let run = &row.runs[self.run];
            if self.j < run.len && row.flat_at(run, self.j) <= pos {
                self.j += 1;
                continue;
            }
            if self.j == run.len {
                match row.runs.get(self.run + 1) {
                    Some(next) if next.start <= pos => {
                        self.run += 1;
                        self.j = 0;
                        continue;
                    }
                    _ => break,
                }
            }
            break;
        }
        match row.runs.get(self.run) {
            Some(run) => run.rank_before + self.j as i64,
            None => row.count,
        }
    }

    /// Whether `pos` itself is a flat tick. Only valid immediately after
    /// [`Self::rank_le`] with the same `pos`.
    #[inline]
    pub(crate) fn is_flat(&self, row: &RunRow, pos: i64) -> bool {
        if self.j > 0 {
            row.flat_at(&row.runs[self.run], self.j - 1) == pos
        } else if self.run > 0 {
            row.last_of(&row.runs[self.run - 1]) == pos
        } else {
            false
        }
    }

    /// The `k`-th flat strictly past the cursor (`k = 0` ⇒ the first),
    /// or [`NO_FLAT`]. Only valid immediately after [`Self::rank_le`];
    /// `k ≤ 1` is what the event builder needs, but any small `k` works.
    #[inline]
    pub(crate) fn peek(&self, row: &RunRow, k: u32) -> i64 {
        let mut run_idx = self.run;
        let mut j = self.j + k;
        while let Some(run) = row.runs.get(run_idx) {
            if j < run.len {
                return row.flat_at(run, j);
            }
            j -= run.len;
            run_idx += 1;
        }
        NO_FLAT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A jittery near-arithmetic sequence like the solver's skeletons
    /// produce: base gap drifting slowly, deterministic ±3 wobble.
    fn jittery(n: usize) -> Vec<i64> {
        let mut pos = 17i64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(pos);
            let base = 40 + (i as i64 / 500); // slow drift
            let wobble = [0i64, 2, -1, 3, -2, 1, -3, 0][i % 8];
            pos += (base + wobble).max(1);
        }
        out
    }

    #[test]
    fn compression_is_lossless() {
        for flats in [
            jittery(5000),
            (0..400).map(|i| 10 + 7 * i).collect::<Vec<_>>(), // pure arithmetic
            vec![5],
            vec![],
            vec![3, 4, 5, 6, 100, 200, 300, 5000], // mixed regimes
        ] {
            let row = RunRow::compress(flats.iter().copied());
            assert_eq!(row.count(), flats.len() as i64);
            let back: Vec<i64> = row.iter().collect();
            assert_eq!(back, flats, "round-trip mismatch");
        }
    }

    #[test]
    fn jittery_rows_compress_and_pure_rows_store_no_residuals() {
        let flats = jittery(50_000);
        let row = RunRow::compress(flats.iter().copied());
        assert!(
            row.descriptors() * 20 < flats.len(),
            "{} runs for {} jittery flats — regime tracking broke",
            row.descriptors(),
            flats.len()
        );
        // ~1 residual byte per flat + a handful of descriptors.
        assert!(row.memory_bytes() < flats.len() * 2 + 4096);

        let arith: Vec<i64> = (0..10_000).map(|i| 3 + 11 * i).collect();
        let row = RunRow::compress(arith.iter().copied());
        assert_eq!(row.descriptors(), 1, "pure progression should be one run");
        assert!(row.res.is_empty(), "pure runs must elide residuals");
    }

    #[test]
    fn rank_matches_bruteforce() {
        let flats = jittery(2000);
        let row = RunRow::compress(flats.iter().copied());
        let max = *flats.last().unwrap() + 5;
        for pos in (0..max).step_by(13).chain(flats.iter().copied()) {
            let want = flats.iter().filter(|&&f| f <= pos).count() as i64;
            assert_eq!(row.rank_le(pos), want, "rank at {pos}");
        }
    }

    #[test]
    fn cursor_matches_bruteforce_with_retreats() {
        let flats = jittery(800);
        let row = RunRow::compress(flats.iter().copied());
        let mut cur = RunCursor::default();
        let max = *flats.last().unwrap() + 3;
        let mut pos = 0i64;
        // Sweep forward with interleaved one-step retreats, like the
        // frontier sweep's s / s+1 reads.
        while pos < max {
            for p in [pos + 1, pos, pos + 1] {
                let want = flats.iter().filter(|&&f| f <= p).count() as i64;
                assert_eq!(cur.rank_le(&row, p), want, "rank at {p}");
                assert_eq!(cur.is_flat(&row, p), flats.contains(&p), "is_flat at {p}");
                let next: Vec<i64> = flats.iter().copied().filter(|&f| f > p).take(2).collect();
                assert_eq!(cur.peek(&row, 0), next.first().copied().unwrap_or(NO_FLAT));
                assert_eq!(cur.peek(&row, 1), next.get(1).copied().unwrap_or(NO_FLAT));
            }
            pos += 7;
        }
    }

    #[test]
    fn seek_after_positions_the_iterator() {
        let flats = jittery(1500);
        let row = RunRow::compress(flats.iter().copied());
        for pos in [0i64, 16, 17, 18, 500, 20_000, i64::MAX / 8] {
            let mut it = row.iter();
            let rank = it.seek_after(pos);
            assert_eq!(rank, flats.iter().filter(|&&f| f <= pos).count() as i64);
            let rest: Vec<i64> = it.take(3).collect();
            let want: Vec<i64> = flats.iter().copied().filter(|&f| f > pos).take(3).collect();
            assert_eq!(rest, want, "tail after {pos}");
        }
    }

    #[test]
    fn huge_gaps_do_not_overflow() {
        // Steps near the NO_FLAT scale: len caps keep j·step_fx in range.
        let flats = vec![0i64, 1 << 40, 2 << 40, 3 << 40, (3 << 40) + 5];
        let row = RunRow::compress(flats.iter().copied());
        let back: Vec<i64> = row.iter().collect();
        assert_eq!(back, flats);
        assert_eq!(row.rank_le(1 << 41), 3);
    }
}
