//! Breakpoint-compressed `W^(p)[L]` tables.
//!
//! ## Why rows compress
//!
//! Every row `W^(p)[·]` is nondecreasing, 1-Lipschitz and integer on the
//! tick grid, so consecutive differences are bits: each tick either banks
//! a tick of work (slope 1) or loses it to the adversary (slope 0). The
//! total number of slope-0 ticks in a row is exactly the row's final loss
//! `L − W^(p)(L)`, which the paper bounds by `O(√(QL) + pQ)` — vanishing
//! relative to `L`. A row is therefore stored as its **flat-tick
//! skeleton** (the positions where the slope is 0, i.e. the breakpoints
//! of the piecewise-linear row) plus the zero-region prefix, and
//! evaluated by rank query: `W(l) = (l − z) − #{flats ≤ l}` for `l` past
//! the zero region `[0, z]`.
//!
//! ## Two skeleton representations
//!
//! [`RowRepr`] selects how the flat ticks are stored:
//!
//! * **Breakpoints** — one sorted `i64` per flat tick. First-order
//!   compression: `O(k)` words, `k ≪ L`.
//! * **Runs** — second-order compression ([`crate::run`]): the flats
//!   are grouped into arithmetic runs (start, fixed-point common
//!   difference, length) with one `i8` residual per jittery flat, so
//!   the stored descriptor count tracks *regime changes* of the row
//!   rather than individual breakpoints and memory drops to ≈1 byte
//!   per breakpoint.
//!
//! Both are lossless; every query path reads through the shared
//! `SkelCursor`/rank interface, so values, argmax and episodes are
//! bit-identical across representations (and to the dense
//! [`crate::ValueTable`]) — the equivalence property suite pins all of
//! it down.
//!
//! ## Building level `p` on the skeleton of level `p−1`
//!
//! The builder runs the same monotone frontier sweep as the dense solver
//! (see [`crate::value`]): the crossing residual `s*(l)` only advances
//! with `l`, and every value the recursion reads — `W^(p−1)` and `W^(p)`
//! at the frontier, `W^(p)(l−1)` for the wait candidate — is read at a
//! (near-)monotone position. Lagging cursors into the skeletons serve
//! those reads in `O(1)` amortized, so level `p` is built directly from
//! level `p−1`'s compressed skeleton in `O(L)` time and `O(k)` memory,
//! never materializing a dense row. Total: `O(p·L)` time, `O(p·k)`
//! memory with `k ≪ L` — lifespans in the `10^8`-tick range fit in a few
//! megabytes where the dense arena would need tens of gigabytes.
//!
//! ## Policy queries without an argmax arena
//!
//! The optimal first period at `(p, l)` is re-derived at query time from
//! the compressed rows alone: binary search the crossing residual
//! (`h(s) = s + W^(p−1)(s) − W^(p)(s)` is nondecreasing), then apply the
//! dense solver's exact tie-breaks. [`CompressedTable::episode`] is
//! therefore bit-identical to the dense [`crate::ValueTable::episode`]
//! at `O(m log L log k)` cost per reconstruction and zero bytes of
//! policy storage.

use crate::grid::Grid;
use crate::run::{RunCursor, RunFlatIter, RunRow, NO_FLAT};
use crate::value::RowRepr;
use cyclesteal_core::error::{ModelError, Result};
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::{EpisodePolicy, WorkOracle};
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::{Time, Work};
use std::sync::Arc;

/// One arithmetic run of the exact tick staircase `W^(p)[l]`: `len`
/// consecutive grid values starting at `start` with common difference
/// `step`. Produced by [`CompressedTable::value_runs`] and shipped by
/// the serving layer's streaming wire mode in place of dense arrays;
/// [`expand_value_runs`] is the exact inverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueRun {
    /// Value (in work ticks) at the run's first lifespan tick.
    pub start: i64,
    /// Common difference between consecutive ticks — `0` in the zero
    /// region and on flat ticks, `1` on ramps (rows are monotone
    /// 1-Lipschitz, so no other slope occurs).
    pub step: i64,
    /// Number of consecutive lifespan ticks the run covers (`≥ 1`).
    pub len: i64,
}

/// Expand run descriptors back into the dense tick-value array they
/// describe — the client-side inverse of
/// [`CompressedTable::value_runs`], bit-identical by construction.
pub fn expand_value_runs(runs: &[ValueRun]) -> Vec<i64> {
    let total: i64 = runs.iter().map(|r| r.len.max(0)).sum();
    let mut out = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
    for run in runs {
        let mut v = run.start;
        for _ in 0..run.len {
            out.push(v);
            v += run.step;
        }
    }
    out
}

/// How one compressed row's flat ticks are stored: the first-order flat
/// list or the second-order arithmetic runs of [`crate::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum RowSkeleton {
    /// Sorted flat ticks, one word per breakpoint.
    Flats(Vec<i64>),
    /// Arithmetic runs + residual stream (see [`crate::run::RunRow`]).
    Runs(RunRow),
}

/// One compressed row: the zero-region prefix plus the flat ticks past
/// it, in either skeleton representation. Shared with the event-driven
/// builder in [`crate::event`], which emits rows in this exact form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct CompressedRow {
    /// Largest `l` with `W(l) = 0` (the whole row when never positive).
    pub(crate) zero_until: i64,
    skel: RowSkeleton,
}

impl CompressedRow {
    /// A row with no flat ticks past the zero region.
    pub(crate) fn empty(zero_until: i64) -> CompressedRow {
        CompressedRow::from_flats(zero_until, Vec::new())
    }

    /// Wraps a sorted flat-tick list (first-order representation).
    pub(crate) fn from_flats(zero_until: i64, flats: Vec<i64>) -> CompressedRow {
        CompressedRow {
            zero_until,
            skel: RowSkeleton::Flats(flats),
        }
    }

    /// Wraps a run-compressed skeleton (second-order representation).
    pub(crate) fn from_runs(zero_until: i64, runs: RunRow) -> CompressedRow {
        CompressedRow {
            zero_until,
            skel: RowSkeleton::Runs(runs),
        }
    }

    /// Re-encodes the row into `repr` (no-op when already there); the
    /// flat ticks — and therefore every query — are unchanged.
    pub(crate) fn into_repr(self, repr: RowRepr) -> CompressedRow {
        match (repr, self.skel) {
            (RowRepr::Runs, RowSkeleton::Flats(flats)) => {
                CompressedRow::from_runs(self.zero_until, RunRow::compress(flats.into_iter()))
            }
            (_, skel) => CompressedRow {
                zero_until: self.zero_until,
                skel,
            },
        }
    }

    /// Number of flat ticks (row loss past the zero region).
    #[inline]
    pub(crate) fn count(&self) -> i64 {
        match &self.skel {
            RowSkeleton::Flats(flats) => flats.len() as i64,
            RowSkeleton::Runs(runs) => runs.count(),
        }
    }

    /// `#flats ≤ pos` by binary search.
    #[inline]
    pub(crate) fn rank_le(&self, pos: i64) -> i64 {
        match &self.skel {
            RowSkeleton::Flats(flats) => flats.partition_point(|&f| f <= pos) as i64,
            RowSkeleton::Runs(runs) => runs.rank_le(pos),
        }
    }

    /// `W(l)` by rank query over the flat ticks.
    #[inline]
    pub(crate) fn value(&self, l: i64) -> i64 {
        if l <= self.zero_until {
            return 0;
        }
        (l - self.zero_until) - self.rank_le(l)
    }

    /// A fresh forward cursor over this row's flat ticks.
    pub(crate) fn cursor(&self) -> SkelCursor<'_> {
        match &self.skel {
            RowSkeleton::Flats(flats) => SkelCursor::Flats(FlatsCursor {
                zero_until: self.zero_until,
                flats,
                idx: 0,
            }),
            RowSkeleton::Runs(runs) => SkelCursor::Runs(RunsCursor {
                zero_until: self.zero_until,
                runs,
                cur: RunCursor::default(),
            }),
        }
    }

    /// The row's skeleton — lets monomorphizing callers (the event
    /// builder) dispatch once per level instead of once per read.
    pub(crate) fn skeleton(&self) -> &RowSkeleton {
        &self.skel
    }

    /// A fresh monomorphic flat-list cursor (callers match on
    /// [`Self::skeleton`] first).
    pub(crate) fn flats_cursor_over<'a>(&self, flats: &'a [i64]) -> FlatsCursor<'a> {
        FlatsCursor {
            zero_until: self.zero_until,
            flats,
            idx: 0,
        }
    }

    /// A fresh monomorphic run cursor (callers match on
    /// [`Self::skeleton`] first).
    pub(crate) fn runs_cursor_over<'a>(&self, runs: &'a RunRow) -> RunsCursor<'a> {
        RunsCursor {
            zero_until: self.zero_until,
            runs,
            cur: RunCursor::default(),
        }
    }

    /// The rank `#flats ≤ pos` plus an iterator over the flats strictly
    /// greater than `pos`, in increasing order — the expansion interface
    /// of the parallel dense fill.
    pub(crate) fn flats_after(&self, pos: i64) -> (i64, FlatIter<'_>) {
        match &self.skel {
            RowSkeleton::Flats(flats) => {
                let idx = flats.partition_point(|&f| f <= pos);
                (idx as i64, FlatIter::Flats(flats[idx..].iter()))
            }
            RowSkeleton::Runs(runs) => {
                let mut it = runs.iter();
                let rank = it.seek_after(pos);
                (rank, FlatIter::Runs(it))
            }
        }
    }

    /// Logical breakpoints: flat ticks + the zero-region edge. The
    /// resolution-independent first-order row size, whatever the storage.
    pub(crate) fn breakpoints(&self) -> usize {
        self.count() as usize + 1
    }

    /// Breakpoints *stored* as explicit descriptors: flat ticks + 1 for
    /// the flat list, arithmetic-run descriptors + 1 for the run form —
    /// the second-order `k` the bench reports.
    pub(crate) fn stored_breakpoints(&self) -> usize {
        match &self.skel {
            RowSkeleton::Flats(flats) => flats.len() + 1,
            RowSkeleton::Runs(runs) => runs.descriptors() + 1,
        }
    }

    pub(crate) fn memory_bytes(&self) -> usize {
        // Capacity, not len: the accounting must reflect real heap use
        // (build shrinks the vecs, so the two normally coincide).
        std::mem::size_of::<CompressedRow>()
            + match &self.skel {
                RowSkeleton::Flats(flats) => flats.capacity() * std::mem::size_of::<i64>(),
                RowSkeleton::Runs(runs) => runs.memory_bytes(),
            }
    }
}

/// Iterator over a row's flat ticks past a seek position, either
/// representation.
pub(crate) enum FlatIter<'a> {
    /// Remaining flats of a flat-list skeleton.
    Flats(std::slice::Iter<'a, i64>),
    /// Positioned iterator over a run skeleton.
    Runs(RunFlatIter<'a>),
}

impl Iterator for FlatIter<'_> {
    type Item = i64;

    #[inline]
    fn next(&mut self) -> Option<i64> {
        match self {
            FlatIter::Flats(it) => it.next().copied(),
            FlatIter::Runs(it) => it.next(),
        }
    }
}

/// Forward-cursor interface over a row's flat ticks: rank
/// (`#flats ≤ pos`), membership, next-flat and value queries in `O(1)`
/// amortized for positions that move (nearly) monotonically forward,
/// tolerating the small retreats the frontier sweep performs when it
/// interleaves `s` and `s+1`. Implemented by one concrete cursor per
/// skeleton representation so hot build loops (the event builder makes
/// a few of these calls per event) monomorphize to the direct slice or
/// run walk instead of dispatching per call; [`SkelCursor`] is the
/// type-erased wrapper for paths where one branch per call is fine.
pub(crate) trait SkelRead {
    /// The row's zero-region edge.
    fn zero_until(&self) -> i64;
    /// `#flats ≤ pos`; positions the cursor for the sibling queries.
    fn rank_le(&mut self, pos: i64) -> i64;
    /// Whether `pos` itself is a flat tick. Only valid immediately
    /// after [`Self::rank_le`] with the same `pos`.
    fn is_flat(&self, pos: i64) -> bool;
    /// The `k`-th flat tick strictly past the last [`Self::rank_le`]
    /// position (`k = 0` ⇒ the first), or [`NO_FLAT`]. Only valid
    /// immediately after [`Self::rank_le`].
    fn peek(&self, k: u32) -> i64;
    /// `W(pos)` through the cursor (amortized-`O(1)` staircase read).
    #[inline]
    fn value(&mut self, pos: i64) -> i64 {
        let zero = self.zero_until();
        let rank = self.rank_le(pos);
        if pos <= zero {
            0
        } else {
            (pos - zero) - rank
        }
    }
}

/// [`SkelRead`] over a flat-list skeleton.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FlatsCursor<'a> {
    zero_until: i64,
    flats: &'a [i64],
    /// `#flats ≤` the last query position.
    idx: usize,
}

impl SkelRead for FlatsCursor<'_> {
    #[inline]
    fn zero_until(&self) -> i64 {
        self.zero_until
    }

    #[inline]
    fn rank_le(&mut self, pos: i64) -> i64 {
        while self.idx > 0 && self.flats[self.idx - 1] > pos {
            self.idx -= 1;
        }
        while self.idx < self.flats.len() && self.flats[self.idx] <= pos {
            self.idx += 1;
        }
        self.idx as i64
    }

    #[inline]
    fn is_flat(&self, pos: i64) -> bool {
        self.idx > 0 && self.flats[self.idx - 1] == pos
    }

    #[inline]
    fn peek(&self, k: u32) -> i64 {
        self.flats
            .get(self.idx + k as usize)
            .copied()
            .unwrap_or(NO_FLAT)
    }
}

/// [`SkelRead`] over a run-backed skeleton.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RunsCursor<'a> {
    zero_until: i64,
    runs: &'a RunRow,
    cur: RunCursor,
}

impl SkelRead for RunsCursor<'_> {
    #[inline]
    fn zero_until(&self) -> i64 {
        self.zero_until
    }

    #[inline]
    fn rank_le(&mut self, pos: i64) -> i64 {
        self.cur.rank_le(self.runs, pos)
    }

    #[inline]
    fn is_flat(&self, pos: i64) -> bool {
        self.cur.is_flat(self.runs, pos)
    }

    #[inline]
    fn peek(&self, k: u32) -> i64 {
        self.cur.peek(self.runs, k)
    }
}

/// Type-erased forward cursor over a [`CompressedRow`] — one predictable
/// branch per call, for readers (like the parallel dense fill's replay)
/// that are not monomorphized per representation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SkelCursor<'a> {
    /// Cursor into a flat-list skeleton.
    Flats(FlatsCursor<'a>),
    /// Cursor into a run-backed skeleton.
    Runs(RunsCursor<'a>),
}

impl SkelRead for SkelCursor<'_> {
    #[inline]
    fn zero_until(&self) -> i64 {
        match self {
            SkelCursor::Flats(c) => c.zero_until(),
            SkelCursor::Runs(c) => c.zero_until(),
        }
    }

    #[inline]
    fn rank_le(&mut self, pos: i64) -> i64 {
        match self {
            SkelCursor::Flats(c) => c.rank_le(pos),
            SkelCursor::Runs(c) => c.rank_le(pos),
        }
    }

    #[inline]
    fn is_flat(&self, pos: i64) -> bool {
        match self {
            SkelCursor::Flats(c) => c.is_flat(pos),
            SkelCursor::Runs(c) => c.is_flat(pos),
        }
    }

    #[inline]
    fn peek(&self, k: u32) -> i64 {
        match self {
            SkelCursor::Flats(c) => c.peek(k),
            SkelCursor::Runs(c) => c.peek(k),
        }
    }
}

/// Amortized-O(1) evaluator for positions that move (nearly)
/// monotonically forward over a plain flat-tick slice — the
/// tick-walking builder's view of the row *under construction* (which
/// is not yet a [`CompressedRow`]). Tolerates small retreats.
#[derive(Clone, Copy, Debug, Default)]
struct FlatSliceCursor {
    rank: usize,
}

impl FlatSliceCursor {
    #[inline]
    fn value(&mut self, zero_until: i64, flats: &[i64], pos: i64) -> i64 {
        while self.rank > 0 && flats[self.rank - 1] > pos {
            self.rank -= 1;
        }
        while self.rank < flats.len() && flats[self.rank] <= pos {
            self.rank += 1;
        }
        if pos <= zero_until {
            0
        } else {
            (pos - zero_until) - self.rank as i64
        }
    }
}

/// `W^(p)[L]` for all `p ≤ p_max`, `L ≤ L_max`, stored as breakpoint
/// skeletons: `O(p·k)` memory with `k ≪ L`, exact agreement with the
/// dense [`crate::ValueTable`] on values, argmax and episodes.
///
/// Equality is **structural**: two tables compare equal only when every
/// field — grid, extent, representation, event count and each row's
/// skeleton storage — matches exactly. This is the bit-identical
/// round-trip contract of the persistence layer
/// (`from_parts(to_parts(t)) == t`, see [`crate::snapshot`]); two
/// tables holding the same *values* in different representations are
/// deliberately unequal.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedTable {
    pub(crate) grid: Grid,
    pub(crate) max_ticks: i64,
    pub(crate) max_interrupts: u32,
    pub(crate) repr: RowRepr,
    pub(crate) rows: Vec<CompressedRow>,
    /// Build-loop iterations summed over all levels: one per tick for the
    /// tick-walking build, one per breakpoint event for the event-driven
    /// build (see [`Self::events`]).
    pub(crate) events: u64,
}

/// Builds level `p` from the completed level `p−1` skeleton by the
/// monotone frontier sweep, recording only slope-0 ticks. Walks every
/// tick; the run-skipping alternative is [`crate::event`]. Always emits
/// the flat-list form — [`CompressedRow::into_repr`] re-encodes when the
/// solve asked for runs. Monomorphized over the prev representation so
/// the inner loop (4 reads per tick, `O(p·L)` of them) compiles to the
/// direct slice walk for flat-list rows.
pub(crate) fn build_level(prev: &CompressedRow, n: i64, q: i64) -> CompressedRow {
    match &prev.skel {
        RowSkeleton::Flats(flats) => build_level_from(prev.flats_cursor_over(flats), n, q),
        RowSkeleton::Runs(runs) => build_level_from(prev.runs_cursor_over(runs), n, q),
    }
}

fn build_level_from<R: SkelRead>(mut prev_at: R, n: i64, q: i64) -> CompressedRow {
    let mut zero_until = 0i64;
    let mut flats: Vec<i64> = Vec::new();
    let mut last = 0i64; // W^(p)(l−1)
    let mut frontier = 0i64; // crossing residual s*, nondecreasing in l
    let mut cur_at = FlatSliceCursor::default(); // reads cur at s / s+1

    for l in 1..=n {
        let mut best = last;
        if l > q {
            let tau = l - q;
            let s_cap = l - q - 1;
            while frontier < s_cap {
                let s1 = frontier + 1;
                let h = s1 + prev_at.value(s1) - cur_at.value(zero_until, &flats, s1);
                if h <= tau {
                    frontier += 1;
                } else {
                    break;
                }
            }
            let s = frontier;
            let t_star = l - s;
            let mut cand = prev_at
                .value(s)
                .min((t_star - q) + cur_at.value(zero_until, &flats, s));
            if t_star > q + 1 {
                let v_left = prev_at
                    .value(s + 1)
                    .min((t_star - 1 - q) + cur_at.value(zero_until, &flats, s + 1));
                cand = cand.max(v_left);
            }
            if cand >= best {
                best = cand;
            }
        }

        let inc = best - last;
        debug_assert!(
            inc == 0 || inc == 1,
            "row not monotone 1-Lipschitz at l={l}: {last} -> {best}"
        );
        if best == 0 {
            zero_until = l;
        } else if inc == 0 {
            flats.push(l);
        }
        last = best;
    }
    // Incremental pushes leave up to 2× capacity slack; release it so
    // the memory accounting (and the actual footprint) stay tight.
    flats.shrink_to_fit();
    CompressedRow::from_flats(zero_until, flats)
}

impl CompressedTable {
    /// Solves the game bottom-up for interrupt levels `0..=max_interrupts`
    /// and lifespans `0..=max_lifespan` at `ticks_per_setup` resolution,
    /// storing each level as its breakpoint skeleton. Walks every tick
    /// (`O(p·L)` time); for huge lifespans prefer [`Self::solve_with`]
    /// with [`crate::InnerLoop::EventDriven`].
    pub fn solve(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
    ) -> CompressedTable {
        Self::solve_with(
            setup,
            ticks_per_setup,
            max_lifespan,
            max_interrupts,
            crate::value::SolveOptions {
                keep_policy: false,
                inner: crate::value::InnerLoop::FrontierSweep,
                threads: 1,
                repr: RowRepr::Breakpoints,
            },
        )
    }

    /// [`Self::solve`] with an explicit inner-build and row-representation
    /// selection. [`crate::InnerLoop::EventDriven`] jumps lifespan ahead
    /// run by run (`O(p·k log k)` time, `k` = breakpoints — see
    /// [`crate::event`]); every other variant walks the ticks with the
    /// monotone frontier sweep. [`crate::RowRepr::Runs`] stores the
    /// emitted skeletons second-order-compressed (arithmetic runs, see
    /// [`crate::run`]). All combinations emit identical values, argmax
    /// and episodes; `keep_policy` is ignored (compressed tables
    /// re-derive the policy at query time for free).
    ///
    /// ```
    /// use cyclesteal_core::time::secs;
    /// use cyclesteal_dp::{CompressedTable, InnerLoop, RowRepr, SolveOptions};
    ///
    /// // An event-driven, run-compressed solve: the configuration for
    /// // huge lifespans (here kept small so the example runs fast).
    /// let opts = SolveOptions {
    ///     keep_policy: false,
    ///     inner: InnerLoop::EventDriven,
    ///     repr: RowRepr::Runs,
    ///     ..SolveOptions::default()
    /// };
    /// let table = CompressedTable::solve_with(secs(1.0), 8, secs(500.0), 2, opts);
    /// // Bit-identical to the tick-walking flat-list build:
    /// let walked = CompressedTable::solve(secs(1.0), 8, secs(500.0), 2);
    /// assert_eq!(table.value_ticks(2, 4000), walked.value_ticks(2, 4000));
    /// // …while storing far fewer explicit descriptors:
    /// assert!(table.stored_breakpoints(2) <= walked.stored_breakpoints(2));
    /// ```
    pub fn solve_with(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: crate::value::SolveOptions,
    ) -> CompressedTable {
        Self::solve_inner(
            setup,
            ticks_per_setup,
            max_lifespan,
            max_interrupts,
            opts,
            None,
        )
    }

    /// [`Self::solve_with`] with per-phase timing recorded into
    /// `recorder` (see [`crate::profile`]): the event-driven build
    /// loop, the tick-walking skeleton build and the run re-encoding
    /// are each attributed to their [`crate::Phase`]. The clock is read
    /// only between phases, so the emitted table is bit-identical to
    /// the unprofiled solve.
    pub fn solve_profiled(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: crate::value::SolveOptions,
        recorder: &crate::profile::PhaseRecorder<'_>,
    ) -> CompressedTable {
        Self::solve_inner(
            setup,
            ticks_per_setup,
            max_lifespan,
            max_interrupts,
            opts,
            Some(recorder),
        )
    }

    fn solve_inner(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: crate::value::SolveOptions,
        prof: Option<&crate::profile::PhaseRecorder<'_>>,
    ) -> CompressedTable {
        use crate::profile::{time_opt, Phase};
        let grid = Grid::new(setup, ticks_per_setup);
        let n = grid.to_ticks(max_lifespan).max(0);
        let q = grid.q();
        let event_driven = opts.inner == crate::value::InnerLoop::EventDriven;

        // `threads` only parallelizes the per-level breakpoint-run
        // expansion inside the event-driven builder — the build loop (and
        // with it the event count and the emitted skeleton) is identical
        // at every thread count. The tick-walking build stays sequential.
        let threads = opts.resolved_threads();
        let mut rows = Vec::with_capacity(max_interrupts as usize + 1);
        let mut events: u64 = 0;
        // Level 0: W^(0)(l) = l ⊖ Q — a pure zero region, no flats after.
        rows.push(CompressedRow::empty(q.min(n)));
        for _p in 1..=max_interrupts {
            let prev = rows.last().expect("level p−1 present");
            let row = if event_driven {
                let (row, level_events) = time_opt(prof, Phase::EventLoop, || {
                    crate::event::build_level_events(prev, n, q, threads, opts.repr)
                });
                events += level_events;
                row
            } else {
                events += n.max(0) as u64;
                let built = time_opt(prof, Phase::SkeletonBuild, || build_level(prev, n, q));
                time_opt(prof, Phase::RunCompression, || built.into_repr(opts.repr))
            };
            rows.push(row);
        }

        CompressedTable {
            grid,
            max_ticks: n,
            max_interrupts,
            repr: opts.repr,
            rows,
            events,
        }
    }

    /// Build-loop iterations summed over all levels: `p·L` for the
    /// tick-walking build, the number of breakpoint events (skips, stalls
    /// and boundary single-steps) for the event-driven build. The
    /// `perf_dp` bench reports this as `event_count`.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The grid the table was solved on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Largest lifespan (in ticks) the table covers.
    pub fn max_ticks(&self) -> i64 {
        self.max_ticks
    }

    /// Largest lifespan the table covers.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Whether the table can answer every query up to `max_lifespan`,
    /// with the same tolerance [`Self::value`] accepts — the coverage
    /// check the [`crate::TableCache`] and the serving layer share, so
    /// a "covered" table can never panic on the promised range.
    pub fn covers(&self, max_lifespan: Time) -> bool {
        max_lifespan.get() / self.grid.tick().get() <= self.max_ticks as f64 + 1e-9
    }

    /// Largest interrupt budget the table covers.
    pub fn max_interrupts(&self) -> u32 {
        self.max_interrupts
    }

    /// The row representation the table was solved into.
    pub fn repr(&self) -> RowRepr {
        self.repr
    }

    /// Short human label for the row representation — what
    /// `examples/guarantee_explorer.rs` prints per query.
    pub fn repr_name(&self) -> &'static str {
        match self.repr {
            RowRepr::Breakpoints => "breakpoint",
            RowRepr::Runs => "run",
        }
    }

    /// Logical breakpoints at level `p` (flat ticks + the zero edge) —
    /// the resolution-independent row size, identical across
    /// representations.
    pub fn breakpoints(&self, p: u32) -> usize {
        self.rows[p.min(self.max_interrupts) as usize].breakpoints()
    }

    /// Breakpoints *stored* as explicit descriptors at level `p`: equal
    /// to [`Self::breakpoints`] for the flat-list form, the
    /// arithmetic-run descriptor count for [`crate::RowRepr::Runs`] —
    /// the `run_compressed_breakpoints` number of the `perf_dp` bench.
    pub fn stored_breakpoints(&self, p: u32) -> usize {
        self.rows[p.min(self.max_interrupts) as usize].stored_breakpoints()
    }

    /// Bytes held by all row skeletons — the number the `perf_dp` bench
    /// compares against [`crate::ValueTable::memory_bytes`] (and, across
    /// representations, reports as `run_memory_bytes`).
    pub fn memory_bytes(&self) -> usize {
        self.rows.iter().map(CompressedRow::memory_bytes).sum()
    }

    /// Exact grid value in work ticks; same domain contract as
    /// [`crate::ValueTable::value_ticks`].
    #[inline]
    pub fn value_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        self.rows[p.min(self.max_interrupts) as usize].value(l)
    }

    /// The exact tick staircase `W^(p)[l]` over `first_tick ..
    /// first_tick + count` as arithmetic-run descriptors (typically one
    /// per breakpoint in range) — what the serving layer's streaming
    /// wire mode ships for sweep-shaped queries instead of a dense
    /// array. Derived from the zero-region edge and the flat-tick
    /// iterator only, so both [`RowRepr`] storage forms emit identical
    /// descriptors, and [`expand_value_runs`] reproduces
    /// [`Self::value_ticks`] at every covered tick bit for bit.
    ///
    /// # Panics
    ///
    /// If `count < 1` or the range extends outside the solved
    /// `0..=max_ticks` domain (same contract as [`Self::value_ticks`]).
    pub fn value_runs(&self, p: u32, first_tick: i64, count: i64) -> Vec<ValueRun> {
        assert!(count >= 1, "empty sweep: count {count} must be >= 1");
        let last = first_tick + count - 1;
        assert!(
            first_tick >= 0 && last <= self.max_ticks,
            "sweep {first_tick}..={last} outside solved range 0..={}",
            self.max_ticks
        );
        let row = &self.rows[p.min(self.max_interrupts) as usize];
        let zero = row.zero_until;
        let mut runs = Vec::new();
        let mut l = first_tick;
        if l <= zero {
            // The zero region is one constant run.
            let end = zero.min(last);
            runs.push(ValueRun {
                start: 0,
                step: 0,
                len: end - l + 1,
            });
            l = end + 1;
        }
        if l > last {
            return runs;
        }
        // Past the zero region `W(l) = (l - zero) - #flats ≤ l`: slope 1
        // except at flat ticks. Walk the flats once; each gap becomes a
        // step-1 ramp, each maximal group of consecutive flats a
        // constant run.
        let (mut rank, mut flats) = row.flats_after(l - 1);
        let mut next_flat = flats.next().unwrap_or(i64::MAX);
        while l <= last {
            if l < next_flat {
                let end = (next_flat - 1).min(last);
                runs.push(ValueRun {
                    start: (l - zero) - rank,
                    step: 1,
                    len: end - l + 1,
                });
                l = end + 1;
            } else {
                let start = (l - zero) - (rank + 1);
                let mut len = 0;
                while next_flat == l + len && l + len <= last {
                    len += 1;
                    rank += 1;
                    next_flat = flats.next().unwrap_or(i64::MAX);
                }
                runs.push(ValueRun {
                    start,
                    step: 0,
                    len,
                });
                l += len;
            }
        }
        runs
    }

    /// Value at an arbitrary lifespan by linear interpolation between grid
    /// points; same contract as [`crate::ValueTable::value`].
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside solved range {}",
            self.max_lifespan()
        );
        let x = x.clamp(0.0, self.max_ticks as f64);
        let i = x.floor() as i64;
        let row = &self.rows[p.min(self.max_interrupts) as usize];
        if i >= self.max_ticks {
            return Time::new(row.value(self.max_ticks) as f64 * tick);
        }
        let frac = x - i as f64;
        let lo = row.value(i) as f64;
        let hi = row.value(i + 1) as f64;
        Time::new((lo + (hi - lo) * frac) * tick)
    }

    /// The optimal first-period length (in ticks) at state `(p, l)`,
    /// re-derived from the skeletons with the dense solver's exact
    /// tie-breaks — bit-identical to
    /// [`crate::ValueTable::first_period_ticks`] under the default
    /// frontier-sweep/bisection inner loops.
    pub fn first_period_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        let p = p.min(self.max_interrupts);
        if l == 0 {
            return 0;
        }
        if p == 0 {
            // Level 0: a single period consuming the whole lifespan.
            return l;
        }
        let q = self.grid.q();
        let prev = &self.rows[p as usize - 1];
        let cur = &self.rows[p as usize];

        let mut best = cur.value(l - 1);
        let mut best_t: i64 = 1;
        if l > q {
            let tau = l - q;
            // Largest s ∈ [0, l−q−1] with h(s) = s + prev(s) − cur(s) ≤ τ;
            // h is nondecreasing and h(0) = 0, so the search is total.
            let (mut lo_s, mut hi_s) = (0i64, l - q - 1);
            while lo_s < hi_s {
                let mid = lo_s + (hi_s - lo_s + 1) / 2;
                if mid + prev.value(mid) - cur.value(mid) <= tau {
                    lo_s = mid;
                } else {
                    hi_s = mid - 1;
                }
            }
            let s = lo_s;
            let t_star = l - s;
            let v_star = prev.value(s).min((t_star - q) + cur.value(s));
            let (cand_t, cand_v) = if t_star > q + 1 {
                let v_left = prev.value(s + 1).min((t_star - 1 - q) + cur.value(s + 1));
                if v_left > v_star {
                    (t_star - 1, v_left)
                } else {
                    (t_star, v_star)
                }
            } else {
                (t_star, v_star)
            };
            if cand_v >= best {
                best = cand_v;
                best_t = cand_t;
            }
        }
        if best == 0 {
            best_t = l;
        }
        best_t
    }

    /// Reconstructs the full optimal episode schedule at `(p, lifespan)`;
    /// same contract (and output) as [`crate::ValueTable::episode`],
    /// including the shared coarse-grid drift guard
    /// (`crate::value::assemble_episode`).
    pub fn episode(&self, p: u32, lifespan: Time) -> Result<EpisodeSchedule> {
        let mut l = self.grid.to_ticks(lifespan);
        if l <= 0 {
            return Err(ModelError::NegativeLifespan { lifespan });
        }
        l = l.min(self.max_ticks);
        let mut periods_ticks: Vec<i64> = Vec::new();
        while l > 0 {
            let t = self.first_period_ticks(p, l).max(1).min(l);
            periods_ticks.push(t);
            l -= t;
        }
        crate::value::assemble_episode(&self.grid, &periods_ticks, lifespan)
    }
}

impl WorkOracle for CompressedTable {
    fn setup(&self) -> Time {
        self.grid.setup()
    }

    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        self.value(interrupts, lifespan)
    }
}

/// The compressed table's optimal strategy as an [`EpisodePolicy`].
#[derive(Clone)]
pub struct CompressedOptimalPolicy {
    table: Arc<CompressedTable>,
}

impl CompressedOptimalPolicy {
    /// Wraps a solved compressed table (the policy is always available —
    /// no `keep_policy` arena is needed).
    pub fn new(table: Arc<CompressedTable>) -> CompressedOptimalPolicy {
        CompressedOptimalPolicy { table }
    }

    /// The backing table.
    pub fn table(&self) -> &CompressedTable {
        &self.table
    }
}

impl EpisodePolicy for CompressedOptimalPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        self.table.episode(opp.interrupts(), opp.lifespan())
    }

    fn name(&self) -> String {
        format!(
            "optimal-dp-compressed(q={}, p≤{})",
            self.table.grid.q(),
            self.table.max_interrupts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{SolveOptions, ValueTable};
    use cyclesteal_core::time::secs;

    fn dense(q: u32, max_u: f64, p: u32) -> ValueTable {
        ValueTable::solve(secs(1.0), q, secs(max_u), p, SolveOptions::default())
    }

    fn solve_runs(q: u32, max_u: f64, p: u32) -> CompressedTable {
        CompressedTable::solve_with(
            secs(1.0),
            q,
            secs(max_u),
            p,
            SolveOptions {
                keep_policy: false,
                repr: RowRepr::Runs,
                ..SolveOptions::default()
            },
        )
    }

    #[test]
    fn matches_dense_values_exactly() {
        for (q, max_u, p) in [
            (4u32, 60.0, 3u32),
            (8, 120.0, 2),
            (32, 40.0, 4),
            (16, 1.0, 2),
        ] {
            let d = dense(q, max_u, p);
            let c = CompressedTable::solve(secs(1.0), q, secs(max_u), p);
            let r = solve_runs(q, max_u, p);
            assert_eq!(d.max_ticks(), c.max_ticks());
            assert_eq!(d.max_ticks(), r.max_ticks());
            for pp in 0..=p {
                for l in 0..=d.max_ticks() {
                    assert_eq!(
                        d.value_ticks(pp, l),
                        c.value_ticks(pp, l),
                        "value mismatch at q={q}, p={pp}, l={l}"
                    );
                    assert_eq!(
                        d.value_ticks(pp, l),
                        r.value_ticks(pp, l),
                        "run-backed value mismatch at q={q}, p={pp}, l={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_dense_argmax_exactly() {
        let d = dense(8, 100.0, 3);
        let c = CompressedTable::solve(secs(1.0), 8, secs(100.0), 3);
        let r = solve_runs(8, 100.0, 3);
        for p in 0..=3u32 {
            for l in 1..=d.max_ticks() {
                assert_eq!(
                    d.first_period_ticks(p, l),
                    c.first_period_ticks(p, l),
                    "argmax mismatch at p={p}, l={l}"
                );
                assert_eq!(
                    d.first_period_ticks(p, l),
                    r.first_period_ticks(p, l),
                    "run-backed argmax mismatch at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn episodes_are_bit_identical_to_dense() {
        let d = dense(16, 200.0, 2);
        let c = CompressedTable::solve(secs(1.0), 16, secs(200.0), 2);
        let r = solve_runs(16, 200.0, 2);
        for p in 1..=2u32 {
            for &u in &[17.0, 63.0, 128.5, 200.0] {
                let de = d.episode(p, secs(u)).unwrap();
                let ce = c.episode(p, secs(u)).unwrap();
                let re = r.episode(p, secs(u)).unwrap();
                assert_eq!(de.len(), ce.len(), "period count at p={p}, U={u}");
                assert_eq!(de.len(), re.len(), "run period count at p={p}, U={u}");
                for k in 0..de.len() {
                    assert_eq!(de.period(k), ce.period(k), "period {k} at p={p}, U={u}");
                    assert_eq!(de.period(k), re.period(k), "run period {k} at p={p}, U={u}");
                }
            }
        }
    }

    #[test]
    fn row_size_tracks_loss_not_lifespan() {
        // Doubling the lifespan must not double the skeleton: breakpoints
        // scale like the √-loss, not like L.
        let a = CompressedTable::solve(secs(1.0), 16, secs(500.0), 2);
        let b = CompressedTable::solve(secs(1.0), 16, secs(2000.0), 2);
        let (ka, kb) = (a.breakpoints(2), b.breakpoints(2));
        assert!(
            (kb as f64) < 3.0 * ka as f64,
            "4× lifespan grew breakpoints {ka} -> {kb} (≥3×): not sublinear"
        );
        // And the compressed form must beat the dense arena handily.
        let d = dense(16, 2000.0, 2);
        assert!(
            d.memory_bytes() >= 10 * b.memory_bytes(),
            "dense {} vs compressed {}",
            d.memory_bytes(),
            b.memory_bytes()
        );
    }

    #[test]
    fn run_backed_rows_store_fewer_descriptors() {
        // Second-order compression: the stored descriptor count and the
        // footprint both drop below the flat list's, while the logical
        // breakpoints stay identical.
        let flat = CompressedTable::solve(secs(1.0), 16, secs(4000.0), 2);
        let runs = solve_runs(16, 4000.0, 2);
        assert_eq!(flat.breakpoints(2), runs.breakpoints(2));
        assert!(
            runs.stored_breakpoints(2) * 2 < flat.stored_breakpoints(2),
            "runs stored {} of {} flat descriptors — second-order compression inert",
            runs.stored_breakpoints(2),
            flat.stored_breakpoints(2)
        );
        assert!(
            runs.memory_bytes() < flat.memory_bytes(),
            "run-backed table larger than flat list: {} vs {}",
            runs.memory_bytes(),
            flat.memory_bytes()
        );
        assert_eq!(flat.repr_name(), "breakpoint");
        assert_eq!(runs.repr_name(), "run");
    }

    #[test]
    fn degenerate_lifespans() {
        // L = 0: one all-zero state per level.
        let c = CompressedTable::solve(secs(1.0), 8, secs(0.0), 2);
        assert_eq!(c.max_ticks(), 0);
        for p in 0..=2 {
            assert_eq!(c.value_ticks(p, 0), 0);
        }
        assert!(c.episode(1, secs(0.0)).is_err());
        // L = 1 tick: still inside every zero region.
        let c = CompressedTable::solve(secs(1.0), 8, secs(0.125), 2);
        assert_eq!(c.max_ticks(), 1);
        assert_eq!(c.value_ticks(1, 1), 0);
        let e = c.episode(1, secs(0.125)).unwrap();
        assert_eq!(e.len(), 1);
        // Run-backed degenerate rows behave identically.
        let r = solve_runs(8, 0.125, 2);
        assert_eq!(r.max_ticks(), 1);
        assert_eq!(r.value_ticks(1, 1), 0);
    }

    #[test]
    fn interpolation_matches_dense() {
        let d = dense(8, 64.0, 2);
        let c = CompressedTable::solve(secs(1.0), 8, secs(64.0), 2);
        for &u in &[0.06, 10.33, 29.99, 64.0] {
            assert_eq!(d.value(2, secs(u)), c.value(2, secs(u)), "U={u}");
        }
    }

    #[test]
    fn value_runs_expand_to_the_exact_staircase() {
        // The streaming descriptors must reproduce value_ticks bit for
        // bit at every covered tick, for every window placement and
        // under both skeleton representations.
        let flat = CompressedTable::solve(secs(1.0), 8, secs(120.0), 3);
        let runs = solve_runs(8, 120.0, 3);
        let max = flat.max_ticks();
        for table in [&flat, &runs] {
            for p in 0..=3u32 {
                for (first, count) in [
                    (0, 1),
                    (0, max),
                    (0, max + 1),
                    (1, max),
                    (max, 1),
                    (7, 200),
                    (max / 2, max / 3),
                ] {
                    let got = expand_value_runs(&table.value_runs(p, first, count));
                    assert_eq!(got.len() as i64, count, "p={p} first={first}");
                    for (j, &v) in got.iter().enumerate() {
                        assert_eq!(
                            v,
                            table.value_ticks(p, first + j as i64),
                            "repr={} p={p} tick={}",
                            table.repr_name(),
                            first + j as i64
                        );
                    }
                }
            }
        }
        // Both representations emit the SAME descriptors, not merely
        // equal expansions: the accessor reads only the shared
        // flats_after interface.
        for p in 0..=3u32 {
            assert_eq!(
                flat.value_runs(p, 0, max + 1),
                runs.value_runs(p, 0, max + 1)
            );
        }
        // Compression: one descriptor per breakpoint in range (the
        // O(√(QL) + pQ) flat count), not one per tick.
        let descriptors = flat.value_runs(3, 0, max + 1).len();
        assert!(
            descriptors <= flat.breakpoints(3) * 2 + 2,
            "{descriptors} runs vs {} breakpoints",
            flat.breakpoints(3)
        );
        assert!(
            (descriptors as i64) * 2 < max,
            "{descriptors} runs for {max} ticks — no compression win"
        );
    }
}
