//! Breakpoint-compressed `W^(p)[L]` tables.
//!
//! ## Why rows compress
//!
//! Every row `W^(p)[·]` is nondecreasing, 1-Lipschitz and integer on the
//! tick grid, so consecutive differences are bits: each tick either banks
//! a tick of work (slope 1) or loses it to the adversary (slope 0). The
//! total number of slope-0 ticks in a row is exactly the row's final loss
//! `L − W^(p)(L)`, which the paper bounds by `O(√(QL) + pQ)` — vanishing
//! relative to `L`. A row is therefore stored as its **flat-tick list**
//! (the positions where the slope is 0, i.e. the breakpoint skeleton of
//! the piecewise-linear row) plus the zero-region prefix, and evaluated
//! by binary search: `W(l) = (l − z) − #{flats ≤ l}` for `l` past the
//! zero region `[0, z]`.
//!
//! ## Building level `p` on the skeleton of level `p−1`
//!
//! The builder runs the same monotone frontier sweep as the dense solver
//! (see [`crate::value`]): the crossing residual `s*(l)` only advances
//! with `l`, and every value the recursion reads — `W^(p−1)` and `W^(p)`
//! at the frontier, `W^(p)(l−1)` for the wait candidate — is read at a
//! (near-)monotone position. Lagging cursors into the flat-tick lists
//! serve those reads in `O(1)` amortized, so level `p` is built directly
//! from level `p−1`'s compressed skeleton in `O(L)` time and `O(k)`
//! memory, never materializing a dense row. Total: `O(p·L)` time,
//! `O(p·k)` memory with `k ≪ L` — lifespans in the `10^8`-tick range fit
//! in a few megabytes where the dense arena would need tens of
//! gigabytes.
//!
//! ## Policy queries without an argmax arena
//!
//! The optimal first period at `(p, l)` is re-derived at query time from
//! the compressed rows alone: binary search the crossing residual
//! (`h(s) = s + W^(p−1)(s) − W^(p)(s)` is nondecreasing), then apply the
//! dense solver's exact tie-breaks. [`CompressedTable::episode`] is
//! therefore bit-identical to the dense [`crate::ValueTable::episode`]
//! at `O(m log L log k)` cost per reconstruction and zero bytes of
//! policy storage.

use crate::grid::Grid;
use cyclesteal_core::error::{ModelError, Result};
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::{EpisodePolicy, WorkOracle};
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::{Time, Work};
use std::sync::Arc;

/// One compressed row: the zero-region prefix plus the sorted positions
/// of the slope-0 ticks past it. Shared with the event-driven builder in
/// [`crate::event`], which emits rows in this exact form.
#[derive(Clone, Debug, Default)]
pub(crate) struct CompressedRow {
    /// Largest `l` with `W(l) = 0` (the whole row when never positive).
    pub(crate) zero_until: i64,
    /// Ticks `l > zero_until` where `W(l) = W(l−1)`, strictly increasing.
    pub(crate) flats: Vec<i64>,
}

impl CompressedRow {
    /// `W(l)` by rank query over the flat ticks.
    #[inline]
    pub(crate) fn value(&self, l: i64) -> i64 {
        if l <= self.zero_until {
            return 0;
        }
        let rank = self.flats.partition_point(|&f| f <= l) as i64;
        (l - self.zero_until) - rank
    }

    /// Number of stored breakpoints (flat ticks + the zero-region edge).
    fn breakpoints(&self) -> usize {
        self.flats.len() + 1
    }

    fn memory_bytes(&self) -> usize {
        // Capacity, not len: the accounting must reflect real heap use
        // (build shrinks the vec, so the two normally coincide).
        std::mem::size_of::<CompressedRow>() + self.flats.capacity() * std::mem::size_of::<i64>()
    }
}

/// Amortized-O(1) evaluator for positions that move (nearly)
/// monotonically forward: keeps the rank `#{flats ≤ pos}` incrementally
/// instead of re-running the binary search of [`CompressedRow::value`].
/// Tolerates small retreats (the sweep interleaves `s` and `s+1`).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RowCursor {
    rank: usize,
}

impl RowCursor {
    #[inline]
    pub(crate) fn value(&mut self, row: &CompressedRow, flats: &[i64], pos: i64) -> i64 {
        while self.rank > 0 && flats[self.rank - 1] > pos {
            self.rank -= 1;
        }
        while self.rank < flats.len() && flats[self.rank] <= pos {
            self.rank += 1;
        }
        if pos <= row.zero_until {
            0
        } else {
            (pos - row.zero_until) - self.rank as i64
        }
    }
}

/// `W^(p)[L]` for all `p ≤ p_max`, `L ≤ L_max`, stored as breakpoint
/// skeletons: `O(p·k)` memory with `k ≪ L`, exact agreement with the
/// dense [`crate::ValueTable`] on values, argmax and episodes.
#[derive(Clone, Debug)]
pub struct CompressedTable {
    grid: Grid,
    max_ticks: i64,
    max_interrupts: u32,
    rows: Vec<CompressedRow>,
    /// Build-loop iterations summed over all levels: one per tick for the
    /// tick-walking build, one per breakpoint event for the event-driven
    /// build (see [`Self::events`]).
    events: u64,
}

/// Builds level `p` from the completed level `p−1` skeleton by the
/// monotone frontier sweep, recording only slope-0 ticks. Walks every
/// tick; the run-skipping alternative is [`crate::event`].
pub(crate) fn build_level(prev: &CompressedRow, n: i64, q: i64) -> CompressedRow {
    let mut cur = CompressedRow::default();
    let mut last = 0i64; // W^(p)(l−1)
    let mut frontier = 0i64; // crossing residual s*, nondecreasing in l
    let mut prev_at = RowCursor::default(); // reads prev at s / s+1
    let mut cur_at = RowCursor::default(); // reads cur at s / s+1

    for l in 1..=n {
        let mut best = last;
        if l > q {
            let tau = l - q;
            let s_cap = l - q - 1;
            while frontier < s_cap {
                let s1 = frontier + 1;
                let h =
                    s1 + prev_at.value(prev, &prev.flats, s1) - cur_at.value(&cur, &cur.flats, s1);
                if h <= tau {
                    frontier += 1;
                } else {
                    break;
                }
            }
            let s = frontier;
            let t_star = l - s;
            let mut cand = prev_at
                .value(prev, &prev.flats, s)
                .min((t_star - q) + cur_at.value(&cur, &cur.flats, s));
            if t_star > q + 1 {
                let v_left = prev_at
                    .value(prev, &prev.flats, s + 1)
                    .min((t_star - 1 - q) + cur_at.value(&cur, &cur.flats, s + 1));
                cand = cand.max(v_left);
            }
            if cand >= best {
                best = cand;
            }
        }

        let inc = best - last;
        debug_assert!(
            inc == 0 || inc == 1,
            "row not monotone 1-Lipschitz at l={l}: {last} -> {best}"
        );
        if best == 0 {
            cur.zero_until = l;
        } else if inc == 0 {
            cur.flats.push(l);
        }
        last = best;
    }
    // Incremental pushes leave up to 2× capacity slack; release it so
    // the memory accounting (and the actual footprint) stay tight.
    cur.flats.shrink_to_fit();
    cur
}

impl CompressedTable {
    /// Solves the game bottom-up for interrupt levels `0..=max_interrupts`
    /// and lifespans `0..=max_lifespan` at `ticks_per_setup` resolution,
    /// storing each level as its breakpoint skeleton. Walks every tick
    /// (`O(p·L)` time); for huge lifespans prefer [`Self::solve_with`]
    /// with [`crate::InnerLoop::EventDriven`].
    pub fn solve(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
    ) -> CompressedTable {
        Self::solve_with(
            setup,
            ticks_per_setup,
            max_lifespan,
            max_interrupts,
            crate::value::SolveOptions {
                keep_policy: false,
                inner: crate::value::InnerLoop::FrontierSweep,
                threads: 1,
            },
        )
    }

    /// [`Self::solve`] with an explicit inner-build selection.
    /// [`crate::InnerLoop::EventDriven`] jumps lifespan ahead run by run
    /// (`O(p·k log k)` time, `k` = breakpoints — see [`crate::event`]);
    /// every other variant walks the ticks with the monotone frontier
    /// sweep. Both emit identical skeletons; `keep_policy` is ignored
    /// (compressed tables re-derive the policy at query time for free).
    pub fn solve_with(
        setup: Time,
        ticks_per_setup: u32,
        max_lifespan: Time,
        max_interrupts: u32,
        opts: crate::value::SolveOptions,
    ) -> CompressedTable {
        let grid = Grid::new(setup, ticks_per_setup);
        let n = grid.to_ticks(max_lifespan).max(0);
        let q = grid.q();
        let event_driven = opts.inner == crate::value::InnerLoop::EventDriven;

        // `threads` only parallelizes the per-level breakpoint-run
        // expansion inside the event-driven builder — the build loop (and
        // with it the event count and the emitted skeleton) is identical
        // at every thread count. The tick-walking build stays sequential.
        let threads = opts.resolved_threads();
        let mut rows = Vec::with_capacity(max_interrupts as usize + 1);
        let mut events: u64 = 0;
        // Level 0: W^(0)(l) = l ⊖ Q — a pure zero region, no flats after.
        rows.push(CompressedRow {
            zero_until: q.min(n),
            flats: Vec::new(),
        });
        for _p in 1..=max_interrupts {
            let prev = rows.last().expect("level p−1 present");
            let row = if event_driven {
                let (row, level_events) = crate::event::build_level_events(prev, n, q, threads);
                events += level_events;
                row
            } else {
                events += n.max(0) as u64;
                build_level(prev, n, q)
            };
            rows.push(row);
        }

        CompressedTable {
            grid,
            max_ticks: n,
            max_interrupts,
            rows,
            events,
        }
    }

    /// Build-loop iterations summed over all levels: `p·L` for the
    /// tick-walking build, the number of breakpoint events (skips, stalls
    /// and boundary single-steps) for the event-driven build. The
    /// `perf_dp` bench reports this as `event_count`.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The grid the table was solved on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Largest lifespan (in ticks) the table covers.
    pub fn max_ticks(&self) -> i64 {
        self.max_ticks
    }

    /// Largest lifespan the table covers.
    pub fn max_lifespan(&self) -> Time {
        self.grid.to_time(self.max_ticks)
    }

    /// Largest interrupt budget the table covers.
    pub fn max_interrupts(&self) -> u32 {
        self.max_interrupts
    }

    /// Stored breakpoints at level `p` (resolution-independent row size).
    pub fn breakpoints(&self, p: u32) -> usize {
        self.rows[p.min(self.max_interrupts) as usize].breakpoints()
    }

    /// Bytes held by all row skeletons — the number the `perf_dp` bench
    /// compares against [`crate::ValueTable::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.rows.iter().map(CompressedRow::memory_bytes).sum()
    }

    /// Exact grid value in work ticks; same domain contract as
    /// [`crate::ValueTable::value_ticks`].
    #[inline]
    pub fn value_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        self.rows[p.min(self.max_interrupts) as usize].value(l)
    }

    /// Value at an arbitrary lifespan by linear interpolation between grid
    /// points; same contract as [`crate::ValueTable::value`].
    pub fn value(&self, p: u32, lifespan: Time) -> Work {
        let tick = self.grid.tick().get();
        let x = lifespan.get() / tick;
        assert!(
            x >= -1e-9 && x <= self.max_ticks as f64 + 1e-9,
            "lifespan {lifespan} outside solved range {}",
            self.max_lifespan()
        );
        let x = x.clamp(0.0, self.max_ticks as f64);
        let i = x.floor() as i64;
        let row = &self.rows[p.min(self.max_interrupts) as usize];
        if i >= self.max_ticks {
            return Time::new(row.value(self.max_ticks) as f64 * tick);
        }
        let frac = x - i as f64;
        let lo = row.value(i) as f64;
        let hi = row.value(i + 1) as f64;
        Time::new((lo + (hi - lo) * frac) * tick)
    }

    /// The optimal first-period length (in ticks) at state `(p, l)`,
    /// re-derived from the skeletons with the dense solver's exact
    /// tie-breaks — bit-identical to
    /// [`crate::ValueTable::first_period_ticks`] under the default
    /// frontier-sweep/bisection inner loops.
    pub fn first_period_ticks(&self, p: u32, l: i64) -> i64 {
        assert!(
            (0..=self.max_ticks).contains(&l),
            "lifespan {l} ticks outside solved range 0..={}",
            self.max_ticks
        );
        let p = p.min(self.max_interrupts);
        if l == 0 {
            return 0;
        }
        if p == 0 {
            // Level 0: a single period consuming the whole lifespan.
            return l;
        }
        let q = self.grid.q();
        let prev = &self.rows[p as usize - 1];
        let cur = &self.rows[p as usize];

        let mut best = cur.value(l - 1);
        let mut best_t: i64 = 1;
        if l > q {
            let tau = l - q;
            // Largest s ∈ [0, l−q−1] with h(s) = s + prev(s) − cur(s) ≤ τ;
            // h is nondecreasing and h(0) = 0, so the search is total.
            let (mut lo_s, mut hi_s) = (0i64, l - q - 1);
            while lo_s < hi_s {
                let mid = lo_s + (hi_s - lo_s + 1) / 2;
                if mid + prev.value(mid) - cur.value(mid) <= tau {
                    lo_s = mid;
                } else {
                    hi_s = mid - 1;
                }
            }
            let s = lo_s;
            let t_star = l - s;
            let v_star = prev.value(s).min((t_star - q) + cur.value(s));
            let (cand_t, cand_v) = if t_star > q + 1 {
                let v_left = prev.value(s + 1).min((t_star - 1 - q) + cur.value(s + 1));
                if v_left > v_star {
                    (t_star - 1, v_left)
                } else {
                    (t_star, v_star)
                }
            } else {
                (t_star, v_star)
            };
            if cand_v >= best {
                best = cand_v;
                best_t = cand_t;
            }
        }
        if best == 0 {
            best_t = l;
        }
        best_t
    }

    /// Reconstructs the full optimal episode schedule at `(p, lifespan)`;
    /// same contract (and output) as [`crate::ValueTable::episode`],
    /// including the shared coarse-grid drift guard
    /// (`crate::value::assemble_episode`).
    pub fn episode(&self, p: u32, lifespan: Time) -> Result<EpisodeSchedule> {
        let mut l = self.grid.to_ticks(lifespan);
        if l <= 0 {
            return Err(ModelError::NegativeLifespan { lifespan });
        }
        l = l.min(self.max_ticks);
        let mut periods_ticks: Vec<i64> = Vec::new();
        while l > 0 {
            let t = self.first_period_ticks(p, l).max(1).min(l);
            periods_ticks.push(t);
            l -= t;
        }
        crate::value::assemble_episode(&self.grid, &periods_ticks, lifespan)
    }
}

impl WorkOracle for CompressedTable {
    fn setup(&self) -> Time {
        self.grid.setup()
    }

    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        self.value(interrupts, lifespan)
    }
}

/// The compressed table's optimal strategy as an [`EpisodePolicy`].
#[derive(Clone)]
pub struct CompressedOptimalPolicy {
    table: Arc<CompressedTable>,
}

impl CompressedOptimalPolicy {
    /// Wraps a solved compressed table (the policy is always available —
    /// no `keep_policy` arena is needed).
    pub fn new(table: Arc<CompressedTable>) -> CompressedOptimalPolicy {
        CompressedOptimalPolicy { table }
    }

    /// The backing table.
    pub fn table(&self) -> &CompressedTable {
        &self.table
    }
}

impl EpisodePolicy for CompressedOptimalPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        self.table.episode(opp.interrupts(), opp.lifespan())
    }

    fn name(&self) -> String {
        format!(
            "optimal-dp-compressed(q={}, p≤{})",
            self.table.grid.q(),
            self.table.max_interrupts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{SolveOptions, ValueTable};
    use cyclesteal_core::time::secs;

    fn dense(q: u32, max_u: f64, p: u32) -> ValueTable {
        ValueTable::solve(secs(1.0), q, secs(max_u), p, SolveOptions::default())
    }

    #[test]
    fn matches_dense_values_exactly() {
        for (q, max_u, p) in [
            (4u32, 60.0, 3u32),
            (8, 120.0, 2),
            (32, 40.0, 4),
            (16, 1.0, 2),
        ] {
            let d = dense(q, max_u, p);
            let c = CompressedTable::solve(secs(1.0), q, secs(max_u), p);
            assert_eq!(d.max_ticks(), c.max_ticks());
            for pp in 0..=p {
                for l in 0..=d.max_ticks() {
                    assert_eq!(
                        d.value_ticks(pp, l),
                        c.value_ticks(pp, l),
                        "value mismatch at q={q}, p={pp}, l={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_dense_argmax_exactly() {
        let d = dense(8, 100.0, 3);
        let c = CompressedTable::solve(secs(1.0), 8, secs(100.0), 3);
        for p in 0..=3u32 {
            for l in 1..=d.max_ticks() {
                assert_eq!(
                    d.first_period_ticks(p, l),
                    c.first_period_ticks(p, l),
                    "argmax mismatch at p={p}, l={l}"
                );
            }
        }
    }

    #[test]
    fn episodes_are_bit_identical_to_dense() {
        let d = dense(16, 200.0, 2);
        let c = CompressedTable::solve(secs(1.0), 16, secs(200.0), 2);
        for p in 1..=2u32 {
            for &u in &[17.0, 63.0, 128.5, 200.0] {
                let de = d.episode(p, secs(u)).unwrap();
                let ce = c.episode(p, secs(u)).unwrap();
                assert_eq!(de.len(), ce.len(), "period count at p={p}, U={u}");
                for k in 0..de.len() {
                    assert_eq!(de.period(k), ce.period(k), "period {k} at p={p}, U={u}");
                }
            }
        }
    }

    #[test]
    fn row_size_tracks_loss_not_lifespan() {
        // Doubling the lifespan must not double the skeleton: breakpoints
        // scale like the √-loss, not like L.
        let a = CompressedTable::solve(secs(1.0), 16, secs(500.0), 2);
        let b = CompressedTable::solve(secs(1.0), 16, secs(2000.0), 2);
        let (ka, kb) = (a.breakpoints(2), b.breakpoints(2));
        assert!(
            (kb as f64) < 3.0 * ka as f64,
            "4× lifespan grew breakpoints {ka} -> {kb} (≥3×): not sublinear"
        );
        // And the compressed form must beat the dense arena handily.
        let d = dense(16, 2000.0, 2);
        assert!(
            d.memory_bytes() >= 10 * b.memory_bytes(),
            "dense {} vs compressed {}",
            d.memory_bytes(),
            b.memory_bytes()
        );
    }

    #[test]
    fn degenerate_lifespans() {
        // L = 0: one all-zero state per level.
        let c = CompressedTable::solve(secs(1.0), 8, secs(0.0), 2);
        assert_eq!(c.max_ticks(), 0);
        for p in 0..=2 {
            assert_eq!(c.value_ticks(p, 0), 0);
        }
        assert!(c.episode(1, secs(0.0)).is_err());
        // L = 1 tick: still inside every zero region.
        let c = CompressedTable::solve(secs(1.0), 8, secs(0.125), 2);
        assert_eq!(c.max_ticks(), 1);
        assert_eq!(c.value_ticks(1, 1), 0);
        let e = c.episode(1, secs(0.125)).unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn interpolation_matches_dense() {
        let d = dense(8, 64.0, 2);
        let c = CompressedTable::solve(secs(1.0), 8, secs(64.0), 2);
        for &u in &[0.06, 10.33, 29.99, 64.0] {
            assert_eq!(d.value(2, secs(u)), c.value(2, secs(u)), "U={u}");
        }
    }
}
