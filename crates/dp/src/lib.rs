//! # cyclesteal-dp
//!
//! The exact game solver for the guaranteed-output cycle-stealing model:
//! the ground truth every guideline in the paper is measured against.
//!
//! Five layers, fast to slow and small to large:
//!
//! * [`value::ValueTable`] — the dense solver: `W^(p)[L]` exactly on an
//!   integer tick grid (the paper's §4 bootstrapping, executed rather
//!   than assumed), stored in one flat arena and solved with a monotone
//!   **frontier sweep** in `O(p·L)` (bisection and linear-scan inner
//!   loops remain behind [`value::SolveOptions`] as ablations).
//!   Reconstructs optimal episode schedules and implements
//!   [`cyclesteal_core::policy::WorkOracle`], so Theorem 4.3's equalizer
//!   can be driven by exact values for any `p`. With
//!   `SolveOptions { threads, .. }` the solve parallelizes **inside**
//!   each level — the sixth solver path: levels stay sequential, but
//!   each level is skeletonized first (event-driven, `O(k log k)`) and
//!   then expanded into the dense arena by workers sweeping disjoint
//!   `l`-ranges, each resumed from a precomputed `h`-crossing anchor.
//!   Values, argmax and episodes are bit-identical to the sequential
//!   sweep at every thread count (pinned by
//!   `tests/equivalence_props.rs` and `tests/parallel_props.rs`).
//! * [`compressed::CompressedTable`] — the same values stored as
//!   per-level **breakpoint skeletons** (`O(p·k)` memory, `k ≪ L`):
//!   rows are 1-Lipschitz staircases whose flat ticks number only
//!   `O(√(QL) + pQ)`, so lifespans in the `10^8`-tick range fit in
//!   megabytes. Values, argmax and episodes agree with the dense solver
//!   bit for bit.
//! * [`run`] — **second-order (arithmetic-run) compression** of those
//!   skeletons: the flat ticks recur near-arithmetically (once per
//!   optimal period), so `RowRepr::Runs` stores each level as runs of
//!   (start, fixed-point common difference, length) plus one `i8`
//!   residual per jittery breakpoint — stored descriptors track *regime
//!   changes* instead of breakpoints (an order of magnitude fewer at
//!   the `10⁹`-tick bench point, ≈1 byte per breakpoint), and every
//!   query path reads through the same cursors, so the output stays
//!   bit-identical. Selected with `SolveOptions { repr: RowRepr::Runs,
//!   .. }`; [`cache::TableCache::get_compressed`] caches run-backed
//!   tables by default.
//! * [`event`] — the **event-driven (run-skipping) build** of those
//!   skeletons: between breakpoints every sweep quantity is linear in
//!   `L`, so the builder jumps lifespan event to event (stall ends,
//!   flat-tick onsets, branch/regime switches) in `O(p·k log k)` time —
//!   `10^9`-tick tables in well under a second, bit-identical output.
//!   Selected with `SolveOptions { inner: InnerLoop::EventDriven, .. }`
//!   through [`compressed::CompressedTable::solve_with`]; emits either
//!   representation directly, without a flat-list detour.
//! * [`cache::TableCache`] — one solve per `(setup, resolution, p_max)`
//!   serves a whole `(U/c, p)` sweep; independent configurations solve
//!   in parallel through `cyclesteal-par`, and
//!   [`cache::TableCache::get_compressed`] caches event-driven
//!   skeletons for huge-horizon sweeps.
//! * [`snapshot`] — the persistence boundary: lossless decomposition of
//!   a [`compressed::CompressedTable`] into primitive, representation-
//!   native parts and exact (validated) reconstruction — what the
//!   `cyclesteal-store` snapshot format serializes, so a solved `10⁹`-
//!   tick table can be written to disk once and warm-started by every
//!   later process instead of re-solved.
//! * [`eval::evaluate_policy`] — the guaranteed work of an *arbitrary*
//!   policy against the optimal adversary, used by the E-series benches
//!   to score the §3 guidelines and the baselines;
//!   [`eval::evaluate_policy_compressed`] carries the same scoring to
//!   `10^7`–`10^9` tick grids on adaptively-sampled piecewise-linear
//!   rows instead of dense `f64` arenas, with collinear knots merged so
//!   continuations read from run-compressed knot rows.
//!
//! A symbol-by-symbol map from the paper's notation (`W^(p)[L]`, `Q`,
//! `h(s)`, episodes, the `h`-crossing anchor) to the types and functions
//! here lives in `docs/NOTATION.md` at the repository root.
//!
//! ```
//! use cyclesteal_core::prelude::*;
//! use cyclesteal_dp::value::{SolveOptions, ValueTable};
//! use cyclesteal_dp::compressed::CompressedTable;
//!
//! let c = secs(1.0);
//! let table = ValueTable::solve(c, 32, secs(200.0), 2, SolveOptions::default());
//! // Prop 4.1(b): more potential interrupts can only hurt.
//! assert!(table.value(2, secs(200.0)) <= table.value(1, secs(200.0)));
//! // §5.2's closed form is confirmed by the solver at p = 1:
//! let diff = (table.value(1, secs(200.0)) - w1_exact(secs(200.0), c)).abs();
//! assert!(diff.get() < 0.75);
//! // The compressed skeleton stores the same function in a fraction of
//! // the bytes:
//! let small = CompressedTable::solve(c, 32, secs(200.0), 2);
//! assert_eq!(small.value_ticks(2, 6400), table.value_ticks(2, 6400));
//! assert!(small.memory_bytes() < table.memory_bytes());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod compressed;
pub mod eval;
pub mod event;
pub mod grid;
pub mod profile;
pub mod run;
pub mod snapshot;
pub mod value;

pub use cache::{CacheStats, EvictHook, ShardStats, SolveConfig, TableCache};
pub use compressed::{expand_value_runs, CompressedOptimalPolicy, CompressedTable, ValueRun};
pub use eval::{
    evaluate_policy, evaluate_policy_compressed, CompressedEvalOptions, CompressedPolicyValue,
    EvalOptions, PolicyValue,
};
pub use grid::Grid;
pub use profile::{Phase, PhaseRecorder, PhaseTimings, ProfileSink, PHASE_COUNT};
pub use snapshot::{PartsError, RowParts, RunParts, TableParts};
pub use value::{InnerLoop, OptimalPolicy, RowRepr, SolveOptions, ValueTable};

#[cfg(test)]
mod cross_tests {
    //! Cross-module validations: Theorem 4.3's equalizer driven by the
    //! exact oracle must reproduce the exact game value.
    use crate::value::{SolveOptions, ValueTable};
    use cyclesteal_core::prelude::*;

    #[test]
    fn equalizer_with_exact_oracle_matches_game_value() {
        let c = secs(1.0);
        let table = ValueTable::solve(c, 32, secs(160.0), 3, SolveOptions::default());
        for p in 1..=3u32 {
            for &u in &[40.0, 90.0, 160.0] {
                let opp = Opportunity::from_units(u, 1.0, p);
                let (sched, value) = equalized_schedule(&table, &opp).unwrap();
                let exact = table.value(p, secs(u));
                assert!(
                    (value - exact).abs() <= secs(0.25),
                    "p={p} U={u}: equalizer {value} vs DP {exact}"
                );
                assert!(sched.total().approx_eq(secs(u), secs(1e-6)));
                // The audit agrees with the constructed value.
                let report = verify_equalization(&table, &opp, &sched);
                assert!(
                    (report.value - value).abs() <= secs(0.05),
                    "p={p} U={u}: audit {} vs constructed {}",
                    report.value,
                    value
                );
            }
        }
    }

    #[test]
    fn equalizer_accepts_the_compressed_oracle_too() {
        // WorkOracle is representation-blind: the breakpoint table drives
        // Theorem 4.3 exactly like the dense one.
        let c = secs(1.0);
        let table = crate::compressed::CompressedTable::solve(c, 32, secs(120.0), 2);
        let opp = Opportunity::from_units(120.0, 1.0, 2);
        let (sched, value) = equalized_schedule(&table, &opp).unwrap();
        let exact = table.value(2, secs(120.0));
        assert!((value - exact).abs() <= secs(0.25));
        assert!(sched.total().approx_eq(secs(120.0), secs(1e-6)));
    }

    #[test]
    fn fully_productive_restriction_is_lossless_here() {
        // §4.1 admits the fully-productive restriction is a heuristic.
        // The DP searches ALL schedules (including nonproductive periods);
        // its optimum matching the equalizer's fully-productive
        // construction (above) and §5.2 (value.rs tests) is numerical
        // evidence the restriction loses nothing. Here: reconstructed
        // optimal episodes are always productive outside the zero region.
        let c = secs(1.0);
        let table = ValueTable::solve(c, 16, secs(120.0), 2, SolveOptions::default());
        for p in 1..=2u32 {
            for &u in &[20.0, 60.0, 120.0] {
                if table.value(p, secs(u)) > Work::ZERO {
                    let s = table.episode(p, secs(u)).unwrap();
                    assert!(
                        s.make_productive(c).work_uninterrupted(c) >= s.work_uninterrupted(c),
                        "Thm 4.1 sanity at p={p}, U={u}"
                    );
                }
            }
        }
    }
}
