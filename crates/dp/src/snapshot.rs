//! Table introspection for persistence: a lossless decomposition of a
//! [`CompressedTable`] into plain data ([`TableParts`]) and the exact
//! inverse ([`CompressedTable::from_parts`]).
//!
//! The solver's row skeletons are internal types (`RowSkeleton`,
//! `RunRow`, `ArithRun`) whose layout the serialization layer
//! (`cyclesteal-store`) must not depend on. This module is the stable
//! boundary between the two: [`CompressedTable::to_parts`] flattens a
//! table into primitive vectors **in its native representation** — flat
//! tick lists stay flat lists, arithmetic runs stay run descriptors plus
//! the shared residual stream, nothing is re-encoded — and
//! [`CompressedTable::from_parts`] rebuilds the identical table,
//! re-deriving only the fields that are pure functions of the rest
//! (per-run residual offsets, cumulative ranks, flat counts).
//!
//! Round-tripping is **bit-identical**: `from_parts(to_parts(t)) == t`
//! under the structural [`PartialEq`] on [`CompressedTable`], for both
//! [`RowRepr`] variants and any solve configuration (the store crate's
//! property suite pins this). Reconstruction validates enough structure
//! that a corrupt `TableParts` yields an [`Err`], never a panic: row
//! counts, flat-tick monotonicity, run lengths, residual-stream length
//! and cross-run ordering are all checked before any table is built.
//! (Per-flat monotonicity *inside* one arithmetic run is deliberately
//! not walked — it would cost `O(k)` on every warm start — so the
//! checksums of the store layer remain the integrity guarantee for the
//! residual bytes themselves.)

use crate::compressed::{CompressedRow, CompressedTable, RowSkeleton};
use crate::grid::Grid;
use crate::run::{ArithRun, RunRow, NO_RES};
use crate::value::RowRepr;
use cyclesteal_core::time::Time;

/// A [`CompressedTable`] flattened into primitive, representation-native
/// parts — everything needed to rebuild the table exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct TableParts {
    /// The setup charge `c` of the solved grid.
    pub setup: Time,
    /// Grid resolution in ticks per setup charge.
    pub ticks_per_setup: u32,
    /// Largest lifespan (in ticks) the table covers.
    pub max_ticks: i64,
    /// Largest interrupt budget the table covers.
    pub max_interrupts: u32,
    /// The row representation the table was solved into.
    pub repr: RowRepr,
    /// Build-loop iteration count (see [`CompressedTable::events`]).
    pub events: u64,
    /// One entry per level `0..=max_interrupts`, in level order.
    pub rows: Vec<RowParts>,
}

/// One compressed row in its native skeleton representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowParts {
    /// First-order skeleton: sorted flat ticks past the zero region.
    Flats {
        /// Largest `l` with `W(l) = 0`.
        zero_until: i64,
        /// Strictly increasing flat ticks, all `> zero_until`.
        flats: Vec<i64>,
    },
    /// Second-order skeleton: arithmetic runs + shared residual stream.
    Runs {
        /// Largest `l` with `W(l) = 0`.
        zero_until: i64,
        /// Run descriptors, in increasing flat-tick order.
        runs: Vec<RunParts>,
        /// Residual bytes of every run with `has_residuals`, concatenated
        /// in run order (`len` bytes per such run).
        residuals: Vec<i8>,
    },
}

/// One arithmetic-run descriptor, shorn of the derived fields (`res_off`
/// and `rank_before` are recomputed on reconstruction — they are pure
/// functions of the run sequence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunParts {
    /// First flat tick of the run.
    pub start: i64,
    /// Fixed-point (Q48.16) common difference between modeled flats.
    pub step_fx: i64,
    /// Number of flats the run covers (≥ 1).
    pub len: u32,
    /// Whether the run stores `len` residual bytes (an all-zero residual
    /// block is elided and this is `false`).
    pub has_residuals: bool,
}

/// Why a [`TableParts`] value cannot be a [`CompressedTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartsError {
    /// The table-level metadata is inconsistent (bad grid, wrong row
    /// count, negative extent, …).
    Meta(String),
    /// One row's skeleton data is structurally invalid.
    Row {
        /// The interrupt level of the offending row.
        level: usize,
        /// What was wrong with it.
        what: String,
    },
}

impl std::fmt::Display for PartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartsError::Meta(what) => write!(f, "invalid table metadata: {what}"),
            PartsError::Row { level, what } => write!(f, "invalid row at level {level}: {what}"),
        }
    }
}

impl std::error::Error for PartsError {}

fn meta_err(what: impl Into<String>) -> PartsError {
    PartsError::Meta(what.into())
}

fn row_err(level: usize, what: impl Into<String>) -> PartsError {
    PartsError::Row {
        level,
        what: what.into(),
    }
}

/// Validates one flat-list row: strictly increasing, past the zero
/// region, inside the solved extent.
fn check_flats(
    level: usize,
    zero_until: i64,
    flats: &[i64],
    max_ticks: i64,
) -> Result<(), PartsError> {
    if !(0..=max_ticks).contains(&zero_until) {
        return Err(row_err(
            level,
            format!("zero_until {zero_until} outside [0, {max_ticks}]"),
        ));
    }
    let mut prev = zero_until;
    for &f in flats {
        if f <= prev {
            return Err(row_err(
                level,
                format!("flat tick {f} not strictly increasing past {prev}"),
            ));
        }
        prev = f;
    }
    if prev > max_ticks {
        return Err(row_err(
            level,
            format!("flat tick {prev} beyond solved extent {max_ticks}"),
        ));
    }
    Ok(())
}

/// Rebuilds a [`RunRow`] from its descriptors, re-deriving residual
/// offsets, cumulative ranks and the flat count, with endpoint-level
/// structural validation (see the module docs for what is *not* walked).
fn runs_from_parts(
    level: usize,
    zero_until: i64,
    runs: &[RunParts],
    residuals: Vec<i8>,
    max_ticks: i64,
) -> Result<RunRow, PartsError> {
    if !(0..=max_ticks).contains(&zero_until) {
        return Err(row_err(
            level,
            format!("zero_until {zero_until} outside [0, {max_ticks}]"),
        ));
    }
    let mut out = RunRow {
        runs: Vec::with_capacity(runs.len()),
        ..RunRow::default()
    };
    let mut res_cursor: usize = 0;
    let mut prev_last = zero_until;
    for rp in runs {
        if rp.len == 0 {
            return Err(row_err(level, "run of length 0"));
        }
        if rp.step_fx < 1 {
            return Err(row_err(
                level,
                format!("non-positive step_fx {}", rp.step_fx),
            ));
        }
        if rp.len > ArithRun::len_cap(rp.step_fx) {
            return Err(row_err(
                level,
                format!("run length {} overflows step {}", rp.len, rp.step_fx),
            ));
        }
        let res_off = if rp.has_residuals {
            let off = res_cursor;
            res_cursor = off
                .checked_add(rp.len as usize)
                .ok_or_else(|| row_err(level, "residual offsets overflow"))?;
            if res_cursor > residuals.len() {
                return Err(row_err(
                    level,
                    format!(
                        "residual stream too short: need {res_cursor}, have {}",
                        residuals.len()
                    ),
                ));
            }
            off as u32
        } else {
            NO_RES
        };
        let run = ArithRun {
            start: rp.start,
            step_fx: rp.step_fx,
            len: rp.len,
            res_off,
            rank_before: out.count,
        };
        out.count += rp.len as i64;
        out.runs.push(run);
    }
    // The residual stream is owned wholesale; attach it before the
    // endpoint checks so `flat_at` can read through it.
    if res_cursor != residuals.len() {
        return Err(row_err(
            level,
            format!(
                "residual stream length {} does not match runs (need {res_cursor})",
                residuals.len()
            ),
        ));
    }
    out.res = residuals;
    for (i, run) in out.runs.iter().enumerate() {
        let first = out.flat_at(run, 0);
        let last = out.last_of(run);
        if first <= prev_last {
            return Err(row_err(
                level,
                format!("run {i} starts at {first}, not past the previous flat {prev_last}"),
            ));
        }
        if last < first {
            return Err(row_err(
                level,
                format!("run {i} ends at {last}, before its start {first}"),
            ));
        }
        if last > max_ticks {
            return Err(row_err(
                level,
                format!("run {i} reaches {last}, beyond solved extent {max_ticks}"),
            ));
        }
        prev_last = last;
    }
    out.runs.shrink_to_fit();
    out.res.shrink_to_fit();
    Ok(out)
}

impl CompressedTable {
    /// Flattens the table into representation-native [`TableParts`] —
    /// the introspection side of the persistence boundary. No row is
    /// re-encoded; the parts mirror the in-memory skeletons exactly.
    pub fn to_parts(&self) -> TableParts {
        let rows = self
            .rows
            .iter()
            .map(|row| match row.skeleton() {
                RowSkeleton::Flats(flats) => RowParts::Flats {
                    zero_until: row.zero_until,
                    flats: flats.clone(),
                },
                RowSkeleton::Runs(runs) => RowParts::Runs {
                    zero_until: row.zero_until,
                    runs: runs
                        .runs
                        .iter()
                        .map(|r| RunParts {
                            start: r.start,
                            step_fx: r.step_fx,
                            len: r.len,
                            has_residuals: r.res_off != NO_RES,
                        })
                        .collect(),
                    residuals: runs.res.clone(),
                },
            })
            .collect();
        TableParts {
            setup: self.grid().setup(),
            ticks_per_setup: self.grid().q() as u32,
            max_ticks: self.max_ticks(),
            max_interrupts: self.max_interrupts(),
            repr: self.repr(),
            events: self.events(),
            rows,
        }
    }

    /// Rebuilds the exact table [`Self::to_parts`] came from. Validates
    /// the parts structurally first — corrupt input yields an [`Err`],
    /// never a panic or a table whose accessors could panic later.
    pub fn from_parts(parts: TableParts) -> Result<CompressedTable, PartsError> {
        if !parts.setup.get().is_finite() || !parts.setup.is_positive() {
            return Err(meta_err(format!(
                "setup charge {} not positive",
                parts.setup
            )));
        }
        if parts.ticks_per_setup < 1 {
            return Err(meta_err("ticks_per_setup must be ≥ 1"));
        }
        if parts.max_ticks < 0 {
            return Err(meta_err(format!(
                "negative extent {} ticks",
                parts.max_ticks
            )));
        }
        let expected_rows = parts.max_interrupts as usize + 1;
        if parts.rows.len() != expected_rows {
            return Err(meta_err(format!(
                "{} rows for max_interrupts {} (need {expected_rows})",
                parts.rows.len(),
                parts.max_interrupts
            )));
        }
        let grid = Grid::new(parts.setup, parts.ticks_per_setup);
        let mut rows = Vec::with_capacity(expected_rows);
        for (level, row) in parts.rows.into_iter().enumerate() {
            rows.push(match row {
                RowParts::Flats { zero_until, flats } => {
                    check_flats(level, zero_until, &flats, parts.max_ticks)?;
                    CompressedRow::from_flats(zero_until, flats)
                }
                RowParts::Runs {
                    zero_until,
                    runs,
                    residuals,
                } => {
                    let row =
                        runs_from_parts(level, zero_until, &runs, residuals, parts.max_ticks)?;
                    CompressedRow::from_runs(zero_until, row)
                }
            });
        }
        Ok(CompressedTable {
            grid,
            max_ticks: parts.max_ticks,
            max_interrupts: parts.max_interrupts,
            repr: parts.repr,
            rows,
            events: parts.events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    fn solve(repr: RowRepr) -> CompressedTable {
        CompressedTable::solve_with(
            secs(1.0),
            8,
            secs(300.0),
            3,
            crate::value::SolveOptions {
                keep_policy: false,
                repr,
                ..crate::value::SolveOptions::default()
            },
        )
    }

    #[test]
    fn round_trips_both_representations() {
        for repr in [RowRepr::Breakpoints, RowRepr::Runs] {
            let table = solve(repr);
            let back = CompressedTable::from_parts(table.to_parts()).unwrap();
            assert_eq!(table, back, "round-trip at {repr:?}");
            // And the rebuilt table answers queries identically.
            for p in 0..=3 {
                for l in [0, 1, 100, table.max_ticks()] {
                    assert_eq!(table.value_ticks(p, l), back.value_ticks(p, l));
                }
            }
        }
    }

    #[test]
    fn corrupt_parts_error_instead_of_panicking() {
        let table = solve(RowRepr::Runs);

        // Wrong row count.
        let mut parts = table.to_parts();
        parts.rows.pop();
        assert!(matches!(
            CompressedTable::from_parts(parts),
            Err(PartsError::Meta(_))
        ));

        // Truncated residual stream.
        let mut parts = table.to_parts();
        let mutated = parts.rows.iter_mut().any(|row| {
            if let RowParts::Runs { residuals, .. } = row {
                if !residuals.is_empty() {
                    residuals.pop();
                    return true;
                }
            }
            false
        });
        if mutated {
            assert!(matches!(
                CompressedTable::from_parts(parts),
                Err(PartsError::Row { .. })
            ));
        }

        // Zero-length run.
        let mut parts = table.to_parts();
        let mutated = parts.rows.iter_mut().any(|row| {
            if let RowParts::Runs { runs, .. } = row {
                if let Some(r) = runs.first_mut() {
                    r.len = 0;
                    return true;
                }
            }
            false
        });
        if mutated {
            assert!(CompressedTable::from_parts(parts).is_err());
        }

        // Non-monotone flat list.
        let mut parts = solve(RowRepr::Breakpoints).to_parts();
        let mutated = parts.rows.iter_mut().any(|row| {
            if let RowParts::Flats { flats, .. } = row {
                if flats.len() >= 2 {
                    flats.swap(0, 1);
                    return true;
                }
            }
            false
        });
        assert!(mutated, "test table should have flat ticks");
        assert!(matches!(
            CompressedTable::from_parts(parts),
            Err(PartsError::Row { .. })
        ));

        // Bad grid metadata must error before Grid::new can panic.
        let mut parts = table.to_parts();
        parts.ticks_per_setup = 0;
        assert!(CompressedTable::from_parts(parts).is_err());
        let mut parts = table.to_parts();
        parts.setup = secs(-1.0);
        assert!(CompressedTable::from_parts(parts).is_err());
    }

    #[test]
    fn structural_equality_detects_representation_and_value_changes() {
        let flats = solve(RowRepr::Breakpoints);
        let runs = solve(RowRepr::Runs);
        // Same values, different skeleton storage: structurally unequal.
        assert_ne!(flats, runs);
        assert_eq!(flats, flats.clone());
        let other = CompressedTable::solve(secs(1.0), 8, secs(200.0), 3);
        assert_ne!(flats, other);
    }
}
