//! Equivalence property tests: the seven solver paths — dense frontier
//! sweep, dense bisection, dense linear scan, the tick-walking
//! breakpoint-compressed table, the event-driven (run-skipping)
//! compressed build, the intra-level *parallel* dense solve
//! (anchor-segmented sweeps, `threads: 0` so the CI
//! `CYCLESTEAL_THREADS` matrix drives the worker count), and the
//! **run-backed** event-driven build (`RowRepr::Runs`: second-order
//! arithmetic-run skeletons) — must agree on values *and* on the
//! episodes their argmax induces, over randomized `(q, L, p)` grids and
//! at the documented edges (`t ≤ Q` wait domination, `L ∈ {0, 1}`,
//! single-breakpoint rows, all-flat tails).

use cyclesteal_core::prelude::*;
use cyclesteal_dp::{CompressedTable, InnerLoop, RowRepr, SolveOptions, ValueTable};
use proptest::prelude::*;

fn solve(q: u32, max_u: f64, p: u32, inner: InnerLoop) -> ValueTable {
    ValueTable::solve(
        secs(1.0),
        q,
        secs(max_u),
        p,
        SolveOptions {
            inner,
            ..SolveOptions::default()
        },
    )
}

/// The sixth path: the intra-level segmented parallel solve. `threads: 0`
/// resolves through `CYCLESTEAL_THREADS`/available parallelism, so the CI
/// thread matrix exercises real multi-worker splits; small tables
/// degenerate to a single segment, which is part of the contract.
fn solve_parallel(q: u32, max_u: f64, p: u32) -> ValueTable {
    ValueTable::solve(
        secs(1.0),
        q,
        secs(max_u),
        p,
        SolveOptions {
            threads: 0,
            ..SolveOptions::default()
        },
    )
}

fn solve_event(q: u32, max_u: f64, p: u32) -> CompressedTable {
    CompressedTable::solve_with(
        secs(1.0),
        q,
        secs(max_u),
        p,
        SolveOptions {
            keep_policy: false,
            inner: InnerLoop::EventDriven,
            ..SolveOptions::default()
        },
    )
}

/// The seventh path: the event-driven build emitting **run-backed** rows
/// (`RowRepr::Runs`) — second-order compression both *read* by the
/// builder (each level's prev-cursor walks arithmetic runs) and *stored*
/// in the finished table.
fn solve_runs(q: u32, max_u: f64, p: u32) -> CompressedTable {
    CompressedTable::solve_with(
        secs(1.0),
        q,
        secs(max_u),
        p,
        SolveOptions {
            keep_policy: false,
            inner: InnerLoop::EventDriven,
            repr: RowRepr::Runs,
            ..SolveOptions::default()
        },
    )
}

/// Worst-case value an episode schedule actually realizes at `(p, u)`,
/// scored by the Table-1 machinery against the exact oracle.
fn realized(table: &ValueTable, p: u32, u: f64, sched: &EpisodeSchedule) -> Work {
    let rows = table1(table, &Opportunity::from_units(u, 1.0, p), sched);
    adversary_value(&rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All seven representations produce identical values at every state.
    #[test]
    fn values_agree_everywhere(q in 2u32..12, max_u in 1.0f64..60.0, p in 0u32..4) {
        let sweep = solve(q, max_u, p, InnerLoop::FrontierSweep);
        let bisect = solve(q, max_u, p, InnerLoop::Bisection);
        let scan = solve(q, max_u, p, InnerLoop::LinearScan);
        let compressed = CompressedTable::solve(secs(1.0), q, secs(max_u), p);
        let event = solve_event(q, max_u, p);
        let par = solve_parallel(q, max_u, p);
        let runs = solve_runs(q, max_u, p);
        prop_assert_eq!(sweep.max_ticks(), compressed.max_ticks());
        prop_assert_eq!(sweep.max_ticks(), event.max_ticks());
        prop_assert_eq!(sweep.max_ticks(), par.max_ticks());
        prop_assert_eq!(sweep.max_ticks(), runs.max_ticks());
        for pp in 0..=p {
            // Run compression is lossless: same logical breakpoints.
            prop_assert_eq!(runs.breakpoints(pp), event.breakpoints(pp),
                "run-backed logical breakpoints differ at q={}, p={}", q, pp);
            for l in 0..=sweep.max_ticks() {
                let w = sweep.value_ticks(pp, l);
                prop_assert_eq!(w, bisect.value_ticks(pp, l),
                    "bisection differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(w, scan.value_ticks(pp, l),
                    "linear scan differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(w, compressed.value_ticks(pp, l),
                    "compressed differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(w, event.value_ticks(pp, l),
                    "event-driven differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(w, par.value_ticks(pp, l),
                    "parallel sweep differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(w, runs.value_ticks(pp, l),
                    "run-backed differs at q={}, p={}, l={}", q, pp, l);
            }
        }
    }

    /// Sweep, bisection and the compressed query-time policy share one
    /// crossing rule: their argmax — and hence their reconstructed
    /// episodes — are bit-identical.
    #[test]
    fn crossing_argmax_is_identical(q in 2u32..12, max_u in 1.0f64..60.0, p in 0u32..4) {
        let sweep = solve(q, max_u, p, InnerLoop::FrontierSweep);
        let bisect = solve(q, max_u, p, InnerLoop::Bisection);
        let compressed = CompressedTable::solve(secs(1.0), q, secs(max_u), p);
        let event = solve_event(q, max_u, p);
        let par = solve_parallel(q, max_u, p);
        let runs = solve_runs(q, max_u, p);
        for pp in 0..=p {
            for l in 1..=sweep.max_ticks() {
                let t = sweep.first_period_ticks(pp, l);
                prop_assert_eq!(t, bisect.first_period_ticks(pp, l),
                    "bisection argmax differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(t, compressed.first_period_ticks(pp, l),
                    "compressed argmax differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(t, event.first_period_ticks(pp, l),
                    "event-driven argmax differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(t, par.first_period_ticks(pp, l),
                    "parallel-sweep argmax differs at q={}, p={}, l={}", q, pp, l);
                prop_assert_eq!(t, runs.first_period_ticks(pp, l),
                    "run-backed argmax differs at q={}, p={}, l={}", q, pp, l);
            }
        }
    }

    /// The linear scan may break argmax ties differently (it keeps the
    /// smallest maximizer), but the episode it induces realizes exactly
    /// the same guaranteed work as the sweep's.
    #[test]
    fn episode_outputs_are_equivalent(
        q in 4u32..10,
        max_u in 10.0f64..50.0,
        p in 1u32..3,
        frac in 0.3f64..1.0,
    ) {
        let sweep = solve(q, max_u, p, InnerLoop::FrontierSweep);
        let scan = solve(q, max_u, p, InnerLoop::LinearScan);
        let compressed = CompressedTable::solve(secs(1.0), q, secs(max_u), p);
        let event = solve_event(q, max_u, p);
        let par = solve_parallel(q, max_u, p);
        let runs = solve_runs(q, max_u, p);
        let u = max_u * frac;
        if sweep.value(p, secs(u)) > Work::ZERO {
            let es = sweep.episode(p, secs(u)).unwrap();
            let el = scan.episode(p, secs(u)).unwrap();
            let ec = compressed.episode(p, secs(u)).unwrap();
            let ee = event.episode(p, secs(u)).unwrap();
            let ep = par.episode(p, secs(u)).unwrap();
            let er = runs.episode(p, secs(u)).unwrap();
            // Compressed, event-driven, parallel and run-backed
            // reconstructions are bit-identical to the sweep's.
            prop_assert_eq!(es.len(), ec.len());
            prop_assert_eq!(es.len(), ee.len());
            prop_assert_eq!(es.len(), ep.len());
            prop_assert_eq!(es.len(), er.len());
            for k in 0..es.len() {
                prop_assert_eq!(es.period(k), ec.period(k), "period {} differs", k);
                prop_assert_eq!(es.period(k), ee.period(k), "event period {} differs", k);
                prop_assert_eq!(es.period(k), ep.period(k), "parallel period {} differs", k);
                prop_assert_eq!(es.period(k), er.period(k), "run-backed period {} differs", k);
            }
            // The scan's episode may differ in shape but not in what it
            // guarantees (a tick of tolerance for off-grid drift).
            let tick = secs(1.0 / q as f64);
            let vs = realized(&sweep, p, u, &es);
            let vl = realized(&sweep, p, u, &el);
            prop_assert!((vs - vl).abs() <= tick,
                "episodes realize different values: sweep {} vs scan {}", vs, vl);
            // And both realize the claimed table value.
            let claimed = sweep.value(p, secs(u));
            prop_assert!((vs - claimed).abs() <= tick * 2.0,
                "sweep episode realizes {} but table claims {}", vs, claimed);
        }
    }

    /// Wait-domination edge: just above the zero region every solver
    /// agrees the optimum is positive, and below it everything is zero
    /// with the burn-it-all argmax.
    #[test]
    fn wait_domination_edge(q in 2u32..10, p in 1u32..4) {
        // Cover exactly the interesting band around (p+1)·Q ticks.
        let max_u = (p as f64 + 1.0) * 2.0 + 1.0;
        let sweep = solve(q, max_u, p, InnerLoop::FrontierSweep);
        let scan = solve(q, max_u, p, InnerLoop::LinearScan);
        let compressed = CompressedTable::solve(secs(1.0), q, secs(max_u), p);
        let event = solve_event(q, max_u, p);
        let par = solve_parallel(q, max_u, p);
        let runs = solve_runs(q, max_u, p);
        let qq = q as i64;
        let zero_edge = (p as i64 + 1) * qq;
        for l in 0..=sweep.max_ticks() {
            let w = sweep.value_ticks(p, l);
            prop_assert_eq!(w, scan.value_ticks(p, l));
            prop_assert_eq!(w, compressed.value_ticks(p, l));
            prop_assert_eq!(w, event.value_ticks(p, l));
            prop_assert_eq!(w, par.value_ticks(p, l));
            prop_assert_eq!(w, runs.value_ticks(p, l));
            if l <= zero_edge {
                prop_assert_eq!(w, 0, "W^{}[{}] must be 0 (≤ (p+1)Q)", p, l);
                if l >= 1 {
                    // Zero states burn the lifespan in one period — in
                    // every representation.
                    prop_assert_eq!(sweep.first_period_ticks(p, l), l);
                    prop_assert_eq!(compressed.first_period_ticks(p, l), l);
                    prop_assert_eq!(event.first_period_ticks(p, l), l);
                    prop_assert_eq!(par.first_period_ticks(p, l), l);
                    prop_assert_eq!(runs.first_period_ticks(p, l), l);
                }
            }
        }
        let above = (p as i64 + 1) * (qq + 1);
        if above <= sweep.max_ticks() {
            prop_assert!(sweep.value_ticks(p, above) >= 1);
        }
    }
}

#[test]
fn boundary_lifespans_zero_and_one_tick() {
    for q in [1u32, 2, 8] {
        for p in 0..=2u32 {
            // L = 0 ticks.
            let sweep = solve(q, 0.0, p, InnerLoop::FrontierSweep);
            let scan = solve(q, 0.0, p, InnerLoop::LinearScan);
            let compressed = CompressedTable::solve(secs(1.0), q, secs(0.0), p);
            let event = solve_event(q, 0.0, p);
            let runs = solve_runs(q, 0.0, p);
            assert_eq!(sweep.max_ticks(), 0);
            assert_eq!(event.max_ticks(), 0);
            assert_eq!(runs.max_ticks(), 0);
            assert_eq!(sweep.value_ticks(p, 0), 0);
            assert_eq!(scan.value_ticks(p, 0), 0);
            assert_eq!(compressed.value_ticks(p, 0), 0);
            assert_eq!(event.value_ticks(p, 0), 0);
            assert_eq!(runs.value_ticks(p, 0), 0);
            assert!(sweep.episode(p, secs(0.0)).is_err());
            assert!(compressed.episode(p, secs(0.0)).is_err());
            assert!(event.episode(p, secs(0.0)).is_err());
            assert!(runs.episode(p, secs(0.0)).is_err());

            // L = 1 tick.
            let u1 = 1.0 / q as f64;
            let sweep = solve(q, u1, p, InnerLoop::FrontierSweep);
            let bisect = solve(q, u1, p, InnerLoop::Bisection);
            let compressed = CompressedTable::solve(secs(1.0), q, secs(u1), p);
            let event = solve_event(q, u1, p);
            let runs = solve_runs(q, u1, p);
            assert_eq!(sweep.max_ticks(), 1);
            // W^(p)(1 tick) = 1 ⊖ Q = 0 for every Q ≥ 1 and every p.
            let w = sweep.value_ticks(p, 1);
            assert_eq!(w, bisect.value_ticks(p, 1));
            assert_eq!(w, compressed.value_ticks(p, 1));
            assert_eq!(w, event.value_ticks(p, 1));
            assert_eq!(w, runs.value_ticks(p, 1));
            assert_eq!(w, 0, "one tick can never out-bank the setup charge");
            let e = sweep.episode(p, secs(u1)).unwrap();
            assert_eq!(e.len(), 1, "zero-value state burns the lifespan whole");
        }
    }
}

#[test]
fn single_breakpoint_rows_and_all_flat_tails() {
    // Rows whose skeleton is a single breakpoint (the zero-region edge,
    // no flats after): lifespans that never escape the zero region at
    // the deepest level, plus level 0 (W^(0) = l ⊖ Q exactly). And
    // all-flat tails: lifespans ending just inside the zero region of
    // the deepest level, where the event builder must not overrun `n`.
    for q in [1u32, 3, 16] {
        for p in 1..=3u32 {
            let qq = q as i64;
            // n lands exactly on, just below and just above (p+1)·Q —
            // the all-zero / first-positive boundary of level p.
            for n in [
                (p as i64 + 1) * qq - 1,
                (p as i64 + 1) * qq,
                (p as i64 + 1) * qq + 1,
                (p as i64 + 1) * (qq + 1),
                (p as i64 + 1) * (qq + 1) + 3,
            ] {
                if n < 0 {
                    continue;
                }
                let u = n as f64 / q as f64;
                let sweep = solve(q, u, p, InnerLoop::FrontierSweep);
                let event = solve_event(q, u, p);
                let runs = solve_runs(q, u, p);
                assert_eq!(sweep.max_ticks(), event.max_ticks(), "q={q} p={p} n={n}");
                assert_eq!(sweep.max_ticks(), runs.max_ticks(), "q={q} p={p} n={n}");
                for pp in 0..=p {
                    for l in 0..=sweep.max_ticks() {
                        assert_eq!(
                            sweep.value_ticks(pp, l),
                            event.value_ticks(pp, l),
                            "q={q} p={pp} l={l} (n={n})"
                        );
                        assert_eq!(
                            sweep.value_ticks(pp, l),
                            runs.value_ticks(pp, l),
                            "run-backed q={q} p={pp} l={l} (n={n})"
                        );
                    }
                }
                // Level 0 compresses to the single zero-edge breakpoint.
                assert_eq!(event.breakpoints(0), 1, "q={q} n={n}");
                assert_eq!(runs.stored_breakpoints(0), 1, "q={q} n={n}");
            }
        }
    }
}

#[test]
fn event_driven_matches_tick_walk_at_a_million_ticks() {
    // The deep check behind the acceptance criterion: at 10⁶ ticks the
    // event build and the tick-walking build agree at *every* lifespan
    // (equal values everywhere ⇔ identical skeletons), for a mid and a
    // coarse resolution. The tick walk itself is pinned to the dense
    // sweep by `matches_dense_values_exactly` and the properties above.
    for (q, p) in [(8u32, 2u32), (32, 3)] {
        let ticks: i64 = 1_000_000;
        let u = ticks as f64 / q as f64;
        let walked = CompressedTable::solve(secs(1.0), q, secs(u), p);
        let event = solve_event(q, u, p);
        let runs = solve_runs(q, u, p);
        assert_eq!(walked.max_ticks(), ticks);
        assert_eq!(event.max_ticks(), ticks);
        assert_eq!(runs.max_ticks(), ticks);
        for pp in 0..=p {
            assert_eq!(
                walked.breakpoints(pp),
                event.breakpoints(pp),
                "breakpoint count differs at q={q}, p={pp}"
            );
            assert_eq!(
                walked.breakpoints(pp),
                runs.breakpoints(pp),
                "run-backed logical breakpoint count differs at q={q}, p={pp}"
            );
        }
        for l in 0..=ticks {
            assert_eq!(
                walked.value_ticks(p, l),
                event.value_ticks(p, l),
                "value differs at q={q}, l={l}"
            );
            assert_eq!(
                walked.value_ticks(p, l),
                runs.value_ticks(p, l),
                "run-backed value differs at q={q}, l={l}"
            );
        }
        // The second-order promise at depth: stored descriptors collapse
        // by an order of magnitude while answering identically.
        let flat_k: usize = (0..=p).map(|pp| event.stored_breakpoints(pp)).sum();
        let run_k: usize = (0..=p).map(|pp| runs.stored_breakpoints(pp)).sum();
        assert!(
            run_k * 5 <= flat_k,
            "q={q}: run-backed stored {run_k} of {flat_k} descriptors (> 0.2×)"
        );
        assert!(
            runs.memory_bytes() < event.memory_bytes(),
            "q={q}: run-backed table not smaller: {} vs {}",
            runs.memory_bytes(),
            event.memory_bytes()
        );
    }
}

#[test]
fn compressed_scales_where_dense_cannot() {
    // A lifespan deep into the 10⁷-tick range: the dense table would hold
    // 3 × (10⁷+1) i64 values (~240 MB with argmax); the skeleton holds
    // the same two levels in well under a megabyte and still answers
    // exact queries at the far end.
    let q = 8u32;
    let ticks: i64 = 10_000_000;
    let u = ticks as f64 / q as f64;
    let table = CompressedTable::solve(secs(1.0), q, secs(u), 1);
    assert_eq!(table.max_ticks(), ticks);
    assert!(
        table.memory_bytes() < 1 << 20,
        "skeleton too large: {} B",
        table.memory_bytes()
    );
    // Exact agreement with the p = 1 closed form at the far end, within
    // grid-quantization slack (the grid only loses, by O(m/Q)).
    let dp = table.value(1, secs(u));
    let cf = w1_exact(secs(u), secs(1.0));
    assert!(dp <= cf + secs(1e-6), "grid beats continuum: {dp} vs {cf}");
    let m = cyclesteal_core::bounds::m1_opt(secs(u), secs(1.0)) as f64;
    assert!(
        dp >= cf - secs((m + 2.0) / q as f64),
        "grid too lossy at U={u}: {dp} vs {cf}"
    );
}
