//! Determinism properties of the intra-level parallel solve: at every
//! thread count the anchor-segmented sweep must reproduce the sequential
//! solver **bit for bit** — values, argmax, reconstructed episodes, and
//! (for the compressed path) breakpoints and event counts. Covers both
//! inner loops that honor `SolveOptions::threads`, **both skeleton
//! representations** (`RowRepr::Breakpoints` and the second-order
//! `RowRepr::Runs`, which the dense workers read through and the
//! compressed build stores), segment boundaries landing on zero-region
//! and crossing anchors, and the degenerate single-segment split on
//! tables too small to partition.

use cyclesteal_core::prelude::*;
use cyclesteal_dp::{CompressedTable, InnerLoop, RowRepr, SolveOptions, ValueTable};
use proptest::prelude::*;

fn solve_dense_repr(
    q: u32,
    ticks: i64,
    p: u32,
    threads: usize,
    keep_policy: bool,
    repr: RowRepr,
) -> ValueTable {
    ValueTable::solve(
        secs(1.0),
        q,
        secs(ticks as f64 / q as f64),
        p,
        SolveOptions {
            keep_policy,
            inner: InnerLoop::FrontierSweep,
            threads,
            repr,
        },
    )
}

fn solve_dense(q: u32, ticks: i64, p: u32, threads: usize, keep_policy: bool) -> ValueTable {
    solve_dense_repr(q, ticks, p, threads, keep_policy, RowRepr::Breakpoints)
}

fn solve_compressed(q: u32, ticks: i64, p: u32, threads: usize, repr: RowRepr) -> CompressedTable {
    CompressedTable::solve_with(
        secs(1.0),
        q,
        secs(ticks as f64 / q as f64),
        p,
        SolveOptions {
            keep_policy: false,
            inner: InnerLoop::EventDriven,
            threads,
            repr,
        },
    )
}

/// Sequential vs parallel dense solves must match on every value, every
/// argmax, and every reconstructed episode.
fn assert_dense_identical(seq: &ValueTable, par: &ValueTable, ctx: &str) {
    assert_eq!(seq.max_ticks(), par.max_ticks(), "{ctx}: max_ticks");
    for p in 0..=seq.max_interrupts() {
        for l in 0..=seq.max_ticks() {
            assert_eq!(
                seq.value_ticks(p, l),
                par.value_ticks(p, l),
                "{ctx}: value at p={p}, l={l}"
            );
            if l >= 1 && seq.has_policy() && par.has_policy() {
                assert_eq!(
                    seq.first_period_ticks(p, l),
                    par.first_period_ticks(p, l),
                    "{ctx}: argmax at p={p}, l={l}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized grids, explicitly at 1, 2 and 8 workers, with and
    /// without the policy arena.
    #[test]
    fn dense_solve_is_thread_count_invariant(
        q in 2u32..10,
        ticks in 600i64..6000,
        p in 1u32..4,
    ) {
        let seq = solve_dense(q, ticks, p, 1, true);
        for threads in [2usize, 8] {
            let par = solve_dense(q, ticks, p, threads, true);
            assert_dense_identical(&seq, &par, &format!("q={q} ticks={ticks} p={p} threads={threads}"));
            // Episode reconstruction goes through the same argmax; pin a
            // few lifespans end to end.
            for frac in [0.37, 0.81, 1.0] {
                let u = secs(ticks as f64 * frac / q as f64);
                if seq.value(p, u) > Work::ZERO {
                    let es = seq.episode(p, u).unwrap();
                    let ep = par.episode(p, u).unwrap();
                    prop_assert_eq!(es.len(), ep.len());
                    for k in 0..es.len() {
                        prop_assert_eq!(es.period(k), ep.period(k), "period {} at {} threads", k, threads);
                    }
                }
            }
        }
        // Value-only solves take the rank-expansion fill instead of the
        // sweep replay — same values required.
        let bare_seq = solve_dense(q, ticks, p, 1, false);
        let bare_par = solve_dense(q, ticks, p, 8, false);
        assert_dense_identical(&bare_seq, &bare_par, &format!("bare q={q} ticks={ticks} p={p}"));
    }

    /// The dense parallel solve reading its per-level skeletons through
    /// **run-backed** rows: the anchor replay and the rank-expansion fill
    /// must be bit-identical to the sequential sweep regardless of how
    /// the skeleton is stored.
    #[test]
    fn dense_solve_is_repr_invariant(
        q in 2u32..10,
        ticks in 600i64..6000,
        p in 1u32..4,
    ) {
        let seq = solve_dense(q, ticks, p, 1, true);
        for threads in [2usize, 8] {
            let runs = solve_dense_repr(q, ticks, p, threads, true, RowRepr::Runs);
            assert_dense_identical(&seq, &runs,
                &format!("runs q={q} ticks={ticks} p={p} threads={threads}"));
        }
        let bare_runs = solve_dense_repr(q, ticks, p, 8, false, RowRepr::Runs);
        let bare_seq = solve_dense(q, ticks, p, 1, false);
        assert_dense_identical(&bare_seq, &bare_runs, &format!("bare runs q={q} ticks={ticks} p={p}"));
    }

    /// The event-driven compressed build at any thread count and in both
    /// row representations: identical skeletons (hence values) *and*
    /// identical event counts — threading only parallelizes the flat
    /// expansion and representation only changes storage, never the
    /// build loop.
    #[test]
    fn compressed_build_is_thread_count_invariant(
        q in 2u32..10,
        ticks in 600i64..60_000,
        p in 1u32..4,
    ) {
        let seq = solve_compressed(q, ticks, p, 1, RowRepr::Breakpoints);
        for threads in [2usize, 8] {
            for repr in [RowRepr::Breakpoints, RowRepr::Runs] {
                let par = solve_compressed(q, ticks, p, threads, repr);
                prop_assert_eq!(seq.events(), par.events(),
                    "event count at {} threads ({:?})", threads, repr);
                for pp in 0..=p {
                    prop_assert_eq!(seq.breakpoints(pp), par.breakpoints(pp),
                        "breakpoints at p={}, {} threads ({:?})", pp, threads, repr);
                }
                for l in 0..=seq.max_ticks() {
                    prop_assert_eq!(seq.value_ticks(p, l), par.value_ticks(p, l),
                        "value at l={}, {} threads ({:?})", l, threads, repr);
                }
            }
        }
    }
}

/// Segment boundaries landing exactly on the structure the sweep cares
/// about: the zero-region edge, the first positive tick, and
/// even-division points (with 2 and 8 workers an `n` divisible by 16
/// puts every boundary on a multiple of `n/16`).
#[test]
fn anchor_on_boundary_splits_are_exact() {
    for (q, n, p) in [
        (4u32, 4096i64, 3u32), // boundaries on powers of two
        (8, 4096 + 8, 2),      // zero region ends inside segment 1
        (2, 513, 3),           // just past the two-segment threshold
        (6, 516 * 6, 4),       // boundaries land on multiples of Q
    ] {
        let seq = solve_dense(q, n, p, 1, true);
        for threads in [2usize, 3, 8] {
            let par = solve_dense(q, n, p, threads, true);
            assert_dense_identical(&seq, &par, &format!("q={q} n={n} p={p} threads={threads}"));
        }
    }
}

/// Tables too small to split must degenerate to the sequential sweep —
/// one segment, no worker hand-off, same table.
#[test]
fn single_segment_degenerate_split() {
    for n in [0i64, 1, 40, 511] {
        let q = 3u32;
        let seq = solve_dense(q, n, 2, 1, true);
        let par = solve_dense(q, n, 2, 8, true);
        assert_dense_identical(&seq, &par, &format!("degenerate n={n}"));
    }
}

/// `threads: 0` resolves through `CYCLESTEAL_THREADS`/available
/// parallelism — whatever it lands on, the result is pinned to the
/// sequential solve (this is the configuration the CI thread matrix
/// runs at 1 and 4 workers).
#[test]
fn auto_thread_count_matches_sequential() {
    let q = 5u32;
    let n = 7321i64;
    let seq = solve_dense(q, n, 3, 1, true);
    let auto = solve_dense(q, n, 3, 0, true);
    assert_dense_identical(&seq, &auto, "threads=0 (auto)");
}
