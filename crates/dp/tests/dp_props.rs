//! Property tests for the exact solver: random parameters, random
//! competing policies, grid-resolution relationships.

use cyclesteal_core::prelude::*;
use cyclesteal_dp::{evaluate_policy, EvalOptions, SolveOptions, ValueTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No equal-period policy — whatever its m — beats the table, at any
    /// random query point.
    #[test]
    fn random_equal_policies_never_beat_the_table(
        m in 1usize..40,
        u in 5.0f64..120.0,
        p in 0u32..3,
    ) {
        let table = ValueTable::solve(secs(1.0), 8, secs(120.0), 2, SolveOptions::default());
        let pv = evaluate_policy(
            &EqualPeriodsPolicy::new(m), secs(1.0), 8, secs(120.0), 2,
            EvalOptions::default()).unwrap();
        let g = pv.value(p, secs(u));
        let w = table.value(p, secs(u));
        prop_assert!(g <= w + secs(0.2),
            "equal-{m} gets {g} at (p={p}, U={u}), table says {w}");
    }

    /// Doubling the grid resolution never lowers the computed value by
    /// more than the coarse grid's tick (the fine grid can realize every
    /// coarse schedule exactly).
    #[test]
    fn refinement_consistency(u in 4.0f64..64.0, p in 1u32..3) {
        let coarse = ValueTable::solve(secs(1.0), 4, secs(64.0), 2, SolveOptions::default());
        let fine = ValueTable::solve(secs(1.0), 8, secs(64.0), 2, SolveOptions::default());
        let wc = coarse.value(p, secs(u));
        let wf = fine.value(p, secs(u));
        prop_assert!(wf + secs(1e-9) >= wc - secs(0.25),
            "refining lost value at (p={p}, U={u}): {wc} -> {wf}");
    }

    /// The reconstructed optimal episode realizes the table's value: the
    /// adversary's best option against it (scored by the table itself)
    /// equals W^(p) up to a tick.
    #[test]
    fn reconstruction_realizes_the_value(u in 10.0f64..100.0, p in 1u32..3) {
        let table = ValueTable::solve(secs(1.0), 16, secs(100.0), 2, SolveOptions::default());
        let sched = table.episode(p, secs(u)).unwrap();
        let rows = table1(&table, &Opportunity::from_units(u, 1.0, p), &sched);
        let realized = adversary_value(&rows);
        let claimed = table.value(p, secs(u));
        prop_assert!((realized - claimed).abs() <= secs(0.15),
            "(p={p}, U={u}): realized {realized} vs claimed {claimed}");
    }

    /// p = 1 conformance with §5.2 at arbitrary (non-grid) lifespans.
    #[test]
    fn p1_conformance_off_grid(u in 3.0f64..190.0) {
        let table = ValueTable::solve(secs(1.0), 64, secs(190.0), 1, SolveOptions::default());
        let dp = table.value(1, secs(u));
        let cf = w1_exact(secs(u), secs(1.0));
        prop_assert!(dp <= cf + secs(0.02), "grid beats continuum at U={u}");
        prop_assert!(dp >= cf - secs(0.6), "grid too lossy at U={u}: {dp} vs {cf}");
    }
}
