//! The shard-clock determinism rule, pinned as an integration suite:
//! sharding `TableCache` is a contention knob, never a semantics knob.
//! For a fixed seeded workload, `CacheStats` (hits / misses / evictions
//! / resident_bytes) **and the eviction victim sequence** must be
//! bit-identical across shard counts ∈ {1, 4, 16} and solver thread
//! counts ∈ {1, 8} — eviction picks the *globally* least-recently-used
//! entry by the one shared logical clock, so shard layout can never
//! leak into what gets dropped or when.

use cyclesteal_core::prelude::*;
use cyclesteal_dp::{SolveConfig, SolveOptions, TableCache};
use std::sync::{Arc, Mutex};

/// Grid identity of an eviction victim:
/// `(setup_bits, q, max_interrupts, max_ticks)`.
type Victim = (u64, u32, u32, i64);

/// One observable outcome of a run: the final stats tuple plus the
/// grid identity of every eviction victim, in eviction order.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Outcome {
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: usize,
    compressed_entries: usize,
    resident_bytes: usize,
    victims: Vec<Victim>,
}

/// SplitMix64, the repo's standard seedless mixing primitive — drives
/// the workload's grid/lifespan choices deterministically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs the fixed seeded workload against a cache with the given shard
/// and solver thread counts. The workload is applied sequentially (the
/// clock-stamp order is part of the contract; concurrency of *solves*
/// is what `threads` varies) and mixes compressed gets, dense gets,
/// batch solves, admits and budget squeezes.
fn run(seed: u64, shards: usize, threads: usize) -> Outcome {
    let cache = TableCache::with_options_sharded(
        SolveOptions {
            threads,
            ..SolveOptions::default()
        },
        shards,
    );
    let victims: Arc<Mutex<Vec<Victim>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = victims.clone();
    cache.set_evict_hook(Some(Box::new(move |t| {
        sink.lock().unwrap().push((
            t.grid().setup().get().to_bits(),
            t.grid().q() as u32,
            t.max_interrupts(),
            t.max_ticks(),
        ));
    })));

    for step in 0..40u64 {
        let r = splitmix64(seed ^ step);
        let grid = 1 + r % 7;
        let q = 4u32 << ((r >> 8) % 2);
        let p = 1 + ((r >> 16) % 3) as u32;
        let lifespan = secs(100.0 + ((r >> 24) % 400) as f64);
        match (r >> 40) % 4 {
            0 => {
                let _ = cache.get_compressed(secs(grid as f64), q, lifespan, p);
            }
            1 => {
                let _ = cache.get(secs(grid as f64), q, lifespan, p);
            }
            2 => {
                let configs: Vec<SolveConfig> = (0..3)
                    .map(|i| SolveConfig {
                        setup: secs((1 + (grid + i) % 7) as f64),
                        ticks_per_setup: q,
                        max_lifespan: lifespan,
                        max_interrupts: p,
                    })
                    .collect();
                let _ = cache.solve_many(&configs);
            }
            _ => {
                let _ = cache.get_compressed(secs(grid as f64), q, lifespan, p);
                // Squeeze to half the current footprint, then unbound
                // again: resident_bytes is itself shard-invariant, so
                // the squeeze point is identical across runs.
                let resident = cache.stats().resident_bytes;
                cache.set_memory_budget(Some(resident / 2));
                cache.set_memory_budget(None);
            }
        }
    }

    let s = cache.stats();
    let seen = victims.lock().unwrap().clone();
    Outcome {
        hits: s.hits,
        misses: s.misses,
        evictions: s.evictions,
        entries: s.entries,
        compressed_entries: s.compressed_entries,
        resident_bytes: s.resident_bytes,
        victims: seen,
    }
}

#[test]
fn stats_and_victim_sequence_are_invariant_across_shards_and_threads() {
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let baseline = run(seed, 1, 1);
        assert!(
            baseline.evictions > 0 && !baseline.victims.is_empty(),
            "seed {seed:#x}: the workload must actually evict to pin the rule"
        );
        for shards in [1usize, 4, 16] {
            for threads in [1usize, 8] {
                let outcome = run(seed, shards, threads);
                assert_eq!(
                    outcome, baseline,
                    "seed {seed:#x}: {shards} shards × {threads} threads diverged"
                );
            }
        }
    }
}

#[test]
fn compressed_snapshot_listing_is_shard_invariant() {
    // `compressed_tables()` feeds the persistence layer; its order must
    // not depend on shard layout either.
    let identity = |shards: usize| {
        let cache = TableCache::with_options_sharded(SolveOptions::default(), shards);
        for grid in 1..=6u64 {
            let _ = cache.get_compressed(secs(grid as f64), 4, secs(150.0), 2);
        }
        cache
            .compressed_tables()
            .iter()
            .map(|t| (t.grid().setup().get().to_bits(), t.grid().q()))
            .collect::<Vec<_>>()
    };
    let baseline = identity(1);
    assert_eq!(baseline.len(), 6);
    assert_eq!(identity(4), baseline);
    assert_eq!(identity(16), baseline);
}
