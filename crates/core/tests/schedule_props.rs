//! Property tests for the core model, beyond the fixed-value unit tests:
//! random parameters, random schedules, and — crucially — invariance under
//! rescaling the time unit (everything in the model scales with `c`).

use cyclesteal_core::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The whole model is scale-free: multiplying `U` and `c` by the same
    /// factor multiplies every closed-form value by that factor.
    #[test]
    fn closed_forms_are_scale_invariant(
        u in 3.0f64..5_000.0,
        scale in 0.01f64..100.0,
        p in 0u32..6,
    ) {
        let w1a = w1_exact(secs(u), secs(1.0));
        let w1b = w1_exact(secs(u * scale), secs(scale));
        prop_assert!((w1b.get() - w1a.get() * scale).abs() <= 1e-6 * scale.max(1.0),
            "W^1 not scale-free: {w1a} vs {w1b}/{scale}");

        let oa = Opportunity::from_units(u, 1.0, p);
        let ob = Opportunity::from_units(u * scale, scale, p);
        let na_a = nonadaptive_guarantee(&oa);
        let na_b = nonadaptive_guarantee(&ob);
        prop_assert!((na_b.get() - na_a.get() * scale).abs() <= 1e-6 * scale.max(1.0));

        let ca = corrected_guarantee(&oa, 0.0, 0.0);
        let cb = corrected_guarantee(&ob, 0.0, 0.0);
        // The U^{1/4} slack term is off with slack 0, so this is exact.
        prop_assert!((cb.get() - ca.get() * scale).abs() <= 1e-6 * scale.max(1.0));
    }

    /// Schedule constructors are scale-equivariant: the schedule for
    /// `(kU, kc)` is the `(U, c)` schedule with every period scaled by `k`.
    #[test]
    fn schedules_are_scale_equivariant(
        u in 10.0f64..2_000.0,
        scale in 0.1f64..10.0,
        p in 1u32..4,
    ) {
        let a = AdaptiveGuideline::default()
            .episode(&Opportunity::from_units(u, 1.0, p)).unwrap();
        let b = AdaptiveGuideline::default()
            .episode(&Opportunity::from_units(u * scale, scale, p)).unwrap();
        prop_assert_eq!(a.len(), b.len(), "period counts differ under scaling");
        for k in 0..a.len() {
            prop_assert!(
                (b.period(k).get() - a.period(k).get() * scale).abs()
                    <= 1e-6 * scale.max(1.0),
                "period {k} not scaled"
            );
        }
    }

    /// §5.2's schedule really is optimal among random competitor schedules
    /// of the same lifespan (p = 1, adversary plays its best option).
    #[test]
    fn no_random_schedule_beats_s_opt1(
        u in 5.0f64..500.0,
        cuts in prop::collection::vec(0.001f64..0.999, 0..12),
    ) {
        let c = secs(1.0);
        // Random schedule from random cut points of [0, U].
        let mut points: Vec<f64> = cuts.iter().map(|x| x * u).collect();
        points.sort_by(|a, b| a.total_cmp(b));
        points.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut periods = Vec::new();
        let mut prev = 0.0;
        for &x in &points {
            if x - prev > 1e-9 {
                periods.push(secs(x - prev));
                prev = x;
            }
        }
        if u - prev > 1e-9 {
            periods.push(secs(u - prev));
        }
        let sched = EpisodeSchedule::from_periods(periods).unwrap();

        // Adversary's best response value against the random schedule.
        let mut worst = sched.work_uninterrupted(c);
        let mut accrued = Work::ZERO;
        for (_k, start, t) in sched.iter_windows() {
            let residual = (secs(u) - (start + t)).clamp_min_zero();
            worst = worst.min(accrued + residual.pos_sub(c));
            accrued += t.pos_sub(c);
        }
        prop_assert!(
            worst <= w1_exact(secs(u), c) + secs(1e-9),
            "random schedule guarantees {worst}, beating W^1 = {}",
            w1_exact(secs(u), c)
        );
    }

    /// Tail-consolidation dominance: for the committed guideline schedule,
    /// the §2.2 exception (one long period after the p-th interrupt) never
    /// hurts the owner, whatever kill set the adversary picks.
    #[test]
    fn consolidation_never_hurts(
        u in 50.0f64..2_000.0,
        p in 1u32..5,
        picks in prop::collection::btree_set(0usize..500, 1..8),
    ) {
        let opp = Opportunity::from_units(u, 1.0, p);
        let run = NonAdaptiveGuideline::run(&opp).unwrap();
        let m = run.schedule().len();
        // Kill set of exactly p in-range periods (when enough picks fit).
        let killed: Vec<usize> = picks.into_iter()
            .filter(|&k| k < m)
            .take(p as usize)
            .collect();
        if killed.len() < p as usize { return Ok(()); }
        let with = run.work_given_killed(&killed).unwrap();
        // "Without consolidation": killed contributions simply removed.
        let without: Work = (0..m)
            .filter(|k| !killed.contains(k))
            .map(|k| run.schedule().period_work(k, secs(1.0)))
            .sum();
        prop_assert!(
            with + secs(1e-9) >= without,
            "consolidation hurt: {with} < {without} (killed {killed:?})"
        );
    }

    /// Table 1's rows are internally consistent for arbitrary schedules:
    /// episode work is nondecreasing in the interrupted period index, and
    /// the no-interrupt row equals the last row's episode work plus the
    /// final period's contribution.
    #[test]
    fn table1_rows_are_consistent(
        periods in prop::collection::vec(0.1f64..20.0, 1..25),
        p in 1u32..4,
    ) {
        let c = secs(1.0);
        let u: f64 = periods.iter().sum();
        let sched = EpisodeSchedule::from_periods(
            periods.iter().map(|&x| secs(x)).collect()).unwrap();
        let opp = Opportunity::from_units(u, 1.0, p);
        let oracle = ClosedFormOracle::new(c);
        let rows = table1(&oracle, &opp, &sched);
        prop_assert_eq!(rows.len(), sched.len() + 1);
        for w in rows[1..].windows(2) {
            prop_assert!(w[0].episode_work <= w[1].episode_work + secs(1e-9));
            prop_assert!(w[0].residual >= w[1].residual - secs(1e-9));
        }
        let last = rows.last().unwrap();
        let expect_full = last.episode_work
            + sched.period_work(sched.len() - 1, c);
        prop_assert!(rows[0].episode_work.approx_eq(expect_full, secs(1e-6)));
    }

    /// The equalizer's value is monotone in the lifespan (it inherits
    /// Prop 4.1(a) through the construction).
    #[test]
    fn equalizer_monotone_in_lifespan(u in 5.0f64..400.0, du in 0.5f64..50.0) {
        let oracle = ClosedFormOracle::new(secs(1.0));
        let (_s1, v1) = equalized_schedule(
            &oracle, &Opportunity::from_units(u, 1.0, 1)).unwrap();
        let (_s2, v2) = equalized_schedule(
            &oracle, &Opportunity::from_units(u + du, 1.0, 1)).unwrap();
        prop_assert!(v2 + secs(1e-4) >= v1, "W^1({}) = {v2} < W^1({u}) = {v1}", u + du);
    }
}
