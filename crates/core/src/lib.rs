//! # cyclesteal-core
//!
//! Formal model, schedule families and closed-form bounds for
//! *guaranteed-output cycle-stealing* in networks of workstations, after
//!
//! > A. L. Rosenberg, "Guidelines for Data-Parallel Cycle-Stealing in
//! > Networks of Workstations, II: On Maximizing Guaranteed Output",
//! > IPPS 1999.
//!
//! ## The model in brief
//!
//! Workstation `A` borrows workstation `B` for a usable lifespan `U`,
//! subject to at most `p` owner interrupts, each of which **kills all work
//! in progress**. Work is dispatched in *periods*; each period pays a
//! communication-setup charge `c`, so a period of length `t` that completes
//! banks `t ⊖ c` work, and a period that is interrupted banks nothing.
//! Scheduling is a game against a malicious adversary who places the
//! interrupts to minimize the banked total.
//!
//! ## What lives where
//!
//! * [`time`] — the `Time`/`Work` scalar and the paper's `⊖`.
//! * [`model`] — the opportunity triple `(U, c, p)`.
//! * [`schedule`] — episode schedules `t_1, …, t_m` and their invariants,
//!   including Theorem 4.1's productive-normalization.
//! * [`work`] — §2.2 work accounting: episode outcomes under interrupts,
//!   and the non-adaptive tail-replay/consolidation discipline.
//! * [`schedules`] — §3.1's non-adaptive guideline, §3.2's adaptive
//!   guideline, §5.2's exact `p = 1` optimum, Theorem 4.3's equalization
//!   constructor, and naive baselines.
//! * [`bounds`] — Prop 4.1, Thm 5.1 and the closed forms of Table 2.
//! * [`table1`] — the adversary's option table (Table 1), regenerable for
//!   any schedule.
//! * [`policy`] — the traits tying owners, adversaries and work oracles
//!   together across the workspace.
//!
//! The exact game solver (the `W^(p)[L]` oracle) lives in `cyclesteal-dp`;
//! adversaries and the game runner in `cyclesteal-adversary`; a discrete-
//! event NOW simulator in `now-sim`.
//!
//! ## Quick start
//!
//! ```
//! use cyclesteal_core::prelude::*;
//!
//! // An overnight opportunity: 8 hours in seconds, 30 s setup charge,
//! // at most 3 interrupts.
//! let opp = Opportunity::from_units(8.0 * 3600.0, 30.0, 3);
//!
//! // §3.2's adaptive guideline commits this episode schedule first:
//! let schedule = AdaptiveGuideline::default().episode(&opp).unwrap();
//! assert!(schedule.is_fully_productive(opp.setup()));
//!
//! // Theorem 5.1 guarantees nearly all of the lifespan as useful work:
//! let bound = thm51_lower_bound(&opp, 0.0, 0.0);
//! assert!(bound.get() > 0.9 * opp.lifespan().get());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod error;
pub mod model;
pub mod policy;
pub mod schedule;
pub mod schedules;
pub mod table1;
pub mod time;
pub mod work;

/// One-stop imports for downstream crates, examples and tests.
pub mod prelude {
    pub use crate::bounds::{
        corrected_guarantee, lambda1_opt, loss_coefficient, m1_opt, nonadaptive_guarantee,
        profile_coefficient, thm51_lower_bound, w0, w1_approx, w1_exact, zero_work_threshold,
    };
    pub use crate::error::{ModelError, Result};
    pub use crate::model::Opportunity;
    pub use crate::policy::{
        Adversary, ClosedFormOracle, CommittedSchedule, EpisodePolicy, WorkOracle,
    };
    pub use crate::schedule::EpisodeSchedule;
    pub use crate::schedules::{
        equalized_schedule, optimal_p1_schedule, verify_equalization, AdaptiveGuideline,
        EqualPeriodsPolicy, EqualizationReport, FixedChunkPolicy, HalvingPolicy,
        NonAdaptiveGuideline, OptimalP1Policy, SelfSimilarGuideline, SinglePeriodPolicy,
    };
    pub use crate::table1::{adversary_value, render_table1, table1, AdversaryOption, Table1Row};
    pub use crate::time::{secs, Time, Work};
    pub use crate::work::{episode_outcome, EpisodeOutcome, InterruptSpec, NonAdaptiveRun};
}
