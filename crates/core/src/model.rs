//! The cycle-stealing opportunity: the paper's `(U, c, p)` triple.
//!
//! Section 2 of the paper characterizes a cycle-stealing opportunity by the
//! *usable lifespan* `U` during which workstation `B` is available to `A`,
//! an upper bound `p` on the number of owner interrupts, and the
//! architecture-independent setup charge `c` paid by every period for the
//! paired communications that bracket it.

use crate::error::{ModelError, Result};
use crate::time::Time;

/// A cycle-stealing opportunity (or the residual opportunity in the middle
/// of a game): usable lifespan `U`, communication setup charge `c`, and the
/// number `p` of interrupts the owner of `B` may still perform.
///
/// `A`'s owner knows all three quantities in the guaranteed-output submodel;
/// what is unknown is how many of the `p` interrupts will actually occur and
/// where they will fall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Opportunity {
    lifespan: Time,
    setup: Time,
    interrupts: u32,
}

impl Opportunity {
    /// Creates an opportunity, validating the model's preconditions:
    /// `U ≥ 0` and `c > 0`.
    pub fn new(lifespan: Time, setup: Time, interrupts: u32) -> Result<Opportunity> {
        if lifespan.is_negative() {
            return Err(ModelError::NegativeLifespan { lifespan });
        }
        if !setup.is_positive() {
            return Err(ModelError::NonPositiveSetup { setup });
        }
        Ok(Opportunity {
            lifespan,
            setup,
            interrupts,
        })
    }

    /// Convenience constructor from raw numbers of time units; panics on
    /// invalid input (use [`Opportunity::new`] for fallible construction).
    #[track_caller]
    pub fn from_units(lifespan: f64, setup: f64, interrupts: u32) -> Opportunity {
        Opportunity::new(Time::new(lifespan), Time::new(setup), interrupts)
            .expect("invalid opportunity parameters")
    }

    /// The (residual) usable lifespan `U`.
    #[inline]
    pub fn lifespan(&self) -> Time {
        self.lifespan
    }

    /// The setup charge `c` for one period's paired communications.
    #[inline]
    pub fn setup(&self) -> Time {
        self.setup
    }

    /// The remaining interrupt budget `p` of the adversary.
    #[inline]
    pub fn interrupts(&self) -> u32 {
        self.interrupts
    }

    /// The dimensionless ratio `U/c`; the shape of every guideline depends
    /// on the parameters only through this ratio and `p`.
    #[inline]
    pub fn u_over_c(&self) -> f64 {
        self.lifespan.ratio(self.setup)
    }

    /// Proposition 4.1(c): if `U ≤ (p+1)c` the adversary can kill every
    /// productive period, so no schedule can guarantee any work.
    #[inline]
    pub fn is_hopeless(&self) -> bool {
        self.lifespan <= self.setup * (self.interrupts as f64 + 1.0)
    }

    /// The residual opportunity after the adversary interrupts, having
    /// consumed `consumed` units of usable lifespan: `p` drops by one and
    /// `U` drops by the consumed span.
    ///
    /// Panics if no interrupts remain or if `consumed` exceeds the residual
    /// lifespan (beyond a small floating-point slack, which is clamped).
    #[track_caller]
    pub fn after_interrupt(&self, consumed: Time) -> Opportunity {
        assert!(
            self.interrupts > 0,
            "adversary has no interrupts left to spend"
        );
        assert!(
            consumed <= self.lifespan + self.setup * 1e-9,
            "interrupt consumed {consumed} exceeds residual lifespan {}",
            self.lifespan
        );
        Opportunity {
            lifespan: self.lifespan.pos_sub(consumed),
            setup: self.setup,
            interrupts: self.interrupts - 1,
        }
    }

    /// The same opportunity with lifespan replaced by `lifespan`.
    pub fn with_lifespan(&self, lifespan: Time) -> Result<Opportunity> {
        Opportunity::new(lifespan, self.setup, self.interrupts)
    }

    /// The same opportunity with the interrupt budget replaced by `p`.
    pub fn with_interrupts(&self, p: u32) -> Opportunity {
        Opportunity {
            interrupts: p,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn construction_validates_parameters() {
        assert!(Opportunity::new(secs(10.0), secs(1.0), 2).is_ok());
        assert!(matches!(
            Opportunity::new(secs(-1.0), secs(1.0), 0),
            Err(ModelError::NegativeLifespan { .. })
        ));
        assert!(matches!(
            Opportunity::new(secs(1.0), secs(0.0), 0),
            Err(ModelError::NonPositiveSetup { .. })
        ));
        assert!(matches!(
            Opportunity::new(secs(1.0), secs(-2.0), 0),
            Err(ModelError::NonPositiveSetup { .. })
        ));
    }

    #[test]
    fn hopeless_threshold_is_prop_41c() {
        // U ≤ (p+1)c  ⇒  no guaranteed work.
        let c = 2.0;
        for p in 0..5u32 {
            let boundary = (p as f64 + 1.0) * c;
            assert!(Opportunity::from_units(boundary, c, p).is_hopeless());
            assert!(Opportunity::from_units(boundary - 0.1, c, p).is_hopeless());
            assert!(!Opportunity::from_units(boundary + 0.1, c, p).is_hopeless());
        }
    }

    #[test]
    fn after_interrupt_decrements_budget_and_lifespan() {
        let opp = Opportunity::from_units(100.0, 1.0, 3);
        let rest = opp.after_interrupt(secs(30.0));
        assert_eq!(rest.interrupts(), 2);
        assert_eq!(rest.lifespan(), secs(70.0));
        assert_eq!(rest.setup(), secs(1.0));
    }

    #[test]
    #[should_panic(expected = "no interrupts left")]
    fn after_interrupt_requires_budget() {
        let opp = Opportunity::from_units(100.0, 1.0, 0);
        let _ = opp.after_interrupt(secs(1.0));
    }

    #[test]
    fn u_over_c_ratio() {
        let opp = Opportunity::from_units(128.0, 2.0, 1);
        assert_eq!(opp.u_over_c(), 64.0);
    }
}
