//! Closed-form bounds and exact values from §§3–5 of the paper.
//!
//! * Proposition 4.1: elementary facts about `W^(p)[U]`.
//! * §3.1: the guaranteed output of the non-adaptive guideline.
//! * Theorem 5.1: the adaptive guideline's guarantee
//!   `W ≥ U − (2 − 2^{1−p})√(2cU) − O(U^{1/4} + pc)`.
//! * §5.2 / Table 2: the *exact* optimal value for `p = 1`,
//!   `W^(1)[U] = U − (m + λ)c` with `m` from the paper's equation (5.1).
//!
//! Formulas whose printed form is ambiguous in the scanned source are
//! reconstructed as documented in `DESIGN.md` §1.1 and are verified
//! numerically against the exact DP solver in `cyclesteal-dp`.

use crate::model::Opportunity;
use crate::time::{Time, Work};

/// Proposition 4.1(c): the lifespan at or below which no schedule can
/// guarantee any work, `(p + 1)·c`.
pub fn zero_work_threshold(setup: Time, interrupts: u32) -> Time {
    setup * (interrupts as f64 + 1.0)
}

/// Proposition 4.1(d): with no interrupts left the unique optimal schedule
/// is the single period `S = U`, achieving `W^(0)[U] = U ⊖ c`.
pub fn w0(lifespan: Time, setup: Time) -> Work {
    lifespan.pos_sub(setup)
}

/// §3.1 (reconstructed; see DESIGN.md §1.1 note 1): the guaranteed output
/// of the non-adaptive guideline in closed form,
/// `W(S_na^(p)) = U − 2√(pcU) + pc + O(√(cU/p))`.
///
/// This is the continuum value `(m − p)(U/m − c)` at the optimal real
/// `m* = √(pU/c)`; the exact value of the integral-`m` schedule is computed
/// by [`crate::schedules::NonAdaptiveGuideline`] together with the worst-case
/// evaluator in `cyclesteal-adversary`.
pub fn nonadaptive_guarantee(opp: &Opportunity) -> Work {
    let u = opp.lifespan();
    let c = opp.setup();
    let p = opp.interrupts() as f64;
    if p == 0.0 {
        return w0(u, c);
    }
    let loss = Time::new(2.0 * (p * c.get() * u.get()).sqrt()) - c * p;
    u.pos_sub(loss.clamp_min_zero())
}

/// Theorem 5.1's leading term **as printed**: the adaptive guideline
/// guarantees at least `U − (2 − 2^{1−p})·√(2cU)` up to the stated
/// `O(U^{1/4} + pc)` slack.
///
/// **Reproduction caveat (EXPERIMENTS.md E5, DESIGN.md §1.1 note 5):**
/// for `p ≥ 2` the printed coefficient is *below* the exact game's
/// asymptotic loss constant — e.g. `1.5` at `p = 2` where the true
/// constant is the golden ratio `φ ≈ 1.618` — so no schedule can achieve
/// this bound; the scanned formula appears to be garbled or erroneous.
/// Use [`loss_coefficient`]/[`corrected_guarantee`] for the constant this
/// repository derives and verifies; this function is retained to
/// reproduce the paper's stated numbers.
///
/// `slack_u14` and `slack_pc` let callers instantiate the low-order term
/// with explicit constants (the paper leaves them implicit); the benches
/// fit them empirically (EXPERIMENTS.md, E5).
pub fn thm51_lower_bound(opp: &Opportunity, slack_u14: f64, slack_pc: f64) -> Work {
    let u = opp.lifespan();
    let c = opp.setup();
    let p = opp.interrupts();
    if p == 0 {
        return w0(u, c);
    }
    let coeff = 2.0 - (2.0f64).powi(1 - p as i32);
    let sqrt_term = (2.0 * c.get() * u.get()).sqrt();
    let low_order = slack_u14 * u.get().powf(0.25) + slack_pc * p as f64 * c.get();
    Time::new((u.get() - coeff * sqrt_term - low_order).max(0.0))
}

/// The **exact** asymptotic loss coefficient `β_p` of the guaranteed-output
/// game: `W^(p)[U] = U − β_p·√(2cU) − O(low order)`, with
///
/// ```text
/// β_0 = 0,   β_1 = 1,   β_p = (β_{p−1} + √(β_{p−1}² + 4)) / 2   (p ≥ 2),
/// ```
///
/// so `β_2 = (1 + √5)/2 = φ` (the golden ratio), `β_3 ≈ 2.0953`,
/// `β_4 ≈ 2.4959`, growing like `√(2p)` — in contrast to the paper's
/// printed (and, per our measurements, unachievable) bounded constant
/// `2 − 2^{1−p}`.
///
/// **Derivation** (continuum limit of Theorem 4.3's equalization): write
/// the option-value equality `V = (U − R) − k(R)c + W^{p−1}(R − t(R))`
/// along the schedule, differentiate in the residual `R` with
/// `k'(R) = −1/t`, and substitute the inductive form
/// `W^{p−1}(R) = R − β_{p−1}√(2cR)`; the self-similar profile
/// `t(R) = γ_p·√(2cR)` solves it with `γ_p² + β_{p−1}γ_p = 1`
/// (equivalently `γ_p = 1/β_p`), and anchoring option 1 at `V = W^(p)(U)`
/// yields `β_p = β_{p−1} + γ_p`. The exact DP solver confirms the
/// constants to three digits by `U/c = 131072` (EXPERIMENTS.md E5).
pub fn loss_coefficient(p: u32) -> f64 {
    let mut beta = match p {
        0 => return 0.0,
        _ => 1.0f64,
    };
    for _ in 2..=p {
        beta = 0.5 * (beta + (beta * beta + 4.0).sqrt());
    }
    beta
}

/// The self-similar period profile constant `γ_p = 1/β_p`: the optimal
/// episode schedule's periods satisfy `t ≈ γ_p·√(2cR)` at residual `R`
/// (see [`loss_coefficient`]).
pub fn profile_coefficient(p: u32) -> f64 {
    assert!(p >= 1, "profile is defined for p ≥ 1");
    1.0 / loss_coefficient(p)
}

/// The corrected leading-order guarantee `U − β_p·√(2cU)` with the exact
/// coefficient from [`loss_coefficient`] — what Theorem 5.1's bound should
/// read, per this reproduction. `slack_u14`/`slack_pc` instantiate the
/// low-order term as in [`thm51_lower_bound`].
pub fn corrected_guarantee(opp: &Opportunity, slack_u14: f64, slack_pc: f64) -> Work {
    let u = opp.lifespan();
    let c = opp.setup();
    let p = opp.interrupts();
    if p == 0 {
        return w0(u, c);
    }
    let coeff = loss_coefficient(p);
    let sqrt_term = (2.0 * c.get() * u.get()).sqrt();
    let low_order = slack_u14 * u.get().powf(0.25) + slack_pc * p as f64 * c.get();
    Time::new((u.get() - coeff * sqrt_term - low_order).max(0.0))
}

/// Equation (5.1): the optimal period count for `p = 1`,
/// `m^(1)[U] = ⌈ √(2U/c − 7/4) − 1/2 ⌉`.
///
/// Defined for `U > 2c` (below that threshold no work can be guaranteed and
/// the episode degenerates); this function returns `m ≥ 1` for all
/// `U ≥ 2c` and clamps to 1 below.
pub fn m1_opt(lifespan: Time, setup: Time) -> usize {
    let ratio = lifespan.ratio(setup);
    let inner = 2.0 * ratio - 1.75;
    if inner <= 0.25 {
        return 1;
    }
    let m = (inner.sqrt() - 0.5).ceil();
    (m.max(1.0)) as usize
}

/// §5.2: the fractional part `λ ∈ (0, 1]` of the optimal `p = 1` schedule,
/// `λ = (U − c)/(mc) − (m − 1)/2`.
pub fn lambda1_opt(lifespan: Time, setup: Time, m: usize) -> f64 {
    let m = m as f64;
    (lifespan - setup).get() / (m * setup.get()) - (m - 1.0) / 2.0
}

/// §5.2 / Table 2: the **exact** optimal guaranteed output for `p = 1`:
/// `W^(1)[U] = U − (m + λ)c` for `U > 2c`, `0` otherwise.
///
/// All of the adversary's options against `S_opt^(1)[U]` are equalized at
/// this value (see `schedules::optimal_p1` and the property tests), so it
/// is both the schedule's guarantee and the game's exact value.
pub fn w1_exact(lifespan: Time, setup: Time) -> Work {
    if lifespan <= setup * 2.0 {
        return Work::ZERO;
    }
    let m = m1_opt(lifespan, setup);
    let lambda = lambda1_opt(lifespan, setup, m);
    debug_assert!(
        (0.0..=1.0 + 1e-9).contains(&lambda),
        "lambda {lambda} out of (0,1] for U={lifespan}, c={setup}, m={m}"
    );
    (lifespan - setup * (m as f64 + lambda)).clamp_min_zero()
}

/// Table 2's approximation for the optimal `p = 1` value:
/// `W^(1)[U] ≈ U − √(2cU) − c/2`.
pub fn w1_approx(lifespan: Time, setup: Time) -> Work {
    let loss = (2.0 * setup.get() * lifespan.get()).sqrt() + setup.get() / 2.0;
    Time::new((lifespan.get() - loss).max(0.0))
}

/// Table 2's approximation for the optimal `p = 1` period count:
/// `m^(1)[U] ≈ √(2U/c) − 7/4` (reported for comparison only; the exact
/// count is [`m1_opt`]).
pub fn m1_approx(lifespan: Time, setup: Time) -> f64 {
    (2.0 * lifespan.ratio(setup)).sqrt() - 1.75
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn w0_is_positive_subtraction() {
        assert_eq!(w0(secs(10.0), secs(1.0)), secs(9.0));
        assert_eq!(w0(secs(0.5), secs(1.0)), secs(0.0));
    }

    #[test]
    fn zero_threshold_matches_prop_41c() {
        assert_eq!(zero_work_threshold(secs(2.0), 0), secs(2.0));
        assert_eq!(zero_work_threshold(secs(2.0), 3), secs(8.0));
    }

    #[test]
    fn m1_matches_paper_examples() {
        // U = 2c is the degenerate boundary: m = 1, λ = 1, W = 0.
        let c = secs(1.0);
        assert_eq!(m1_opt(secs(2.0), c), 1);
        assert!((lambda1_opt(secs(2.0), c, 1) - 1.0).abs() < 1e-12);
        assert_eq!(w1_exact(secs(2.0), c), secs(0.0));

        // U = 2.5c: m = 2, λ = 1/4, W = U − 2.25c = 0.25c (hand-computed:
        // two periods of 1.25c equalize both interrupt options at 0.25c).
        assert_eq!(m1_opt(secs(2.5), c), 2);
        assert!((lambda1_opt(secs(2.5), c, 2) - 0.25).abs() < 1e-12);
        assert!(w1_exact(secs(2.5), c).approx_eq(secs(0.25), secs(1e-12)));
    }

    #[test]
    fn lambda_is_always_in_unit_interval() {
        let c = secs(1.0);
        let mut u = 2.0;
        while u < 5000.0 {
            let m = m1_opt(secs(u), c);
            let l = lambda1_opt(secs(u), c, m);
            assert!(
                l > -1e-12 && l <= 1.0 + 1e-12,
                "lambda {l} out of range at U={u}, m={m}"
            );
            u *= 1.0371;
        }
    }

    #[test]
    fn w1_exact_close_to_table2_approximation() {
        let c = secs(1.0);
        for &u in &[100.0, 1_000.0, 10_000.0, 100_000.0] {
            let exact = w1_exact(secs(u), c);
            let approx = w1_approx(secs(u), c);
            // Table 2 says the two differ by a bounded additive term; the
            // discretization of m costs at most O(c).
            assert!(
                (exact - approx).abs() <= secs(1.5),
                "U={u}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn w1_monotone_in_lifespan() {
        let c = secs(1.0);
        let mut prev = Work::ZERO;
        let mut u = 2.0;
        while u < 2000.0 {
            let w = w1_exact(secs(u), c);
            assert!(w + secs(1e-9) >= prev, "W^1 not monotone at U={u}");
            prev = w;
            u += 0.73;
        }
    }

    #[test]
    fn loss_coefficients_follow_the_golden_recursion() {
        assert_eq!(loss_coefficient(0), 0.0);
        assert_eq!(loss_coefficient(1), 1.0);
        let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!((loss_coefficient(2) - phi).abs() < 1e-12);
        assert!((loss_coefficient(3) - 2.095_293_985_223_914_7).abs() < 1e-12);
        // β_p² − β_p·β_{p−1} = 1 for every p ≥ 2.
        for p in 2..12u32 {
            let b = loss_coefficient(p);
            let b0 = loss_coefficient(p - 1);
            assert!(
                (b * b - b * b0 - 1.0).abs() < 1e-9,
                "identity fails at p={p}"
            );
            // γ_p = 1/β_p.
            assert!((profile_coefficient(p) - 1.0 / b).abs() < 1e-12);
        }
        // Growth like √(2p): ratio tends to 1.
        let b = loss_coefficient(200);
        assert!(
            (b / (2.0 * 200.0f64).sqrt() - 1.0).abs() < 0.05,
            "β_200 = {b}"
        );
    }

    #[test]
    fn corrected_guarantee_is_weaker_than_printed_for_p_ge_2() {
        // The printed coefficient 2 − 2^{1−p} understates the loss for
        // p ≥ 2, so the printed bound is larger (unachievable).
        let c = secs(1.0);
        let u = secs(100_000.0);
        for p in 2..6u32 {
            let opp = Opportunity::new(u, c, p).unwrap();
            assert!(
                corrected_guarantee(&opp, 0.0, 0.0) < thm51_lower_bound(&opp, 0.0, 0.0),
                "p={p}"
            );
        }
        // p ≤ 1: the two coincide.
        let opp1 = Opportunity::new(u, c, 1).unwrap();
        assert_eq!(
            corrected_guarantee(&opp1, 0.0, 0.0),
            thm51_lower_bound(&opp1, 0.0, 0.0)
        );
    }

    #[test]
    fn thm51_bound_below_lifespan_and_improves_with_p_coefficient() {
        let c = secs(1.0);
        let u = secs(10_000.0);
        let b1 = thm51_lower_bound(&Opportunity::new(u, c, 1).unwrap(), 0.0, 0.0);
        let b2 = thm51_lower_bound(&Opportunity::new(u, c, 2).unwrap(), 0.0, 0.0);
        let b3 = thm51_lower_bound(&Opportunity::new(u, c, 3).unwrap(), 0.0, 0.0);
        assert!(b1 > b2 && b2 > b3, "more interrupts ⇒ weaker guarantee");
        assert!(b1 < u);
        // p = 1 coefficient is exactly √(2cU).
        let expect = u.get() - (2.0 * u.get()).sqrt();
        assert!((b1.get() - expect).abs() < 1e-9);
    }

    #[test]
    fn nonadaptive_guarantee_closed_form() {
        let c = secs(1.0);
        let u = secs(10_000.0);
        // p = 1: U − 2√(cU) + c.
        let opp = Opportunity::new(u, c, 1).unwrap();
        let w = nonadaptive_guarantee(&opp);
        let expect = u.get() - 2.0 * u.get().sqrt() + 1.0;
        assert!((w.get() - expect).abs() < 1e-9);
        // p = 0 degenerates to the single-period optimum.
        let opp0 = Opportunity::new(u, c, 0).unwrap();
        assert_eq!(nonadaptive_guarantee(&opp0), w0(u, c));
    }

    #[test]
    fn adaptive_beats_nonadaptive_asymptotically() {
        // The whole point of the paper: the adaptive loss coefficient is
        // bounded (≤ 2√(2cU)) while the non-adaptive loss grows like √p.
        let c = secs(1.0);
        let u = secs(1_000_000.0);
        for p in 3..8u32 {
            let opp = Opportunity::new(u, c, p).unwrap();
            assert!(
                thm51_lower_bound(&opp, 1.0, 1.0) > nonadaptive_guarantee(&opp),
                "adaptive bound should dominate at p={p}"
            );
        }
    }
}
