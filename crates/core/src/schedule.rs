//! Episode schedules: the owner of `A`'s only lever.
//!
//! §2.2 of the paper: the owner partitions each episode into *periods*; an
//! `m`-period schedule for an episode of residual lifespan `L` is a sequence
//! `S = t_1, …, t_m` with every `t_i > 0` and `Σ t_i = L`. Period `k`
//! occupies the half-open window `[T_{k−1}, T_k)` where `T_k = t_1 + … + t_k`,
//! and banks `t_k ⊖ c` work iff it completes without an interrupt.

use crate::error::{ModelError, Result};
use crate::time::{Time, Work};

/// Relative tolerance used when validating that periods sum to the episode
/// lifespan (the model is continuous; sums of thousands of `f64` periods
/// accumulate rounding on the order of a few ulps).
pub const SUM_TOLERANCE: f64 = 1e-9;

/// An episode schedule `S = t_1, …, t_m` (§2.2).
///
/// Invariants, enforced at construction:
/// * at least one period,
/// * every period strictly positive.
///
/// The schedule does not store `c`; work accounting takes the setup charge
/// as a parameter so one schedule can be analyzed under several charges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpisodeSchedule {
    periods: Vec<Time>,
}

impl EpisodeSchedule {
    /// Builds a schedule from explicit period lengths.
    pub fn from_periods(periods: Vec<Time>) -> Result<EpisodeSchedule> {
        if periods.is_empty() {
            return Err(ModelError::EmptySchedule);
        }
        for (index, &length) in periods.iter().enumerate() {
            if !length.is_positive() {
                return Err(ModelError::NonPositivePeriod { index, length });
            }
        }
        Ok(EpisodeSchedule { periods })
    }

    /// Builds a schedule and additionally checks `Σ t_i = lifespan` up to a
    /// relative tolerance of [`SUM_TOLERANCE`].
    pub fn for_lifespan(periods: Vec<Time>, lifespan: Time) -> Result<EpisodeSchedule> {
        let sched = EpisodeSchedule::from_periods(periods)?;
        let total = sched.total();
        let tol = Time::new(lifespan.get().abs().max(1.0) * SUM_TOLERANCE);
        if !total.approx_eq(lifespan, tol) {
            return Err(ModelError::LifespanMismatch { total, lifespan });
        }
        Ok(sched)
    }

    /// The one-period schedule `S = L` — optimal when no interrupts remain
    /// (Proposition 4.1(d)).
    pub fn single(lifespan: Time) -> Result<EpisodeSchedule> {
        EpisodeSchedule::from_periods(vec![lifespan])
    }

    /// `m` equal periods of length `L/m`.
    pub fn equal(lifespan: Time, m: usize) -> Result<EpisodeSchedule> {
        if m == 0 {
            return Err(ModelError::EmptySchedule);
        }
        let t = lifespan / m as f64;
        EpisodeSchedule::from_periods(vec![t; m])
    }

    /// The period lengths `t_1, …, t_m`.
    #[inline]
    pub fn periods(&self) -> &[Time] {
        &self.periods
    }

    /// Number of periods `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.periods.len()
    }

    /// `true` iff the schedule has exactly one period.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // invariant: never empty
    }

    /// The `k`-th period length `t_{k+1}` (zero-based index).
    #[inline]
    pub fn period(&self, k: usize) -> Time {
        self.periods[k]
    }

    /// Total scheduled time `Σ t_i` (equals the episode lifespan `L`).
    pub fn total(&self) -> Time {
        self.periods.iter().copied().sum()
    }

    /// `T_k`, the end of period `k` (zero-based: `boundary(0) = t_1`).
    /// For the paper's `T_0 = 0` use [`EpisodeSchedule::start_of`].
    pub fn boundary(&self, k: usize) -> Time {
        self.periods[..=k].iter().copied().sum()
    }

    /// `T_{k−1}`, the start of period `k` (zero-based: `start_of(0) = 0`).
    pub fn start_of(&self, k: usize) -> Time {
        self.periods[..k].iter().copied().sum()
    }

    /// All boundaries `T_0 = 0, T_1, …, T_m` as a prefix-sum vector of
    /// length `m + 1`.
    pub fn boundaries(&self) -> Vec<Time> {
        let mut out = Vec::with_capacity(self.periods.len() + 1);
        let mut acc = Time::ZERO;
        out.push(acc);
        for &t in &self.periods {
            acc += t;
            out.push(acc);
        }
        out
    }

    /// The work `t_k ⊖ c` banked by period `k` if it completes.
    #[inline]
    pub fn period_work(&self, k: usize, setup: Time) -> Work {
        self.periods[k].pos_sub(setup)
    }

    /// Total work `Σ (t_i ⊖ c)` if the whole episode runs uninterrupted.
    pub fn work_uninterrupted(&self, setup: Time) -> Work {
        self.periods.iter().map(|t| t.pos_sub(setup)).sum()
    }

    /// A period is *productive* when its length strictly exceeds `c`.
    #[inline]
    pub fn is_period_productive(&self, k: usize, setup: Time) -> bool {
        self.periods[k] > setup
    }

    /// §4.1: a schedule is *productive* when every period except possibly
    /// the last strictly exceeds `c`.
    pub fn is_productive(&self, setup: Time) -> bool {
        let m = self.periods.len();
        self.periods[..m - 1].iter().all(|&t| t > setup)
    }

    /// §4.1: a schedule is *fully productive* when **every** period strictly
    /// exceeds `c`.
    pub fn is_fully_productive(&self, setup: Time) -> bool {
        self.periods.iter().all(|&t| t > setup)
    }

    /// Theorem 4.1's transformation: any schedule can be replaced by a
    /// *productive* one with no smaller work production, by repeatedly
    /// merging a nonproductive nonterminal period into its successor.
    ///
    /// Returns a productive schedule over the same lifespan. The merge never
    /// decreases guaranteed work: the merged period saves one setup charge
    /// and offers the adversary a superset of nothing — see the paper's
    /// proof sketch and `tests/thm41.rs` for the machine-checked statement.
    pub fn make_productive(&self, setup: Time) -> EpisodeSchedule {
        let mut periods = self.periods.clone();
        let mut i = 0;
        while i + 1 < periods.len() {
            if periods[i] <= setup {
                let t = periods.remove(i);
                periods[i] += t;
                // Re-examine from the previous index: the merge may have
                // made an earlier neighbour's successor change.
                i = i.saturating_sub(1);
            } else {
                i += 1;
            }
        }
        EpisodeSchedule { periods }
    }

    /// Theorem 4.2's transformation: split period `k` into two equal
    /// halves. For `r`-immune tail periods this can only increase work
    /// production (the adversary never interrupts there, and two completed
    /// halves bank `t − 2c ≥ 0` only when worthwhile — callers apply it
    /// while halves stay productive).
    pub fn split_period(&self, k: usize) -> Result<EpisodeSchedule> {
        if k >= self.periods.len() {
            return Err(ModelError::PeriodOutOfRange {
                index: k,
                len: self.periods.len(),
            });
        }
        let mut periods = self.periods.clone();
        let half = periods[k] / 2.0;
        periods[k] = half;
        periods.insert(k + 1, half);
        EpisodeSchedule::from_periods(periods)
    }

    /// The tail sub-schedule `t_{k+1}, …, t_m` used by the non-adaptive
    /// discipline after an interrupt in period `k` (zero-based `k`;
    /// returns `None` when the interrupt hit the last period).
    pub fn tail_after(&self, k: usize) -> Option<EpisodeSchedule> {
        if k + 1 >= self.periods.len() {
            None
        } else {
            Some(EpisodeSchedule {
                periods: self.periods[k + 1..].to_vec(),
            })
        }
    }

    /// Locates the period containing episode time `t`: returns the
    /// zero-based period index and the offset from its start, or `None`
    /// when `t` is negative or at/after the episode's end (windows are
    /// half-open, so `t = total()` belongs to no period).
    pub fn locate(&self, t: Time) -> Option<(usize, Time)> {
        if t.is_negative() {
            return None;
        }
        let mut start = Time::ZERO;
        for (k, &len) in self.periods.iter().enumerate() {
            let end = start + len;
            if t < end {
                return Some((k, t - start));
            }
            start = end;
        }
        None
    }

    /// Iterates over `(zero-based index, start T_{k−1}, length t_k)`.
    pub fn iter_windows(&self) -> impl Iterator<Item = (usize, Time, Time)> + '_ {
        let mut start = Time::ZERO;
        self.periods.iter().copied().enumerate().map(move |(k, t)| {
            let s = start;
            start += t;
            (k, s, t)
        })
    }
}

impl std::fmt::Display for EpisodeSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.periods.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    fn sched(v: &[f64]) -> EpisodeSchedule {
        EpisodeSchedule::from_periods(v.iter().map(|&x| secs(x)).collect()).unwrap()
    }

    #[test]
    fn construction_rejects_bad_periods() {
        assert!(matches!(
            EpisodeSchedule::from_periods(vec![]),
            Err(ModelError::EmptySchedule)
        ));
        assert!(matches!(
            EpisodeSchedule::from_periods(vec![secs(1.0), secs(0.0)]),
            Err(ModelError::NonPositivePeriod { index: 1, .. })
        ));
        assert!(matches!(
            EpisodeSchedule::from_periods(vec![secs(-1.0)]),
            Err(ModelError::NonPositivePeriod { index: 0, .. })
        ));
    }

    #[test]
    fn for_lifespan_checks_sum() {
        let ok = EpisodeSchedule::for_lifespan(vec![secs(2.0), secs(3.0)], secs(5.0));
        assert!(ok.is_ok());
        let bad = EpisodeSchedule::for_lifespan(vec![secs(2.0), secs(3.0)], secs(6.0));
        assert!(matches!(bad, Err(ModelError::LifespanMismatch { .. })));
    }

    #[test]
    fn boundaries_are_prefix_sums() {
        let s = sched(&[1.0, 2.0, 3.0]);
        assert_eq!(
            s.boundaries(),
            vec![secs(0.0), secs(1.0), secs(3.0), secs(6.0)]
        );
        assert_eq!(s.start_of(0), secs(0.0));
        assert_eq!(s.start_of(2), secs(3.0));
        assert_eq!(s.boundary(1), secs(3.0));
        assert_eq!(s.total(), secs(6.0));
    }

    #[test]
    fn work_accounting_uses_positive_subtraction() {
        let s = sched(&[0.5, 1.0, 3.0]);
        let c = secs(1.0);
        assert_eq!(s.period_work(0, c), secs(0.0));
        assert_eq!(s.period_work(1, c), secs(0.0));
        assert_eq!(s.period_work(2, c), secs(2.0));
        assert_eq!(s.work_uninterrupted(c), secs(2.0));
    }

    #[test]
    fn productivity_predicates() {
        let c = secs(1.0);
        let s = sched(&[2.0, 3.0, 0.5]);
        assert!(s.is_productive(c)); // last period may be short
        assert!(!s.is_fully_productive(c));
        let s2 = sched(&[0.5, 3.0, 2.0]);
        assert!(!s2.is_productive(c));
        let s3 = sched(&[2.0, 3.0]);
        assert!(s3.is_fully_productive(c));
    }

    #[test]
    fn make_productive_merges_and_preserves_lifespan() {
        let c = secs(1.0);
        let s = sched(&[0.5, 0.5, 4.0, 0.25, 2.0, 0.75]);
        let p = s.make_productive(c);
        assert!(p.is_productive(c));
        assert!(p.total().approx_eq(s.total(), secs(1e-12)));
        // Work production can only improve (fewer setup charges).
        assert!(p.work_uninterrupted(c) >= s.work_uninterrupted(c));
    }

    #[test]
    fn make_productive_handles_cascades() {
        // Merging 0.4 into 0.5 gives 0.9 ≤ c, which must merge again into
        // 0.3 (making 1.2 > c, where the cascade stops).
        let c = secs(1.0);
        let s = sched(&[0.4, 0.5, 0.3, 5.0]);
        let p = s.make_productive(c);
        assert!(p.is_productive(c));
        assert_eq!(p.periods(), &[secs(1.2), secs(5.0)]);
        assert!(p.total().approx_eq(secs(6.2), secs(1e-12)));
    }

    #[test]
    fn split_period_halves_in_place() {
        let s = sched(&[4.0, 2.0]);
        let t = s.split_period(0).unwrap();
        assert_eq!(t.periods(), &[secs(2.0), secs(2.0), secs(2.0)]);
        assert!(s.split_period(5).is_err());
    }

    #[test]
    fn tail_after_returns_suffix() {
        let s = sched(&[1.0, 2.0, 3.0]);
        let t = s.tail_after(0).unwrap();
        assert_eq!(t.periods(), &[secs(2.0), secs(3.0)]);
        assert!(s.tail_after(2).is_none());
    }

    #[test]
    fn locate_respects_half_open_windows() {
        let s = sched(&[1.0, 2.0, 3.0]);
        assert_eq!(s.locate(secs(0.0)), Some((0, secs(0.0))));
        assert_eq!(s.locate(secs(0.99)), Some((0, secs(0.99))));
        assert_eq!(s.locate(secs(1.0)), Some((1, secs(0.0))));
        assert_eq!(s.locate(secs(2.5)), Some((1, secs(1.5))));
        let (k, off) = s.locate(secs(5.9)).unwrap();
        assert_eq!(k, 2);
        assert!(off.approx_eq(secs(2.9), secs(1e-12)));
        assert_eq!(s.locate(secs(6.0)), None);
        assert_eq!(s.locate(secs(-0.1)), None);
    }

    #[test]
    fn iter_windows_yields_starts_and_lengths() {
        let s = sched(&[1.0, 2.0, 3.0]);
        let w: Vec<_> = s.iter_windows().collect();
        assert_eq!(
            w,
            vec![
                (0, secs(0.0), secs(1.0)),
                (1, secs(1.0), secs(2.0)),
                (2, secs(3.0), secs(3.0)),
            ]
        );
    }
}
