//! Work accounting: what a schedule banks under a given interrupt pattern.
//!
//! This module implements §2.2's bookkeeping exactly: an interrupt during
//! period `k` (at time `t ∈ [τ_k, T_k)`) ends the episode with
//! `W(S) = Σ_{i<k} (t_i ⊖ c)` banked and `t` units of usable lifespan
//! consumed. The paper's adversary always interrupts *at the last instant*
//! of a period (Observation (a)); [`InterruptSpec::LastInstantOf`] encodes
//! that limiting choice (the window is half-open, so the supremum is a
//! limit; following the paper we account it as consuming the full period).

use crate::error::{ModelError, Result};
use crate::schedule::EpisodeSchedule;
use crate::time::{Time, Work};

/// Where (if anywhere) the adversary interrupts an episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterruptSpec {
    /// The episode runs to completion.
    None,
    /// Interrupt during period `k` (zero-based) at `offset` from the
    /// period's start, with `0 ≤ offset < t_{k+1}`.
    During {
        /// Zero-based period index.
        period: usize,
        /// Offset from the period's start.
        offset: Time,
    },
    /// Interrupt at the last instant of period `k` (zero-based) — the
    /// adversary's dominant choice (Observation (a)): the full period's
    /// lifespan is consumed and its work is lost.
    LastInstantOf(usize),
}

/// The outcome of playing one episode against a fixed interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpisodeOutcome {
    /// Work banked by the completed periods, `Σ_{i<k} (t_i ⊖ c)`.
    pub work: Work,
    /// Usable lifespan consumed by the episode (equals the interrupt time,
    /// or the full episode length if uninterrupted).
    pub consumed: Time,
    /// Number of periods that completed and banked their work.
    pub completed_periods: usize,
    /// `true` iff the episode was interrupted.
    pub interrupted: bool,
}

/// Plays an episode of `schedule` under setup charge `setup` against the
/// interrupt `spec`, returning the §2.2 outcome.
pub fn episode_outcome(
    schedule: &EpisodeSchedule,
    setup: Time,
    spec: InterruptSpec,
) -> Result<EpisodeOutcome> {
    let m = schedule.len();
    match spec {
        InterruptSpec::None => Ok(EpisodeOutcome {
            work: schedule.work_uninterrupted(setup),
            consumed: schedule.total(),
            completed_periods: m,
            interrupted: false,
        }),
        InterruptSpec::LastInstantOf(k) => {
            if k >= m {
                return Err(ModelError::PeriodOutOfRange { index: k, len: m });
            }
            let work = (0..k).map(|i| schedule.period_work(i, setup)).sum();
            Ok(EpisodeOutcome {
                work,
                consumed: schedule.boundary(k),
                completed_periods: k,
                interrupted: true,
            })
        }
        InterruptSpec::During { period, offset } => {
            if period >= m {
                return Err(ModelError::PeriodOutOfRange {
                    index: period,
                    len: m,
                });
            }
            let len = schedule.period(period);
            if offset.is_negative() || offset >= len {
                return Err(ModelError::OffsetOutOfRange {
                    offset,
                    length: len,
                });
            }
            let work = (0..period).map(|i| schedule.period_work(i, setup)).sum();
            Ok(EpisodeOutcome {
                work,
                consumed: schedule.start_of(period) + offset,
                completed_periods: period,
                interrupted: true,
            })
        }
    }
}

/// A non-adaptive run (§2.2): a single committed schedule whose tail is
/// replayed obliviously after each interrupt, **except** that after the
/// `p`-th interrupt the remainder of the opportunity runs as one long
/// period.
#[derive(Clone, Debug)]
pub struct NonAdaptiveRun {
    schedule: EpisodeSchedule,
    setup: Time,
    lifespan: Time,
    budget: u32,
}

impl NonAdaptiveRun {
    /// Builds the run; the schedule must cover the opportunity's lifespan.
    pub fn new(
        schedule: EpisodeSchedule,
        setup: Time,
        lifespan: Time,
        budget: u32,
    ) -> Result<NonAdaptiveRun> {
        let total = schedule.total();
        let tol = Time::new(lifespan.get().abs().max(1.0) * crate::schedule::SUM_TOLERANCE);
        if !total.approx_eq(lifespan, tol) {
            return Err(ModelError::LifespanMismatch { total, lifespan });
        }
        Ok(NonAdaptiveRun {
            schedule,
            setup,
            lifespan,
            budget,
        })
    }

    /// The committed schedule.
    pub fn schedule(&self) -> &EpisodeSchedule {
        &self.schedule
    }

    /// The setup charge `c`.
    pub fn setup(&self) -> Time {
        self.setup
    }

    /// The opportunity's usable lifespan `U`.
    pub fn lifespan(&self) -> Time {
        self.lifespan
    }

    /// The adversary's interrupt budget `p`.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// The work banked when the adversary kills exactly the (zero-based)
    /// periods in `killed`, each at its last instant.
    ///
    /// Implements the paper's formula
    /// `W(S) = Σ_{k∉I} (t_k ⊖ c) + ((U − T_{i_p}) ⊖ c)`, where the final
    /// term — the consolidated long period — replaces the scheduled tail
    /// *only when the full budget `p` is spent* (`killed.len() == p`).
    ///
    /// `killed` must be strictly increasing and within the schedule;
    /// at most `p` interrupts may be specified.
    pub fn work_given_killed(&self, killed: &[usize]) -> Result<Work> {
        let m = self.schedule.len();
        if killed.len() > self.budget as usize {
            return Err(ModelError::BudgetExceeded {
                used: killed.len(),
                budget: self.budget,
            });
        }
        for w in killed.windows(2) {
            if w[0] >= w[1] {
                return Err(ModelError::PeriodOutOfRange {
                    index: w[1],
                    len: m,
                });
            }
        }
        if let Some(&last) = killed.last() {
            if last >= m {
                return Err(ModelError::PeriodOutOfRange {
                    index: last,
                    len: m,
                });
            }
        }

        let consolidates = killed.len() == self.budget as usize && self.budget > 0;
        let last_killed = killed.last().copied();

        let mut work = Work::ZERO;
        let mut ki = 0usize;
        for (k, _start, t) in self.schedule.iter_windows() {
            let is_killed = ki < killed.len() && killed[ki] == k;
            if is_killed {
                ki += 1;
                continue;
            }
            if consolidates && k > last_killed.unwrap() {
                // The scheduled tail is replaced by one long period below.
                continue;
            }
            work += t.pos_sub(self.setup);
        }
        if consolidates {
            let t_last = self.schedule.boundary(last_killed.unwrap());
            work += (self.lifespan - t_last).pos_sub(self.setup);
        }
        Ok(work)
    }

    /// Work banked with no interrupts at all.
    pub fn work_uninterrupted(&self) -> Work {
        self.schedule.work_uninterrupted(self.setup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    fn sched(v: &[f64]) -> EpisodeSchedule {
        EpisodeSchedule::from_periods(v.iter().map(|&x| secs(x)).collect()).unwrap()
    }

    #[test]
    fn uninterrupted_episode_banks_everything() {
        let s = sched(&[3.0, 4.0, 2.0]);
        let out = episode_outcome(&s, secs(1.0), InterruptSpec::None).unwrap();
        assert_eq!(out.work, secs(2.0 + 3.0 + 1.0));
        assert_eq!(out.consumed, secs(9.0));
        assert_eq!(out.completed_periods, 3);
        assert!(!out.interrupted);
    }

    #[test]
    fn last_instant_interrupt_kills_full_period() {
        let s = sched(&[3.0, 4.0, 2.0]);
        let out = episode_outcome(&s, secs(1.0), InterruptSpec::LastInstantOf(1)).unwrap();
        assert_eq!(out.work, secs(2.0)); // only period 0 banked
        assert_eq!(out.consumed, secs(7.0)); // T_2 = 3 + 4
        assert_eq!(out.completed_periods, 1);
        assert!(out.interrupted);
    }

    #[test]
    fn mid_period_interrupt_consumes_partial_lifespan() {
        let s = sched(&[3.0, 4.0, 2.0]);
        let out = episode_outcome(
            &s,
            secs(1.0),
            InterruptSpec::During {
                period: 1,
                offset: secs(1.5),
            },
        )
        .unwrap();
        assert_eq!(out.work, secs(2.0));
        assert_eq!(out.consumed, secs(4.5));
    }

    #[test]
    fn interrupt_validation() {
        let s = sched(&[3.0, 4.0]);
        assert!(matches!(
            episode_outcome(&s, secs(1.0), InterruptSpec::LastInstantOf(2)),
            Err(ModelError::PeriodOutOfRange { .. })
        ));
        assert!(matches!(
            episode_outcome(
                &s,
                secs(1.0),
                InterruptSpec::During {
                    period: 0,
                    offset: secs(3.0) // offset must be < period length
                }
            ),
            Err(ModelError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn nonadaptive_no_interrupts() {
        let s = sched(&[3.0, 3.0, 3.0, 3.0]);
        let run = NonAdaptiveRun::new(s, secs(1.0), secs(12.0), 2).unwrap();
        assert_eq!(run.work_given_killed(&[]).unwrap(), secs(8.0));
    }

    #[test]
    fn nonadaptive_partial_budget_removes_killed_periods_only() {
        // One interrupt out of a budget of two: no consolidation, the tail
        // plays out as scheduled.
        let s = sched(&[3.0, 3.0, 3.0, 3.0]);
        let run = NonAdaptiveRun::new(s, secs(1.0), secs(12.0), 2).unwrap();
        assert_eq!(run.work_given_killed(&[1]).unwrap(), secs(6.0));
    }

    #[test]
    fn nonadaptive_full_budget_consolidates_tail() {
        // Budget 1, killed period 1 (zero-based): periods 2,3 are replaced
        // by one long period of length U − T_2 = 12 − 6 = 6, banking 5.
        let s = sched(&[3.0, 3.0, 3.0, 3.0]);
        let run = NonAdaptiveRun::new(s, secs(1.0), secs(12.0), 1).unwrap();
        assert_eq!(run.work_given_killed(&[1]).unwrap(), secs(2.0 + 5.0));
        // Killing the very last period leaves an empty consolidated tail.
        assert_eq!(run.work_given_killed(&[3]).unwrap(), secs(6.0));
    }

    #[test]
    fn nonadaptive_consolidation_matches_paper_formula() {
        // W(S) = Σ_{k∉I}(t_k ⊖ c) + ((U − T_{i_p}) ⊖ c), with the sum over
        // periods before the last interrupt.
        let s = sched(&[5.0, 4.0, 3.0, 2.0, 1.5]);
        let c = secs(1.0);
        let u = secs(15.5);
        let run = NonAdaptiveRun::new(s.clone(), c, u, 2).unwrap();
        // Kill periods 0 and 2 (zero-based). Survivor before last kill: t_1.
        // Consolidated tail: U − T_3 = 15.5 − 12 = 3.5 → banks 2.5.
        let expect = secs(3.0) + secs(2.5);
        assert_eq!(run.work_given_killed(&[0, 2]).unwrap(), expect);
    }

    #[test]
    fn nonadaptive_budget_and_ordering_validated() {
        let s = sched(&[3.0, 3.0, 3.0, 3.0]);
        let run = NonAdaptiveRun::new(s, secs(1.0), secs(12.0), 1).unwrap();
        assert!(matches!(
            run.work_given_killed(&[0, 1]),
            Err(ModelError::BudgetExceeded { .. })
        ));
        let s2 = sched(&[3.0, 3.0, 3.0, 3.0]);
        let run2 = NonAdaptiveRun::new(s2, secs(1.0), secs(12.0), 3).unwrap();
        assert!(run2.work_given_killed(&[2, 1]).is_err());
        assert!(run2.work_given_killed(&[9]).is_err());
    }

    #[test]
    fn nonadaptive_lifespan_must_match_schedule() {
        let s = sched(&[3.0, 3.0]);
        assert!(matches!(
            NonAdaptiveRun::new(s, secs(1.0), secs(7.0), 1),
            Err(ModelError::LifespanMismatch { .. })
        ));
    }
}
