//! Traits connecting schedules, owners, adversaries and oracles.
//!
//! The game of §4 involves three kinds of actors:
//!
//! * an **episode policy** — the owner of `A`'s adaptive strategy: a pure
//!   map from the residual opportunity `(p, L)` to an episode schedule
//!   (adaptivity in the paper's sense is exactly "re-plan after every
//!   interrupt", so a memoryless map captures it);
//! * an **adversary** — decides, for each committed episode schedule,
//!   whether and where to interrupt;
//! * a **work oracle** — something that can answer `W^(p)[L]` queries,
//!   used by the bootstrapping construction of Theorem 4.3 (the exact DP
//!   solver in `cyclesteal-dp` implements it, as do the `p ≤ 1` closed
//!   forms here).

use crate::error::Result;
use crate::model::Opportunity;
use crate::schedule::EpisodeSchedule;
use crate::time::{Time, Work};
use crate::work::InterruptSpec;

/// An adaptive scheduling strategy for the owner of workstation `A`.
///
/// `episode` is called at the start of the opportunity and again after
/// every interrupt, with the residual opportunity (Observation: within an
/// episode no information arrives, so a pure map loses no generality).
pub trait EpisodePolicy: Send + Sync {
    /// The episode schedule this policy commits to for the residual
    /// opportunity `opp` (`opp.lifespan()` is the residual lifespan, and
    /// `opp.interrupts()` the adversary's remaining budget).
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule>;

    /// Human-readable name used in reports and benches.
    fn name(&self) -> String;
}

impl<P: EpisodePolicy + ?Sized> EpisodePolicy for &P {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        (**self).episode(opp)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<P: EpisodePolicy + ?Sized> EpisodePolicy for Box<P> {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        (**self).episode(opp)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// The adversary's side of the game: respond to a committed episode
/// schedule with an interrupt decision. Implementations may be stateful
/// (stochastic adversaries carry RNGs; trace adversaries a cursor).
pub trait Adversary {
    /// Decide the interrupt for the episode the owner just committed.
    /// Called only while the adversary has budget (`opp.interrupts() > 0`);
    /// returning [`InterruptSpec::None`] lets the episode complete, which
    /// ends the opportunity.
    fn respond(&mut self, opp: &Opportunity, schedule: &EpisodeSchedule) -> InterruptSpec;

    /// Human-readable name used in reports and benches.
    fn name(&self) -> String;
}

/// Anything that can answer guaranteed-work queries `W^(p)[L]`.
///
/// Theorem 4.3 builds the optimal `p`-interrupt episode schedule out of an
/// oracle for `W^(p−1)`; the exact DP table in `cyclesteal-dp` implements
/// this trait, and [`ClosedFormOracle`] provides the `p ≤ 1` closed forms
/// so the equalizer can run without the DP for small `p`.
pub trait WorkOracle: Send + Sync {
    /// The setup charge `c` this oracle was built for.
    fn setup(&self) -> Time;

    /// `W^(p)[L]`: the maximum work guaranteeable with `interrupts`
    /// potential interrupts and residual lifespan `lifespan`.
    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work;

    /// The smallest residual lifespan `R` with
    /// `guaranteed_work(interrupts, R) ≥ target`, searched on `[0, hi]`.
    ///
    /// `W^(p)[·]` is nondecreasing and 1-Lipschitz, so the default
    /// implementation bisects to an absolute tolerance of `1e-9 · c`.
    /// Returns `hi` if even `W(hi) < target`.
    fn inverse(&self, interrupts: u32, target: Work, hi: Time) -> Time {
        if target <= Work::ZERO {
            return Time::ZERO;
        }
        if self.guaranteed_work(interrupts, hi) < target {
            return hi;
        }
        let tol = self.setup().get() * 1e-9;
        let (mut lo, mut hi) = (0.0f64, hi.get());
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if self.guaranteed_work(interrupts, Time::new(mid)) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Time::new(hi)
    }
}

impl<O: WorkOracle + ?Sized> WorkOracle for &O {
    fn setup(&self) -> Time {
        (**self).setup()
    }
    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        (**self).guaranteed_work(interrupts, lifespan)
    }
    fn inverse(&self, interrupts: u32, target: Work, hi: Time) -> Time {
        (**self).inverse(interrupts, target, hi)
    }
}

impl<O: WorkOracle + ?Sized> WorkOracle for std::sync::Arc<O> {
    fn setup(&self) -> Time {
        (**self).setup()
    }
    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        (**self).guaranteed_work(interrupts, lifespan)
    }
    fn inverse(&self, interrupts: u32, target: Work, hi: Time) -> Time {
        (**self).inverse(interrupts, target, hi)
    }
}

/// Exact closed-form oracle for `p ∈ {0, 1}` (Prop 4.1(d) and §5.2).
///
/// Queries with `p ≥ 2` answer with the `p = 1` value, which is an **upper
/// bound** on `W^(p)` (Prop 4.1(b)); callers needing exact values for
/// `p ≥ 2` should use the DP oracle. The equalizer only ever queries level
/// `p − 1`, so this oracle is exact for constructing `p ≤ 2` schedules'
/// level-1 continuations... strictly: exact for `p ∈ {1, 2}` construction
/// inputs `{0, 1}`.
#[derive(Clone, Copy, Debug)]
pub struct ClosedFormOracle {
    setup: Time,
}

impl ClosedFormOracle {
    /// Creates the oracle for setup charge `c`.
    pub fn new(setup: Time) -> ClosedFormOracle {
        assert!(setup.is_positive(), "setup charge must be positive");
        ClosedFormOracle { setup }
    }
}

impl WorkOracle for ClosedFormOracle {
    fn setup(&self) -> Time {
        self.setup
    }

    fn guaranteed_work(&self, interrupts: u32, lifespan: Time) -> Work {
        match interrupts {
            0 => crate::bounds::w0(lifespan, self.setup),
            _ => crate::bounds::w1_exact(lifespan, self.setup),
        }
    }
}

/// A fixed (committed) episode schedule together with the opportunity it
/// was built for — the non-adaptive counterpart of [`EpisodePolicy`].
#[derive(Clone, Debug)]
pub struct CommittedSchedule {
    /// The schedule committed at the start of the opportunity.
    pub schedule: EpisodeSchedule,
    /// The opportunity it covers.
    pub opportunity: Opportunity,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::time::secs;

    #[test]
    fn closed_form_oracle_matches_bounds_module() {
        let c = secs(2.0);
        let o = ClosedFormOracle::new(c);
        assert_eq!(o.setup(), c);
        assert_eq!(o.guaranteed_work(0, secs(10.0)), bounds::w0(secs(10.0), c));
        assert_eq!(
            o.guaranteed_work(1, secs(100.0)),
            bounds::w1_exact(secs(100.0), c)
        );
    }

    #[test]
    fn default_inverse_inverts_w0() {
        let c = secs(1.0);
        let o = ClosedFormOracle::new(c);
        // W^0(R) = R − c, so inverse(target) = target + c.
        let r = o.inverse(0, secs(5.0), secs(100.0));
        assert!(r.approx_eq(secs(6.0), secs(1e-6)), "got {r}");
        // Target 0 needs no lifespan.
        assert_eq!(o.inverse(0, secs(0.0), secs(100.0)), Time::ZERO);
        // Unreachable target saturates at hi.
        assert_eq!(o.inverse(0, secs(500.0), secs(100.0)), secs(100.0));
    }

    #[test]
    fn default_inverse_inverts_w1() {
        let c = secs(1.0);
        let o = ClosedFormOracle::new(c);
        for &target in &[0.5, 3.0, 42.0, 400.0] {
            let r = o.inverse(1, secs(target), secs(10_000.0));
            let w = o.guaranteed_work(1, r);
            assert!(
                w.approx_eq(secs(target), secs(1e-5)),
                "W(inverse({target})) = {w}"
            );
            // Minimality: a hair less lifespan must fall short.
            let w_less = o.guaranteed_work(1, r - secs(1e-3));
            assert!(w_less < secs(target));
        }
    }
}
