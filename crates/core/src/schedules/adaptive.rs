//! §3.2: the adaptive guideline `Σ_a^(p)[U]`.
//!
//! The opportunity schedule adaptively invokes the episode schedules
//! `S_a^(p)[U], S_a^(p−1)[U − L_1], …`; this module builds the episode
//! schedule `S_a^(p)[L]` for any residual `(p, L)`:
//!
//! * for `p = 0`: one period of length `L` (Prop 4.1(d));
//! * for `p > 0`, with `ℓ_p = ⌈2p/3⌉` and common difference
//!   `Δ_p = 2^(1−p)·c`:
//!   - the trailing `ℓ_p` periods have length `3c/2`,
//!   - the period before them (`t_{m−ℓ_p}`) is a *remainder* period,
//!   - earlier periods increase arithmetically toward the front:
//!     `t_k = t_{k+1} + Δ_p`.
//!
//! ## Reconstruction of the §3.2 constants (DESIGN.md §1.1 notes 2–3)
//!
//! The scan's exponents are ambiguous: the schedule length reads
//! `m^(p)[U] = ⌊2^(p…2)√(U/c)⌋ + p·2^(2p−1)` and the difference `4^(1−p)c`
//! or `2^(1−p)c`. Three independent constraints pin the reconstruction:
//!
//! 1. Table 2 fixes the `p = 1` case (`m = ⌊√(2U/c) + 2⌋`, difference `c`)
//!    — both parses agree there.
//! 2. Consistency (`Σ t_k = U`) ties the two constants together:
//!    `m ≈ √(2U/Δ)`, so `Δ = 2^(1−p)c ⇔ m ≈ 2^(p/2)√(U/c)`.
//! 3. The exact DP optimum (crate `cyclesteal-dp`) at, e.g.,
//!    `U/c = 1024, p = 3` has `m = 91 ≈ 2^(3/2)·√1024·√2 = 2^(p/2)√(U/c)·√2/√2`
//!    and measured consecutive differences `≈ 0.23c ≈ 2^(1−p)c`; with the
//!    alternative parse (`Δ = 4^(1−p)c`) the guideline would *lose to the
//!    non-adaptive guideline* for `p ≥ 3`, inverting Theorem 5.1.
//!
//! Hence `Δ_p = 2^(1−p)c`. The printed remainder-period constant is
//! likewise unrecoverable for `p ≥ 2`, so this implementation makes the
//! paper's "simple calculation verifies … consistent" exact by
//! construction: it picks the **largest** `m` for which the remainder
//! period stays productive (`t_{m−ℓ_p} > c`) and computes the remainder
//! exactly. For `p = 1` this reproduces Table 2's schedule up to one
//! period (verified in tests).

use crate::error::{ModelError, Result};
use crate::model::Opportunity;
use crate::policy::EpisodePolicy;
use crate::schedule::EpisodeSchedule;
use crate::schedules::{normalize_sum, short_tail_partition};
use crate::time::Time;

/// §3.2's adaptive guideline as an [`EpisodePolicy`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveGuideline {
    /// Safety cap on the number of periods in one episode (the count grows
    /// like `2^p √(U/c)`, which for careless parameters could exhaust
    /// memory; exceeding the cap is reported as a model error).
    pub max_periods: usize,
}

impl Default for AdaptiveGuideline {
    fn default() -> Self {
        AdaptiveGuideline {
            max_periods: 1 << 24,
        }
    }
}

/// `ℓ_p = ⌈2p/3⌉`: how many trailing `3c/2` periods the guideline uses.
pub fn tail_len(p: u32) -> usize {
    (2 * p as usize).div_ceil(3)
}

/// `Δ_p = 2^(1−p)·c`: the arithmetic common difference of the guideline's
/// period lengths (see the module docs for the reconstruction evidence).
pub fn common_difference(p: u32, setup: Time) -> Time {
    setup * 2.0f64.powi(1 - p as i32)
}

/// The paper's printed schedule length, reconstructed as
/// `m^(p)[U] = ⌊2^(p/2)·√(U/c)⌋ + p·2^(2p−1)` (diagnostic only; the
/// constructed schedule derives `m` from the exact-remainder condition,
/// which reproduces the leading term).
pub fn paper_period_count(opp: &Opportunity) -> usize {
    let p = opp.interrupts();
    if p == 0 {
        return 1;
    }
    let main = (2.0f64.powf(p as f64 / 2.0) * opp.u_over_c().sqrt()).floor() as usize;
    main + p as usize * (1usize << (2 * p - 1).min(62))
}

impl AdaptiveGuideline {
    /// Builds `S_a^(p)[L]` for the residual opportunity.
    pub fn build(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        let p = opp.interrupts();
        let c = opp.setup();
        let l = opp.lifespan();
        if !l.is_positive() {
            return Err(ModelError::NegativeLifespan { lifespan: l });
        }
        if p == 0 {
            return EpisodeSchedule::single(l);
        }

        let lp = tail_len(p);
        let delta = common_difference(p, c);
        let tail_total = c * (1.5 * lp as f64);

        // Degenerate residuals: not enough room for the structured shape.
        // Fall back to Theorem 4.2's short-period partition, which is what
        // the structure degenerates to anyway once `W^(p−1)` is flat.
        let min_structured = tail_total + c; // tail + one productive remainder
        if l <= min_structured {
            return short_tail_partition(l, c);
        }

        // Choose the largest m = lp + n with a productive remainder:
        //   t_rem(n) = (L − 1.5c·ℓp − Δ·n(n−1)/2) / n  >  c .
        // t_rem is strictly decreasing in n, so bisect.
        let body = (l - tail_total).get();
        let cval = c.get();
        let d = delta.get();
        let feasible = |n: usize| -> bool {
            let nf = n as f64;
            let rem = (body - d * nf * (nf - 1.0) / 2.0) / nf;
            rem > cval
        };
        if !feasible(1) {
            return short_tail_partition(l, c);
        }
        let mut lo = 1usize; // feasible
        let mut hi = 2usize;
        while feasible(hi) {
            lo = hi;
            hi *= 2;
            if hi > self.max_periods {
                return Err(ModelError::NoConvergence {
                    what: "adaptive guideline period count exceeded max_periods",
                });
            }
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let n = lo;
        let nf = n as f64;
        let t_rem = Time::new((body - d * nf * (nf - 1.0) / 2.0) / nf);
        debug_assert!(t_rem > c);

        let m = n + lp;
        if m > self.max_periods {
            return Err(ModelError::NoConvergence {
                what: "adaptive guideline period count exceeded max_periods",
            });
        }
        let mut periods = Vec::with_capacity(m);
        // Arithmetic run, longest first: t_k = t_rem + (n − k)·Δ for
        // k = 1..n−1, then the remainder period t_rem, then the tail.
        for k in 1..n {
            periods.push(t_rem + delta * (n - k) as f64);
        }
        periods.push(t_rem);
        for _ in 0..lp {
            periods.push(c * 1.5);
        }
        normalize_sum(&mut periods, l);
        EpisodeSchedule::for_lifespan(periods, l)
    }
}

impl EpisodePolicy for AdaptiveGuideline {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        self.build(opp)
    }

    fn name(&self) -> String {
        "adaptive-guideline(§3.2)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    fn build(u: f64, c: f64, p: u32) -> EpisodeSchedule {
        AdaptiveGuideline::default()
            .build(&Opportunity::from_units(u, c, p))
            .unwrap()
    }

    #[test]
    fn tail_len_is_ceil_two_thirds_p() {
        assert_eq!(tail_len(1), 1);
        assert_eq!(tail_len(2), 2);
        assert_eq!(tail_len(3), 2);
        assert_eq!(tail_len(4), 3);
        assert_eq!(tail_len(6), 4);
    }

    #[test]
    fn common_difference_shrinks_geometrically() {
        let c = secs(1.0);
        assert_eq!(common_difference(1, c), secs(1.0));
        assert_eq!(common_difference(2, c), secs(0.5));
        assert_eq!(common_difference(3, c), secs(0.25));
    }

    #[test]
    fn p0_is_single_period() {
        let s = build(100.0, 1.0, 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.period(0), secs(100.0));
    }

    #[test]
    fn schedule_partitions_lifespan_and_is_fully_productive() {
        for p in 1..5u32 {
            for &u in &[50.0, 500.0, 5_000.0, 50_000.0] {
                let s = build(u, 1.0, p);
                assert!(
                    s.total().approx_eq(secs(u), secs(1e-6)),
                    "p={p} U={u}: total {}",
                    s.total()
                );
                assert!(
                    s.is_fully_productive(secs(1.0)),
                    "p={p} U={u}: nonproductive period in {s}"
                );
            }
        }
    }

    #[test]
    fn structure_matches_paper_tail_and_difference() {
        let c = secs(1.0);
        for p in 1..5u32 {
            let s = build(100_000.0, 1.0, p);
            let m = s.len();
            let lp = tail_len(p);
            // Trailing ℓp periods are 3c/2.
            for k in m - lp..m {
                assert!(
                    s.period(k).approx_eq(c * 1.5, secs(1e-9)),
                    "p={p}: tail period {k} = {}",
                    s.period(k)
                );
            }
            // Remainder period is productive and below the arithmetic run.
            let rem = s.period(m - lp - 1);
            assert!(rem > c);
            // Arithmetic run has the paper's common difference 4^{1−p}c.
            let delta = common_difference(p, c);
            for k in 0..m - lp - 2 {
                let diff = s.period(k) - s.period(k + 1);
                assert!(
                    diff.approx_eq(delta, secs(1e-6)),
                    "p={p}: diff at {k} is {diff}, want {delta}"
                );
            }
        }
    }

    #[test]
    fn p1_period_count_close_to_table2() {
        // Table 2: m^(1)[U] = ⌊√(2U/c) + 2⌋. Our exact-remainder variant
        // may differ by a couple of periods; assert closeness.
        for &u in &[100.0, 1_000.0, 10_000.0, 100_000.0] {
            let s = build(u, 1.0, 1);
            let paper = ((2.0 * u).sqrt() + 2.0).floor() as isize;
            let ours = s.len() as isize;
            assert!(
                (ours - paper).abs() <= 2,
                "U={u}: ours {ours} vs paper {paper}"
            );
        }
    }

    #[test]
    fn first_period_tracks_sqrt_2cu() {
        // Leading period ≈ √(2cU), the same leading term as S_opt^(1).
        for &u in &[1_000.0, 10_000.0, 100_000.0] {
            let s = build(u, 1.0, 1);
            let t1 = s.period(0).get();
            let target = (2.0 * u).sqrt();
            assert!(
                (t1 - target).abs() <= 4.0,
                "U={u}: t1={t1} vs √(2cU)={target}"
            );
        }
    }

    #[test]
    fn degenerate_small_residuals_fall_back_to_short_partition() {
        let c = secs(1.0);
        for &u in &[0.5, 1.0, 1.4, 2.0, 3.0, 4.0] {
            for p in 1..4u32 {
                let s = build(u, 1.0, p);
                assert!(s.total().approx_eq(secs(u), secs(1e-9)));
                // Valid partition with positive periods is all we require.
                assert!(s.periods().iter().all(|t| t.is_positive()));
                let _ = c;
            }
        }
    }

    #[test]
    fn paper_period_count_diagnostic() {
        let opp = Opportunity::from_units(10_000.0, 1.0, 1);
        // ⌊2^{1/2}·100⌋ + 1·2 = 141 + 2.
        assert_eq!(paper_period_count(&opp), 143);
        let opp0 = Opportunity::from_units(10_000.0, 1.0, 0);
        assert_eq!(paper_period_count(&opp0), 1);
    }

    #[test]
    fn policy_trait_is_wired() {
        let g = AdaptiveGuideline::default();
        let opp = Opportunity::from_units(1_000.0, 1.0, 2);
        let s = g.episode(&opp).unwrap();
        assert!(s.total().approx_eq(secs(1_000.0), secs(1e-6)));
        assert!(g.name().contains("adaptive"));
    }
}
