//! The schedule families studied by the paper, plus baselines.
//!
//! * [`nonadaptive`] — §3.1's non-adaptive guideline `S_na^(p)[U]`.
//! * [`adaptive`] — §3.2's adaptive guideline `Σ_a^(p)[U]`.
//! * [`optimal_p1`] — §5.2's exactly optimal `p = 1` schedule `S_opt^(1)[U]`.
//! * [`equalize`] — Theorem 4.3's equalization construction, which builds a
//!   (near-)optimal `p`-interrupt episode schedule from any `W^(p−1)` oracle.
//! * [`baselines`] — naive disciplines the guidelines are compared against.

pub mod adaptive;
pub mod baselines;
pub mod equalize;
pub mod nonadaptive;
pub mod optimal_p1;
pub mod self_similar;

pub use adaptive::AdaptiveGuideline;
pub use baselines::{EqualPeriodsPolicy, FixedChunkPolicy, HalvingPolicy, SinglePeriodPolicy};
pub use equalize::{equalized_schedule, verify_equalization, EqualizationReport};
pub use nonadaptive::NonAdaptiveGuideline;
pub use optimal_p1::{optimal_p1_schedule, OptimalP1Policy};
pub use self_similar::SelfSimilarGuideline;

use crate::error::Result;
use crate::schedule::EpisodeSchedule;
use crate::time::Time;

/// Splits a (small) residual lifespan into periods of length in `(c, 2c]`
/// where possible — Theorem 4.2's shape for the r-immune tail of an episode.
///
/// Chooses the largest period count `n` with `L/n > c`; for `L ≤ c` the
/// single (nonproductive) period `[L]` is returned, which is the best that
/// can be done (it banks nothing either way).
pub(crate) fn short_tail_partition(lifespan: Time, setup: Time) -> Result<EpisodeSchedule> {
    debug_assert!(lifespan.is_positive());
    // Largest n with L/n > c  ⇔  n < L/c  ⇔  n = ceil(L/c) − 1, except when
    // L/c is integral, where n = L/c − 1. Guard n ≥ 1.
    let ratio = lifespan.ratio(setup);
    let mut n = (ratio.ceil() as usize).saturating_sub(1).max(1);
    // Float-safety: shrink until strictly productive or single.
    while n > 1 && (lifespan / n as f64 <= setup) {
        n -= 1;
    }
    EpisodeSchedule::equal(lifespan, n)
}

/// Removes floating-point drift from a constructed period vector so that it
/// sums to `lifespan` exactly (to the last ulp achievable), by absorbing the
/// difference into the largest period.
pub(crate) fn normalize_sum(periods: &mut [Time], lifespan: Time) {
    let total: Time = periods.iter().copied().sum();
    let drift = lifespan - total;
    if drift.is_zero() {
        return;
    }
    if let Some(idx) = periods
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| **t)
        .map(|(i, _)| i)
    {
        periods[idx] += drift;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn short_tail_periods_are_in_half_open_productive_window() {
        let c = secs(1.0);
        for &l in &[1.2, 1.5, 2.0, 2.5, 3.0, 4.9, 7.3, 10.0] {
            let s = short_tail_partition(secs(l), c).unwrap();
            assert!(s.total().approx_eq(secs(l), secs(1e-9)));
            for &t in s.periods() {
                assert!(t > c, "period {t} not productive for L={l}");
                assert!(t <= c * 2.0 + secs(1e-9), "period {t} too long for L={l}");
            }
        }
    }

    #[test]
    fn short_tail_degenerates_to_single_for_tiny_lifespans() {
        let c = secs(1.0);
        let s = short_tail_partition(secs(0.7), c).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.period(0), secs(0.7));
        // Exactly c: single nonproductive period.
        let s = short_tail_partition(secs(1.0), c).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn normalize_sum_absorbs_drift() {
        let mut v = vec![secs(1.0), secs(2.0), secs(3.0)];
        normalize_sum(&mut v, secs(6.5));
        let total: Time = v.iter().copied().sum();
        assert_eq!(total, secs(6.5));
        assert_eq!(v[2], secs(3.5)); // largest period absorbed the drift
    }
}
