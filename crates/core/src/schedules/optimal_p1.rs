//! §5.2: the exactly optimal single-interrupt schedule `S_opt^(1)[U]`.
//!
//! For `p = 1` the bootstrapping guidelines of §4 can be carried out in
//! closed form. With `m = m^(1)[U]` from equation (5.1) and
//! `λ = (U − c)/(mc) − (m − 1)/2 ∈ (0, 1]`:
//!
//! * `t_k = (m − k + λ)·c` for `k ≤ m − 1` (arithmetic, common difference `c`),
//! * `t_m = t_{m−1} = (1 + λ)·c`,
//!
//! and **every** adversary option — interrupting any period at its last
//! instant — yields exactly `W^(1)[U] = U − (m + λ)c`, while letting the
//! episode complete yields the strictly larger `U − mc`. The equalization
//! is what makes the schedule optimal (Theorem 4.3); the property tests
//! machine-check it, and `cyclesteal-dp` confirms optimality against the
//! unrestricted game value.

use crate::bounds::{lambda1_opt, m1_opt, w1_exact};
use crate::error::Result;
use crate::model::Opportunity;
use crate::policy::EpisodePolicy;
use crate::schedule::EpisodeSchedule;
use crate::schedules::normalize_sum;
use crate::time::{Time, Work};

/// Builds `S_opt^(1)[U]` for lifespan `lifespan` and setup charge `setup`.
///
/// For `U ≤ 2c` no schedule guarantees work (Prop 4.1(c)); the single
/// period `[U]` is returned as the canonical degenerate choice.
pub fn optimal_p1_schedule(lifespan: Time, setup: Time) -> Result<EpisodeSchedule> {
    if lifespan <= setup * 2.0 {
        return EpisodeSchedule::single(lifespan);
    }
    let m = m1_opt(lifespan, setup);
    let lambda = lambda1_opt(lifespan, setup, m);
    let mut periods = Vec::with_capacity(m);
    if m == 1 {
        // Degenerate single period (only at the U = 2c boundary).
        periods.push(lifespan);
    } else {
        for k in 1..m {
            periods.push(setup * ((m - k) as f64 + lambda));
        }
        periods.push(setup * (1.0 + lambda));
    }
    normalize_sum(&mut periods, lifespan);
    EpisodeSchedule::for_lifespan(periods, lifespan)
}

/// The exact game value `W^(1)[U] = U − (m + λ)c` achieved by
/// [`optimal_p1_schedule`] (re-exported from [`crate::bounds::w1_exact`]).
pub fn optimal_p1_value(lifespan: Time, setup: Time) -> Work {
    w1_exact(lifespan, setup)
}

/// §5.2's optimal schedule as an [`EpisodePolicy`] for opportunities with
/// `p ≤ 1` (after the single interrupt it plays the optimal one-period
/// endgame of Prop 4.1(d)). Querying it with `p ≥ 2` is a caller bug and
/// returns the `p = 1` schedule, which carries no optimality claim there.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimalP1Policy;

impl EpisodePolicy for OptimalP1Policy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        match opp.interrupts() {
            0 => EpisodeSchedule::single(opp.lifespan()),
            _ => optimal_p1_schedule(opp.lifespan(), opp.setup()),
        }
    }

    fn name(&self) -> String {
        "optimal-p1(§5.2)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;
    use crate::work::{episode_outcome, InterruptSpec};

    /// The value the adversary concedes by interrupting period `k` at its
    /// last instant: banked work plus the optimal 0-interrupt endgame on
    /// the residual lifespan.
    fn option_value(s: &EpisodeSchedule, u: Time, c: Time, k: usize) -> Work {
        let out = episode_outcome(s, c, InterruptSpec::LastInstantOf(k)).unwrap();
        out.work + (u - out.consumed).pos_sub(c)
    }

    #[test]
    fn all_adversary_options_are_equalized() {
        let c = secs(1.0);
        for &u in &[3.0, 10.0, 100.0, 1_000.0, 12_345.6] {
            let u = secs(u);
            let s = optimal_p1_schedule(u, c).unwrap();
            let w = optimal_p1_value(u, c);
            for k in 0..s.len() {
                let v = option_value(&s, u, c, k);
                assert!(
                    v.approx_eq(w, secs(1e-6)),
                    "U={u}: option {k} gives {v}, want {w}"
                );
            }
            // Letting the episode complete is strictly worse for the
            // adversary: U − mc > U − (m+λ)c since λ > 0.
            let complete = s.work_uninterrupted(c);
            assert!(complete >= w);
        }
    }

    #[test]
    fn schedule_shape_matches_section_52() {
        let c = secs(1.0);
        let u = secs(1_000.0);
        let s = optimal_p1_schedule(u, c).unwrap();
        let m = s.len();
        // Last two periods equal (1+λ)c.
        assert!(s.period(m - 1).approx_eq(s.period(m - 2), secs(1e-9)));
        // Arithmetic with common difference c elsewhere.
        for k in 0..m - 2 {
            let diff = s.period(k) - s.period(k + 1);
            assert!(diff.approx_eq(c, secs(1e-9)), "difference at {k} is {diff}");
        }
        // t_1 = (m − 1 + λ)c ≈ √(2cU).
        let t1 = s.period(0).get();
        assert!((t1 - (2.0f64 * 1_000.0).sqrt()).abs() < 2.0, "t1 = {t1}");
    }

    #[test]
    fn degenerate_lifespans_return_single_period() {
        let c = secs(1.0);
        for &u in &[0.5, 1.0, 1.5, 2.0] {
            let s = optimal_p1_schedule(secs(u), c).unwrap();
            assert_eq!(s.len(), 1);
            assert_eq!(optimal_p1_value(secs(u), c), Work::ZERO);
        }
    }

    #[test]
    fn value_dominates_every_equal_period_schedule() {
        // Spot-check optimality within the equal-period family: the §5.2
        // schedule must beat m equal periods for every m.
        let c = secs(1.0);
        let u = secs(500.0);
        let w_opt = optimal_p1_value(u, c);
        for m in 1..200usize {
            let s = EpisodeSchedule::equal(u, m).unwrap();
            // Adversary picks the worst option (including letting it run).
            let mut worst = s.work_uninterrupted(c);
            for k in 0..m {
                worst = worst.min(option_value(&s, u, c, k));
            }
            assert!(
                worst <= w_opt + secs(1e-9),
                "equal-{m} gets {worst}, beating optimal {w_opt}"
            );
        }
    }

    #[test]
    fn policy_handles_p0_endgame() {
        let pol = OptimalP1Policy;
        let opp = Opportunity::from_units(50.0, 1.0, 0);
        let s = pol.episode(&opp).unwrap();
        assert_eq!(s.len(), 1);
        let opp1 = Opportunity::from_units(50.0, 1.0, 1);
        let s1 = pol.episode(&opp1).unwrap();
        assert!(s1.len() > 1);
    }
}
