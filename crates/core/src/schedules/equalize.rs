//! Theorem 4.3: the equalization construction of optimal episode schedules.
//!
//! §4.2's counter-strategy to the adversary is to make every interrupt
//! equally damaging. Write `V_k` for what the adversary concedes by
//! interrupting period `k` at its last instant:
//!
//! ```text
//! V_k = (T_{k−1} − (k−1)c)  +  W^(p−1)[U − T_k]
//!        banked so far          optimal continuation
//! ```
//!
//! Theorem 4.3 characterizes the optimal schedule by `V_1 = V_2 = … = V`
//! for the early periods (equivalently `t_k = c + W^(p−1)[U−T_k] −
//! W^(p−1)[U−T_{k+1}]`), with the tail — where the continuation value has
//! hit zero — squeezed into periods of length `(c, 2c]` (Theorem 4.2).
//!
//! [`equalized_schedule`] turns this into an algorithm: for a candidate
//! value `V` it marches the boundaries `T_k` forward by inverting the
//! `W^(p−1)` oracle, then bisects on `V` to find the largest value at which
//! the schedule stays fully productive and the no-interrupt option
//! `U − mc` still dominates. Against an *exact* oracle this reproduces the
//! optimal episode schedule up to the search tolerance (machine-checked
//! against §5.2's closed form for `p = 1`, and against the DP solver for
//! `p ≤ 4` in `cyclesteal-dp`'s tests).

use crate::error::{ModelError, Result};
use crate::model::Opportunity;
use crate::policy::WorkOracle;
use crate::schedule::EpisodeSchedule;
use crate::schedules::short_tail_partition;
use crate::time::{Time, Work};

/// Hard cap on equalizer periods; beyond this the parameters are outside
/// any sensible regime (`m` grows like `2^p √(U/c)`).
const MAX_PERIODS: usize = 1 << 24;

/// Bisection iterations for the outer search on `V` (60 halvings reach
/// `f64` resolution on any sensible work range).
const OUTER_ITERS: usize = 80;

/// Builds the Theorem 4.3 equalized episode schedule for `opp` using
/// `oracle` to answer `W^(p−1)` queries.
///
/// Returns the schedule together with the value it guarantees **according
/// to the oracle** (the min over all adversary options, each scored with
/// the oracle's continuation). If the oracle is exact this is the game
/// value `W^(p)[U]`.
pub fn equalized_schedule(
    oracle: &dyn WorkOracle,
    opp: &Opportunity,
) -> Result<(EpisodeSchedule, Work)> {
    let c = opp.setup();
    debug_assert!(
        oracle.setup().approx_eq(c, c * 1e-9),
        "oracle built for a different setup charge"
    );
    let u = opp.lifespan();
    let p = opp.interrupts();
    if !u.is_positive() {
        return Err(ModelError::NegativeLifespan { lifespan: u });
    }
    if p == 0 {
        return Ok((EpisodeSchedule::single(u)?, u.pos_sub(c)));
    }
    if opp.is_hopeless() {
        // No schedule can guarantee work; return the canonical short tail.
        return Ok((short_tail_partition(u, c)?, Work::ZERO));
    }

    let level = p - 1;
    // V cannot exceed the continuation value of the whole lifespan (the
    // adversary could interrupt period 1 immediately otherwise).
    let mut lo = 0.0f64;
    let mut hi = oracle.guaranteed_work(level, u).get();
    let mut best: Option<(EpisodeSchedule, Work)> = None;

    for _ in 0..OUTER_ITERS {
        let v = 0.5 * (lo + hi);
        match try_value(oracle, level, u, c, Work::new(v)) {
            Some((sched, uninterrupted)) if uninterrupted.get() >= v => {
                // Feasible and the no-interrupt option still dominates:
                // the schedule guarantees V; push V up.
                best = Some((sched, Work::new(v)));
                lo = v;
            }
            _ => {
                // Either a period went nonproductive or the no-interrupt
                // option dropped below V: push V down.
                hi = v;
            }
        }
    }

    match best {
        Some(b) => Ok(b),
        None => {
            // Even V ≈ 0 failed: fall back to the short tail (guarantee 0).
            Ok((short_tail_partition(u, c)?, Work::ZERO))
        }
    }
}

/// One inner construction: given candidate value `v`, march the boundaries
/// `T_k` by inverting the oracle, then append the Theorem 4.2 tail.
/// Returns `None` when some early period fails to stay productive; else
/// the schedule and its uninterrupted work `Σ(t ⊖ c)`.
fn try_value(
    oracle: &dyn WorkOracle,
    level: u32,
    u: Time,
    c: Time,
    v: Work,
) -> Option<(EpisodeSchedule, Work)> {
    let tol = c * 1e-9;
    let mut periods: Vec<Time> = Vec::new();
    let mut t_prev = Time::ZERO; // T_{k−1}
    let mut accrued = Work::ZERO; // T_{k−1} − (k−1)c

    loop {
        let target = v - accrued;
        if target <= tol {
            break; // continuation value exhausted: tail phase
        }
        let residual = oracle.inverse(level, target, u);
        if oracle.guaranteed_work(level, residual) + tol < target {
            return None; // target unreachable: V too high
        }
        let t_k_end = u - residual;
        let t_k = t_k_end - t_prev;
        if t_k <= c + tol {
            return None; // nonproductive early period: V too high
        }
        periods.push(t_k);
        accrued += t_k - c;
        t_prev = t_k_end;
        if periods.len() > MAX_PERIODS {
            return None;
        }
    }

    let remaining = u - t_prev;
    if remaining.is_positive() {
        let tail = short_tail_partition(remaining, c).ok()?;
        periods.extend_from_slice(tail.periods());
    }
    if periods.is_empty() {
        return None;
    }
    let sched = EpisodeSchedule::for_lifespan(periods, u).ok()?;
    let uninterrupted = sched.work_uninterrupted(c);
    Some((sched, uninterrupted))
}

/// The adversary-option audit of a schedule under an oracle: the value of
/// every option in Table 1, used to check how well a schedule equalizes.
#[derive(Clone, Debug)]
pub struct EqualizationReport {
    /// `V_k` for each period `k` (zero-based): banked work before `k` plus
    /// the oracle continuation on the residual lifespan.
    pub option_values: Vec<Work>,
    /// The no-interrupt option: the episode's uninterrupted work.
    pub uninterrupted: Work,
    /// The minimum over all options — the schedule's guaranteed value
    /// (according to the oracle).
    pub value: Work,
}

impl EqualizationReport {
    /// Max spread `max V_k − min V_k` among the *early* options — those
    /// whose continuation value is still positive. Theorem 4.3 says the
    /// optimal schedule drives this to zero.
    pub fn early_spread(&self, positive_continuation: &[bool]) -> Work {
        let mut lo: Option<Work> = None;
        let mut hi: Option<Work> = None;
        for (v, &early) in self.option_values.iter().zip(positive_continuation) {
            if early {
                lo = Some(lo.map_or(*v, |x: Work| x.min(*v)));
                hi = Some(hi.map_or(*v, |x: Work| x.max(*v)));
            }
        }
        match (lo, hi) {
            (Some(l), Some(h)) => h - l,
            _ => Work::ZERO,
        }
    }
}

/// Scores every adversary option of `schedule` with `oracle` continuations
/// (level `p − 1`), returning the audit report.
pub fn verify_equalization(
    oracle: &dyn WorkOracle,
    opp: &Opportunity,
    schedule: &EpisodeSchedule,
) -> EqualizationReport {
    let c = opp.setup();
    let u = opp.lifespan();
    let level = opp.interrupts().saturating_sub(1);
    let mut option_values = Vec::with_capacity(schedule.len());
    let mut accrued = Work::ZERO;
    for (k, _start, t) in schedule.iter_windows() {
        let t_k_end = schedule.start_of(k) + t;
        let residual = (u - t_k_end).clamp_min_zero();
        let v = accrued + oracle.guaranteed_work(level, residual);
        option_values.push(v);
        accrued += t.pos_sub(c);
    }
    let uninterrupted = schedule.work_uninterrupted(c);
    let value = option_values
        .iter()
        .copied()
        .chain(std::iter::once(uninterrupted))
        .min()
        .unwrap_or(Work::ZERO);
    EqualizationReport {
        option_values,
        uninterrupted,
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::w1_exact;
    use crate::policy::ClosedFormOracle;
    use crate::schedules::optimal_p1::optimal_p1_schedule;
    use crate::time::secs;

    #[test]
    fn p1_equalizer_reproduces_section_52_closed_form() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        for &u in &[5.0, 10.0, 100.0, 1_000.0, 54_321.0] {
            let opp = Opportunity::from_units(u, 1.0, 1);
            let (sched, value) = equalized_schedule(&oracle, &opp).unwrap();
            let expect = w1_exact(secs(u), c);
            assert!(
                value.approx_eq(expect, secs(1e-5)),
                "U={u}: equalizer {value} vs closed form {expect}"
            );
            // The schedules agree structurally: same leading period up to
            // the search tolerance.
            let reference = optimal_p1_schedule(secs(u), c).unwrap();
            assert!(
                sched.period(0).approx_eq(reference.period(0), secs(1e-3)),
                "U={u}: t1 {} vs {}",
                sched.period(0),
                reference.period(0)
            );
        }
    }

    #[test]
    fn equalizer_value_never_exceeds_level_below() {
        // Prop 4.1(b): W^(p) ≤ W^(p−1).
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        for &u in &[10.0, 100.0, 1_000.0] {
            let opp = Opportunity::from_units(u, 1.0, 2);
            let (_s, value) = equalized_schedule(&oracle, &opp).unwrap();
            assert!(value <= oracle.guaranteed_work(1, secs(u)));
        }
    }

    #[test]
    fn hopeless_opportunities_guarantee_zero() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        let opp = Opportunity::from_units(1.5, 1.0, 1);
        let (s, value) = equalized_schedule(&oracle, &opp).unwrap();
        assert_eq!(value, Work::ZERO);
        assert!(s.total().approx_eq(secs(1.5), secs(1e-9)));
    }

    #[test]
    fn p0_returns_single_period() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        let opp = Opportunity::from_units(42.0, 1.0, 0);
        let (s, value) = equalized_schedule(&oracle, &opp).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(value, secs(41.0));
    }

    #[test]
    fn audit_shows_tight_equalization_for_p1() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        let opp = Opportunity::from_units(1_000.0, 1.0, 1);
        let sched = optimal_p1_schedule(secs(1_000.0), c).unwrap();
        let report = verify_equalization(&oracle, &opp, &sched);
        // Every option (including the tail) is equalized for p = 1.
        let early: Vec<bool> = vec![true; report.option_values.len()];
        assert!(
            report.early_spread(&early) <= secs(1e-6),
            "spread {}",
            report.early_spread(&early)
        );
        assert!(report
            .value
            .approx_eq(w1_exact(secs(1_000.0), c), secs(1e-6)));
        assert!(report.uninterrupted >= report.value);
    }

    #[test]
    fn equalized_schedule_audits_at_its_own_value() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        for p in [1u32, 2] {
            let opp = Opportunity::from_units(2_000.0, 1.0, p);
            let (sched, value) = equalized_schedule(&oracle, &opp).unwrap();
            let report = verify_equalization(&oracle, &opp, &sched);
            assert!(
                report.value.approx_eq(value, secs(1e-4)),
                "p={p}: audit {} vs constructed {}",
                report.value,
                value
            );
        }
    }
}
