//! The *self-similar* guideline: the corrected closed-form schedule this
//! reproduction derives from Theorem 4.3's equalization in the continuum
//! limit (see [`crate::bounds::loss_coefficient`]).
//!
//! At residual `R` with `p` interrupts left, the optimal period length is
//! `t ≈ γ_p·√(2cR)` with `γ_p = 1/β_p`; marching that profile down to a
//! Theorem-4.2 short tail yields a schedule that is as cheap to build as
//! §3.2's arithmetic guideline but tracks the exact optimum's loss
//! constant `β_p` (the arithmetic reconstruction carries a ~5–15% excess
//! on the constant for `p ≥ 2`; see EXPERIMENTS.md E5).
//!
//! For `p = 1`, `γ_1 = 1` and the profile `t(R) = √(2cR)` reproduces
//! §5.2's arithmetic-by-`c` schedule to first order, so the two guidelines
//! coincide where the paper is unambiguous.

use crate::bounds::profile_coefficient;
use crate::error::{ModelError, Result};
use crate::model::Opportunity;
use crate::policy::EpisodePolicy;
use crate::schedule::EpisodeSchedule;
use crate::schedules::{normalize_sum, short_tail_partition};
use crate::time::Time;

/// The corrected self-similar guideline as an [`EpisodePolicy`].
#[derive(Clone, Copy, Debug)]
pub struct SelfSimilarGuideline {
    /// Periods shorter than `tail_floor × c` are delegated to the short
    /// tail partition (default 2.5: the profile hands over once `t` would
    /// drop to ~2.5c, keeping every period productive).
    pub tail_floor: f64,
    /// Safety cap on the number of periods in one episode.
    pub max_periods: usize,
}

impl Default for SelfSimilarGuideline {
    fn default() -> Self {
        SelfSimilarGuideline {
            tail_floor: 2.5,
            max_periods: 1 << 24,
        }
    }
}

impl SelfSimilarGuideline {
    /// Builds the episode schedule for the residual opportunity.
    pub fn build(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        let p = opp.interrupts();
        let c = opp.setup();
        let l = opp.lifespan();
        if !l.is_positive() {
            return Err(ModelError::NegativeLifespan { lifespan: l });
        }
        if p == 0 {
            return EpisodeSchedule::single(l);
        }
        let gamma = profile_coefficient(p);
        let floor = c * self.tail_floor;
        let mut periods: Vec<Time> = Vec::new();
        let mut remaining = l;
        loop {
            let t = Time::new(gamma * (2.0 * c.get() * remaining.get()).sqrt());
            if t <= floor || remaining <= floor {
                // Hand the (productive-sized) residual to the short tail.
                if remaining.is_positive() {
                    let tail = short_tail_partition(remaining, c)?;
                    periods.extend_from_slice(tail.periods());
                }
                break;
            }
            if t >= remaining || remaining - t <= c {
                // Absorb the dregs rather than strand a nonproductive
                // remainder behind this period.
                periods.push(remaining);
                break;
            }
            periods.push(t);
            remaining -= t;
            if periods.len() > self.max_periods {
                return Err(ModelError::NoConvergence {
                    what: "self-similar guideline exceeded max_periods",
                });
            }
        }
        normalize_sum(&mut periods, l);
        EpisodeSchedule::for_lifespan(periods, l)
    }
}

impl EpisodePolicy for SelfSimilarGuideline {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        self.build(opp)
    }

    fn name(&self) -> String {
        "self-similar(corrected)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::loss_coefficient;
    use crate::time::secs;

    fn build(u: f64, p: u32) -> EpisodeSchedule {
        SelfSimilarGuideline::default()
            .build(&Opportunity::from_units(u, 1.0, p))
            .unwrap()
    }

    #[test]
    fn partitions_lifespan_and_stays_productive() {
        for p in 1..=5u32 {
            for &u in &[20.0, 200.0, 2_000.0, 20_000.0] {
                let s = build(u, p);
                assert!(s.total().approx_eq(secs(u), secs(1e-6)), "p={p} U={u}");
                if u > 4.0 {
                    assert!(s.is_fully_productive(secs(1.0)), "p={p} U={u}: {s}");
                }
            }
        }
    }

    #[test]
    fn first_period_follows_the_profile() {
        for p in 1..=4u32 {
            let u = 10_000.0;
            let s = build(u, p);
            let want = (2.0 * u).sqrt() / loss_coefficient(p);
            assert!(
                (s.period(0).get() - want).abs() < 1.0,
                "p={p}: t_1 = {} vs γ_p√(2cU) = {want}",
                s.period(0)
            );
        }
    }

    #[test]
    fn periods_decrease_along_the_profile() {
        let s = build(5_000.0, 2);
        for k in 0..s.len() - 1 {
            assert!(
                s.period(k) >= s.period(k + 1) - secs(1e-9),
                "period {k} grows"
            );
        }
    }

    #[test]
    fn p1_tracks_the_exact_optimal_schedule() {
        let u = secs(2_000.0);
        let c = secs(1.0);
        let s = build(2_000.0, 1);
        let reference = crate::schedules::optimal_p1_schedule(u, c).unwrap();
        // Same leading period to O(c), same period count to a few.
        assert!((s.period(0) - reference.period(0)).abs() <= c * 1.5);
        assert!((s.len() as i64 - reference.len() as i64).abs() <= 4);
    }

    #[test]
    fn p0_is_single_period() {
        let s = build(500.0, 0);
        assert_eq!(s.len(), 1);
    }
}
