//! Naive scheduling disciplines the guidelines are benchmarked against.
//!
//! None of these are from the paper's §3; they are the folk strategies a
//! practitioner might reach for first, and they are what the guidelines
//! must beat to justify themselves (experiment E7):
//!
//! * [`SinglePeriodPolicy`] — send everything at once (optimal only for
//!   `p = 0`, catastrophic otherwise: one interrupt loses the lot);
//! * [`EqualPeriodsPolicy`] — a fixed number of equal chunks per episode;
//! * [`FixedChunkPolicy`] — fixed-size chunks regardless of the residual
//!   (the "auction off identical chunks" shape of Atallah et al. \[1\]);
//! * [`HalvingPolicy`] — geometrically decreasing periods (`L/2, L/4, …`),
//!   a plausible-looking but provably poor hedge.

use crate::error::Result;
use crate::model::Opportunity;
use crate::policy::EpisodePolicy;
use crate::schedule::EpisodeSchedule;
use crate::time::Time;

/// One period per episode: the whole residual lifespan at once.
#[derive(Clone, Copy, Debug, Default)]
pub struct SinglePeriodPolicy;

impl EpisodePolicy for SinglePeriodPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        EpisodeSchedule::single(opp.lifespan())
    }
    fn name(&self) -> String {
        "baseline-single-period".into()
    }
}

/// `m` equal periods per episode, independent of `p` and `L`.
#[derive(Clone, Copy, Debug)]
pub struct EqualPeriodsPolicy {
    /// Number of periods per episode (≥ 1).
    pub m: usize,
}

impl EqualPeriodsPolicy {
    /// Creates the policy; `m` is clamped to at least 1.
    pub fn new(m: usize) -> EqualPeriodsPolicy {
        EqualPeriodsPolicy { m: m.max(1) }
    }
}

impl EpisodePolicy for EqualPeriodsPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        EpisodeSchedule::equal(opp.lifespan(), self.m)
    }
    fn name(&self) -> String {
        format!("baseline-equal-{}", self.m)
    }
}

/// Fixed-length chunks of `chunk` time units; the final period absorbs the
/// remainder (merged into the previous chunk when it would be shorter than
/// the setup charge, so the schedule stays productive).
#[derive(Clone, Copy, Debug)]
pub struct FixedChunkPolicy {
    /// The chunk length (must exceed the setup charge to ever bank work).
    pub chunk: Time,
}

impl FixedChunkPolicy {
    /// Creates the policy.
    pub fn new(chunk: Time) -> FixedChunkPolicy {
        assert!(chunk.is_positive(), "chunk must be positive");
        FixedChunkPolicy { chunk }
    }
}

impl EpisodePolicy for FixedChunkPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        let l = opp.lifespan();
        let c = opp.setup();
        let mut periods = Vec::new();
        let mut remaining = l;
        while remaining > self.chunk {
            periods.push(self.chunk);
            remaining -= self.chunk;
        }
        if remaining.is_positive() {
            // Merge a sub-setup remainder into the last chunk.
            if remaining <= c {
                if let Some(last) = periods.last_mut() {
                    *last += remaining;
                } else {
                    periods.push(remaining);
                }
            } else {
                periods.push(remaining);
            }
        }
        EpisodeSchedule::for_lifespan(periods, l)
    }
    fn name(&self) -> String {
        format!("baseline-chunk-{}", self.chunk)
    }
}

/// Geometrically decreasing periods `L/2, L/4, …` down to a floor of
/// `floor × c`, with the final period absorbing the remainder.
#[derive(Clone, Copy, Debug)]
pub struct HalvingPolicy {
    /// Periods never go below `floor` multiples of the setup charge
    /// (default 1.5).
    pub floor: f64,
}

impl Default for HalvingPolicy {
    fn default() -> Self {
        HalvingPolicy { floor: 1.5 }
    }
}

impl EpisodePolicy for HalvingPolicy {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        let l = opp.lifespan();
        let min_period = opp.setup() * self.floor;
        let mut periods = Vec::new();
        let mut remaining = l;
        loop {
            let next = remaining * 0.5;
            if next <= min_period || remaining <= min_period * 2.0 {
                periods.push(remaining);
                break;
            }
            periods.push(next);
            remaining -= next;
        }
        EpisodeSchedule::for_lifespan(periods, l)
    }
    fn name(&self) -> String {
        "baseline-halving".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EpisodePolicy;
    use crate::time::secs;

    fn opp(u: f64, p: u32) -> Opportunity {
        Opportunity::from_units(u, 1.0, p)
    }

    #[test]
    fn single_period_policy() {
        let s = SinglePeriodPolicy.episode(&opp(100.0, 3)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.period(0), secs(100.0));
    }

    #[test]
    fn equal_periods_policy_partitions() {
        let s = EqualPeriodsPolicy::new(8).episode(&opp(100.0, 3)).unwrap();
        assert_eq!(s.len(), 8);
        assert!(s.total().approx_eq(secs(100.0), secs(1e-9)));
        // Clamp to 1.
        assert_eq!(EqualPeriodsPolicy::new(0).m, 1);
    }

    #[test]
    fn fixed_chunk_policy_merges_tiny_remainder() {
        let pol = FixedChunkPolicy::new(secs(7.0));
        let s = pol.episode(&opp(22.0, 1)).unwrap();
        // 7 + 7 + 8: the 1-unit remainder merges into the last chunk
        // because it is ≤ c.
        assert_eq!(s.len(), 3);
        assert!(s.total().approx_eq(secs(22.0), secs(1e-9)));
        assert_eq!(s.period(2), secs(8.0));

        let s2 = pol.episode(&opp(23.5, 1)).unwrap();
        // Remainder 2.5 > c stays its own period.
        assert_eq!(s2.len(), 4);
        assert_eq!(s2.period(3), secs(2.5));
    }

    #[test]
    fn fixed_chunk_smaller_than_lifespan() {
        let pol = FixedChunkPolicy::new(secs(50.0));
        let s = pol.episode(&opp(22.0, 1)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.period(0), secs(22.0));
    }

    #[test]
    fn halving_policy_decreases_geometrically() {
        let s = HalvingPolicy::default().episode(&opp(64.0, 2)).unwrap();
        assert!(s.total().approx_eq(secs(64.0), secs(1e-9)));
        assert_eq!(s.period(0), secs(32.0));
        assert_eq!(s.period(1), secs(16.0));
        for k in 0..s.len() - 1 {
            assert!(s.period(k) >= s.period(k + 1));
        }
        // All periods at or above the floor.
        for &t in s.periods() {
            assert!(t >= secs(1.5) - secs(1e-9));
        }
    }

    #[test]
    fn halving_policy_tiny_lifespan_is_single() {
        let s = HalvingPolicy::default().episode(&opp(2.0, 1)).unwrap();
        assert_eq!(s.len(), 1);
    }
}
