//! §3.1: the non-adaptive guideline `S_na^(p)[U]`.
//!
//! One schedule is committed for the whole opportunity:
//!
//! * schedule length `m^(p)[U] = ⌊√(pU/c)⌋`,
//! * equal period lengths `t_i = √(cU/p)` (realized as `U/m` so the periods
//!   partition the lifespan exactly; the two coincide up to the floor),
//!
//! with §2.2's discipline: after an interrupt in period `i` the tail
//! `t_{i+1}, …, t_m` is replayed obliviously, except that after the `p`-th
//! interrupt the remainder runs as one long period.
//!
//! Against the optimal adversary — who kills the last `p` periods at their
//! last instants — this guarantees `(m − p)(U/m − c)`, i.e.
//! `U − 2√(pcU) + pc` up to rounding (see DESIGN.md §1.1 note 1 on the
//! scanned paper's rendering of this formula, and bench E4 for the
//! measurement).

use crate::error::Result;
use crate::model::Opportunity;
use crate::schedule::EpisodeSchedule;
use crate::time::{Time, Work};
use crate::work::NonAdaptiveRun;

/// Builder for §3.1's non-adaptive guideline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NonAdaptiveGuideline;

impl NonAdaptiveGuideline {
    /// The guideline's period count `m^(p)[U] = ⌊√(pU/c)⌋`, clamped to at
    /// least 1 (for `p = 0` the optimal single period is used).
    pub fn period_count(opp: &Opportunity) -> usize {
        let p = opp.interrupts();
        if p == 0 {
            return 1;
        }
        let m = (p as f64 * opp.u_over_c()).sqrt().floor() as usize;
        m.max(1)
    }

    /// Builds the guideline schedule: `period_count` equal periods.
    pub fn build(opp: &Opportunity) -> Result<EpisodeSchedule> {
        Self::build_with_m(opp, Self::period_count(opp))
    }

    /// Builds an equal-period schedule with an explicit period count
    /// (used by the E4 ablation sweep).
    pub fn build_with_m(opp: &Opportunity, m: usize) -> Result<EpisodeSchedule> {
        EpisodeSchedule::equal(opp.lifespan(), m.max(1))
    }

    /// Packages the guideline schedule as a [`NonAdaptiveRun`] carrying the
    /// §2.2 tail-replay/consolidation discipline.
    pub fn run(opp: &Opportunity) -> Result<NonAdaptiveRun> {
        let schedule = Self::build(opp)?;
        NonAdaptiveRun::new(schedule, opp.setup(), opp.lifespan(), opp.interrupts())
    }

    /// The closed-form guarantee of the integral-`m` guideline,
    /// `(m − p)·(U/m − c)` when `m > p` and the period is productive,
    /// else zero. This is exactly what the optimal adversary concedes
    /// (kills the last `p` periods; verified against the exhaustive
    /// worst-case evaluator in `cyclesteal-adversary`).
    pub fn guarantee(opp: &Opportunity) -> Work {
        Self::guarantee_with_m(opp, Self::period_count(opp))
    }

    /// [`NonAdaptiveGuideline::guarantee`] for an explicit period count.
    pub fn guarantee_with_m(opp: &Opportunity, m: usize) -> Work {
        let p = opp.interrupts() as usize;
        if m <= p {
            return Work::ZERO;
        }
        let t = opp.lifespan() / m as f64;
        let per = t.pos_sub(opp.setup());
        Time::new(per.get() * (m - p) as f64)
    }

    /// The real-valued optimum of `(m − p)(U/m − c)` over `m`, attained at
    /// `m* = √(pU/c)`: `U − 2√(pcU) + pc`. The integral guideline is within
    /// one period's worth of work of this value.
    pub fn continuum_guarantee(opp: &Opportunity) -> Work {
        crate::bounds::nonadaptive_guarantee(opp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn period_count_is_floor_sqrt_pu_over_c() {
        let opp = Opportunity::from_units(10_000.0, 1.0, 4);
        assert_eq!(NonAdaptiveGuideline::period_count(&opp), 200);
        let opp = Opportunity::from_units(10_000.0, 1.0, 1);
        assert_eq!(NonAdaptiveGuideline::period_count(&opp), 100);
        // p = 0 ⇒ single long period (Prop 4.1(d)).
        let opp = Opportunity::from_units(10_000.0, 1.0, 0);
        assert_eq!(NonAdaptiveGuideline::period_count(&opp), 1);
    }

    #[test]
    fn schedule_partitions_lifespan_equally() {
        let opp = Opportunity::from_units(10_000.0, 1.0, 4);
        let s = NonAdaptiveGuideline::build(&opp).unwrap();
        assert_eq!(s.len(), 200);
        assert!(s.total().approx_eq(secs(10_000.0), secs(1e-6)));
        let t0 = s.period(0);
        assert!(s.periods().iter().all(|&t| t == t0));
        // Periods approximate the paper's √(cU/p) = 50.
        assert!(t0.approx_eq(secs(50.0), secs(0.5)));
    }

    #[test]
    fn guarantee_matches_killing_last_p_periods() {
        let opp = Opportunity::from_units(10_000.0, 1.0, 4);
        let run = NonAdaptiveGuideline::run(&opp).unwrap();
        let m = run.schedule().len();
        // Adversary kills the last p periods at their last instants.
        let killed: Vec<usize> = (m - 4..m).collect();
        let w = run.work_given_killed(&killed).unwrap();
        assert!(w.approx_eq(NonAdaptiveGuideline::guarantee(&opp), secs(1e-6)));
    }

    #[test]
    fn guarantee_close_to_continuum_value() {
        let c = secs(1.0);
        for &u in &[1_000.0, 10_000.0, 100_000.0] {
            for p in 1..6u32 {
                let opp = Opportunity::new(secs(u), c, p).unwrap();
                let g = NonAdaptiveGuideline::guarantee(&opp);
                let cont = NonAdaptiveGuideline::continuum_guarantee(&opp);
                // Integral m costs at most ~one period of work.
                let period = secs((u / p as f64).sqrt());
                assert!(
                    (g - cont).abs() <= period + c,
                    "U={u} p={p}: guideline {g} vs continuum {cont}"
                );
            }
        }
    }

    #[test]
    fn degenerate_small_lifespans_guarantee_zero() {
        let opp = Opportunity::from_units(3.0, 1.0, 4); // U ≤ (p+1)c
        assert!(opp.is_hopeless());
        assert_eq!(NonAdaptiveGuideline::guarantee(&opp), Work::ZERO);
        // Still builds a valid (if futile) schedule.
        let s = NonAdaptiveGuideline::build(&opp).unwrap();
        assert!(s.total().approx_eq(secs(3.0), secs(1e-9)));
    }

    #[test]
    fn explicit_m_sweep_is_maximized_near_guideline_m() {
        // The guideline's m should be (close to) the best equal-period m.
        let opp = Opportunity::from_units(40_000.0, 1.0, 3);
        let m_star = NonAdaptiveGuideline::period_count(&opp);
        let g_star = NonAdaptiveGuideline::guarantee_with_m(&opp, m_star);
        for m in [
            m_star / 2,
            m_star * 2,
            m_star + 50,
            m_star.saturating_sub(50),
        ] {
            let g = NonAdaptiveGuideline::guarantee_with_m(&opp, m.max(1));
            assert!(
                g <= g_star + secs(1e-9),
                "m={m} beats guideline m={m_star}: {g} > {g_star}"
            );
        }
    }
}
