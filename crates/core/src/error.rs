//! Error types shared by the model crates.

use crate::time::Time;
use std::fmt;

/// Result alias for model operations.
pub type Result<T, E = ModelError> = std::result::Result<T, E>;

/// Everything that can go wrong when building model objects or schedules.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A lifespan was negative.
    NegativeLifespan {
        /// The offending value.
        lifespan: Time,
    },
    /// The setup charge `c` must be strictly positive.
    NonPositiveSetup {
        /// The offending value.
        setup: Time,
    },
    /// A schedule period must be strictly positive.
    NonPositivePeriod {
        /// Zero-based index of the offending period.
        index: usize,
        /// The offending length.
        length: Time,
    },
    /// An episode schedule must contain at least one period when the
    /// residual lifespan is positive.
    EmptySchedule,
    /// The periods of an episode schedule must sum to the episode's
    /// residual lifespan (§2.2: `Σ t_i = L`).
    LifespanMismatch {
        /// What the periods sum to.
        total: Time,
        /// What the episode's residual lifespan is.
        lifespan: Time,
    },
    /// An interrupt specification referenced a period that does not exist.
    PeriodOutOfRange {
        /// Requested zero-based period index.
        index: usize,
        /// Number of periods in the schedule.
        len: usize,
    },
    /// An interrupt offset fell outside its period.
    OffsetOutOfRange {
        /// Requested offset from the period's start.
        offset: Time,
        /// The period's length.
        length: Time,
    },
    /// More interrupts were specified than the adversary's budget allows.
    BudgetExceeded {
        /// Number of interrupts specified.
        used: usize,
        /// The budget `p`.
        budget: u32,
    },
    /// A numeric search failed to converge (reported rather than silently
    /// returning garbage).
    NoConvergence {
        /// Human-readable description of the search that failed.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NegativeLifespan { lifespan } => {
                write!(f, "lifespan must be non-negative, got {lifespan}")
            }
            ModelError::NonPositiveSetup { setup } => {
                write!(f, "setup charge c must be positive, got {setup}")
            }
            ModelError::NonPositivePeriod { index, length } => {
                write!(f, "period {index} must be positive, got {length}")
            }
            ModelError::EmptySchedule => write!(f, "episode schedule has no periods"),
            ModelError::LifespanMismatch { total, lifespan } => write!(
                f,
                "periods sum to {total} but the episode lifespan is {lifespan}"
            ),
            ModelError::PeriodOutOfRange { index, len } => {
                write!(f, "period index {index} out of range for {len} periods")
            }
            ModelError::OffsetOutOfRange { offset, length } => {
                write!(f, "offset {offset} outside period of length {length}")
            }
            ModelError::BudgetExceeded { used, budget } => {
                write!(f, "{used} interrupts specified but budget is {budget}")
            }
            ModelError::NoConvergence { what } => {
                write!(f, "numeric search failed to converge: {what}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn errors_render_human_readable_messages() {
        let cases: Vec<(ModelError, &str)> = vec![
            (
                ModelError::NegativeLifespan {
                    lifespan: secs(-1.0),
                },
                "lifespan",
            ),
            (ModelError::NonPositiveSetup { setup: secs(0.0) }, "setup"),
            (
                ModelError::NonPositivePeriod {
                    index: 3,
                    length: secs(0.0),
                },
                "period 3",
            ),
            (ModelError::EmptySchedule, "no periods"),
            (
                ModelError::LifespanMismatch {
                    total: secs(1.0),
                    lifespan: secs(2.0),
                },
                "sum to",
            ),
            (
                ModelError::PeriodOutOfRange { index: 9, len: 3 },
                "out of range",
            ),
            (
                ModelError::OffsetOutOfRange {
                    offset: secs(5.0),
                    length: secs(2.0),
                },
                "outside period",
            ),
            (ModelError::BudgetExceeded { used: 4, budget: 2 }, "budget"),
            (ModelError::NoConvergence { what: "bisection" }, "converge"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}
