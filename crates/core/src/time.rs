//! Time arithmetic for the cycle-stealing model.
//!
//! The paper measures everything — lifespans, period lengths, setup charges
//! and accomplished work — in a single unit of (virtual) time, and uses
//! *positive subtraction* `x ⊖ y = max(0, x − y)` to express that a period
//! shorter than the setup charge banks no work. [`Time`] is a thin `f64`
//! newtype that provides exactly that algebra while keeping NaNs out of the
//! model by construction, which in turn lets it implement a total order.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed span of virtual time (also used for amounts of work, which the
/// model measures in time units).
///
/// Invariant: the payload is always finite (no NaN, no ±∞); every
/// constructor and arithmetic operator enforces this with a debug assertion,
/// and [`Time::new`] enforces it unconditionally. Because of the invariant,
/// `Time` is [`Eq`] and [`Ord`].
///
/// Negative values are permitted — they arise naturally in intermediate
/// expressions such as `U - T_k` near the end of a lifespan — and the
/// model-level operation that clamps at zero is [`Time::pos_sub`], the
/// paper's `⊖`.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

/// Work accomplished, measured in time units (the paper's `W`).
pub type Work = Time;

impl Time {
    /// The zero span.
    pub const ZERO: Time = Time(0.0);
    /// One time unit.
    pub const ONE: Time = Time(1.0);

    /// Wraps a raw `f64`, panicking if it is NaN or infinite.
    #[inline]
    #[track_caller]
    pub fn new(seconds: f64) -> Time {
        assert!(seconds.is_finite(), "Time must be finite, got {seconds}");
        Time(seconds)
    }

    /// The raw value in time units.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Positive subtraction, the paper's `x ⊖ y := max(0, x − y)`.
    ///
    /// A period of length `t` banks `t ⊖ c` units of work, so periods no
    /// longer than the setup charge are *nonproductive*.
    #[inline]
    pub fn pos_sub(self, rhs: Time) -> Time {
        Time((self.0 - rhs.0).max(0.0))
    }

    /// Clamps a (possibly negative) span at zero.
    #[inline]
    pub fn clamp_min_zero(self) -> Time {
        Time(self.0.max(0.0))
    }

    /// `true` iff the span is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// `true` iff strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// `true` iff strictly negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Time {
        Time(self.0.abs())
    }

    /// `true` iff `self` and `other` differ by at most `tol` (inclusive).
    ///
    /// The model is continuous; schedule constructors and evaluators use an
    /// explicit tolerance rather than bitwise `f64` equality.
    #[inline]
    pub fn approx_eq(self, other: Time, tol: Time) -> bool {
        (self.0 - other.0).abs() <= tol.0
    }

    /// Square root of a non-negative span (used by the paper's closed-form
    /// period lengths, e.g. `√(cU/p)`). Panics on negative input.
    #[inline]
    #[track_caller]
    pub fn sqrt(self) -> Time {
        assert!(self.0 >= 0.0, "sqrt of negative Time {self:?}");
        Time(self.0.sqrt())
    }

    /// Dimensionless ratio `self / rhs`. Panics if `rhs` is zero.
    #[inline]
    #[track_caller]
    pub fn ratio(self, rhs: Time) -> f64 {
        assert!(rhs.0 != 0.0, "division of Time by zero");
        self.0 / rhs.0
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Payloads are finite by invariant, so total_cmp agrees with the
        // IEEE partial order and never has to distinguish NaN payloads.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({})", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate to f64's Display, which honours width, fill, alignment
        // and precision flags.
        fmt::Display::fmt(&self.0, f)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        let out = self.0 + rhs.0;
        debug_assert!(out.is_finite());
        Time(out)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        let out = self.0 - rhs.0;
        debug_assert!(out.is_finite());
        Time(out)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        let out = self.0 * rhs;
        debug_assert!(out.is_finite());
        Time(out)
    }
}

impl Mul<Time> for f64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        rhs * self
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        let out = self.0 / rhs;
        debug_assert!(out.is_finite());
        Time(out)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl From<f64> for Time {
    #[track_caller]
    fn from(v: f64) -> Time {
        Time::new(v)
    }
}

/// Convenience constructor: `secs(3.5)` reads better than `Time::new(3.5)`
/// in schedule-building code.
#[inline]
#[track_caller]
pub fn secs(v: f64) -> Time {
    Time::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_sub_clamps_at_zero() {
        assert_eq!(secs(5.0).pos_sub(secs(2.0)), secs(3.0));
        assert_eq!(secs(2.0).pos_sub(secs(5.0)), Time::ZERO);
        assert_eq!(secs(2.0).pos_sub(secs(2.0)), Time::ZERO);
    }

    #[test]
    fn ordering_is_total_on_finite_values() {
        let mut v = vec![secs(3.0), secs(-1.0), secs(0.0), secs(2.5)];
        v.sort();
        assert_eq!(v, vec![secs(-1.0), secs(0.0), secs(2.5), secs(3.0)]);
        assert_eq!(secs(1.0).max(secs(2.0)), secs(2.0));
        assert_eq!(secs(1.0).min(secs(2.0)), secs(1.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = Time::new(f64::INFINITY);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Time = [secs(1.0), secs(2.0), secs(3.5)].into_iter().sum();
        assert_eq!(total, secs(6.5));
        assert_eq!(secs(4.0) * 0.5, secs(2.0));
        assert_eq!(secs(4.0) / 2.0, secs(2.0));
        assert_eq!(-secs(4.0), secs(-4.0));
        let mut t = secs(1.0);
        t += secs(2.0);
        t -= secs(0.5);
        assert_eq!(t, secs(2.5));
    }

    #[test]
    fn approx_eq_uses_inclusive_tolerance() {
        assert!(secs(1.0).approx_eq(secs(1.5), secs(0.5)));
        assert!(!secs(1.0).approx_eq(secs(1.51), secs(0.5)));
    }

    #[test]
    fn sqrt_and_ratio() {
        assert_eq!(secs(9.0).sqrt(), secs(3.0));
        assert_eq!(secs(9.0).ratio(secs(3.0)), 3.0);
    }
}
