//! Table 1: "The consequences of the adversary's options".
//!
//! For an `m`-period episode schedule the adversary has `m + 1` apparent
//! options — let the episode complete, or interrupt some period `k` (at its
//! last instant, which Observation (a) shows is dominant). The paper's
//! Table 1 tabulates, for each option: the episode's work output, the
//! residual lifespan, and the whole opportunity's work production when the
//! continuation is played optimally (`W^(p−1)`).
//!
//! [`table1`] regenerates the table for any schedule and any continuation
//! oracle; the `table1` bench prints it for the paper's scenarios (E1).

use crate::model::Opportunity;
use crate::policy::WorkOracle;
use crate::schedule::EpisodeSchedule;
use crate::time::{Time, Work};

/// One of the adversary's options against a committed episode schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryOption {
    /// Let the episode play out without an interrupt.
    NoInterrupt,
    /// Interrupt during period `k` (zero-based), at its last instant.
    Period(usize),
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Which option this row describes.
    pub option: AdversaryOption,
    /// The half-open window `[T_{k−1}, T_k)` in which the interrupt falls
    /// (`None` for the no-interrupt row).
    pub window: Option<(Time, Time)>,
    /// The episode's own work output under this option.
    pub episode_work: Work,
    /// The residual lifespan left to the opportunity (at the last instant).
    pub residual: Time,
    /// The opportunity's total work production: episode work plus the
    /// optimal continuation `W^(p−1)[residual]`.
    pub opportunity_work: Work,
}

/// Regenerates Table 1 for `schedule` committed at `opp`, scoring
/// continuations with `oracle` at level `p − 1`.
///
/// Row order matches the paper: the no-interrupt row first, then one row
/// per period `k = 1 … m`.
pub fn table1(
    oracle: &dyn WorkOracle,
    opp: &Opportunity,
    schedule: &EpisodeSchedule,
) -> Vec<Table1Row> {
    let c = opp.setup();
    let u = opp.lifespan();
    let level = opp.interrupts().saturating_sub(1);
    let mut rows = Vec::with_capacity(schedule.len() + 1);

    let full = schedule.work_uninterrupted(c);
    rows.push(Table1Row {
        option: AdversaryOption::NoInterrupt,
        window: None,
        episode_work: full,
        residual: (u - schedule.total()).clamp_min_zero(),
        opportunity_work: full,
    });

    let mut accrued = Work::ZERO;
    for (k, start, t) in schedule.iter_windows() {
        let t_k_end = start + t;
        let residual = (u - t_k_end).clamp_min_zero();
        let continuation = oracle.guaranteed_work(level, residual);
        rows.push(Table1Row {
            option: AdversaryOption::Period(k),
            window: Some((start, t_k_end)),
            episode_work: accrued,
            residual,
            opportunity_work: accrued + continuation,
        });
        accrued += t.pos_sub(c);
    }
    rows
}

/// The adversary's value of the game against this committed episode: the
/// minimum "opportunity work production" over all Table 1 rows.
pub fn adversary_value(rows: &[Table1Row]) -> Work {
    rows.iter()
        .map(|r| r.opportunity_work)
        .min()
        .unwrap_or(Work::ZERO)
}

/// Pretty-prints the table in the paper's column layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12} | {:>22} | {:>14} | {:>12} | {:>18}\n",
        "Period", "Interruption Time", "Episode Work", "Residual", "Opportunity Work"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for row in rows {
        let (period, window) = match row.option {
            AdversaryOption::NoInterrupt => ("No interrupt".to_string(), "N/A".to_string()),
            AdversaryOption::Period(k) => {
                let (a, b) = row.window.expect("period rows carry a window");
                (format!("{}", k + 1), format!("t ∈ [{a:.2}, {b:.2})"))
            }
        };
        out.push_str(&format!(
            "{:>12} | {:>22} | {:>14.3} | {:>12.3} | {:>18.3}\n",
            period, window, row.episode_work, row.residual, row.opportunity_work
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ClosedFormOracle;
    use crate::schedules::optimal_p1::{optimal_p1_schedule, optimal_p1_value};
    use crate::time::secs;

    #[test]
    fn table_has_m_plus_one_rows_in_paper_order() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        let opp = Opportunity::from_units(100.0, 1.0, 1);
        let s = optimal_p1_schedule(secs(100.0), c).unwrap();
        let rows = table1(&oracle, &opp, &s);
        assert_eq!(rows.len(), s.len() + 1);
        assert_eq!(rows[0].option, AdversaryOption::NoInterrupt);
        assert_eq!(rows[1].option, AdversaryOption::Period(0));
    }

    #[test]
    fn row_semantics_match_paper_formulas() {
        // Hand-built schedule: [5, 3, 2] with U = 10, c = 1, p = 1.
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        let opp = Opportunity::from_units(10.0, 1.0, 1);
        let s = EpisodeSchedule::from_periods(vec![secs(5.0), secs(3.0), secs(2.0)]).unwrap();
        let rows = table1(&oracle, &opp, &s);

        // No interrupt: U − mc = 10 − 3 = 7; residual 0.
        assert_eq!(rows[0].episode_work, secs(7.0));
        assert_eq!(rows[0].opportunity_work, secs(7.0));

        // Interrupt period 1 (window [0,5)): episode 0, residual 5,
        // continuation W^0(5) = 4.
        assert_eq!(rows[1].window, Some((secs(0.0), secs(5.0))));
        assert_eq!(rows[1].episode_work, secs(0.0));
        assert_eq!(rows[1].residual, secs(5.0));
        assert_eq!(rows[1].opportunity_work, secs(4.0));

        // Interrupt period 2: T_1 − c = 4 banked, residual 2, W^0(2) = 1.
        assert_eq!(rows[2].episode_work, secs(4.0));
        assert_eq!(rows[2].opportunity_work, secs(5.0));

        // Interrupt period 3 (last): T_2 − 2c = 6, residual 0.
        assert_eq!(rows[3].episode_work, secs(6.0));
        assert_eq!(rows[3].residual, secs(0.0));
        assert_eq!(rows[3].opportunity_work, secs(6.0));

        // Adversary picks the minimum: period-1 interrupt at 4.
        assert_eq!(adversary_value(&rows), secs(4.0));
    }

    #[test]
    fn optimal_p1_schedule_equalizes_all_interrupt_rows() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        let u = 400.0;
        let opp = Opportunity::from_units(u, 1.0, 1);
        let s = optimal_p1_schedule(secs(u), c).unwrap();
        let rows = table1(&oracle, &opp, &s);
        let w = optimal_p1_value(secs(u), c);
        for row in &rows[1..] {
            assert!(
                row.opportunity_work.approx_eq(w, secs(1e-6)),
                "row {:?} at {}",
                row.option,
                row.opportunity_work
            );
        }
        assert!(rows[0].opportunity_work >= w);
        assert!(adversary_value(&rows).approx_eq(w, secs(1e-6)));
    }

    #[test]
    fn render_includes_all_rows() {
        let c = secs(1.0);
        let oracle = ClosedFormOracle::new(c);
        let opp = Opportunity::from_units(10.0, 1.0, 1);
        let s = EpisodeSchedule::from_periods(vec![secs(6.0), secs(4.0)]).unwrap();
        let text = render_table1(&table1(&oracle, &opp, &s));
        assert!(text.contains("No interrupt"));
        assert!(text.contains("Opportunity Work"));
        // 2 period rows + header + separator + no-interrupt row.
        assert_eq!(text.lines().count(), 5);
    }
}
