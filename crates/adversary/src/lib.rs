//! # cyclesteal-adversary
//!
//! The adversary's side of the guaranteed-output cycle-stealing game, and
//! the runner that plays owners against adversaries.
//!
//! * [`optimal`] — §4's malicious adversary (oracle-driven), plus the
//!   policy-aware variant that is exactly worst-case against a *fixed*
//!   owner policy.
//! * [`nonadaptive`] — the exact `O(m log m)` worst case against a
//!   committed non-adaptive schedule with §2.2's tail-consolidation rule.
//! * [`stochastic`] — uniform, Poisson and trace-replay owners for
//!   typical-case studies.
//! * [`counter`] — counter-based per-episode RNG streams for
//!   population-scale batch simulation (bit-identical at any thread
//!   count or block size).
//! * [`game`] — the opportunity game loop and its transcript.
//!
//! ```
//! use cyclesteal_core::prelude::*;
//! use cyclesteal_adversary::{game::run_game, optimal::OptimalAdversary};
//!
//! let c = secs(1.0);
//! let opp = Opportunity::from_units(400.0, 1.0, 1);
//! let mut adversary = OptimalAdversary::new(ClosedFormOracle::new(c));
//! let log = run_game(&OptimalP1Policy, &mut adversary, &opp).unwrap();
//! // §5.2: the realized work is exactly W^(1)[U].
//! assert!(log.total_work.approx_eq(w1_exact(secs(400.0), c), secs(1e-6)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod counter;
pub mod game;
pub mod nonadaptive;
pub mod optimal;
pub mod stochastic;

pub use counter::CounterRng;
pub use game::{run_game, EpisodeRecord, GameLog};
pub use nonadaptive::{worst_case, NonAdaptiveWorstCase};
pub use optimal::{OptimalAdversary, PolicyAwareAdversary};
pub use stochastic::{PoissonAdversary, TraceAdversary, UniformRandomAdversary};
