//! Exact worst case against a *non-adaptive* schedule.
//!
//! §2.2: the non-adaptive owner replays the committed tail after each
//! interrupt, except that after the `p`-th interrupt the remainder runs as
//! one long period. With last-instant interrupts (dominant, Observation
//! (a)) the adversary's choice reduces to picking which periods to kill:
//!
//! * using `a < p` interrupts never triggers consolidation, and killing a
//!   period simply deletes its contribution, so the best such choice kills
//!   the `p − 1` largest contributions;
//! * using all `p` interrupts with the last on period `j` deletes the
//!   `p − 1` largest contributions before `j`, deletes `j`'s own
//!   contribution, and replaces the scheduled tail with one long period
//!   banking `(U − T_j) ⊖ c`.
//!
//! [`worst_case`] minimizes over all of these in `O(m log m)` with a
//! running top-`(p−1)` selection, and is validated against exhaustive
//! subset enumeration in the tests.

use cyclesteal_core::time::{Time, Work};
use cyclesteal_core::work::NonAdaptiveRun;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The adversary's optimal play against a non-adaptive run.
#[derive(Clone, Debug, PartialEq)]
pub struct NonAdaptiveWorstCase {
    /// The work the owner is left with under optimal adversarial play.
    pub work: Work,
    /// The (zero-based, increasing) periods killed, each at its last
    /// instant.
    pub killed: Vec<usize>,
}

/// Ordered-`f64` wrapper so contributions can live in a heap. Contributions
/// are finite by `Time`'s invariant.
#[derive(PartialEq)]
struct Contribution(f64, usize);

impl Eq for Contribution {}

impl PartialOrd for Contribution {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Contribution {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Computes the exact worst case for `run` (see module docs).
#[allow(clippy::needless_range_loop)] // j indexes two parallel structures
pub fn worst_case(run: &NonAdaptiveRun) -> NonAdaptiveWorstCase {
    let schedule = run.schedule();
    let c = run.setup();
    let p = run.budget() as usize;
    let m = schedule.len();
    let contributions: Vec<f64> = (0..m).map(|k| schedule.period_work(k, c).get()).collect();
    let total: f64 = contributions.iter().sum();

    // Candidate A: a = min(p−1, m) interrupts, no consolidation — kill the
    // largest contributions overall. (a = 0 when p ≤ 1.)
    let mut best = {
        let kills = p.saturating_sub(1).min(m);
        let mut idx: Vec<usize> = (0..m).collect();
        idx.sort_by(|&a, &b| {
            contributions[b]
                .total_cmp(&contributions[a])
                .then(a.cmp(&b))
        });
        let killed: Vec<usize> = idx.into_iter().take(kills).collect();
        let removed: f64 = killed.iter().map(|&k| contributions[k]).sum();
        let mut killed_sorted = killed;
        killed_sorted.sort_unstable();
        NonAdaptiveWorstCase {
            work: Time::new((total - removed).max(0.0)),
            killed: killed_sorted,
        }
    };

    // Candidate B: all p interrupts, last on period j (needs j ≥ p−1 so the
    // other p−1 fit before it). Maintain the running sum of the p−1 largest
    // contributions among periods [0, j) with a min-heap.
    if p >= 1 && m >= p {
        let u = run.lifespan();
        let mut heap: BinaryHeap<Reverse<Contribution>> = BinaryHeap::new();
        let mut heap_sum = 0.0f64;
        let keep = p - 1;
        let mut prefix = 0.0f64; // Σ contributions[0..j]
        let mut best_j: Option<(usize, f64)> = None;
        for j in 0..m {
            if j >= keep {
                // Value of interrupting last on j (prefix currently covers
                // [0..j); heap holds the `keep` largest of them).
                let tail = (u - schedule.boundary(j)).pos_sub(c).get();
                let value = (prefix - heap_sum).max(0.0) + tail;
                // (match, not Option::is_none_or: that adapter needs Rust
                // 1.82 and the workspace MSRV is 1.75.)
                let better = match best_j {
                    Some((_, v)) => value < v,
                    None => true,
                };
                if better {
                    best_j = Some((j, value));
                }
            }
            // Absorb period j into the prefix structures for the next j.
            prefix += contributions[j];
            if keep > 0 {
                heap.push(Reverse(Contribution(contributions[j], j)));
                heap_sum += contributions[j];
                if heap.len() > keep {
                    let Reverse(Contribution(v, _)) = heap.pop().expect("heap non-empty");
                    heap_sum -= v;
                }
            }
        }
        if let Some((j, value)) = best_j {
            if value < best.work.get() {
                // Reconstruct the killed set: the `keep` largest in [0, j)
                // plus j itself.
                let mut idx: Vec<usize> = (0..j).collect();
                idx.sort_by(|&a, &b| {
                    contributions[b]
                        .total_cmp(&contributions[a])
                        .then(a.cmp(&b))
                });
                let mut killed: Vec<usize> = idx.into_iter().take(keep).collect();
                killed.push(j);
                killed.sort_unstable();
                best = NonAdaptiveWorstCase {
                    work: Time::new(value.max(0.0)),
                    killed,
                };
            }
        }
    }

    debug_assert!(
        {
            let replay = run
                .work_given_killed(&best.killed)
                .expect("reported kill set is valid");
            replay.approx_eq(best.work, c * 1e-9 + replay.abs() * 1e-12)
        },
        "reported kill set does not realize the reported value"
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::model::Opportunity;
    use cyclesteal_core::prelude::*;

    fn run(periods: &[f64], c: f64, p: u32) -> NonAdaptiveRun {
        let sched =
            EpisodeSchedule::from_periods(periods.iter().map(|&x| secs(x)).collect()).unwrap();
        let u: f64 = periods.iter().sum();
        NonAdaptiveRun::new(sched, secs(c), secs(u), p).unwrap()
    }

    /// Exhaustive reference: try every subset of ≤ p killed periods.
    fn brute_force(r: &NonAdaptiveRun) -> Work {
        let m = r.schedule().len();
        let p = r.budget() as usize;
        let mut best = r.work_uninterrupted();
        for mask in 0u32..(1 << m) {
            if (mask.count_ones() as usize) > p {
                continue;
            }
            let killed: Vec<usize> = (0..m).filter(|k| mask & (1 << k) != 0).collect();
            let w = r.work_given_killed(&killed).unwrap();
            if w < best {
                best = w;
            }
        }
        best
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        let cases: Vec<(Vec<f64>, f64, u32)> = vec![
            (vec![3.0, 3.0, 3.0, 3.0], 1.0, 1),
            (vec![3.0, 3.0, 3.0, 3.0], 1.0, 2),
            (vec![5.0, 4.0, 3.0, 2.0, 1.5], 1.0, 2),
            (vec![5.0, 4.0, 3.0, 2.0, 1.5], 1.0, 3),
            (vec![2.0, 8.0, 2.0, 8.0, 2.0, 8.0], 1.5, 2),
            (vec![10.0, 0.5, 10.0, 0.5, 10.0], 1.0, 2),
            (vec![1.0, 1.0, 1.0], 2.0, 1), // all nonproductive
            (vec![7.0], 1.0, 3),           // single period, excess budget
            (vec![4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0], 1.0, 4),
        ];
        for (periods, c, p) in cases {
            let r = run(&periods, c, p);
            let fast = worst_case(&r);
            let slow = brute_force(&r);
            assert!(
                fast.work.approx_eq(slow, secs(1e-9)),
                "periods {periods:?} c={c} p={p}: fast {} vs brute {}",
                fast.work,
                slow
            );
            // The reported kill set realizes the reported value.
            let replay = r.work_given_killed(&fast.killed).unwrap();
            assert!(replay.approx_eq(fast.work, secs(1e-9)));
        }
    }

    #[test]
    fn guideline_worst_case_matches_closed_form() {
        for &(u, p) in &[(10_000.0, 1u32), (10_000.0, 3), (40_000.0, 5)] {
            let opp = Opportunity::from_units(u, 1.0, p);
            let r = NonAdaptiveGuideline::run(&opp).unwrap();
            let wc = worst_case(&r);
            let g = NonAdaptiveGuideline::guarantee(&opp);
            assert!(
                wc.work.approx_eq(g, secs(1e-6)),
                "U={u} p={p}: worst case {} vs closed form {}",
                wc.work,
                g
            );
        }
    }

    #[test]
    fn adversary_kills_whole_budget_on_equal_periods() {
        let opp = Opportunity::from_units(900.0, 1.0, 3);
        let r = NonAdaptiveGuideline::run(&opp).unwrap();
        let wc = worst_case(&r);
        assert_eq!(wc.killed.len(), 3);
        // Equal periods: killing the LAST p periods is among the optima
        // (kills work and zeroes the consolidated tail).
        let m = r.schedule().len();
        let alt: Vec<usize> = (m - 3..m).collect();
        let alt_work = r.work_given_killed(&alt).unwrap();
        assert!(alt_work.approx_eq(wc.work, secs(1e-9)));
    }

    #[test]
    fn zero_budget_means_uninterrupted() {
        let r = run(&[4.0, 4.0, 4.0], 1.0, 0);
        let wc = worst_case(&r);
        assert_eq!(wc.killed, Vec::<usize>::new());
        assert_eq!(wc.work, secs(9.0));
    }

    #[test]
    fn budget_exceeding_periods_is_handled() {
        // p > m: candidate B requires m ≥ p and is skipped; the adversary
        // still deletes the p−1 largest contributions (capped at m).
        let r = run(&[5.0, 5.0], 1.0, 5);
        let wc = worst_case(&r);
        assert_eq!(wc.work, Work::ZERO);
    }
}
