//! The owner-vs-adversary game runner (§2.2's opportunity semantics).
//!
//! Plays an [`EpisodePolicy`] against an [`Adversary`] over a full
//! cycle-stealing opportunity: the policy commits an episode schedule for
//! the residual `(p, L)`; the adversary responds; banked work accumulates;
//! interrupts spend budget and lifespan until the episode completes (which
//! exhausts the lifespan) or nothing remains.

use cyclesteal_core::error::Result;
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::{Adversary, EpisodePolicy};
use cyclesteal_core::time::{Time, Work};
use cyclesteal_core::work::{episode_outcome, InterruptSpec};

/// One episode of a played-out game.
#[derive(Clone, Debug)]
pub struct EpisodeRecord {
    /// Interrupt budget when the episode was committed.
    pub interrupts_left: u32,
    /// Residual lifespan when the episode was committed.
    pub residual: Time,
    /// Number of periods the policy committed.
    pub periods: usize,
    /// How the adversary responded.
    pub response: InterruptSpec,
    /// Work banked by this episode.
    pub work: Work,
    /// Usable lifespan this episode consumed.
    pub consumed: Time,
}

/// The transcript of one full opportunity.
#[derive(Clone, Debug)]
pub struct GameLog {
    /// The opportunity as originally contracted.
    pub opportunity: Opportunity,
    /// Episode-by-episode transcript.
    pub episodes: Vec<EpisodeRecord>,
    /// Total banked work.
    pub total_work: Work,
}

impl GameLog {
    /// Number of interrupts the adversary actually used.
    pub fn interrupts_used(&self) -> usize {
        self.episodes
            .iter()
            .filter(|e| !matches!(e.response, InterruptSpec::None))
            .count()
    }

    /// Total usable lifespan consumed over all episodes.
    pub fn consumed(&self) -> Time {
        self.episodes.iter().map(|e| e.consumed).sum()
    }
}

/// Plays the game to completion and returns the transcript.
///
/// Invariants maintained (and asserted in tests): at most `p` interrupts
/// occur; consumed lifespan never exceeds `U`; the game ends either on an
/// uninterrupted episode (which by construction covers the whole residual
/// lifespan) or when lifespan/budget semantics terminate it.
pub fn run_game(
    policy: &dyn EpisodePolicy,
    adversary: &mut dyn Adversary,
    opportunity: &Opportunity,
) -> Result<GameLog> {
    let c = opportunity.setup();
    let mut current = *opportunity;
    let mut episodes = Vec::new();
    let mut total_work = Work::ZERO;

    while current.lifespan().is_positive() {
        let schedule = policy.episode(&current)?;
        let response = if current.interrupts() > 0 {
            adversary.respond(&current, &schedule)
        } else {
            InterruptSpec::None
        };
        let outcome = episode_outcome(&schedule, c, response)?;
        total_work += outcome.work;
        episodes.push(EpisodeRecord {
            interrupts_left: current.interrupts(),
            residual: current.lifespan(),
            periods: schedule.len(),
            response,
            work: outcome.work,
            consumed: outcome.consumed,
        });
        if !outcome.interrupted {
            break; // episode ran to completion: lifespan exhausted
        }
        current = current.after_interrupt(outcome.consumed);
    }

    Ok(GameLog {
        opportunity: *opportunity,
        episodes,
        total_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{OptimalAdversary, PolicyAwareAdversary};
    use crate::stochastic::{TraceAdversary, UniformRandomAdversary};
    use cyclesteal_core::bounds::w1_exact;
    use cyclesteal_core::prelude::*;
    use cyclesteal_dp::{evaluate_policy, EvalOptions, SolveOptions, ValueTable};
    use std::sync::Arc;

    #[test]
    fn optimal_policy_vs_optimal_adversary_realizes_game_value() {
        let c = secs(1.0);
        let table = Arc::new(ValueTable::solve(
            c,
            32,
            secs(200.0),
            3,
            SolveOptions::default(),
        ));
        let policy = cyclesteal_dp::OptimalPolicy::new(table.clone());
        for p in 0..=3u32 {
            for &u in &[10.0, 64.0, 150.0, 200.0] {
                let opp = Opportunity::from_units(u, 1.0, p);
                let mut adv = OptimalAdversary::new(table.as_ref());
                let log = run_game(&policy, &mut adv, &opp).unwrap();
                let expect = table.value(p, secs(u));
                assert!(
                    (log.total_work - expect).abs() <= secs(0.4),
                    "p={p} U={u}: game {} vs table {}",
                    log.total_work,
                    expect
                );
                assert!(log.interrupts_used() <= p as usize);
                assert!(log.consumed() <= secs(u) + secs(1e-6));
            }
        }
    }

    #[test]
    fn p1_game_matches_closed_form() {
        let c = secs(1.0);
        let policy = OptimalP1Policy;
        let oracle = ClosedFormOracle::new(c);
        for &u in &[5.0, 50.0, 500.0, 5000.0] {
            let opp = Opportunity::from_units(u, 1.0, 1);
            let mut adv = OptimalAdversary::new(oracle);
            let log = run_game(&policy, &mut adv, &opp).unwrap();
            let expect = w1_exact(secs(u), c);
            assert!(
                log.total_work.approx_eq(expect, secs(1e-6)),
                "U={u}: game {} vs W^1 {}",
                log.total_work,
                expect
            );
        }
    }

    #[test]
    fn policy_aware_adversary_realizes_evaluated_value() {
        // The strongest cross-check in the workspace: the game transcript
        // of (π, policy-aware adversary) must land exactly on G_π.
        let c = secs(1.0);
        let policy = AdaptiveGuideline::default();
        let pv = evaluate_policy(&policy, c, 32, secs(150.0), 2, EvalOptions::default()).unwrap();
        for p in 0..=2u32 {
            for &u in &[20.0, 75.0, 150.0] {
                let expect = pv.value(p, secs(u));
                let mut adv = PolicyAwareAdversary::new(pv.clone());
                let opp = Opportunity::from_units(u, 1.0, p);
                let log = run_game(&policy, &mut adv, &opp).unwrap();
                assert!(
                    (log.total_work - expect).abs() <= secs(0.4),
                    "p={p} U={u}: game {} vs evaluated {}",
                    log.total_work,
                    expect
                );
            }
        }
    }

    #[test]
    fn stochastic_games_respect_budget_and_lifespan() {
        let policy = AdaptiveGuideline::default();
        for seed in 0..20u64 {
            let mut adv = UniformRandomAdversary::new(seed, 0.9);
            let opp = Opportunity::from_units(500.0, 1.0, 4);
            let log = run_game(&policy, &mut adv, &opp).unwrap();
            assert!(log.interrupts_used() <= 4);
            assert!(log.consumed() <= secs(500.0) + secs(1e-6));
            assert!(log.total_work >= Work::ZERO);
            // Work never exceeds lifespan minus one setup charge.
            assert!(log.total_work <= secs(499.0) + secs(1e-6));
        }
    }

    #[test]
    fn trace_game_replays_interrupts_in_order() {
        let policy = EqualPeriodsPolicy::new(4);
        let mut adv = TraceAdversary::new(vec![secs(30.0), secs(60.0)]);
        let opp = Opportunity::from_units(100.0, 1.0, 2);
        let log = run_game(&policy, &mut adv, &opp).unwrap();
        assert_eq!(log.interrupts_used(), 2);
        assert_eq!(log.episodes.len(), 3);
        // First episode: 4×25; interrupt at 30 ⇒ period 1, consumed 30.
        assert!(log.episodes[0].consumed.approx_eq(secs(30.0), secs(1e-9)));
        // Second episode over 70: 4×17.5; interrupt at absolute 60 ⇒ 30 in.
        assert!(log.episodes[1].consumed.approx_eq(secs(30.0), secs(1e-9)));
        // Final episode runs out the remaining 40 uninterrupted.
        assert!(log.episodes[2].consumed.approx_eq(secs(40.0), secs(1e-9)));
        assert!(log.consumed().approx_eq(secs(100.0), secs(1e-9)));
    }

    #[test]
    fn more_interrupts_never_help_the_owner() {
        // Monotonicity of the realized game value in p, under optimal play
        // (Prop 4.1(b) at the game level).
        let c = secs(1.0);
        let table = Arc::new(ValueTable::solve(
            c,
            16,
            secs(128.0),
            4,
            SolveOptions::default(),
        ));
        let policy = cyclesteal_dp::OptimalPolicy::new(table.clone());
        let mut prev = Work::new(f64::MAX);
        for p in 0..=4u32 {
            let opp = Opportunity::from_units(128.0, 1.0, p);
            let mut adv = OptimalAdversary::new(table.as_ref());
            let log = run_game(&policy, &mut adv, &opp).unwrap();
            assert!(
                log.total_work <= prev + secs(0.3),
                "p={p}: {} beat p−1's {}",
                log.total_work,
                prev
            );
            prev = log.total_work;
        }
    }
}
