//! Counter-based RNG streams for population-scale simulation.
//!
//! A [`CounterRng`] is a *stateless-in-spirit* generator: every draw is a
//! pure function of `(seed, stream, draw index)` — `splitmix64` over a
//! per-stream key xor a running counter, the same scheme the serving
//! layer's fault harness uses for its per-point decision streams. Keyed
//! by `(seed, episode_index)` this gives every episode of a batch its own
//! independent, reproducible stream: results are bit-identical no matter
//! how episodes are blocked over worker threads, because no episode ever
//! observes another episode's draws.

/// SplitMix64 — the finalizer every counter stream is built from. The
/// constants match the canonical SplitMix64 (and the serving layer's
/// fault-injection streams), so one mixing primitive serves the whole
/// workspace.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A counter-based random stream keyed by `(seed, stream)`.
///
/// Draw `n` of stream `s` is `splitmix64(key(seed, s) ^ n)` — no hidden
/// state beyond the draw counter, so a stream can be replayed from
/// scratch at any time and two streams of the same seed never correlate
/// (the stream id is finalized into the key before use).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
    n: u64,
}

impl CounterRng {
    /// Opens stream `stream` of `seed`. The same pair always yields the
    /// same draw sequence.
    pub fn new(seed: u64, stream: u64) -> CounterRng {
        // Finalize the stream id through its own mix before folding it
        // into the seed: consecutive episode indices must not produce
        // correlated keys.
        let key = splitmix64(seed ^ splitmix64(stream ^ 0xd6e8_feb8_6659_fd93));
        CounterRng { key, n: 0 }
    }

    /// The number of draws consumed so far.
    pub fn draws(&self) -> u64 {
        self.n
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let r = splitmix64(self.key ^ self.n);
        self.n += 1;
        r
    }

    /// Next uniform draw in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Next exponential draw with the given mean (inverse CDF on a
    /// uniform; `1 - u` keeps the argument of `ln` strictly positive).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Next exponential gap floored to integer ticks, clamped to `>= 0`.
    /// Flooring a continuous arrival time to the tick grid only moves an
    /// owner interrupt *earlier*, which concedes lifespan to the borrower
    /// — the conservative direction for guarantee validation.
    pub fn next_exp_ticks(&mut self, mean_ticks: f64) -> i64 {
        let g = self.next_exp(mean_ticks).floor();
        // `as` saturates on overflow/NaN, so huge draws cap instead of UB.
        (g as i64).max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_replay_bit_identically() {
        let mut a = CounterRng::new(42, 7);
        let first: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut b = CounterRng::new(42, 7);
        let second: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        assert_eq!(a.draws(), 64);
    }

    #[test]
    fn neighbouring_streams_are_independent() {
        let mut a = CounterRng::new(1, 0);
        let mut b = CounterRng::new(1, 1);
        let xs: Vec<u64> = (0..128).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..128).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // Crude decorrelation check: matching draws should be rare.
        let matches = xs.iter().zip(&ys).filter(|(x, y)| x == y).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn uniform_draws_live_in_the_half_open_unit_interval() {
        let mut rng = CounterRng::new(1234, 0);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((0.4..0.6).contains(&mean), "uniform mean ≈ 0.5, got {mean}");
    }

    #[test]
    fn exponential_draws_hit_the_requested_mean() {
        let mut rng = CounterRng::new(99, 3);
        let n = 8192;
        let mean_in = 37.5;
        let sum: f64 = (0..n).map(|_| rng.next_exp(mean_in)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean_in * 0.9..mean_in * 1.1).contains(&mean),
            "exp mean ≈ {mean_in}, got {mean}"
        );
        // Tick flooring never goes negative.
        for _ in 0..1024 {
            assert!(rng.next_exp_ticks(5.0) >= 0);
        }
    }
}
