//! The malicious adversary of §4, driven by a work oracle.
//!
//! Given a committed episode schedule, the optimal adversary compares its
//! `m + 1` options (Table 1): let the episode complete, or kill period `k`
//! at its last instant and face the owner's continuation worth
//! `W^(p−1)[U − T_k]`. Observations (a)–(c) of the paper fall out of this
//! minimization and are verified as tests rather than assumed.
//!
//! Two continuation models are provided:
//!
//! * [`OptimalAdversary`] scores continuations with a *game* oracle
//!   (typically the exact DP table) — the right adversary when the owner
//!   plays optimally;
//! * [`PolicyAwareAdversary`] scores continuations with the evaluated value
//!   of the owner's *actual* policy (`cyclesteal_dp::PolicyValue`) — the
//!   exact worst case against a fixed, possibly suboptimal owner.

use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::{Adversary, WorkOracle};
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::Work;
use cyclesteal_core::work::InterruptSpec;
use cyclesteal_dp::PolicyValue;

/// Picks the option minimizing `episode work + continuation(residual)`,
/// where `continuation(r)` scores the owner's prospects with `r` lifespan
/// and one fewer interrupt. Shared by both adversaries.
fn best_response<F: Fn(cyclesteal_core::time::Time) -> Work>(
    opp: &Opportunity,
    schedule: &EpisodeSchedule,
    continuation: F,
) -> (InterruptSpec, Work) {
    let c = opp.setup();
    let u = opp.lifespan();
    let mut best_spec = InterruptSpec::None;
    let mut best_val = schedule.work_uninterrupted(c);

    let mut accrued = Work::ZERO;
    for (k, start, t) in schedule.iter_windows() {
        let residual = (u - (start + t)).clamp_min_zero();
        let val = accrued + continuation(residual);
        if val < best_val {
            best_val = val;
            best_spec = InterruptSpec::LastInstantOf(k);
        }
        accrued += t.pos_sub(c);
    }
    (best_spec, best_val)
}

/// §4's malicious adversary under the assumption that the owner continues
/// optimally (continuations scored by a `W^(p−1)` oracle such as the exact
/// DP table).
pub struct OptimalAdversary<O> {
    oracle: O,
}

impl<O: WorkOracle> OptimalAdversary<O> {
    /// Creates the adversary around a work oracle.
    pub fn new(oracle: O) -> Self {
        OptimalAdversary { oracle }
    }

    /// The value the adversary concedes with its best response — useful
    /// for audits without running a game.
    pub fn response_value(&self, opp: &Opportunity, schedule: &EpisodeSchedule) -> Work {
        let level = opp.interrupts().saturating_sub(1);
        best_response(opp, schedule, |r| self.oracle.guaranteed_work(level, r)).1
    }
}

impl<O: WorkOracle> Adversary for OptimalAdversary<O> {
    fn respond(&mut self, opp: &Opportunity, schedule: &EpisodeSchedule) -> InterruptSpec {
        let level = opp.interrupts().saturating_sub(1);
        best_response(opp, schedule, |r| self.oracle.guaranteed_work(level, r)).0
    }

    fn name(&self) -> String {
        "optimal-adversary(oracle)".into()
    }
}

/// The exact worst-case adversary against one *fixed* owner policy: the
/// continuation is the policy's own evaluated guaranteed work, so playing
/// this adversary against that policy realizes exactly
/// `G_π(p, U)` from [`cyclesteal_dp::evaluate_policy`].
pub struct PolicyAwareAdversary {
    value: PolicyValue,
}

impl PolicyAwareAdversary {
    /// Wraps the evaluated value table of the policy this adversary will
    /// torment.
    pub fn new(value: PolicyValue) -> Self {
        PolicyAwareAdversary { value }
    }

    /// Access to the underlying policy value table.
    pub fn value_table(&self) -> &PolicyValue {
        &self.value
    }
}

impl Adversary for PolicyAwareAdversary {
    fn respond(&mut self, opp: &Opportunity, schedule: &EpisodeSchedule) -> InterruptSpec {
        let level = opp.interrupts().saturating_sub(1);
        best_response(opp, schedule, |r| self.value.value(level, r)).0
    }

    fn name(&self) -> String {
        format!("policy-aware-adversary({})", self.value.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::prelude::*;

    #[test]
    fn kills_the_only_period_of_a_single_period_schedule() {
        let c = secs(1.0);
        let mut adv = OptimalAdversary::new(ClosedFormOracle::new(c));
        let opp = Opportunity::from_units(50.0, 1.0, 1);
        let s = EpisodeSchedule::single(secs(50.0)).unwrap();
        // Killing the lone period concedes 0 < W^0 continuation of nothing.
        assert_eq!(adv.respond(&opp, &s), InterruptSpec::LastInstantOf(0));
        assert_eq!(adv.response_value(&opp, &s), Work::ZERO);
    }

    #[test]
    fn observation_b_always_interrupts_worthwhile_episodes() {
        // Against the optimal p=1 schedule every option is equalized; the
        // adversary still interrupts (no-interrupt concedes strictly more).
        let c = secs(1.0);
        let mut adv = OptimalAdversary::new(ClosedFormOracle::new(c));
        let opp = Opportunity::from_units(300.0, 1.0, 1);
        let s = optimal_p1_schedule(secs(300.0), c).unwrap();
        match adv.respond(&opp, &s) {
            InterruptSpec::LastInstantOf(_) => {}
            other => panic!("adversary declined to interrupt: {other:?}"),
        }
    }

    #[test]
    fn prefers_late_interrupts_against_equal_periods() {
        // Against equal periods with p=1, killing later periods costs the
        // owner more banked... actually killing any period loses its work;
        // the adversary's best is the option minimizing banked + W^0: for
        // equal periods that is killing the FIRST period (continuation
        // loses a setup charge, accrued zero).
        let c = secs(1.0);
        let mut adv = OptimalAdversary::new(ClosedFormOracle::new(c));
        let opp = Opportunity::from_units(40.0, 1.0, 1);
        let s = EpisodeSchedule::equal(secs(40.0), 4).unwrap();
        // Options: kill k: accrued k·9 + W^0(40−10(k+1)).
        // k=0: 0+29=29; k=1: 9+19=28; k=2: 18+9=27; k=3: 27+0=27.
        // Min is 27, attained first at k=2.
        assert_eq!(adv.respond(&opp, &s), InterruptSpec::LastInstantOf(2));
        assert_eq!(adv.response_value(&opp, &s), secs(27.0));
    }

    #[test]
    fn respects_zero_value_residuals() {
        let c = secs(1.0);
        let adv = OptimalAdversary::new(ClosedFormOracle::new(c));
        // p = 1, tiny lifespan: everything concedes 0; any interrupt works.
        let opp = Opportunity::from_units(1.5, 1.0, 1);
        let s = EpisodeSchedule::single(secs(1.5)).unwrap();
        let v = adv.response_value(&opp, &s);
        assert_eq!(v, Work::ZERO);
    }
}
