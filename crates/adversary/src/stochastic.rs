//! Stochastic and trace-driven adversaries.
//!
//! The paper's guarantees are against the malicious adversary; real owners
//! are merely inconvenient. These adversaries model them: interrupts at
//! random times (uniform or Poisson) or replayed from a recorded trace of
//! absolute opportunity times. They bound the guidelines' *typical* — as
//! opposed to guaranteed — behaviour in the benches and the simulator.

use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::Adversary;
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::Time;
use cyclesteal_core::work::InterruptSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Each episode, with probability `prob`, interrupts at a uniformly random
/// instant of the episode.
pub struct UniformRandomAdversary {
    rng: StdRng,
    prob: f64,
}

impl UniformRandomAdversary {
    /// Creates the adversary with a deterministic seed.
    pub fn new(seed: u64, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability in [0,1]");
        UniformRandomAdversary {
            rng: StdRng::seed_from_u64(seed),
            prob,
        }
    }
}

impl Adversary for UniformRandomAdversary {
    fn respond(&mut self, _opp: &Opportunity, schedule: &EpisodeSchedule) -> InterruptSpec {
        if !self.rng.gen_bool(self.prob) {
            return InterruptSpec::None;
        }
        let total = schedule.total().get();
        let tau = Time::new(self.rng.gen_range(0.0..total));
        match schedule.locate(tau) {
            Some((period, offset)) => InterruptSpec::During { period, offset },
            None => InterruptSpec::None,
        }
    }

    fn name(&self) -> String {
        format!("uniform-random(p={})", self.prob)
    }
}

/// Memoryless owner: interrupts arrive as a Poisson process of the given
/// rate (per time unit); the episode is interrupted iff the next arrival
/// falls inside it.
pub struct PoissonAdversary {
    rng: StdRng,
    rate: f64,
}

impl PoissonAdversary {
    /// Creates the adversary; `rate` is the expected number of interrupts
    /// per time unit.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!(rate >= 0.0, "rate must be non-negative");
        PoissonAdversary {
            rng: StdRng::seed_from_u64(seed),
            rate,
        }
    }

    fn sample_exponential(&mut self) -> f64 {
        // Inverse-CDF sampling; gen::<f64>() ∈ [0, 1), so 1−x ∈ (0, 1].
        let x: f64 = self.rng.gen();
        -(1.0 - x).ln() / self.rate
    }
}

impl Adversary for PoissonAdversary {
    fn respond(&mut self, _opp: &Opportunity, schedule: &EpisodeSchedule) -> InterruptSpec {
        if self.rate == 0.0 {
            return InterruptSpec::None;
        }
        let tau = self.sample_exponential();
        let total = schedule.total().get();
        if tau >= total {
            return InterruptSpec::None;
        }
        match schedule.locate(Time::new(tau)) {
            Some((period, offset)) => InterruptSpec::During { period, offset },
            None => InterruptSpec::None,
        }
    }

    fn name(&self) -> String {
        format!("poisson(rate={})", self.rate)
    }
}

/// Replays interrupts recorded at absolute opportunity times (measured in
/// consumed usable lifespan since the opportunity began). Times must be
/// strictly increasing.
pub struct TraceAdversary {
    times: Vec<Time>,
    cursor: usize,
    initial_lifespan: Option<Time>,
}

impl TraceAdversary {
    /// Creates the adversary from absolute interrupt times.
    pub fn new(times: Vec<Time>) -> Self {
        for w in times.windows(2) {
            assert!(w[0] < w[1], "trace times must be strictly increasing");
        }
        TraceAdversary {
            times,
            cursor: 0,
            initial_lifespan: None,
        }
    }

    /// Interrupt times not yet consumed by the game.
    pub fn remaining(&self) -> &[Time] {
        &self.times[self.cursor..]
    }
}

impl Adversary for TraceAdversary {
    fn respond(&mut self, opp: &Opportunity, schedule: &EpisodeSchedule) -> InterruptSpec {
        // The first call pins the opportunity's initial lifespan so elapsed
        // time can be recovered from the residual on later calls.
        let initial = *self.initial_lifespan.get_or_insert(opp.lifespan());
        let elapsed = initial - opp.lifespan();
        while self.cursor < self.times.len() {
            let t = self.times[self.cursor];
            if t < elapsed {
                // Stale event (fell inside owner-side dead time); skip it.
                self.cursor += 1;
                continue;
            }
            let offset_into_episode = t - elapsed;
            if offset_into_episode >= schedule.total() {
                return InterruptSpec::None; // next interrupt is after this episode
            }
            self.cursor += 1;
            if let Some((period, offset)) = schedule.locate(offset_into_episode) {
                return InterruptSpec::During { period, offset };
            }
        }
        InterruptSpec::None
    }

    fn name(&self) -> String {
        format!("trace({} events)", self.times.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::prelude::*;

    fn opp(u: f64, p: u32) -> Opportunity {
        Opportunity::from_units(u, 1.0, p)
    }

    fn sched(u: f64, m: usize) -> EpisodeSchedule {
        EpisodeSchedule::equal(secs(u), m).unwrap()
    }

    #[test]
    fn uniform_random_is_seed_deterministic() {
        let s = sched(100.0, 10);
        let o = opp(100.0, 3);
        let mut a1 = UniformRandomAdversary::new(7, 0.8);
        let mut a2 = UniformRandomAdversary::new(7, 0.8);
        for _ in 0..20 {
            assert_eq!(a1.respond(&o, &s), a2.respond(&o, &s));
        }
    }

    #[test]
    fn uniform_random_offsets_are_inside_periods() {
        let s = sched(100.0, 7);
        let o = opp(100.0, 3);
        let mut a = UniformRandomAdversary::new(3, 1.0);
        for _ in 0..200 {
            match a.respond(&o, &s) {
                InterruptSpec::During { period, offset } => {
                    assert!(period < s.len());
                    assert!(offset >= Time::ZERO && offset < s.period(period));
                }
                other => panic!("prob=1 must always interrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn uniform_random_prob_zero_never_interrupts() {
        let s = sched(100.0, 7);
        let o = opp(100.0, 3);
        let mut a = UniformRandomAdversary::new(3, 0.0);
        for _ in 0..50 {
            assert_eq!(a.respond(&o, &s), InterruptSpec::None);
        }
    }

    #[test]
    fn poisson_interrupt_frequency_tracks_rate() {
        let s = sched(100.0, 10);
        let o = opp(100.0, 3);
        // Rate 0.02/unit over a 100-unit episode ⇒ P(interrupt) ≈ 86%.
        let mut a = PoissonAdversary::new(11, 0.02);
        let hits = (0..2000)
            .filter(|_| !matches!(a.respond(&o, &s), InterruptSpec::None))
            .count();
        let frac = hits as f64 / 2000.0;
        assert!(
            (frac - 0.8647).abs() < 0.03,
            "observed interrupt fraction {frac}"
        );
        // Zero rate: never interrupts.
        let mut z = PoissonAdversary::new(11, 0.0);
        assert_eq!(z.respond(&o, &s), InterruptSpec::None);
    }

    #[test]
    fn trace_adversary_places_events_in_the_right_periods() {
        // Episode of 10 periods of 10 units; trace events at 35 and 77.
        let s = sched(100.0, 10);
        let o = opp(100.0, 3);
        let mut a = TraceAdversary::new(vec![secs(35.0), secs(77.0)]);
        match a.respond(&o, &s) {
            InterruptSpec::During { period, offset } => {
                assert_eq!(period, 3);
                assert!(offset.approx_eq(secs(5.0), secs(1e-9)));
            }
            other => panic!("expected interrupt, got {other:?}"),
        }
        // After consuming 35 units, a new episode of the remaining 65:
        let o2 = o.after_interrupt(secs(35.0));
        let s2 = EpisodeSchedule::equal(secs(65.0), 5).unwrap(); // 13 each
        match a.respond(&o2, &s2) {
            InterruptSpec::During { period, offset } => {
                // 77 absolute = 42 into the new episode → period 3, offset 3.
                assert_eq!(period, 3);
                assert!(offset.approx_eq(secs(3.0), secs(1e-9)));
            }
            other => panic!("expected second interrupt, got {other:?}"),
        }
        assert!(a.remaining().is_empty());
        // No more events: never interrupts again.
        let o3 = o2.after_interrupt(secs(42.0));
        let s3 = EpisodeSchedule::single(secs(23.0)).unwrap();
        assert_eq!(a.respond(&o3, &s3), InterruptSpec::None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn trace_times_must_increase() {
        let _ = TraceAdversary::new(vec![secs(5.0), secs(5.0)]);
    }
}
