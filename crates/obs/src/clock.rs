//! Injectable monotonic clock.
//!
//! The determinism lint (`lint.toml [determinism]`) bans `Instant::now`
//! and `SystemTime` from the solver crates, and this crate is inside
//! that scope on purpose: `obs` itself never reads a wall clock. Code
//! that wants timings takes a `&dyn Clock`, and the *production* impl
//! (wrapping `std::time::Instant`) lives in `cyclesteal-serve`
//! (`serve::obs::WallClock`), outside the determinism fence. Tests and
//! solver crates use [`LogicalClock`] (deterministic, manually or
//! step-advanced) or [`NoopClock`] (free, always zero), so instrumented
//! solves stay bit-identical and need zero lint waivers.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic nanosecond source.
///
/// Implementations must be cheap and thread-safe; the returned value is
/// relative to an arbitrary per-process epoch, so only differences are
/// meaningful.
pub trait Clock: Send + Sync {
    /// Monotonic nanoseconds since an arbitrary epoch.
    fn now_ns(&self) -> u64;
}

/// A clock that always reads zero.
///
/// The default for uninstrumented solves: every span and phase records
/// a duration of exactly zero, and the solver pays one virtual call per
/// phase boundary — no syscalls, no nondeterminism.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopClock;

impl Clock for NoopClock {
    fn now_ns(&self) -> u64 {
        0
    }
}

/// A deterministic logical clock for tests and solver-crate
/// instrumentation.
///
/// Reads return the current logical time; [`advance`](Self::advance)
/// moves it forward explicitly. With a nonzero `step`, every read
/// *also* auto-advances by `step` ns after returning, so consecutive
/// reads are strictly increasing — useful for asserting span ordering
/// without any wall clock.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ns: AtomicU64,
    step: u64,
}

impl LogicalClock {
    /// A frozen logical clock starting at zero (reads do not advance).
    pub fn new() -> Self {
        Self::default()
    }

    /// A logical clock that auto-advances by `step` ns on every read.
    pub fn with_step(step: u64) -> Self {
        Self {
            ns: AtomicU64::new(0),
            step,
        }
    }

    /// Advance the clock by `delta` ns.
    pub fn advance(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the clock to an absolute logical time.
    pub fn set(&self, ns: u64) {
        self.ns.store(ns, Ordering::Relaxed);
    }
}

impl Clock for LogicalClock {
    fn now_ns(&self) -> u64 {
        if self.step == 0 {
            self.ns.load(Ordering::Relaxed)
        } else {
            self.ns.fetch_add(self.step, Ordering::Relaxed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_clock_is_always_zero() {
        let c = NoopClock;
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn logical_clock_advances_explicitly() {
        let c = LogicalClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(17);
        assert_eq!(c.now_ns(), 17);
        c.set(5);
        assert_eq!(c.now_ns(), 5);
    }

    #[test]
    fn stepped_clock_is_strictly_increasing() {
        let c = LogicalClock::with_step(3);
        let a = c.now_ns();
        let b = c.now_ns();
        let d = c.now_ns();
        assert_eq!((a, b, d), (0, 3, 6));
    }

    #[test]
    fn clock_is_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(NoopClock), Box::new(LogicalClock::with_step(1))];
        assert_eq!(clocks[0].now_ns(), 0);
        assert_eq!(clocks[1].now_ns(), 0);
        assert_eq!(clocks[1].now_ns(), 1);
    }
}
