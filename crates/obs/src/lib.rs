//! Zero-dependency observability for the cyclesteal workspace.
//!
//! Three pieces, all free of wall clocks, unseeded randomness and
//! iteration-order-unstable collections (this crate sits inside the
//! determinism *and* panic-policy lint fences — see `lint.toml`):
//!
//! - [`metrics`]: a [`Registry`] of named counters, gauges and
//!   log₂-bucket histograms with lock-free atomic recording, label
//!   sets for tenant/shard/endpoint, and a deterministic
//!   Prometheus-style text exposition ([`Registry::render`]).
//! - [`trace`]: per-request [`SpanRecord`]s collected into a bounded
//!   ring-buffer [`SpanJournal`], dumpable as JSON lines and served
//!   over wire op 4.
//! - [`clock`]: the [`Clock`] trait (monotonic nanoseconds) that lets
//!   solver crates time their phases without touching `Instant::now` —
//!   the production impl lives in `cyclesteal-serve`, tests use the
//!   deterministic [`LogicalClock`], and the default [`NoopClock`]
//!   keeps uninstrumented solves bit-identical for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{Clock, LogicalClock, NoopClock};
pub use metrics::{parse_exposition, Counter, Gauge, Histogram, Registry, Sample, HIST_BUCKETS};
pub use trace::{SpanJournal, SpanRecord};
