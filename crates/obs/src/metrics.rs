//! Metrics registry: named counters, gauges and log₂-bucket histograms
//! with lock-free atomic recording and a deterministic text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! an `Arc`'d atomic cell: registration takes a registry lock once, the
//! hot recording path is a single relaxed atomic op. Series are keyed
//! by name plus a sorted label set (tenant, shard, endpoint, …), and
//! [`Registry::render`] emits a Prometheus-style text page whose line
//! order is a pure function of the registered series — byte-identical
//! across runs for the same registration and recording history.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: one per bit of a `u64`, so every
/// sample has a bucket and the top bucket saturates at `u64::MAX`.
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable up/down gauge handle (saturating at zero on decrement).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract 1, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucket latency/size histogram handle.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` (zero samples clamp to
/// bucket 0), matching the broker's original hand-rolled digest so
/// quantile numbers are comparable across releases. Recording is one
/// relaxed `fetch_add` per sample (plus count and sum).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Index of the log₂ bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    63 - (v.max(1).leading_zeros() as usize)
}

/// Inclusive upper bound of bucket `i`: `2^(i+1) - 1`, saturating at
/// `u64::MAX` for the top bucket.
fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// A free-standing histogram not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`). Returns 0 for an empty histogram. The answer
    /// is an inclusive bucket upper bound (`2^(i+1) - 1`), the same
    /// convention as the broker's original digest.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }

    /// Per-bucket sample counts (not cumulative), for exposition.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// A metric series key: metric name plus a label set sorted by label
/// key. Ordering on this type defines the exposition line order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        Self {
            name: name.to_owned(),
            labels,
        }
    }
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render `name{k="v",...}` with an optional extra trailing label
/// (used for histogram `le` bounds) and an optional name suffix.
fn render_series(
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> String {
    let mut out = String::new();
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out
}

/// A registry of named metric series.
///
/// Registration (`counter`/`gauge`/`histogram`) is get-or-create: the
/// first call for a (name, labels) pair allocates the series, later
/// calls return a clone of the same handle, so callers may re-register
/// on the hot path without double counting (though caching the handle
/// is cheaper). All maps are `BTreeMap`s, so iteration — and therefore
/// [`render`](Self::render) output — is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<SeriesKey, Counter>>,
    gauges: Mutex<BTreeMap<SeriesKey, Gauge>>,
    histograms: Mutex<BTreeMap<SeriesKey, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name` with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or create the counter `name` with the given labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(SeriesKey::new(name, labels)).or_default().clone()
    }

    /// Get or create the gauge `name` with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or create the gauge `name` with the given labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(SeriesKey::new(name, labels)).or_default().clone()
    }

    /// Get or create the histogram `name` with no labels.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get or create the histogram `name` with the given labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(SeriesKey::new(name, labels)).or_default().clone()
    }

    /// Look up an existing counter without registering it.
    pub fn lookup_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<Counter> {
        let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&SeriesKey::new(name, labels)).cloned()
    }

    /// Look up an existing gauge without registering it.
    pub fn lookup_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<Gauge> {
        let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&SeriesKey::new(name, labels)).cloned()
    }

    /// Look up an existing histogram without registering it.
    pub fn lookup_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&SeriesKey::new(name, labels)).cloned()
    }

    /// Render the full registry as deterministic Prometheus-style text.
    ///
    /// Counters and gauges emit one `name{labels} value` line each.
    /// Histograms emit cumulative `name_bucket{...,le="UB"}` lines for
    /// every non-empty bucket, a `name_bucket{...,le="+Inf"}` total,
    /// and `name_count` / `name_sum` lines. Lines are sorted by metric
    /// kind section (counters, gauges, histograms) then series key, so
    /// the page is byte-identical for identical registry state.
    pub fn render(&self) -> String {
        let mut out = String::new();
        {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            for (key, c) in map.iter() {
                out.push_str(&render_series(&key.name, "", &key.labels, None));
                out.push(' ');
                out.push_str(&c.get().to_string());
                out.push('\n');
            }
        }
        {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            for (key, g) in map.iter() {
                out.push_str(&render_series(&key.name, "", &key.labels, None));
                out.push(' ');
                out.push_str(&g.get().to_string());
                out.push('\n');
            }
        }
        {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            for (key, h) in map.iter() {
                let counts = h.bucket_counts();
                let mut cum = 0u64;
                for (i, &c) in counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cum += c;
                    let le = bucket_upper_bound(i).to_string();
                    out.push_str(&render_series(
                        &key.name,
                        "_bucket",
                        &key.labels,
                        Some(("le", &le)),
                    ));
                    out.push(' ');
                    out.push_str(&cum.to_string());
                    out.push('\n');
                }
                out.push_str(&render_series(
                    &key.name,
                    "_bucket",
                    &key.labels,
                    Some(("le", "+Inf")),
                ));
                out.push(' ');
                out.push_str(&cum.to_string());
                out.push('\n');
                out.push_str(&render_series(&key.name, "_count", &key.labels, None));
                out.push(' ');
                out.push_str(&h.count().to_string());
                out.push('\n');
                out.push_str(&render_series(&key.name, "_sum", &key.labels, None));
                out.push(' ');
                out.push_str(&h.sum().to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// One parsed exposition line: metric name, sorted labels, value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric (series) name, including any `_bucket`/`_count` suffix.
    pub name: String,
    /// Label pairs in the order they appeared on the line.
    pub labels: Vec<(String, String)>,
    /// The sample value. All values this crate renders are unsigned
    /// integers; unparseable values are skipped by the parser.
    pub value: u64,
}

/// Parse text produced by [`Registry::render`] back into samples.
///
/// Intended for dashboards and smoke tests pulling the op-4 metrics
/// blob off the wire; lines that do not scan (wrong shape, non-integer
/// value) are skipped rather than failing the whole page.
pub fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(space) = line.rfind(' ') else {
            continue;
        };
        let (series, value) = line.split_at(space);
        let Ok(value) = value.trim().parse::<u64>() else {
            continue;
        };
        let (name, labels) = match series.find('{') {
            None => (series.to_owned(), Vec::new()),
            Some(brace) => {
                let name = series[..brace].to_owned();
                let Some(inner) = series[brace + 1..].strip_suffix('}') else {
                    continue;
                };
                let mut labels = Vec::new();
                let mut rest = inner;
                let mut ok = true;
                while !rest.is_empty() {
                    let Some(eq) = rest.find("=\"") else {
                        ok = false;
                        break;
                    };
                    let key = rest[..eq].to_owned();
                    let mut val = String::new();
                    let mut chars = rest[eq + 2..].char_indices();
                    let mut end = None;
                    while let Some((i, c)) = chars.next() {
                        match c {
                            '\\' => {
                                if let Some((_, esc)) = chars.next() {
                                    val.push(match esc {
                                        'n' => '\n',
                                        other => other,
                                    });
                                }
                            }
                            '"' => {
                                end = Some(eq + 2 + i + 1);
                                break;
                            }
                            _ => val.push(c),
                        }
                    }
                    let Some(end) = end else {
                        ok = false;
                        break;
                    };
                    labels.push((key, val));
                    rest = rest[end..].strip_prefix(',').unwrap_or(&rest[end..]);
                }
                if !ok {
                    continue;
                }
                (name, labels)
            }
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying cell.
        assert_eq!(r.counter("requests").get(), 5);

        let g = r.gauge_with("depth", &[("lane", "a")]);
        g.set(3);
        g.inc();
        g.dec();
        g.dec();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0, "gauge saturates at zero");
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::new();
        h.record(100);
        // 100 lands in bucket 6 ([64, 128)); every quantile is its
        // upper bound 127.
        assert_eq!(h.quantile(0.01), 127);
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(1.0), 127);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 100);
    }

    #[test]
    fn histogram_zero_sample_clamps_to_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), 1, "bucket 0 upper bound is 1");
    }

    #[test]
    fn histogram_saturating_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_p99_at_least_p50() {
        let h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p99 >= p50, "p99 {p99} must be >= p50 {p50}");
        assert!((255..=1023).contains(&p50), "p50 {p50} in a mid bucket");
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let mk = || {
            let r = Registry::new();
            r.counter_with("zeta", &[("t", "b")]).add(2);
            r.counter_with("alpha", &[]).add(1);
            r.counter_with("zeta", &[("t", "a")]).add(3);
            r.gauge("depth").set(7);
            let h = r.histogram_with("lat", &[("ep", "x")]);
            h.record(5);
            h.record(900);
            r.render()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "render must be byte-identical across runs");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines[0], "alpha 1");
        assert_eq!(lines[1], "zeta{t=\"a\"} 3");
        assert_eq!(lines[2], "zeta{t=\"b\"} 2");
        assert_eq!(lines[3], "depth 7");
        assert!(lines[4].starts_with("lat_bucket{ep=\"x\",le=\"7\"} 1"));
        assert!(a.contains("lat_count{ep=\"x\"} 2"));
        assert!(a.contains("lat_sum{ep=\"x\"} 905"));
        assert!(a.contains("lat_bucket{ep=\"x\",le=\"+Inf\"} 2"));
    }

    #[test]
    fn parse_round_trips_render() {
        let r = Registry::new();
        r.counter_with("reqs", &[("tenant", "t-1"), ("ep", "inproc")])
            .add(42);
        r.gauge("lanes").set(3);
        r.histogram("lat").record(77);
        let text = r.render();
        let samples = parse_exposition(&text);
        let reqs = samples
            .iter()
            .find(|s| s.name == "reqs")
            .expect("reqs sample");
        assert_eq!(reqs.value, 42);
        assert_eq!(
            reqs.labels,
            vec![
                ("ep".to_owned(), "inproc".to_owned()),
                ("tenant".to_owned(), "t-1".to_owned())
            ]
        );
        assert!(samples.iter().any(|s| s.name == "lanes" && s.value == 3));
        assert!(samples
            .iter()
            .any(|s| s.name == "lat_count" && s.value == 1));
        assert!(samples.iter().any(|s| s.name == "lat_sum" && s.value == 77));
    }

    #[test]
    fn parse_handles_escaped_label_values() {
        let r = Registry::new();
        r.counter_with("odd", &[("v", "a\"b\\c\nd")]).add(9);
        let text = r.render();
        let samples = parse_exposition(&text);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
        assert_eq!(samples[0].value, 9);
    }

    #[test]
    fn concurrent_recording_totals_add_up() {
        let r = std::sync::Arc::new(Registry::new());
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let r = r.clone();
                s.spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram("lat");
                    for i in 0..per {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(r.counter("hits").get(), threads * per);
        assert_eq!(r.histogram("lat").count(), threads * per);
    }
}
